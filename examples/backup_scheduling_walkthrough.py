"""Backup-scheduling walkthrough: the full production loop of Section 2.

This example exercises the complete path the paper describes:

1. raw telemetry lands in the (simulated) raw store,
2. the weekly load-extraction query writes per-region extracts to the data
   lake,
3. the pipeline scheduler runs the AML pipeline once per region,
4. the backup scheduler moves backups of predictable servers into their
   predicted lowest-load windows via the service-fabric property,
5. the impact analysis reports the Figure 13(a) quantities.

Run with:  python examples/backup_scheduling_walkthrough.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro import (
    BackupImpactAnalyzer,
    BackupScheduler,
    DataLakeStore,
    DocumentStore,
    ExtractKey,
    PipelineConfig,
    SeagullPipeline,
    WorkloadGenerator,
    default_fleet_spec,
)
from repro.features.extractor import FeatureExtractionModule
from repro.scheduling.runner import RunnerService
from repro.telemetry.extraction import LoadExtractionQuery
from repro.telemetry.raw_store import RawTelemetryStore
from repro.timeseries.frame import LoadFrame


def main() -> None:
    regions = ("region-0", "region-1")
    spec = default_fleet_spec(servers_per_region=(60, 30), weeks=4, seed=29)
    fleet = WorkloadGenerator(spec).generate_fleet()

    # ---- 1. Raw telemetry + 2. weekly extraction --------------------------
    raw = RawTelemetryStore()
    raw.ingest_frame(fleet, noise_rng=np.random.default_rng(0))
    lake = DataLakeStore()
    extraction = LoadExtractionQuery(raw, lake)
    for week in range(spec.weeks):
        for report in extraction.extract_all_regions(week):
            print(f"extracted {report.key.region} week {report.key.week}: "
                  f"{report.servers} servers, {report.extracted_points:,} points")

    # ---- 3. Pipeline run per region ---------------------------------------
    store = DocumentStore()
    pipeline = SeagullPipeline(PipelineConfig(), data_lake=lake, document_store=store)
    results = {}
    for region in regions:
        # Stitch the four weekly extracts into one 4-week frame, the input
        # shape the paper uses for the model comparison (Section 5.3.1).
        merged: LoadFrame | None = None
        for week in range(spec.weeks):
            weekly = lake.read_extract(ExtractKey(region, week))
            if merged is None:
                merged = weekly
                continue
            combined = LoadFrame(5)
            for sid, metadata, series in merged.items():
                if sid in weekly:
                    combined.add_server(metadata, series.concat(weekly.series(sid)))
                else:
                    combined.add_server(metadata, series)
            for sid, metadata, series in weekly.items():
                if sid not in combined:
                    combined.add_server(metadata, series)
            merged = combined
        assert merged is not None
        results[region] = pipeline.run(merged, region=region, week=spec.weeks - 1)
        summary = results[region].summary
        print(f"\n{region}: windows correct {summary.pct_windows_correct:.1f}%, "
              f"load accurate {summary.pct_load_accurate:.1f}%, "
              f"predictable {summary.pct_predictable_servers:.1f}%")

    # ---- 4. Online scheduling within the runner service -------------------
    # Runners consume predictions through the pipeline's serving layer:
    # requests route to each region's ACTIVE model version and repeated
    # horizon queries are answered from the prediction cache.
    for region in regions:
        result = results[region]
        runner = RunnerService(
            region,
            BackupScheduler(),
            probes={"backup_service": lambda: True},
            serving=pipeline.serving,
        )
        region_fleet = fleet.filter(lambda md, s, region=region: md.region == region)
        metadata = {sid: region_fleet.metadata(sid) for sid in region_fleet.server_ids()}
        execution = runner.run_day(
            cluster=f"{region}-cluster-0",
            day=spec.weeks * 7 - 1,
            metadata_by_server=metadata,
            verdicts=result.predictability,
        )
        moved = sum(1 for d in execution.decisions.values() if d.moved)
        served = execution.serving
        print(f"\n{region}: scheduled {len(execution.decisions)} backups, moved {moved} "
              f"into predicted LL windows (availability {runner.availability():.0%})")
        if served is not None:
            print(f"  served by model version v{served.served_by_version}: "
                  f"{served.n_served} predictions, {served.cache_hits} cache hits, "
                  f"{len(served.skipped)} skipped")

        # ---- 5. Impact analysis (Figure 13(a)) ----------------------------
        features = FeatureExtractionModule().extract_frame(region_fleet)
        report = BackupImpactAnalyzer().analyze(region_fleet, execution.decisions, features)
        print(f"  moved to LL window          : {report.pct_moved_to_ll_window:6.2f}%")
        print(f"  default already LL          : {report.pct_default_already_ll:6.2f}%")
        print(f"  windows not chosen correctly: {report.pct_windows_incorrect:6.2f}%")
        print(f"  stable servers default = LL : {report.pct_stable_default_already_ll:6.2f}%")
        print(f"  improved customer hours     : {report.improved_hours:6.1f}h")

    print("\n" + pipeline.dashboard.render_text())


if __name__ == "__main__":
    main()
