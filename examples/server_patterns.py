"""Server activity patterns and the low-load metrics (Figures 2 and 4-10).

Reproduces, as printed ASCII summaries, the per-server examples the paper
uses to motivate its metrics: a stable server, a server with a daily
pattern, a server with a weekly pattern, a server without any pattern, and
the correctly/incorrectly chosen lowest-load window cases.

Run with:  python examples/server_patterns.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.features.patterns import day_over_day_bucket_ratio
from repro.features.stability import stability_bucket_ratio
from repro.metrics.bucket_ratio import bucket_ratio, is_accurate_prediction
from repro.metrics.ll_window import is_window_correctly_chosen, lowest_load_window
from repro.telemetry.fleet import ServerClass, default_fleet_spec
from repro.telemetry.generator import WorkloadGenerator
from repro.timeseries.calendar import MINUTES_PER_DAY


def sparkline(values: np.ndarray, width: int = 72) -> str:
    """Render a coarse ASCII sparkline of one day of load."""
    blocks = " .:-=+*#%@"
    resampled = np.interp(
        np.linspace(0, len(values) - 1, width), np.arange(len(values)), values
    )
    scale = (len(blocks) - 1) / max(resampled.max(), 1e-9)
    return "".join(blocks[int(round(v * scale))] for v in resampled)


def describe(name: str, series, reference_day: int = 27) -> None:
    day = series.day(reference_day)
    if day.is_empty:
        day = series.day(series.days()[-1])
    print(f"\n--- {name} ---")
    print(f"  last day   |{sparkline(day.values)}|")
    print(f"  stability bucket ratio      : {stability_bucket_ratio(series):6.2%}")
    daily = day_over_day_bucket_ratio(series, reference_day, 1)
    weekly = day_over_day_bucket_ratio(series, reference_day, 7)
    print(f"  vs previous day (Def. 5)    : {daily:6.2%}" if not np.isnan(daily) else
          "  vs previous day (Def. 5)    :   n/a")
    print(f"  vs previous eq. day (Def. 6): {weekly:6.2%}" if not np.isnan(weekly) else
          "  vs previous eq. day (Def. 6):   n/a")


def main() -> None:
    spec = default_fleet_spec(servers_per_region=(1,), weeks=4, seed=77)
    generator = WorkloadGenerator(spec)

    samples = {
        "Stable server (Figure 4)": ServerClass.STABLE,
        "Server with daily pattern (Figure 5)": ServerClass.DAILY,
        "Server with weekly pattern (Figure 6)": ServerClass.WEEKLY,
        "Server without pattern (Figure 7)": ServerClass.UNSTABLE,
    }
    generated = {}
    for label, cls in samples.items():
        generated[label] = generator.generate_server(f"example-{cls.value}", "region-0", cls)
        describe(label, generated[label].series)

    # ---- Figure 2: an "almost right" prediction that fails the 90% bar ----
    truth = generated["Stable server (Figure 4)"].series.day(27)
    predicted = truth.with_values(truth.values - np.where(np.arange(len(truth)) % 4 == 0, 8.0, 0.0))
    ratio = bucket_ratio(predicted, truth)
    print("\n--- Acceptable error bound (Figure 2) ---")
    print(f"  bucket ratio {ratio:.2%} -> accurate: {is_accurate_prediction(predicted, truth)}")

    # ---- Figures 8-10: LL-window cases -------------------------------------
    daily_series = generated["Server with daily pattern (Figure 5)"].series
    day = 27
    duration = 60
    true_window = lowest_load_window(daily_series, day, duration)
    prev_day_forecast = daily_series.day(day - 1).shift(MINUTES_PER_DAY)
    predicted_window = lowest_load_window(prev_day_forecast, day, duration)
    correct = is_window_correctly_chosen(prev_day_forecast, daily_series, day, duration)
    print("\n--- Lowest-load windows (Figures 8-10) ---")
    print(f"  true LL window      : starts at minute {true_window.start % MINUTES_PER_DAY:4d}, "
          f"avg load {true_window.average_load:5.1f}%")
    print(f"  predicted LL window : starts at minute {predicted_window.start % MINUTES_PER_DAY:4d}, "
          f"avg load {predicted_window.average_load:5.1f}%")
    print(f"  correctly chosen (Def. 8): {correct}")


if __name__ == "__main__":
    main()
