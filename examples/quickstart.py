"""Quickstart: run the Seagull pipeline on one synthetic region.

Generates four weeks of telemetry for a small region, runs the full
pipeline (validation, classification, training, deployment, inference,
accuracy evaluation) and prints the headline metrics the paper reports in
Section 5.4.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import PipelineConfig, SeagullPipeline, WorkloadGenerator, default_fleet_spec


def main() -> None:
    # 1. Synthesize a small region: 80 servers, four weeks of 5-minute CPU telemetry.
    spec = default_fleet_spec(servers_per_region=(80,), weeks=4, seed=11)
    frame = WorkloadGenerator(spec).generate_region("region-0")
    print(f"generated {len(frame)} servers, {frame.total_points():,} telemetry points")

    # 2. Run the pipeline with the production configuration: persistent
    #    forecast based on the previous day, +10/-5 error bound, three-week
    #    predictability history.
    pipeline = SeagullPipeline(PipelineConfig())
    result = pipeline.run(frame, region="region-0", week=3)

    # 3. Report the Section 5.4 metrics.
    print(f"\npipeline run {result.run_id}: succeeded={result.succeeded}")
    summary = result.summary
    assert summary is not None
    print(f"  correctly chosen LL windows : {summary.pct_windows_correct:6.2f}%  (paper: 99%)")
    print(f"  accurately predicted load   : {summary.pct_load_accurate:6.2f}%  (paper: 96%)")
    print(f"  predictable servers         : {summary.pct_predictable_servers:6.2f}%  (paper: 75%)")

    print("\ncomponent runtimes:")
    for component, seconds in result.timings.items():
        print(f"  {component:<22s} {seconds:8.3f}s")

    print("\nmodel registry:")
    for record in pipeline.registry.versions("region-0"):
        print(f"  v{record.version} {record.model_name} [{record.status.value}] "
              f"accuracy={record.accuracy_pct:.1f}%")


if __name__ == "__main__":
    main()
