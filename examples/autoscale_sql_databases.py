"""Preemptive auto-scale of SQL databases (Appendix A).

Classifies a synthetic fleet of single SQL databases into stable/unstable
(Definition 10), compares forecasting models with the standard error
metrics (Figures 16 and 17) and turns the deployed model's forecasts into
scale-up / scale-down recommendations.

Run with:  python examples/autoscale_sql_databases.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import WorkloadGenerator, sql_database_fleet_spec
from repro.autoscale.classification import classify_databases
from repro.autoscale.policy import AutoscalePolicy, capacity_headroom_histogram, pct_reaching_capacity
from repro.autoscale.predictor import AutoscalePredictor
from repro.models.registry import MODEL_DISPLAY_NAMES

MODELS = ["persistent_previous_day", "ssa", "feedforward", "seasonal_additive"]


def main() -> None:
    spec = sql_database_fleet_spec(n_databases=60, weeks=4, seed=41)
    fleet = WorkloadGenerator(spec).generate_fleet()
    print(f"generated {len(fleet)} SQL databases at 15-minute granularity")

    # ---- Classification (Appendix A.1) ------------------------------------
    classification = classify_databases(fleet)
    print(f"\nstable databases   : {classification.pct_stable:5.2f}%  (paper: 19.36%)")
    print(f"unstable databases : {classification.pct_unstable:5.2f}%")

    # ---- Model comparison (Figures 16 and 17) ------------------------------
    predictor = AutoscalePredictor(training_days=7)
    evaluation = predictor.evaluate_fleet(
        fleet.select(fleet.server_ids()[:25]), model_names=MODELS
    )
    print(f"\n{'model':<34s} {'NRMSE':>8s} {'MASE':>8s} {'fit s':>8s} {'infer s':>9s}")
    for score in evaluation.scores():
        display = MODEL_DISPLAY_NAMES.get(score.model_name, score.model_name)
        print(
            f"{display:<34s} {score.mean_nrmse:8.3f} {score.mean_mase:8.3f} "
            f"{score.total_fit_seconds:8.2f} {score.total_inference_seconds:9.3f}"
        )

    # ---- Capacity headroom (Figure 13(b)) ----------------------------------
    print("\ncapacity headroom (max CPU per database over the month):")
    for bucket, pct in capacity_headroom_histogram(fleet).items():
        print(f"  {bucket:<12s} {pct:5.1f}%")
    print(f"databases reaching capacity: {pct_reaching_capacity(fleet):.1f}%  (paper: 3.7%)")

    # ---- Preemptive scaling recommendations --------------------------------
    deployed_model = "persistent_previous_day"
    forecasts = {
        entry.database_id: entry.forecast
        for entry in evaluation.forecasts[deployed_model]
    }
    policy = AutoscalePolicy(scale_up_threshold=80.0, scale_down_threshold=30.0)
    recommendations = policy.recommend_fleet(forecasts)
    counts = policy.action_counts(recommendations)
    print(f"\npreemptive recommendations from {deployed_model}: {counts}")


if __name__ == "__main__":
    main()
