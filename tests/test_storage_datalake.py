"""Unit tests for the data-lake extract store."""

import pytest

from repro.storage.columnar import ColumnarFormatError, frame_to_sgx_bytes
from repro.storage.datalake import (
    AccessDeniedError,
    DataLakeStore,
    ExtractKey,
    ExtractNotFoundError,
)
from repro.timeseries.frame import LoadFrame, ServerMetadata

from tests.helpers import make_series


def small_frame(n=2) -> LoadFrame:
    frame = LoadFrame(5)
    for index in range(n):
        frame.add_server(
            ServerMetadata(server_id=f"s{index}", region="r0"), make_series([1.0, 2.0])
        )
    return frame


class TestInMemoryStore:
    def test_write_then_read(self):
        store = DataLakeStore()
        key = ExtractKey("r0", 3)
        store.write_extract(key, small_frame())
        loaded = store.read_extract(key)
        assert len(loaded) == 2

    def test_read_missing_raises(self):
        with pytest.raises(ExtractNotFoundError):
            DataLakeStore().read_extract(ExtractKey("r0", 0))

    def test_has_extract(self):
        store = DataLakeStore()
        key = ExtractKey("r0", 1)
        assert not store.has_extract(key)
        store.write_extract(key, small_frame())
        assert store.has_extract(key)

    def test_list_extracts_filters_by_region(self):
        store = DataLakeStore()
        store.write_extract(ExtractKey("r0", 0), small_frame())
        store.write_extract(ExtractKey("r1", 0), small_frame())
        assert store.list_extracts() == [ExtractKey("r0", 0), ExtractKey("r1", 0)]
        assert store.list_extracts("r1") == [ExtractKey("r1", 0)]

    def test_extract_size_bytes_positive(self):
        store = DataLakeStore()
        key = ExtractKey("r0", 0)
        store.write_extract(key, small_frame())
        assert store.extract_size_bytes(key) > 0

    def test_size_of_missing_raises(self):
        with pytest.raises(ExtractNotFoundError):
            DataLakeStore().extract_size_bytes(ExtractKey("r0", 9))

    def test_delete_extract(self):
        store = DataLakeStore()
        key = ExtractKey("r0", 0)
        store.write_extract(key, small_frame())
        store.delete_extract(key)
        assert not store.has_extract(key)


class TestFileBackedStore:
    def test_roundtrip_on_disk(self, tmp_path):
        store = DataLakeStore(tmp_path)
        key = ExtractKey("westus", 12)
        store.write_extract(key, small_frame(3))
        assert store.read_extract(key).server_ids() == ["s0", "s1", "s2"]
        assert store.list_extracts() == [key]

    def test_size_matches_file(self, tmp_path):
        store = DataLakeStore(tmp_path)
        key = ExtractKey("westus", 1)
        store.write_extract(key, small_frame())
        assert store.extract_size_bytes(key) == store.extract_path(key).stat().st_size

    def test_delete_on_disk(self, tmp_path):
        store = DataLakeStore(tmp_path)
        key = ExtractKey("r", 0)
        store.write_extract(key, small_frame())
        store.delete_extract(key)
        assert not store.has_extract(key)


class TestAccessControl:
    def test_denies_unknown_principal(self):
        store = DataLakeStore(granted_principals={"seagull"})
        with pytest.raises(AccessDeniedError):
            store.write_extract(ExtractKey("r0", 0), small_frame(), principal="intruder")

    def test_denies_missing_principal(self):
        store = DataLakeStore(granted_principals={"seagull"})
        with pytest.raises(AccessDeniedError):
            store.read_extract(ExtractKey("r0", 0))

    def test_allows_granted_principal(self):
        store = DataLakeStore(granted_principals={"seagull"})
        key = ExtractKey("r0", 0)
        store.write_extract(key, small_frame(), principal="seagull")
        assert len(store.read_extract(key, principal="seagull")) == 2

    def test_metadata_accessors_enforce_access(self):
        # extract_fingerprint / extract_size_bytes / has_extract /
        # list_extracts historically bypassed the allow-list, leaking
        # existence, size and change signals to ungranted callers.
        store = DataLakeStore(granted_principals={"seagull"})
        key = ExtractKey("r0", 0)
        store.write_extract(key, small_frame(), principal="seagull")
        for call in (
            lambda: store.extract_fingerprint(key),
            lambda: store.extract_size_bytes(key),
            lambda: store.has_extract(key),
            lambda: store.list_extracts(),
            lambda: store.read_extract_bytes(key),
            lambda: store.extract_formats(key),
            lambda: store.delete_extract(key),
        ):
            with pytest.raises(AccessDeniedError):
                call()

    def test_metadata_accessors_allow_granted_principal(self):
        store = DataLakeStore(granted_principals={"seagull"})
        key = ExtractKey("r0", 0)
        store.write_extract(key, small_frame(), principal="seagull")
        assert store.has_extract(key, principal="seagull")
        assert store.list_extracts(principal="seagull") == [key]
        assert store.extract_fingerprint(key, principal="seagull")
        assert store.extract_size_bytes(key, principal="seagull") > 0


class TestListExtractParsing:
    def test_region_name_containing_week_parses_from_directory(self, tmp_path):
        # rpartition("_week") on the stem used to split inside the region
        # name; the directory name is authoritative.
        store = DataLakeStore(tmp_path)
        key = ExtractKey("east_weekly_zone", 3)
        store.write_extract(key, small_frame())
        assert store.list_extracts() == [key]
        assert store.list_extracts("east_weekly_zone") == [key]

    def test_region_filter_scans_only_that_directory(self, tmp_path):
        store = DataLakeStore(tmp_path)
        store.write_extract(ExtractKey("r0", 0), small_frame())
        store.write_extract(ExtractKey("r1", 1), small_frame())
        assert store.list_extracts("r0") == [ExtractKey("r0", 0)]
        assert store.list_extracts("missing-region") == []

    def test_foreign_files_are_ignored(self, tmp_path):
        store = DataLakeStore(tmp_path)
        store.write_extract(ExtractKey("r0", 0), small_frame())
        (tmp_path / "r0" / "notes.txt").write_text("not an extract")
        (tmp_path / "r0" / "extract_other_week0001.csv").write_text("wrong region prefix")  # repro: allow[manifest-boundary] planting a foreign file the lake must ignore
        (tmp_path / "_manifest.json").write_text("{}")
        assert store.list_extracts() == [ExtractKey("r0", 0)]


class TestFormatNegotiation:
    @pytest.mark.parametrize("root", [None, "disk"])
    def test_sgx_write_and_read(self, tmp_path, root):
        store = DataLakeStore(tmp_path if root else None, write_format="sgx")
        key = ExtractKey("r0", 2)
        rows = store.write_extract(key, small_frame())
        assert rows == 4  # 2 servers x 2 points
        assert store.extract_formats(key) == ("sgx",)
        loaded = store.read_extract(key)
        assert loaded.content_hash() == small_frame().content_hash()

    @pytest.mark.parametrize("root", [None, "disk"])
    def test_sgx_preferred_over_csv(self, tmp_path, root):
        store = DataLakeStore(tmp_path if root else None)
        key = ExtractKey("r0", 0)
        store.write_extract(key, small_frame())
        store.write_extract(key, small_frame(3), fmt="sgx", keep_other_formats=True)
        assert store.extract_formats(key) == ("sgx", "csv")
        assert len(store.read_extract(key)) == 3  # the .sgx copy wins
        fmt, payload = store.read_extract_bytes(key)
        assert fmt == "sgx" and payload.startswith(b"SGXF")

    def test_write_drops_stale_other_format(self, tmp_path):
        store = DataLakeStore(tmp_path)
        key = ExtractKey("r0", 0)
        store.write_extract(key, small_frame(), fmt="sgx")
        store.write_extract(key, small_frame(3), fmt="csv")
        # The .sgx copy would be stale; it must be gone.
        assert store.extract_formats(key) == ("csv",)
        assert len(store.read_extract(key)) == 3

    def test_mixed_lake_lists_each_key_once(self, tmp_path):
        store = DataLakeStore(tmp_path)
        store.write_extract(ExtractKey("r0", 0), small_frame(), fmt="csv")
        store.write_extract(ExtractKey("r0", 1), small_frame(), fmt="sgx")
        store.write_extract(ExtractKey("r1", 0), small_frame(), fmt="sgx")
        store.write_extract(ExtractKey("r1", 0), small_frame(), fmt="csv", keep_other_formats=True)
        assert store.list_extracts() == [
            ExtractKey("r0", 0),
            ExtractKey("r0", 1),
            ExtractKey("r1", 0),
        ]

    def test_mixed_lake_reads_consistently(self, tmp_path):
        store = DataLakeStore(tmp_path)
        frame = small_frame()
        store.write_extract(ExtractKey("r0", 0), frame, fmt="csv")
        store.write_extract(ExtractKey("r0", 1), frame, fmt="sgx")
        csv_frame = store.read_extract(ExtractKey("r0", 0))
        sgx_frame = store.read_extract(ExtractKey("r0", 1))
        assert csv_frame.content_hash() == sgx_frame.content_hash()

    def test_fingerprint_covers_stored_bytes(self, tmp_path):
        store = DataLakeStore(tmp_path)
        key = ExtractKey("r0", 0)
        store.write_extract(key, small_frame(), fmt="csv")
        csv_fingerprint = store.extract_fingerprint(key)
        store.write_extract(key, small_frame(), fmt="sgx", keep_other_formats=True)
        # Same content, different stored representation: new fingerprint.
        assert store.extract_fingerprint(key) != csv_fingerprint

    def test_size_reports_preferred_format(self, tmp_path):
        store = DataLakeStore(tmp_path)
        key = ExtractKey("r0", 0)
        store.write_extract(key, small_frame(), fmt="csv")
        csv_size = store.extract_size_bytes(key)
        store.write_extract(key, small_frame(), fmt="sgx", keep_other_formats=True)
        sgx_size = store.extract_path(key, fmt="sgx").stat().st_size
        assert store.extract_size_bytes(key) == sgx_size  # .sgx preferred
        assert store.extract_size_bytes(key, fmt="csv") == csv_size

    def test_delete_removes_all_formats(self, tmp_path):
        store = DataLakeStore(tmp_path)
        key = ExtractKey("r0", 0)
        store.write_extract(key, small_frame(), fmt="csv")
        store.write_extract(key, small_frame(), fmt="sgx", keep_other_formats=True)
        store.delete_extract(key)
        assert not store.has_extract(key)
        assert store.list_extracts() == []

    def test_delete_single_format(self):
        store = DataLakeStore()
        key = ExtractKey("r0", 0)
        store.write_extract(key, small_frame(), fmt="csv")
        store.write_extract(key, small_frame(), fmt="sgx", keep_other_formats=True)
        store.delete_extract(key, fmt="sgx")
        assert store.extract_formats(key) == ("csv",)

    def test_read_extract_text_decodes_columnar(self):
        store = DataLakeStore(write_format="sgx")
        key = ExtractKey("r0", 0)
        store.write_extract(key, small_frame())
        text = store.read_extract_text(key)
        assert text.startswith("server_id,")
        assert "s0" in text

    def test_unknown_format_rejected(self):
        store = DataLakeStore()
        with pytest.raises(ValueError, match="unknown extract format"):
            store.write_extract(ExtractKey("r0", 0), small_frame(), fmt="parquet")
        with pytest.raises(ValueError, match="unknown extract format"):
            DataLakeStore(write_format="arrow")

    def test_forced_format_read_missing_raises(self):
        store = DataLakeStore()
        key = ExtractKey("r0", 0)
        store.write_extract(key, small_frame(), fmt="csv")
        with pytest.raises(ExtractNotFoundError):
            store.read_extract(key, fmt="sgx")


class TestTimeRangeReads:
    def frame_two_days(self):
        frame = LoadFrame(5)
        frame.add_server(
            ServerMetadata(server_id="a", region="r0"),
            make_series([1.0] * 288, start=0),
        )
        frame.add_server(
            ServerMetadata(server_id="b", region="r0"),
            make_series([2.0] * 288, start=1440),
        )
        return frame

    @pytest.mark.parametrize("fmt", ["csv", "sgx"])
    def test_partial_read_prunes_servers(self, tmp_path, fmt):
        store = DataLakeStore(tmp_path, write_format=fmt)
        key = ExtractKey("r0", 0)
        store.write_extract(key, self.frame_two_days())
        part = store.read_extract(key, start_minute=1440, end_minute=2880)
        assert part.server_ids() == ["b"]
        assert part.total_points() == 288

    def test_partial_read_identical_across_formats(self, tmp_path):
        frame = self.frame_two_days()
        store = DataLakeStore(tmp_path)
        store.write_extract(ExtractKey("r0", 0), frame, fmt="csv")
        store.write_extract(ExtractKey("r0", 1), frame, fmt="sgx")
        via_csv = store.read_extract(ExtractKey("r0", 0), start_minute=100, end_minute=700)
        via_sgx = store.read_extract(ExtractKey("r0", 1), start_minute=100, end_minute=700)
        assert via_csv.content_hash() == via_sgx.content_hash()


class TestChunkPolicy:
    """The store's ``chunk_minutes`` knob reaches the columnar writer."""

    def week_frame(self) -> LoadFrame:
        frame = LoadFrame(5)
        frame.add_server(
            ServerMetadata(server_id="s0", region="r0"),
            make_series([1.0] * (7 * 288), start=0),
        )
        return frame

    def _chunks(self, store, key) -> int:
        from repro.storage.columnar import sgx_summary

        _fmt, raw = store.read_extract_bytes(key)
        return sgx_summary(raw)["n_chunks"]

    def test_default_policy_is_one_chunk_per_day(self):
        store = DataLakeStore(write_format="sgx")
        key = ExtractKey("r0", 0)
        store.write_extract(key, self.week_frame())
        assert self._chunks(store, key) == 7

    def test_store_chunk_minutes_config(self):
        store = DataLakeStore(write_format="sgx", chunk_minutes=0)
        key = ExtractKey("r0", 0)
        store.write_extract(key, self.week_frame())
        assert self._chunks(store, key) == 1

    def test_write_extract_override_beats_store_config(self):
        store = DataLakeStore(write_format="sgx", chunk_minutes=0)
        key = ExtractKey("r0", 0)
        store.write_extract(key, self.week_frame(), chunk_minutes=720)
        assert self._chunks(store, key) == 14

    def test_negative_chunk_minutes_rejected(self):
        with pytest.raises(ValueError, match="chunk_minutes"):
            DataLakeStore(chunk_minutes=-5)

    def test_write_extract_bytes_stores_exact_payload(self):
        store = DataLakeStore()
        key = ExtractKey("r0", 0)
        payload = frame_to_sgx_bytes(self.week_frame(), chunk_minutes=0)
        store.write_extract_bytes(key, "sgx", payload)
        fmt, raw = store.read_extract_bytes(key)
        assert (fmt, raw) == ("sgx", payload)

    def test_write_extract_bytes_drops_stale_other_format(self):
        store = DataLakeStore()
        key = ExtractKey("r0", 0)
        store.write_extract(key, self.week_frame(), fmt="csv")
        payload = frame_to_sgx_bytes(self.week_frame())
        store.write_extract_bytes(key, "sgx", payload)
        assert store.extract_formats(key) == ("sgx",)
        store.write_extract(key, self.week_frame(), fmt="csv", keep_other_formats=True)
        store.write_extract_bytes(key, "sgx", payload, keep_other_formats=True)
        assert store.extract_formats(key) == ("sgx", "csv")

    def test_partial_read_within_server_matches_slice(self, tmp_path):
        store = DataLakeStore(tmp_path, write_format="sgx")
        key = ExtractKey("r0", 0)
        frame = self.week_frame()
        store.write_extract(key, frame)
        part = store.read_extract(key, start_minute=1440, end_minute=2880)
        assert part.series("s0") == frame.series("s0").slice(1440, 2880)

    def test_unsorted_series_write_is_rejected_loudly(self):
        # The lake must surface the writer's zone-map guard, not persist
        # a corrupt extract.
        import numpy as np

        from repro.timeseries.series import LoadSeries

        frame = LoadFrame(5)
        series = LoadSeries(
            np.array([10, 0, 5], dtype=np.int64),
            np.zeros(3),
            5,
            validate=False,
        )
        frame.add_server(ServerMetadata(server_id="bad", region="r0"), series)
        store = DataLakeStore(write_format="sgx")
        key = ExtractKey("r0", 0)
        with pytest.raises(ColumnarFormatError, match="bad"):
            store.write_extract(key, frame)
        assert not store.has_extract(key)


class TestCorruptionFallback:
    def _corrupt_sgx(self, store, key):
        damaged = bytearray(store.extract_path(key, fmt="sgx").read_bytes())
        damaged[-3] ^= 0xFF
        store.extract_path(key, fmt="sgx").write_bytes(bytes(damaged))  # repro: allow[manifest-boundary] simulating out-of-band disk damage

    def test_corrupt_sgx_falls_back_to_colocated_csv(self, tmp_path):
        store = DataLakeStore(tmp_path)
        key = ExtractKey("r0", 0)
        frame = small_frame()
        store.write_extract(key, frame, fmt="csv")
        store.write_extract(key, frame, fmt="sgx", keep_other_formats=True)
        self._corrupt_sgx(store, key)
        assert store.read_extract(key).content_hash() == frame.content_hash()

    def test_corrupt_sgx_without_csv_raises_typed_error(self, tmp_path):
        store = DataLakeStore(tmp_path, write_format="sgx")
        key = ExtractKey("r0", 0)
        store.write_extract(key, small_frame())
        self._corrupt_sgx(store, key)
        with pytest.raises(ColumnarFormatError):
            store.read_extract(key)

    def test_truncated_sgx_header_raises_typed_error(self, tmp_path):
        store = DataLakeStore(tmp_path, write_format="sgx")
        key = ExtractKey("r0", 0)
        store.write_extract(key, small_frame())
        truncated = store.extract_path(key, fmt="sgx").read_bytes()[:10]
        store.extract_path(key, fmt="sgx").write_bytes(truncated)  # repro: allow[manifest-boundary] simulating out-of-band disk damage
        with pytest.raises(ColumnarFormatError, match="truncated"):
            store.read_extract(key)

    def test_in_memory_corrupt_sgx_falls_back(self):
        store = DataLakeStore()
        key = ExtractKey("r0", 0)
        frame = small_frame()
        store.write_extract(key, frame, fmt="csv")
        store.write_extract(key, frame, fmt="sgx", keep_other_formats=True)
        damaged = bytearray(frame_to_sgx_bytes(frame))
        damaged[-3] ^= 0xFF
        store._memory[key]["sgx"] = bytes(damaged)
        assert store.read_extract(key).content_hash() == frame.content_hash()


class TestExtractKey:
    def test_filename_format(self):
        assert ExtractKey("eastus", 7).filename() == "extract_eastus_week0007.csv"

    def test_filename_with_format(self):
        assert ExtractKey("eastus", 7).filename("sgx") == "extract_eastus_week0007.sgx"

    def test_ordering(self):
        assert ExtractKey("a", 1) < ExtractKey("b", 0)
