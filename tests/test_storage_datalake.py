"""Unit tests for the data-lake extract store."""

import pytest

from repro.storage.datalake import (
    AccessDeniedError,
    DataLakeStore,
    ExtractKey,
    ExtractNotFoundError,
)
from repro.timeseries.frame import LoadFrame, ServerMetadata

from tests.helpers import make_series


def small_frame(n=2) -> LoadFrame:
    frame = LoadFrame(5)
    for index in range(n):
        frame.add_server(
            ServerMetadata(server_id=f"s{index}", region="r0"), make_series([1.0, 2.0])
        )
    return frame


class TestInMemoryStore:
    def test_write_then_read(self):
        store = DataLakeStore()
        key = ExtractKey("r0", 3)
        store.write_extract(key, small_frame())
        loaded = store.read_extract(key)
        assert len(loaded) == 2

    def test_read_missing_raises(self):
        with pytest.raises(ExtractNotFoundError):
            DataLakeStore().read_extract(ExtractKey("r0", 0))

    def test_has_extract(self):
        store = DataLakeStore()
        key = ExtractKey("r0", 1)
        assert not store.has_extract(key)
        store.write_extract(key, small_frame())
        assert store.has_extract(key)

    def test_list_extracts_filters_by_region(self):
        store = DataLakeStore()
        store.write_extract(ExtractKey("r0", 0), small_frame())
        store.write_extract(ExtractKey("r1", 0), small_frame())
        assert store.list_extracts() == [ExtractKey("r0", 0), ExtractKey("r1", 0)]
        assert store.list_extracts("r1") == [ExtractKey("r1", 0)]

    def test_extract_size_bytes_positive(self):
        store = DataLakeStore()
        key = ExtractKey("r0", 0)
        store.write_extract(key, small_frame())
        assert store.extract_size_bytes(key) > 0

    def test_size_of_missing_raises(self):
        with pytest.raises(ExtractNotFoundError):
            DataLakeStore().extract_size_bytes(ExtractKey("r0", 9))

    def test_delete_extract(self):
        store = DataLakeStore()
        key = ExtractKey("r0", 0)
        store.write_extract(key, small_frame())
        store.delete_extract(key)
        assert not store.has_extract(key)


class TestFileBackedStore:
    def test_roundtrip_on_disk(self, tmp_path):
        store = DataLakeStore(tmp_path)
        key = ExtractKey("westus", 12)
        store.write_extract(key, small_frame(3))
        assert store.read_extract(key).server_ids() == ["s0", "s1", "s2"]
        assert store.list_extracts() == [key]

    def test_size_matches_file(self, tmp_path):
        store = DataLakeStore(tmp_path)
        key = ExtractKey("westus", 1)
        store.write_extract(key, small_frame())
        assert store.extract_size_bytes(key) == (tmp_path / "westus" / key.filename()).stat().st_size

    def test_delete_on_disk(self, tmp_path):
        store = DataLakeStore(tmp_path)
        key = ExtractKey("r", 0)
        store.write_extract(key, small_frame())
        store.delete_extract(key)
        assert not store.has_extract(key)


class TestAccessControl:
    def test_denies_unknown_principal(self):
        store = DataLakeStore(granted_principals={"seagull"})
        with pytest.raises(AccessDeniedError):
            store.write_extract(ExtractKey("r0", 0), small_frame(), principal="intruder")

    def test_denies_missing_principal(self):
        store = DataLakeStore(granted_principals={"seagull"})
        with pytest.raises(AccessDeniedError):
            store.read_extract(ExtractKey("r0", 0))

    def test_allows_granted_principal(self):
        store = DataLakeStore(granted_principals={"seagull"})
        key = ExtractKey("r0", 0)
        store.write_extract(key, small_frame(), principal="seagull")
        assert len(store.read_extract(key, principal="seagull")) == 2


class TestExtractKey:
    def test_filename_format(self):
        assert ExtractKey("eastus", 7).filename() == "extract_eastus_week0007.csv"

    def test_ordering(self):
        assert ExtractKey("a", 1) < ExtractKey("b", 0)
