"""Integration-style tests for the Seagull pipeline orchestration."""

import numpy as np
import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import PIPELINE_COMPONENTS, SeagullPipeline
from repro.core.registry import DeploymentError
from repro.storage.datalake import DataLakeStore, ExtractKey
from repro.storage.documentdb import DocumentStore
from repro.telemetry.fleet import default_fleet_spec
from repro.telemetry.generator import WorkloadGenerator
from repro.timeseries.frame import LoadFrame, ServerMetadata

from tests.helpers import make_series


@pytest.fixture(scope="module")
def fleet_frame():
    spec = default_fleet_spec(servers_per_region=(25,), weeks=4, seed=2)
    return WorkloadGenerator(spec).generate_region("region-0")


@pytest.fixture(scope="module")
def run_result(fleet_frame):
    pipeline = SeagullPipeline(PipelineConfig(), document_store=DocumentStore())
    return pipeline, pipeline.run(fleet_frame, region="region-0", week=3)


class TestPipelineRun:
    def test_run_succeeds(self, run_result):
        _, result = run_result
        assert result.succeeded
        assert result.abort_reason == ""

    def test_all_components_timed(self, run_result):
        _, result = run_result
        for component in PIPELINE_COMPONENTS:
            assert component in result.timings
        assert result.total_runtime() > 0

    def test_validation_and_classification_present(self, run_result):
        _, result = run_result
        assert result.validation is not None and result.validation.passed
        assert result.classification is not None
        assert len(result.features) == 25

    def test_predictions_for_long_lived_servers(self, run_result, fleet_frame):
        _, result = run_result
        # Every server with a prediction must be long-lived and the forecast
        # must cover one full day on the 5-minute grid.
        for server_id, prediction in result.predictions.items():
            assert fleet_frame.series(server_id).span_days > 21
            assert len(prediction) == 288

    def test_summary_accuracy_reasonable(self, run_result):
        _, result = run_result
        assert result.summary is not None
        # Mostly stable fleet + persistent forecast: the headline accuracy
        # metrics must be high (the paper reports 96-99%).
        assert result.summary.pct_windows_correct > 80.0
        assert result.summary.pct_load_accurate > 70.0

    def test_predictability_verdicts_exist(self, run_result):
        _, result = run_result
        assert result.predictability
        assert any(v.predictable for v in result.predictability.values())

    def test_model_deployed_and_tracked(self, run_result):
        pipeline, result = run_result
        assert result.model_record is not None
        active = pipeline.registry.active("region-0")
        assert active is not None
        # Inference was served through the prediction service from the
        # version this run deployed.
        assert result.serving is not None
        assert result.serving.served_by_version == result.model_record.version
        assert result.serving.n_served == len(result.predictions)
        assert pipeline.serving.servers("region-0")

    def test_results_persisted_to_document_store(self, run_result):
        pipeline, result = run_result
        stored = pipeline._store.get(pipeline.config.results_container, result.run_id)
        assert stored.body["succeeded"] is True

    def test_dashboard_received_summary(self, run_result):
        pipeline, result = run_result
        assert pipeline.dashboard.latest_summary("region-0") is not None

    def test_run_result_as_dict(self, run_result):
        _, result = run_result
        payload = result.as_dict()
        assert payload["region"] == "region-0"
        assert payload["succeeded"] is True


class TestPipelineFailurePaths:
    def test_invalid_extract_aborts_with_incident(self):
        frame = LoadFrame(5)
        frame.add_server(
            ServerMetadata(server_id="bad"), make_series([np.nan, np.nan, 1.0])
        )
        pipeline = SeagullPipeline(PipelineConfig())
        result = pipeline.run(frame, region="region-0", week=0)
        assert not result.succeeded
        assert result.abort_reason == "invalid input data"
        assert pipeline.incidents.has_critical()

    def test_missing_extract_from_lake(self):
        pipeline = SeagullPipeline(PipelineConfig(), data_lake=DataLakeStore())
        result = pipeline.run_from_lake("region-0", 5)
        assert not result.succeeded
        assert result.abort_reason == "missing input data"

    def test_run_from_lake_without_lake_raises(self):
        pipeline = SeagullPipeline(PipelineConfig())
        with pytest.raises(DeploymentError):
            pipeline.run_from_lake("region-0", 0)

    def test_accuracy_regression_triggers_fallback(self, fleet_frame):
        # Deploy a good version first, then run with an impossible accuracy
        # threshold so the second deployment regresses and falls back.
        config = PipelineConfig(fallback_threshold_pct=100.1)
        pipeline = SeagullPipeline(config)
        first = pipeline.run(fleet_frame, region="region-0", week=2)
        second = pipeline.run(fleet_frame, region="region-0", week=3)
        assert second.fell_back
        assert pipeline.registry.active("region-0").version == first.model_record.version

    def test_no_fallback_when_disabled(self, fleet_frame):
        config = PipelineConfig(fallback_threshold_pct=100.1, fallback_on_regression=False)
        pipeline = SeagullPipeline(config)
        pipeline.run(fleet_frame, region="region-0", week=2)
        second = pipeline.run(fleet_frame, region="region-0", week=3)
        assert not second.fell_back


class TestPipelineWithOtherModels:
    @pytest.mark.parametrize("model_name", ["persistent_previous_week_average", "ssa"])
    def test_alternative_models_run(self, model_name):
        spec = default_fleet_spec(servers_per_region=(6,), weeks=4, seed=8)
        frame = WorkloadGenerator(spec).generate_region("region-0")
        pipeline = SeagullPipeline(PipelineConfig(model_name=model_name))
        result = pipeline.run(frame, region="region-0", week=3)
        assert result.succeeded
        assert result.summary is not None

    def test_parallel_evaluation_backend(self, fleet_frame):
        config = PipelineConfig().with_executor("threads", 4)
        pipeline = SeagullPipeline(config)
        result = pipeline.run(fleet_frame, region="region-0", week=3)
        assert result.succeeded


class TestPipelineExecutorLifecycle:
    def test_close_releases_owned_parallel_executor(self, fleet_frame):
        pipeline = SeagullPipeline(PipelineConfig().with_executor("threads", 2))
        with pipeline:
            result = pipeline.run(fleet_frame, region="region-0", week=3)
            assert result.succeeded
        assert pipeline._executor.closed

    def test_injected_executor_left_open(self, fleet_frame):
        from repro.parallel.executor import PartitionedExecutor

        executor = PartitionedExecutor("threads", 2)
        with SeagullPipeline(PipelineConfig(), executor=executor) as pipeline:
            pipeline.run(fleet_frame, region="region-0", week=3)
        assert not executor.closed
        executor.close()


class TestArtifactCachedPipeline:
    @pytest.fixture(scope="class")
    def small_frame(self):
        spec = default_fleet_spec(servers_per_region=(12,), weeks=4, seed=41)
        return WorkloadGenerator(spec).generate_region("region-0")

    def test_cold_run_misses_then_populates(self, small_frame):
        from repro.storage.artifacts import ArtifactStore

        cache = ArtifactStore()
        pipeline = SeagullPipeline(PipelineConfig(), artifact_cache=cache)
        result = pipeline.run(small_frame, region="region-0", week=3)
        assert result.succeeded
        assert result.cache_events == {
            "features": "miss",
            "train_infer": "miss",
            "evaluation": "miss",
        }
        assert cache.stats.puts == 3

    def test_warm_run_hits_every_stage(self, small_frame):
        from repro.storage.artifacts import ArtifactStore

        cache = ArtifactStore()
        SeagullPipeline(PipelineConfig(), artifact_cache=cache).run(
            small_frame, region="region-0", week=3
        )
        warm = SeagullPipeline(PipelineConfig(), artifact_cache=cache).run(
            small_frame, region="region-0", week=3
        )
        assert warm.succeeded
        assert warm.cache_events == {
            "features": "hit",
            "train_infer": "hit",
            "evaluation": "hit",
        }

    def test_content_change_invalidates(self, small_frame):
        from repro.storage.artifacts import ArtifactStore
        from repro.timeseries.frame import LoadFrame as Frame

        cache = ArtifactStore()
        SeagullPipeline(PipelineConfig(), artifact_cache=cache).run(
            small_frame, region="region-0", week=3
        )
        # Perturb one server's load: every stage must recompute.
        changed = Frame(small_frame.interval_minutes)
        for index, (_sid, metadata, series) in enumerate(small_frame.items()):
            if index == 0:
                series = series.with_values(series.values + 1.0)
            changed.add_server(metadata, series)
        second = SeagullPipeline(PipelineConfig(), artifact_cache=cache).run(
            changed, region="region-0", week=3
        )
        assert second.cache_events == {
            "features": "miss",
            "train_infer": "miss",
            "evaluation": "miss",
        }

    def test_config_change_invalidates_model_stages_only(self, small_frame):
        from repro.storage.artifacts import ArtifactStore

        cache = ArtifactStore()
        SeagullPipeline(PipelineConfig(), artifact_cache=cache).run(
            small_frame, region="region-0", week=3
        )
        other_model = SeagullPipeline(
            PipelineConfig().with_model("persistent_previous_week_average"), artifact_cache=cache
        ).run(small_frame, region="region-0", week=3)
        # Features do not depend on the forecaster, so they are reused.
        assert other_model.cache_events["features"] == "hit"
        assert other_model.cache_events["train_infer"] == "miss"
        assert other_model.cache_events["evaluation"] == "miss"

    def test_cached_outputs_identical_to_fresh(self, small_frame):
        from repro.storage.artifacts import ArtifactStore, canonical_json

        fresh = SeagullPipeline(PipelineConfig()).run(small_frame, region="region-0", week=3)
        cache = ArtifactStore()
        SeagullPipeline(PipelineConfig(), artifact_cache=cache).run(
            small_frame, region="region-0", week=3
        )
        warm_pipeline = SeagullPipeline(PipelineConfig(), artifact_cache=cache)
        cached = warm_pipeline.run(small_frame, region="region-0", week=3)
        assert cached.predictions == fresh.predictions
        assert cached.backup_days == fresh.backup_days
        assert cached.summary == fresh.summary
        assert cached.predictability == fresh.predictability
        # Evaluations may contain NaN fields; compare canonical JSON, which
        # renders NaN consistently.
        assert canonical_json([e.as_dict() for e in cached.evaluations]) == canonical_json(
            [e.as_dict() for e in fresh.evaluations]
        )
        # The cache-hit deployment serves the same forecasts through the
        # serving API.
        from repro.serving import PredictionRequest

        for sid, prediction in fresh.predictions.items():
            response = warm_pipeline.serving.predict(
                PredictionRequest(region="region-0", server_id=sid, n_points=len(prediction))
            )
            assert response.series == prediction

    def test_corrupt_cache_entry_recomputes_without_crash(self, small_frame):
        from repro.storage.artifacts import ARTIFACTS_CONTAINER, ArtifactStore
        from repro.storage.documentdb import DocumentStore

        backing = DocumentStore()
        cache = ArtifactStore(backing)
        SeagullPipeline(PipelineConfig(), artifact_cache=cache).run(
            small_frame, region="region-0", week=3
        )
        # Corrupt every cached entry in place.
        for document in list(backing.query(ARTIFACTS_CONTAINER)):
            backing.upsert(ARTIFACTS_CONTAINER, document.id, {"garbage": True})
        result = SeagullPipeline(PipelineConfig(), artifact_cache=cache).run(
            small_frame, region="region-0", week=3
        )
        assert result.succeeded
        assert result.cache_events == {
            "features": "miss",
            "train_infer": "miss",
            "evaluation": "miss",
        }
        assert cache.stats.corrupt_entries == 3


class TestEndToEndFromLake:
    def test_full_flow_extraction_to_scheduling(self):
        from repro.scheduling.backup import BackupScheduler
        from repro.telemetry.extraction import LoadExtractionQuery
        from repro.telemetry.raw_store import RawTelemetryStore

        spec = default_fleet_spec(servers_per_region=(10,), weeks=4, seed=31)
        frame = WorkloadGenerator(spec).generate_region("region-0")

        raw = RawTelemetryStore()
        raw.ingest_frame(frame, noise_rng=np.random.default_rng(1))
        lake = DataLakeStore()
        query = LoadExtractionQuery(raw, lake)
        # Extract all four weeks into a single frame for the pipeline run.
        merged = LoadFrame(5)
        for week in range(4):
            query.extract_week("region-0", week)
        for week in range(4):
            weekly = lake.read_extract(ExtractKey("region-0", week))
            for sid, _metadata, _series in weekly.items():
                if sid in merged:
                    merged = merged.merge(
                        LoadFrame(5)
                    )  # no-op; concatenation handled below
            # Concatenate week by week.
            if week == 0:
                merged = weekly
            else:
                combined = LoadFrame(5)
                for sid, metadata, series in merged.items():
                    if sid in weekly:
                        combined.add_server(metadata, series.concat(weekly.series(sid)))
                    else:
                        combined.add_server(metadata, series)
                for sid, metadata, series in weekly.items():
                    if sid not in combined:
                        combined.add_server(metadata, series)
                merged = combined

        pipeline = SeagullPipeline(PipelineConfig())
        result = pipeline.run(merged, region="region-0", week=3)
        assert result.succeeded

        scheduler = BackupScheduler()
        metadata_by_server = {sid: merged.metadata(sid) for sid in merged.server_ids()}
        decisions = scheduler.schedule_fleet(
            metadata_by_server, result.predictions, result.predictability
        )
        assert len(decisions) == len(merged)
        moved = [d for d in decisions.values() if d.moved]
        kept = [d for d in decisions.values() if not d.moved]
        assert moved or kept
