"""Unit tests for the document store."""

import pytest

from repro.storage.documentdb import (
    ContainerNotFoundError,
    DocumentConflictError,
    DocumentNotFoundError,
    DocumentStore,
)


@pytest.fixture
def store() -> DocumentStore:
    db = DocumentStore()
    db.create_container("results")
    return db


class TestContainers:
    def test_create_and_list(self, store):
        store.create_container("models")
        assert store.list_containers() == ["models", "results"]

    def test_create_existing_is_idempotent(self, store):
        store.create_container("results")
        assert store.list_containers() == ["results"]

    def test_create_existing_strict_raises(self, store):
        with pytest.raises(DocumentConflictError):
            store.create_container("results", exist_ok=False)

    def test_drop_container(self, store):
        store.drop_container("results")
        assert store.list_containers() == []

    def test_unknown_container_raises(self, store):
        with pytest.raises(ContainerNotFoundError):
            store.get("nope", "id")


class TestDocuments:
    def test_insert_and_get(self, store):
        store.insert("results", "a", {"value": 1})
        assert store.get("results", "a").body["value"] == 1

    def test_insert_duplicate_raises(self, store):
        store.insert("results", "a", {})
        with pytest.raises(DocumentConflictError):
            store.insert("results", "a", {})

    def test_upsert_bumps_version(self, store):
        first = store.upsert("results", "a", {"v": 1})
        second = store.upsert("results", "a", {"v": 2})
        assert first.version == 1
        assert second.version == 2
        assert store.get("results", "a").body["v"] == 2

    def test_get_missing_raises(self, store):
        with pytest.raises(DocumentNotFoundError):
            store.get("results", "missing")

    def test_try_get_missing_returns_none(self, store):
        assert store.try_get("results", "missing") is None

    def test_delete(self, store):
        store.insert("results", "a", {})
        assert store.delete("results", "a") is True
        assert store.delete("results", "a") is False

    def test_query_with_predicate(self, store):
        store.insert("results", "a", {"region": "r0"})
        store.insert("results", "b", {"region": "r1"})
        matches = list(store.query("results", lambda body: body["region"] == "r1"))
        assert [doc.id for doc in matches] == ["b"]

    def test_query_all(self, store):
        store.insert("results", "a", {})
        store.insert("results", "b", {})
        assert store.count("results") == 2
        assert len(list(store.query("results"))) == 2

    def test_document_as_dict(self, store):
        doc = store.insert("results", "a", {"x": 1})
        assert doc.as_dict() == {"id": "a", "version": 1, "body": {"x": 1}}


class TestPersistence:
    def test_roundtrip_through_file(self, tmp_path):
        path = tmp_path / "db.json"
        db = DocumentStore(path)
        db.create_container("results")
        db.upsert("results", "a", {"value": 42})

        reloaded = DocumentStore(path)
        assert reloaded.get("results", "a").body["value"] == 42
        assert reloaded.get("results", "a").version == 1
