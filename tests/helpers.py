"""Helper constructors shared by the test suite."""

from __future__ import annotations

import struct
import zlib

import numpy as np

from repro.timeseries.calendar import MINUTES_PER_DAY, points_per_day
from repro.timeseries.series import LoadSeries

POINTS_PER_DAY = points_per_day(5)

#: Frozen .sgx v1 structs (one inline chunk per server), kept here so
#: compatibility tests can fabricate genuine v1 files without the
#: production writer having to retain a legacy encode path.
_V1_HEADER = struct.Struct("<4sHHIIIQI")
_V1_HEADER_CRC = struct.Struct("<I")
_V1_CHUNK_FIXED = struct.Struct("<IIIqqIQqqI")
_V1_STRING_LEN = struct.Struct("<H")


def frame_to_sgx_v1_bytes(frame) -> bytes:
    """Serialise ``frame`` exactly as the .sgx format v1 writer did.

    Byte-for-byte the layout shipped before multi-chunk series: header,
    dictionary, then one ``(chunk header, payload)`` pair per server with
    a single whole-series zone map.
    """

    def packed(text: str) -> bytes:
        encoded = text.encode("utf-8")
        return _V1_STRING_LEN.pack(len(encoded)) + encoded

    dictionary: dict[str, int] = {}

    def intern(text: str) -> int:
        return dictionary.setdefault(text, len(dictionary))

    chunk_blobs = []
    for server_id, metadata, series in frame.items():
        timestamps = np.ascontiguousarray(series.timestamps, dtype="<i8")
        values = np.ascontiguousarray(series.values, dtype="<f8")
        payload = timestamps.tobytes() + values.tobytes()
        n_points = int(timestamps.shape[0])
        if n_points:
            min_ts, max_ts = int(timestamps[0]), int(timestamps[-1])
        else:
            min_ts, max_ts = 0, -1
        chunk_header = packed(server_id) + _V1_CHUNK_FIXED.pack(
            intern(metadata.region),
            intern(metadata.engine),
            intern(metadata.true_class),
            metadata.default_backup_start,
            metadata.default_backup_end,
            metadata.backup_duration_minutes,
            n_points,
            min_ts,
            max_ts,
            zlib.crc32(payload),
        )
        chunk_blobs.append((chunk_header, payload))

    dict_section = b"".join(packed(text) for text in dictionary)
    structure_crc = zlib.crc32(dict_section)
    for chunk_header, _payload in chunk_blobs:
        structure_crc = zlib.crc32(chunk_header, structure_crc)
    body = dict_section + b"".join(header + payload for header, payload in chunk_blobs)
    header = _V1_HEADER.pack(
        b"SGXF",
        1,
        0,
        frame.interval_minutes,
        len(frame),
        len(dictionary),
        _V1_HEADER.size + _V1_HEADER_CRC.size + len(body),
        structure_crc,
    )
    return header + _V1_HEADER_CRC.pack(zlib.crc32(header)) + body


#: Frozen .sgx v2 structs (per-day chunks, one *joint* payload CRC per
#: chunk), for compatibility tests against files the v2 writer shipped.
_V2_SERVER_FIXED = struct.Struct("<IIIqqII")
_V2_CHUNK_HEADER = struct.Struct("<QqqI")


def frame_to_sgx_v2_bytes(frame, chunk_minutes: int = MINUTES_PER_DAY) -> bytes:
    """Serialise ``frame`` exactly as the .sgx format v2 writer did.

    Identical to v3 except each chunk header carries a single CRC over
    the concatenated (timestamps + values) payload instead of one CRC per
    column buffer.
    """
    from repro.storage.columnar import _split_at_boundaries

    def packed(text: str) -> bytes:
        encoded = text.encode("utf-8")
        return _V1_STRING_LEN.pack(len(encoded)) + encoded

    dictionary: dict[str, int] = {}

    def intern(text: str) -> int:
        return dictionary.setdefault(text, len(dictionary))

    records = []
    for server_id, metadata, series in frame.items():
        timestamps = np.ascontiguousarray(series.timestamps, dtype="<i8")
        values = np.ascontiguousarray(series.values, dtype="<f8")
        pieces = _split_at_boundaries(timestamps, values, chunk_minutes)
        chunk_table = bytearray()
        payloads = []
        for chunk_ts, chunk_vs in pieces:
            n_points = int(chunk_ts.shape[0])
            payload = chunk_ts.tobytes() + chunk_vs.tobytes()
            if n_points:
                min_ts, max_ts = int(chunk_ts[0]), int(chunk_ts[-1])
            else:
                min_ts, max_ts = 0, -1
            chunk_table += _V2_CHUNK_HEADER.pack(n_points, min_ts, max_ts, zlib.crc32(payload))
            payloads.append(payload)
        record_header = (
            packed(server_id)
            + _V2_SERVER_FIXED.pack(
                intern(metadata.region),
                intern(metadata.engine),
                intern(metadata.true_class),
                metadata.default_backup_start,
                metadata.default_backup_end,
                metadata.backup_duration_minutes,
                len(payloads),
            )
            + bytes(chunk_table)
        )
        records.append((record_header, payloads))

    dict_section = b"".join(packed(text) for text in dictionary)
    structure_crc = zlib.crc32(dict_section)
    for record_header, _payloads in records:
        structure_crc = zlib.crc32(record_header, structure_crc)
    body_parts = [dict_section]
    for record_header, payloads in records:
        body_parts.append(record_header)
        body_parts.extend(payloads)
    body = b"".join(body_parts)
    header = _V1_HEADER.pack(
        b"SGXF",
        2,
        0,
        frame.interval_minutes,
        len(frame),
        len(dictionary),
        _V1_HEADER.size + _V1_HEADER_CRC.size + len(body),
        structure_crc,
    )
    return header + _V1_HEADER_CRC.pack(zlib.crc32(header)) + body


#: Frozen .sgx v3 chunk header (per-column CRCs, no value statistics),
#: for compatibility tests against files the v3 writer shipped.
_V3_CHUNK_HEADER = struct.Struct("<QqqII")


def frame_to_sgx_v3_bytes(frame, chunk_minutes: int = MINUTES_PER_DAY) -> bytes:
    """Serialise ``frame`` exactly as the .sgx format v3 writer did.

    Identical to v4 except the chunk table carries no value
    pre-aggregates -- each entry is ``n_points | min_ts | max_ts |
    ts_crc | vs_crc``.
    """
    from repro.storage.columnar import _split_at_boundaries

    def packed(text: str) -> bytes:
        encoded = text.encode("utf-8")
        return _V1_STRING_LEN.pack(len(encoded)) + encoded

    dictionary: dict[str, int] = {}

    def intern(text: str) -> int:
        return dictionary.setdefault(text, len(dictionary))

    records = []
    for server_id, metadata, series in frame.items():
        timestamps = np.ascontiguousarray(series.timestamps, dtype="<i8")
        values = np.ascontiguousarray(series.values, dtype="<f8")
        pieces = _split_at_boundaries(timestamps, values, chunk_minutes)
        chunk_table = bytearray()
        payloads = []
        for chunk_ts, chunk_vs in pieces:
            n_points = int(chunk_ts.shape[0])
            ts_bytes = chunk_ts.tobytes()
            vs_bytes = chunk_vs.tobytes()
            if n_points:
                min_ts, max_ts = int(chunk_ts[0]), int(chunk_ts[-1])
            else:
                min_ts, max_ts = 0, -1
            chunk_table += _V3_CHUNK_HEADER.pack(
                n_points, min_ts, max_ts, zlib.crc32(ts_bytes), zlib.crc32(vs_bytes)
            )
            payloads.append(ts_bytes + vs_bytes)
        record_header = (
            packed(server_id)
            + _V2_SERVER_FIXED.pack(
                intern(metadata.region),
                intern(metadata.engine),
                intern(metadata.true_class),
                metadata.default_backup_start,
                metadata.default_backup_end,
                metadata.backup_duration_minutes,
                len(payloads),
            )
            + bytes(chunk_table)
        )
        records.append((record_header, payloads))

    dict_section = b"".join(packed(text) for text in dictionary)
    structure_crc = zlib.crc32(dict_section)
    for record_header, _payloads in records:
        structure_crc = zlib.crc32(record_header, structure_crc)
    body_parts = [dict_section]
    for record_header, payloads in records:
        body_parts.append(record_header)
        body_parts.extend(payloads)
    body = b"".join(body_parts)
    header = _V1_HEADER.pack(
        b"SGXF",
        3,
        0,
        frame.interval_minutes,
        len(frame),
        len(dictionary),
        _V1_HEADER.size + _V1_HEADER_CRC.size + len(body),
        structure_crc,
    )
    return header + _V1_HEADER_CRC.pack(zlib.crc32(header)) + body


class CrashInjector:
    """Kill a manifest transaction at the N-th hit of one fault point.

    Install via :func:`repro.storage.manifest.fault_handler`::

        injector = CrashInjector("manifest.pointer")
        with fault_handler(injector):
            with pytest.raises(InjectedCrash):
                lake.write_extract(key, frame)

    ``occurrence`` picks a later hit of the same point (1 = first).
    With ``crash_at=None`` the injector only records the points it saw
    (``.seen``), which is how tests enumerate a protocol's fault points
    without hard-coding the order.
    """

    def __init__(self, crash_at: str | None, occurrence: int = 1) -> None:
        from repro.storage.manifest import InjectedCrash

        self._crash_at = crash_at
        self._occurrence = occurrence
        self._exc = InjectedCrash
        self.seen: list[str] = []
        self.fired = False

    def __call__(self, point: str) -> None:
        self.seen.append(point)
        if self._crash_at is not None and point == self._crash_at:
            if self.seen.count(point) >= self._occurrence:
                self.fired = True
                raise self._exc(point)


def make_series(values, start=0, interval=5) -> LoadSeries:
    """Construct a series from raw values on a regular grid."""
    return LoadSeries.from_values(
        np.asarray(values, dtype=float), start=start, interval_minutes=interval
    )


def flat_day(level: float, day: int = 0, interval: int = 5) -> LoadSeries:
    """One day of constant load."""
    n = MINUTES_PER_DAY // interval
    return LoadSeries.from_values(
        np.full(n, level), start=day * MINUTES_PER_DAY, interval_minutes=interval
    )


def diurnal_series(
    n_days: int,
    base: float = 20.0,
    amplitude: float = 30.0,
    noise: float = 0.0,
    interval: int = 5,
    seed: int = 0,
    start_day: int = 0,
) -> LoadSeries:
    """A repeating diurnal (sinusoidal) load trace over ``n_days`` days."""
    rng = np.random.default_rng(seed)
    points_day = MINUTES_PER_DAY // interval
    n = n_days * points_day
    phase = 2 * np.pi * np.arange(n) / points_day
    values = base + amplitude * 0.5 * (1 + np.sin(phase - np.pi / 2))
    if noise:
        values = values + rng.normal(0, noise, n)
    values = np.clip(values, 0, 100)
    return LoadSeries.from_values(
        values, start=start_day * MINUTES_PER_DAY, interval_minutes=interval
    )


def weekly_profile_series(
    n_days: int,
    weekday_level: float = 60.0,
    weekend_level: float = 10.0,
    noise: float = 0.5,
    seed: int = 1,
) -> LoadSeries:
    """A trace whose level depends on the day of week (weekly pattern)."""
    rng = np.random.default_rng(seed)
    days = []
    for day in range(n_days):
        level = weekend_level if day % 7 in (5, 6) else weekday_level
        days.append(np.full(POINTS_PER_DAY, level))
    values = np.concatenate(days) + rng.normal(0, noise, n_days * POINTS_PER_DAY)
    return LoadSeries.from_values(np.clip(values, 0, 100))
