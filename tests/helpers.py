"""Helper constructors shared by the test suite."""

from __future__ import annotations

import numpy as np

from repro.timeseries.calendar import MINUTES_PER_DAY, points_per_day
from repro.timeseries.series import LoadSeries

POINTS_PER_DAY = points_per_day(5)


def make_series(values, start=0, interval=5) -> LoadSeries:
    """Construct a series from raw values on a regular grid."""
    return LoadSeries.from_values(
        np.asarray(values, dtype=float), start=start, interval_minutes=interval
    )


def flat_day(level: float, day: int = 0, interval: int = 5) -> LoadSeries:
    """One day of constant load."""
    n = MINUTES_PER_DAY // interval
    return LoadSeries.from_values(
        np.full(n, level), start=day * MINUTES_PER_DAY, interval_minutes=interval
    )


def diurnal_series(
    n_days: int,
    base: float = 20.0,
    amplitude: float = 30.0,
    noise: float = 0.0,
    interval: int = 5,
    seed: int = 0,
    start_day: int = 0,
) -> LoadSeries:
    """A repeating diurnal (sinusoidal) load trace over ``n_days`` days."""
    rng = np.random.default_rng(seed)
    points_day = MINUTES_PER_DAY // interval
    n = n_days * points_day
    phase = 2 * np.pi * np.arange(n) / points_day
    values = base + amplitude * 0.5 * (1 + np.sin(phase - np.pi / 2))
    if noise:
        values = values + rng.normal(0, noise, n)
    values = np.clip(values, 0, 100)
    return LoadSeries.from_values(
        values, start=start_day * MINUTES_PER_DAY, interval_minutes=interval
    )


def weekly_profile_series(
    n_days: int,
    weekday_level: float = 60.0,
    weekend_level: float = 10.0,
    noise: float = 0.5,
    seed: int = 1,
) -> LoadSeries:
    """A trace whose level depends on the day of week (weekly pattern)."""
    rng = np.random.default_rng(seed)
    days = []
    for day in range(n_days):
        level = weekend_level if day % 7 in (5, 6) else weekday_level
        days.append(np.full(POINTS_PER_DAY, level))
    values = np.concatenate(days) + rng.normal(0, noise, n_days * POINTS_PER_DAY)
    return LoadSeries.from_values(np.clip(values, 0, 100))
