"""Property-based tests (hypothesis) on the core data structures and metrics.

These verify the invariants the rest of the system relies on: bucket ratio
bounds and monotonicity, lowest-load-window minimality, round-trip
serialisation, resampling conservation, and partitioning completeness.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.bucket_ratio import DEFAULT_ERROR_BOUND, ErrorBound, bucket_ratio
from repro.metrics.ll_window import lowest_load_window
from repro.metrics.standard import mean_nrmse
from repro.parallel.partition import chunk_evenly, partition_list
from repro.storage import csv_io
from repro.timeseries.calendar import MINUTES_PER_DAY
from repro.timeseries.frame import LoadFrame, ServerMetadata
from repro.timeseries.resample import downsample_mean, fill_gaps, regularize
from repro.timeseries.series import LoadSeries

# Strategy helpers -------------------------------------------------------- #

loads = st.floats(min_value=0.0, max_value=100.0, allow_nan=False, width=32)


def load_arrays(min_size=1, max_size=600):
    return st.lists(loads, min_size=min_size, max_size=max_size).map(
        lambda values: np.asarray(values, dtype=np.float64)
    )


# Bucket ratio ------------------------------------------------------------ #


class TestBucketRatioProperties:
    @given(load_arrays())
    @settings(max_examples=60, deadline=None)
    def test_ratio_is_between_zero_and_one(self, values):
        noise = np.linspace(-20, 20, values.shape[0])
        ratio = bucket_ratio(values + noise, values)
        assert 0.0 <= ratio <= 1.0

    @given(load_arrays())
    @settings(max_examples=60, deadline=None)
    def test_perfect_prediction_scores_one(self, values):
        assert bucket_ratio(values, values) == 1.0

    @given(load_arrays(), st.floats(min_value=0.0, max_value=30.0))
    @settings(max_examples=60, deadline=None)
    def test_wider_bound_never_lowers_ratio(self, values, extra):
        predicted = values + np.linspace(-15, 15, values.shape[0])
        narrow = bucket_ratio(predicted, values, DEFAULT_ERROR_BOUND)
        wide_bound = ErrorBound(
            over_tolerance=DEFAULT_ERROR_BOUND.over_tolerance + extra,
            under_tolerance=DEFAULT_ERROR_BOUND.under_tolerance + extra,
        )
        wide = bucket_ratio(predicted, values, wide_bound)
        assert wide >= narrow

    @given(load_arrays(), st.floats(min_value=0.0, max_value=10.0))
    @settings(max_examples=60, deadline=None)
    def test_over_prediction_within_ten_is_always_accepted(self, values, shift):
        assert bucket_ratio(values + shift, values) == 1.0


# Lowest-load window ------------------------------------------------------ #


class TestLowestLoadWindowProperties:
    @given(
        st.lists(loads, min_size=288, max_size=288),
        st.sampled_from([30, 60, 90, 120]),
    )
    @settings(max_examples=40, deadline=None)
    def test_window_is_minimal_over_all_candidates(self, values, duration):
        series = LoadSeries.from_values(np.asarray(values), interval_minutes=5)
        window = lowest_load_window(series, 0, duration)
        window_points = duration // 5
        candidate_means = [
            float(np.mean(np.asarray(values)[i : i + window_points]))
            for i in range(0, 288 - window_points + 1)
        ]
        assert window.average_load <= min(candidate_means) + 1e-9

    @given(st.lists(loads, min_size=288, max_size=288))
    @settings(max_examples=40, deadline=None)
    def test_window_lies_within_the_day(self, values):
        series = LoadSeries.from_values(np.asarray(values), interval_minutes=5)
        window = lowest_load_window(series, 0, 60)
        assert window.start >= 0
        assert window.end <= MINUTES_PER_DAY


# Series and resampling --------------------------------------------------- #


class TestSeriesProperties:
    @given(load_arrays(min_size=2, max_size=500))
    @settings(max_examples=60, deadline=None)
    def test_slice_concat_roundtrip(self, values):
        series = LoadSeries.from_values(values, interval_minutes=5)
        split_at = series.start + (len(series) // 2) * 5
        left = series.slice(series.start, split_at)
        right = series.slice(split_at, series.end + 5)
        if left.is_empty or right.is_empty:
            return
        assert left.concat(right) == series

    @given(load_arrays(min_size=1, max_size=400))
    @settings(max_examples=60, deadline=None)
    def test_downsample_preserves_mean(self, values):
        # Pad to a multiple of 3 so every coarse bucket is full.
        pad = (-values.shape[0]) % 3
        if pad:
            values = np.concatenate([values, np.repeat(values[-1], pad)])
        series = LoadSeries.from_values(values, interval_minutes=5)
        coarse = downsample_mean(series, 15)
        assert np.isclose(coarse.mean(), series.mean())

    @given(load_arrays(min_size=2, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_regularize_then_fill_produces_regular_grid(self, values):
        timestamps = np.arange(values.shape[0]) * 7  # irregular vs 5-minute grid
        series = fill_gaps(regularize(timestamps, values, 5))
        deltas = np.diff(series.timestamps)
        assert np.all(deltas == 5)

    @given(load_arrays(min_size=1, max_size=200), st.integers(min_value=-5000, max_value=5000))
    @settings(max_examples=60, deadline=None)
    def test_shift_is_reversible(self, values, offset):
        series = LoadSeries.from_values(values, interval_minutes=5)
        assert series.shift(offset).shift(-offset) == series


# Frame round trip --------------------------------------------------------- #


class TestFrameProperties:
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_csv_text_roundtrip(self, n_servers, n_points, seed):
        rng = np.random.default_rng(seed)
        frame = LoadFrame(5)
        for index in range(n_servers):
            frame.add_server(
                ServerMetadata(server_id=f"s{index}", region=f"r{index % 2}"),
                LoadSeries.from_values(rng.uniform(0, 100, n_points), interval_minutes=5),
            )
        text = csv_io.frame_to_csv_text(frame)
        rebuilt = csv_io.frame_from_csv_text(text)
        assert rebuilt.server_ids() == frame.server_ids()
        for sid in frame.server_ids():
            np.testing.assert_allclose(rebuilt.series(sid).values, frame.series(sid).values)

    @given(st.integers(min_value=1, max_value=30), st.integers(min_value=1, max_value=10))
    @settings(max_examples=50, deadline=None)
    def test_partition_is_complete_and_disjoint(self, n_servers, n_partitions):
        frame = LoadFrame(5)
        for index in range(n_servers):
            frame.add_server(
                ServerMetadata(server_id=f"s{index}"),
                LoadSeries.from_values([float(index)], interval_minutes=5),
            )
        parts = frame.partition(n_partitions)
        seen = [sid for part in parts for sid in part.server_ids()]
        assert sorted(seen) == sorted(frame.server_ids())
        assert len(seen) == len(set(seen))


# Partitioning helpers ----------------------------------------------------- #


class TestPartitionProperties:
    @given(st.integers(min_value=0, max_value=500), st.integers(min_value=1, max_value=64))
    @settings(max_examples=80, deadline=None)
    def test_chunks_cover_range_without_overlap(self, n_items, n_chunks):
        ranges = chunk_evenly(n_items, n_chunks)
        covered = [i for start, end in ranges for i in range(start, end)]
        assert covered == list(range(n_items))

    @given(st.lists(st.integers(), max_size=200), st.integers(min_value=1, max_value=16))
    @settings(max_examples=80, deadline=None)
    def test_partition_list_preserves_order(self, items, n_partitions):
        parts = partition_list(items, n_partitions)
        flattened = [x for part in parts for x in part]
        assert flattened == items


# Standard metrics --------------------------------------------------------- #


class TestStandardMetricProperties:
    @given(load_arrays(min_size=2, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_nrmse_non_negative(self, values):
        forecast = values + np.linspace(-5, 5, values.shape[0])
        score = mean_nrmse(forecast, values)
        assert np.isnan(score) or score >= 0.0
