"""Unit tests for the Data Validation Module."""

import numpy as np
import pytest

from repro.timeseries.frame import LoadFrame, ServerMetadata
from repro.timeseries.series import LoadSeries
from repro.validation.rules import (
    ValidationSeverity,
    check_bounds,
    check_coverage,
    check_duplicate_timestamps,
    check_finite,
    check_schema,
)
from repro.validation.schema import DataProperties, infer_properties
from repro.validation.validator import DataValidationModule

from tests.helpers import POINTS_PER_DAY, diurnal_series, make_series


def healthy_frame(n_servers=4) -> LoadFrame:
    frame = LoadFrame(5)
    for index in range(n_servers):
        frame.add_server(
            ServerMetadata(server_id=f"srv-{index}", region="r0"),
            diurnal_series(7, noise=0.5, seed=index),
        )
    return frame


class TestSchemaInference:
    def test_infer_properties_bounds(self):
        frame = healthy_frame()
        properties = infer_properties(frame)
        assert properties.load_min >= 0.0
        assert properties.load_max <= 100.0
        assert properties.interval_minutes == 5
        assert properties.columns == LoadFrame.CSV_HEADER

    def test_infer_on_empty_frame_defaults(self):
        properties = infer_properties(LoadFrame(5))
        assert properties.load_min == 0.0
        assert properties.load_max == 100.0

    def test_save_and_load_roundtrip(self, tmp_path):
        properties = infer_properties(healthy_frame())
        path = tmp_path / "props.json"
        properties.save(path)
        loaded = DataProperties.load(path)
        assert loaded == properties

    def test_verified_copy(self):
        properties = infer_properties(healthy_frame())
        verified = properties.verified("domain-expert")
        assert verified.verified_by == "domain-expert"
        assert properties.verified_by == ""


class TestRules:
    def test_schema_interval_mismatch(self):
        properties = infer_properties(healthy_frame())
        coarse = LoadFrame(15)
        coarse.add_server(ServerMetadata(server_id="x"), make_series([1.0], interval=15))
        issues = check_schema(coarse, properties)
        assert any(issue.rule == "schema.interval" for issue in issues)

    def test_schema_empty_frame(self):
        properties = infer_properties(healthy_frame())
        issues = check_schema(LoadFrame(5), properties)
        assert any(issue.rule == "schema.empty" for issue in issues)

    def test_schema_missing_data_warning(self):
        frame = healthy_frame(6)
        properties = infer_properties(frame)  # min_servers = 3
        small = frame.select(frame.server_ids()[:1])
        issues = check_schema(small, properties)
        assert any(issue.rule == "schema.missing_data" for issue in issues)

    def test_bound_anomaly_detected(self):
        frame = healthy_frame()
        properties = infer_properties(frame)
        bad = LoadFrame(5)
        bad.add_server(
            ServerMetadata(server_id="weird"),
            make_series(np.full(10, properties.load_max + 50.0)),
        )
        issues = check_bounds(bad, properties)
        assert issues and issues[0].severity is ValidationSeverity.ERROR

    def test_non_finite_detected(self):
        frame = LoadFrame(5)
        frame.add_server(ServerMetadata(server_id="nanny"), make_series([1.0, np.nan, 2.0]))
        issues = check_finite(frame)
        assert issues and issues[0].rule == "values.non_finite"

    def test_duplicate_timestamps_detected(self):
        frame = LoadFrame(5)
        series = LoadSeries([0, 0, 5], [1.0, 1.0, 2.0], validate=False)
        frame.add_server(ServerMetadata(server_id="dup"), series)
        issues = check_duplicate_timestamps(frame)
        assert issues and issues[0].severity is ValidationSeverity.ERROR

    def test_sparse_coverage_warning(self):
        frame = LoadFrame(5)
        # Two points spanning two days -> very sparse.
        sparse = LoadSeries([0, 2880], [1.0, 2.0], validate=False)
        frame.add_server(ServerMetadata(server_id="sparse"), sparse)
        issues = check_coverage(frame)
        assert any(issue.rule == "coverage.sparse" for issue in issues)

    def test_empty_series_coverage_warning(self):
        frame = LoadFrame(5)
        frame.add_server(ServerMetadata(server_id="void"), LoadSeries.empty())
        issues = check_coverage(frame)
        assert any(issue.rule == "coverage.empty_series" for issue in issues)


class TestValidator:
    def test_healthy_frame_passes(self):
        module = DataValidationModule()
        report = module.validate(healthy_frame())
        assert report.passed
        assert report.n_servers == 4
        assert report.errors == ()

    def test_bootstrap_happens_automatically(self):
        module = DataValidationModule()
        assert module.properties is None
        module.validate(healthy_frame())
        assert module.properties is not None

    def test_validation_against_prior_properties(self):
        module = DataValidationModule()
        module.bootstrap(healthy_frame())
        # A later extract with values far outside the learned bounds fails.
        bad = LoadFrame(5)
        bad.add_server(ServerMetadata(server_id="hot"), make_series(np.full(10, 1000.0)))
        report = module.validate(bad)
        assert not report.passed

    def test_report_as_dict(self):
        report = DataValidationModule().validate(healthy_frame())
        payload = report.as_dict()
        assert payload["passed"] is True
        assert payload["n_servers"] == 4

    def test_preconfigured_properties(self):
        properties = DataProperties(
            columns=LoadFrame.CSV_HEADER,
            load_min=0.0,
            load_max=100.0,
            interval_minutes=5,
            min_servers=1,
        )
        module = DataValidationModule(properties)
        assert module.validate(healthy_frame()).passed
