"""Unit tests for the transactional lake manifest subsystem."""

import json

import pytest

from repro.fleet_ops.cli import gc_main, main as fleet_main, manifest_main
from repro.storage.datalake import DataLakeStore, ExtractKey
from repro.storage.manifest import (
    FAULT_POINTS,
    LakeManifest,
    LakeManifestError,
    ManifestSnapshot,
    TransactionLog,
)
from repro.timeseries.frame import LoadFrame, ServerMetadata

from tests.helpers import make_series

KEY = ExtractKey("r0", 3)


def small_frame(n=2, level=1.0) -> LoadFrame:
    frame = LoadFrame(5)
    for index in range(n):
        frame.add_server(
            ServerMetadata(server_id=f"s{index}", region="r0"),
            make_series([level, level + 1.0]),
        )
    return frame


def plant_legacy_extract(root, key: ExtractKey, payload: bytes) -> None:
    """Fabricate a pre-manifest lake file under its legacy name."""
    region_dir = root / key.region
    region_dir.mkdir(parents=True, exist_ok=True)
    # repro: allow[manifest-boundary] fabricating a pre-manifest legacy lake
    (region_dir / key.filename("csv")).write_bytes(payload)


def legacy_csv_payload() -> bytes:
    store = DataLakeStore()
    store.write_extract(KEY, small_frame())
    return store.read_extract_bytes(KEY)[1]


class TestAdoption:
    def test_legacy_lake_reads_as_generation_zero(self, tmp_path):
        plant_legacy_extract(tmp_path, KEY, legacy_csv_payload())
        lake = DataLakeStore(tmp_path)
        assert lake.current_generation() == 0
        assert lake.list_extracts() == [KEY]
        assert not (tmp_path / "_manifest" / "MANIFEST.json").exists()

    def test_first_mutation_adopts_and_materialises_gen_zero(self, tmp_path):
        plant_legacy_extract(tmp_path, KEY, legacy_csv_payload())
        lake = DataLakeStore(tmp_path)
        other = ExtractKey("r1", 5)
        lake.write_extract(other, small_frame(), fmt="sgx")
        assert lake.current_generation() == 1
        manifest_dir = tmp_path / "_manifest"
        assert (manifest_dir / "MANIFEST.json").exists()
        # Adoption materialises the inferred legacy snapshot so pinned
        # readers of generation 0 resolve from a file afterwards.
        assert (manifest_dir / "gen-00000000.json").exists()
        assert (manifest_dir / "gen-00000001.json").exists()
        # The legacy file is carried into generation 1 as-is.
        assert sorted(lake.list_extracts()) == [KEY, other]
        assert lake.read_extract(KEY).server_ids() == ["s0", "s1"]

    def test_foreign_and_content_addressed_files_invisible_to_inference(self, tmp_path):
        plant_legacy_extract(tmp_path, KEY, legacy_csv_payload())
        (tmp_path / KEY.region / "notes.txt").write_text("not an extract")
        snapshot = LakeManifest(tmp_path).current()
        assert snapshot.generation == 0
        assert [(e.region, e.week, e.fmt) for e in snapshot.segments] == [
            (KEY.region, KEY.week, "csv")
        ]


class TestContentAddressing:
    def test_segment_names_carry_payload_hash(self, tmp_path):
        lake = DataLakeStore(tmp_path, write_format="sgx")
        lake.write_extract(KEY, small_frame())
        path = lake.extract_path(KEY)
        fingerprint = lake.extract_fingerprint(KEY)
        assert f"-{fingerprint[:12]}.sgx" in path.name

    def test_identical_payload_reuses_the_segment_file(self, tmp_path):
        lake = DataLakeStore(tmp_path, write_format="sgx")
        lake.write_extract(KEY, small_frame())
        first_path = lake.extract_path(KEY)
        first_gen = lake.current_generation()
        lake.write_extract(KEY, small_frame())  # byte-identical re-write
        assert lake.extract_path(KEY) == first_path
        assert lake.current_generation() == first_gen + 1

    def test_fingerprint_served_from_manifest_entry(self, tmp_path):
        lake = DataLakeStore(tmp_path, write_format="sgx")
        lake.write_extract(KEY, small_frame())
        snapshot = lake.manifest.current()
        entry = snapshot.entry(KEY.region, KEY.week, "sgx")
        assert entry.sha256 == lake.extract_fingerprint(KEY)
        assert entry.size == lake.extract_size_bytes(KEY)

    def test_fingerprint_verify_hashes_the_stored_bytes(self, tmp_path):
        """The default fingerprint is the digest recorded at stage time;
        ``verify=True`` reads the file and therefore sees out-of-band
        damage the fast path by design does not."""
        lake = DataLakeStore(tmp_path, write_format="sgx")
        lake.write_extract(KEY, small_frame())
        recorded = lake.extract_fingerprint(KEY)
        assert lake.extract_fingerprint(KEY, verify=True) == recorded
        # repro: allow[manifest-boundary] simulating out-of-band disk damage
        lake.extract_path(KEY).write_bytes(b"scribbled over")
        assert lake.extract_fingerprint(KEY) == recorded
        assert lake.extract_fingerprint(KEY, verify=True) != recorded


class TestLogicalDeleteAndGc:
    def test_delete_is_logical_until_gc(self, tmp_path):
        lake = DataLakeStore(tmp_path, write_format="sgx")
        lake.write_extract(KEY, small_frame())
        path = lake.extract_path(KEY)
        lake.delete_extract(KEY)
        assert not lake.has_extract(KEY)
        assert path.exists(), "delete retires the entry, not the bytes"
        report = lake.collect_garbage()
        assert not path.exists()
        assert report.segments_removed == 1
        assert report.bytes_freed > 0

    def test_gc_keeps_only_the_current_generation(self, tmp_path):
        lake = DataLakeStore(tmp_path, write_format="sgx")
        for level in (1.0, 2.0, 3.0):
            lake.write_extract(KEY, small_frame(level=level))
        manifest_dir = tmp_path / "_manifest"
        # Generations 1..3 plus the (empty) generation 0 materialised at
        # adoption by the first write.
        assert len(list(manifest_dir.glob("gen-*.json"))) == 4
        report = lake.collect_garbage()
        assert report.generations_removed == 3
        assert report.segments_removed == 2  # two superseded payloads
        kept = list(manifest_dir.glob("gen-*.json"))
        assert [p.name for p in kept] == ["gen-00000003.json"]
        assert lake.read_extract(KEY).server_ids() == ["s0", "s1"]

    def test_gc_invalidates_pinned_readers_of_old_generations(self, tmp_path):
        lake = DataLakeStore(tmp_path, write_format="sgx")
        lake.write_extract(KEY, small_frame(level=1.0))
        pinned_gen = lake.current_generation()
        reader = DataLakeStore(tmp_path, pinned_generation=pinned_gen)
        lake.write_extract(KEY, small_frame(level=9.0))
        lake.collect_garbage()
        with pytest.raises(LakeManifestError):
            DataLakeStore(tmp_path, pinned_generation=pinned_gen)
        # The already-open reader's payload file is gone too.
        with pytest.raises(FileNotFoundError):
            reader.read_extract_bytes(KEY)

    def test_delete_of_absent_extract_publishes_no_generation(self, tmp_path):
        lake = DataLakeStore(tmp_path, write_format="sgx")
        lake.write_extract(KEY, small_frame())
        generation = lake.current_generation()
        lake.delete_extract(ExtractKey("r9", 99))  # nothing to drop
        lake.delete_extract(KEY, fmt="csv")  # stored as .sgx only
        assert lake.current_generation() == generation
        assert lake.manifest.log.pending() is None
        lake.delete_extract(KEY)  # a real drop still commits
        assert lake.current_generation() == generation + 1

    def test_gc_spares_foreign_files(self, tmp_path):
        lake = DataLakeStore(tmp_path, write_format="sgx")
        lake.write_extract(KEY, small_frame())
        foreign = tmp_path / KEY.region / "README.txt"
        foreign.write_text("hands off")
        lake.delete_extract(KEY)
        lake.collect_garbage()
        assert foreign.exists()

    def test_in_memory_store_has_no_gc_or_generations(self):
        store = DataLakeStore()
        with pytest.raises(ValueError):
            store.collect_garbage()
        with pytest.raises(ValueError):
            store.current_generation()


class TestPinnedStores:
    def test_pinned_store_is_read_only(self, tmp_path):
        lake = DataLakeStore(tmp_path, write_format="sgx")
        lake.write_extract(KEY, small_frame())
        reader = DataLakeStore(tmp_path, pinned_generation=lake.current_generation())
        with pytest.raises(LakeManifestError):
            reader.write_extract(KEY, small_frame(level=2.0))
        with pytest.raises(LakeManifestError):
            reader.delete_extract(KEY)
        with pytest.raises(LakeManifestError):
            reader.collect_garbage()

    def test_pinning_requires_an_on_disk_root(self):
        with pytest.raises(ValueError):
            DataLakeStore(pinned_generation=0)

    def test_uncommitted_generation_cannot_be_pinned(self, tmp_path):
        lake = DataLakeStore(tmp_path, write_format="sgx")
        lake.write_extract(KEY, small_frame())
        with pytest.raises(LakeManifestError):
            DataLakeStore(tmp_path, pinned_generation=lake.current_generation() + 1)

    def test_legacy_lake_pins_only_generation_zero(self, tmp_path):
        plant_legacy_extract(tmp_path, KEY, legacy_csv_payload())
        reader = DataLakeStore(tmp_path, pinned_generation=0)
        assert reader.list_extracts() == [KEY]
        with pytest.raises(LakeManifestError):
            DataLakeStore(tmp_path, pinned_generation=1)


class TestManifestInternals:
    def test_fault_points_protocol_order(self):
        assert FAULT_POINTS.index("manifest.pointer") == len(FAULT_POINTS) - 2
        assert FAULT_POINTS[0] == "txlog.intent"

    def test_snapshot_formats_in_preference_order(self):
        snapshot = ManifestSnapshot(generation=1, txid=None, segments=())
        assert snapshot.formats("r0", 1) == ()
        assert snapshot.entry("r0", 1, "sgx") is None

    def test_torn_txlog_tail_is_tolerated(self, tmp_path):
        lake = DataLakeStore(tmp_path, write_format="sgx")
        lake.write_extract(KEY, small_frame())
        log_path = tmp_path / "_manifest" / "txlog.jsonl"
        with log_path.open("ab") as handle:
            handle.write(b'{"type": "intent", "txid": "tx-torn"')  # no newline
        reopened = DataLakeStore(tmp_path)
        assert reopened.read_extract(KEY).server_ids() == ["s0", "s1"]
        reopened.write_extract(KEY, small_frame(level=4.0))

    def test_txlog_append_repairs_torn_tail(self, tmp_path):
        log = TransactionLog(tmp_path / "txlog.jsonl")
        log.append({"type": "intent", "txid": "a"})
        with log.path.open("ab") as handle:
            handle.write(b'{"type": "commit", "txid"')  # crash mid-append
        log.append({"type": "recovered", "txid": "a", "action": "commit"})
        assert [r["type"] for r in log.records()] == ["intent", "recovered"]
        assert log.pending() is None

    def test_torn_commit_record_survives_later_commits(self, tmp_path):
        """A torn final log line must not resurrect a resolved intent.

        Recovery's resolution record lands on its own fresh line; were it
        glued onto the torn fragment, every later open would re-see the
        stale intent and -- once another transaction commits -- roll it
        back as 'uncommitted', unlinking a committed generation's files.
        """
        lake = DataLakeStore(tmp_path, write_format="sgx")
        lake.write_extract(KEY, small_frame())
        log_path = tmp_path / "_manifest" / "txlog.jsonl"
        raw = log_path.read_bytes()
        assert raw.endswith(b"\n")
        log_path.write_bytes(raw[:-10])  # tear the commit record mid-line
        other = ExtractKey("r1", 5)
        # First reopen resolves the dangling intent, then commits anew.
        DataLakeStore(tmp_path).write_extract(other, small_frame(level=2.0), fmt="sgx")
        reopened = DataLakeStore(tmp_path)  # recovery runs again here
        assert sorted(reopened.list_extracts()) == [KEY, other]
        assert reopened.read_extract(KEY).server_ids() == ["s0", "s1"]
        assert reopened.read_extract(other).server_ids() == ["s0", "s1"]
        assert reopened.manifest.log.pending() is None

    def test_corrupt_pointer_is_a_typed_error(self, tmp_path):
        lake = DataLakeStore(tmp_path, write_format="sgx")
        lake.write_extract(KEY, small_frame())
        (tmp_path / "_manifest" / "MANIFEST.json").write_text("not json")
        with pytest.raises(LakeManifestError):
            DataLakeStore(tmp_path).list_extracts()


class TestCli:
    def test_manifest_command_reports_state(self, capsys, tmp_path):
        lake = DataLakeStore(tmp_path, write_format="sgx")
        lake.write_extract(KEY, small_frame())
        assert fleet_main(["manifest", "--lake-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Committed generation: 1" in out
        assert f"{KEY.region} week {KEY.week}: .sgx" in out
        assert "no pending transaction" in out

    def test_manifest_command_json(self, capsys, tmp_path):
        lake = DataLakeStore(tmp_path, write_format="sgx")
        lake.write_extract(KEY, small_frame())
        assert manifest_main(["--lake-dir", str(tmp_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["adopted"] is True
        assert payload["snapshot"]["generation"] == 1
        assert payload["pending_txid"] is None

    def test_gc_command_reclaims_and_reports(self, capsys, tmp_path):
        lake = DataLakeStore(tmp_path, write_format="sgx")
        lake.write_extract(KEY, small_frame(level=1.0))
        lake.write_extract(KEY, small_frame(level=2.0))
        assert fleet_main(["gc", "--lake-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Lake gc at generation 2" in out
        assert "1 segment file(s)" in out

    def test_gc_command_json(self, capsys, tmp_path):
        lake = DataLakeStore(tmp_path, write_format="sgx")
        lake.write_extract(KEY, small_frame())
        assert gc_main(["--lake-dir", str(tmp_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["generation"] == 1
        assert payload["segments_removed"] == 0

    def test_missing_lake_dir_exits_2(self, capsys, tmp_path):
        missing = str(tmp_path / "nope")
        assert manifest_main(["--lake-dir", missing]) == 2
        assert gc_main(["--lake-dir", missing]) == 2
