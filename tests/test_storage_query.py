"""Tests for the typed extract-query surface (ExtractQuery / query / scan)."""

import pickle

import numpy as np
import pytest

from repro.storage.artifacts import artifact_key
from repro.storage.columnar import ColumnarFormatError, frame_to_sgx_bytes
from repro.storage.datalake import (
    AccessDeniedError,
    DataLakeStore,
    ExtractKey,
    ExtractNotFoundError,
)
from repro.storage.query import ExtractQuery, QueryError, ScanStats
from repro.timeseries.calendar import MAX_MINUTE, MIN_MINUTE
from repro.timeseries.frame import LoadFrame, ServerMetadata
from repro.timeseries.series import LoadSeries

from tests.helpers import make_series


def mixed_frame(n=4, points=288, interval=5) -> LoadFrame:
    """Servers with varying engines; server i starts at day i."""
    frame = LoadFrame(interval)
    for index in range(n):
        metadata = ServerMetadata(
            server_id=f"s{index}",
            region="r0",
            engine=("postgresql", "mysql")[index % 2],
            default_backup_start=60 * index,
            default_backup_end=60 * index + 30,
        )
        frame.add_server(
            metadata, make_series([float(index)] * points, start=index * 1440, interval=interval)
        )
    return frame


@pytest.fixture(params=["csv", "sgx"])
def lake_one_key(request, tmp_path):
    lake = DataLakeStore(tmp_path / request.param, write_format=request.param)
    key = ExtractKey("r0", 0)
    lake.write_extract(key, mixed_frame())
    return lake, key


class TestExtractQueryValueSemantics:
    def test_list_and_tuple_servers_are_equal_and_hash_equal(self):
        a = ExtractQuery(servers=["s1", "s0"])
        b = ExtractQuery(servers=("s0", "s1"))
        assert a == b
        assert hash(a) == hash(b)
        assert a.servers == ("s0", "s1")

    def test_lone_string_is_one_name_not_characters(self):
        q = ExtractQuery(regions="westus2", servers="s0")
        assert q.regions == ("westus2",)
        assert q.servers == ("s0",)

    def test_columns_normalise_to_canonical_order(self):
        assert ExtractQuery(columns=["values", "timestamps"]).columns == (
            "timestamps",
            "values",
        )

    def test_weeks_normalise_sorted_unique(self):
        assert ExtractQuery(weeks=[3, 1, 3]).weeks == (1, 3)
        assert ExtractQuery(weeks=2).weeks == (2,)

    def test_query_is_picklable(self):
        q = ExtractQuery(regions=("r0",), weeks=(1,), servers=("a",), limit=10)
        assert pickle.loads(pickle.dumps(q)) == q

    def test_invalid_queries_rejected(self):
        with pytest.raises(QueryError):
            ExtractQuery(columns=("values",))  # timestamps is the index
        with pytest.raises(QueryError):
            ExtractQuery(start_minute=100, end_minute=50)
        with pytest.raises(QueryError):
            ExtractQuery(limit=-1)
        with pytest.raises(QueryError):
            ExtractQuery(weeks=(-1,))
        with pytest.raises(QueryError):
            ExtractQuery(interval_minutes=0)
        with pytest.raises(ValueError, match="unknown extract format"):
            ExtractQuery(fmt="parquet")

    def test_time_range_uses_shared_sentinels(self):
        assert ExtractQuery().time_range() == (MIN_MINUTE, MAX_MINUTE)
        assert ExtractQuery(start_minute=10).time_range() == (10, MAX_MINUTE)


class TestQueryCacheKey:
    """Satellite: query hashability as a stage-cache key component."""

    CONTENT_HASH = "f" * 64

    def _key(self, q: ExtractQuery) -> str:
        return artifact_key("features", self.CONTENT_HASH, {"query": q.cache_token()})

    def test_equivalent_queries_share_the_artifact_key(self):
        by_list = ExtractQuery(regions=["r0"], servers=["b", "a"], weeks=[1])
        by_tuple = ExtractQuery(regions=("r0",), servers=("a", "b"), weeks=(1,))
        assert self._key(by_list) == self._key(by_tuple)

    def test_default_and_explicit_format_share_the_artifact_key(self):
        # fmt is a storage-negotiation detail: both formats answer the
        # same query with the same frame, so it must not split the cache.
        negotiated = ExtractQuery(regions=("r0",), weeks=(0,))
        forced = ExtractQuery(regions=("r0",), weeks=(0,), fmt="sgx")
        assert negotiated != forced  # still distinct values...
        assert self._key(negotiated) == self._key(forced)  # ...same cache key

    def test_different_projection_changes_the_artifact_key(self):
        full = ExtractQuery(regions=("r0",))
        projected = ExtractQuery(regions=("r0",), columns=("timestamps",))
        assert self._key(full) != self._key(projected)

    def test_different_range_and_servers_change_the_artifact_key(self):
        base = ExtractQuery(regions=("r0",))
        assert self._key(base) != self._key(ExtractQuery(regions=("r0",), end_minute=1440))
        assert self._key(base) != self._key(ExtractQuery(regions=("r0",), servers=("s0",)))

    def test_queries_usable_as_dict_keys(self):
        cache = {ExtractQuery(servers=["x"]): 1}
        assert cache[ExtractQuery(servers=("x",))] == 1


class TestLakeQuery:
    def test_query_matches_read_extract(self, lake_one_key):
        lake, key = lake_one_key
        q = ExtractQuery.for_key(key)
        assert lake.query(q).frame.content_hash() == lake.read_extract(key).content_hash()

    def test_query_no_match_returns_empty_result(self):
        lake = DataLakeStore()
        result = lake.query(ExtractQuery(regions=("nowhere",)))
        assert result.stats.extracts_scanned == 0
        assert len(result.frame) == 0

    def test_read_extract_shim_still_raises_on_missing(self):
        with pytest.raises(ExtractNotFoundError):
            DataLakeStore().read_extract(ExtractKey("r0", 0))

    def test_server_allow_list(self, lake_one_key):
        lake, key = lake_one_key
        result = lake.query(ExtractQuery.for_key(key, servers=("s0", "s3")))
        assert result.frame.server_ids() == ["s0", "s3"]

    def test_engine_predicate(self, lake_one_key):
        lake, key = lake_one_key
        result = lake.query(ExtractQuery.for_key(key, engines=("mysql",)))
        assert result.frame.server_ids() == ["s1", "s3"]
        assert result.stats.servers_skipped == 2

    def test_time_range(self, lake_one_key):
        lake, key = lake_one_key
        result = lake.query(ExtractQuery.for_key(key, start_minute=1440, end_minute=2880))
        frame = result.frame
        for server_id in frame.server_ids():
            series = frame.series(server_id)
            assert series.start >= 1440 and series.end < 2880

    def test_limit_caps_total_rows(self, lake_one_key):
        lake, key = lake_one_key
        result = lake.query(ExtractQuery.for_key(key, limit=300))
        assert result.frame.total_points() == 300
        assert result.stats.rows == 300

    def test_limit_zero(self, lake_one_key):
        lake, key = lake_one_key
        assert lake.query(ExtractQuery.for_key(key, limit=0)).frame.total_points() == 0

    def test_timestamps_projection_yields_nan_values(self, lake_one_key):
        lake, key = lake_one_key
        result = lake.query(ExtractQuery.for_key(key, columns=("timestamps",)))
        full = lake.read_extract(key)
        for server_id in full.server_ids():
            series = result.frame.series(server_id)
            assert np.array_equal(series.timestamps, full.series(server_id).timestamps)
            assert np.isnan(series.values).all()

    def test_multi_week_query_concatenates_disjoint_series(self, tmp_path):
        lake = DataLakeStore(tmp_path, write_format="sgx")
        week0 = LoadFrame(5)
        week0.add_server(ServerMetadata(server_id="s0", region="r0"), make_series([1.0] * 12, start=0))
        week1 = LoadFrame(5)
        week1.add_server(
            ServerMetadata(server_id="s0", region="r0"), make_series([2.0] * 12, start=10080)
        )
        lake.write_extract(ExtractKey("r0", 0), week0)
        lake.write_extract(ExtractKey("r0", 1), week1)
        result = lake.query(ExtractQuery(regions=("r0",)))
        assert result.stats.extracts_scanned == 2
        series = result.frame.series("s0")
        assert len(series) == 24
        assert series.start == 0 and series.end == 10080 + 11 * 5

    def test_overlapping_duplicate_server_raises_query_error(self, tmp_path):
        lake = DataLakeStore(tmp_path, write_format="sgx")
        frame = LoadFrame(5)
        frame.add_server(ServerMetadata(server_id="s0", region="r0"), make_series([1.0] * 12))
        lake.write_extract(ExtractKey("r0", 0), frame)
        lake.write_extract(ExtractKey("r0", 1), frame)  # same samples again
        with pytest.raises(QueryError, match="overlapping"):
            lake.query(ExtractQuery(regions=("r0",)))

    def test_forced_format_missing_raises(self, tmp_path):
        lake = DataLakeStore(tmp_path, write_format="csv")
        key = ExtractKey("r0", 0)
        lake.write_extract(key, mixed_frame())
        with pytest.raises(ExtractNotFoundError):
            lake.query(ExtractQuery.for_key(key, fmt="sgx"))

    def test_damaged_sgx_degrades_to_csv(self, tmp_path):
        lake = DataLakeStore(tmp_path)
        key = ExtractKey("r0", 0)
        frame = mixed_frame()
        lake.write_extract(key, frame, fmt="csv")
        lake.write_extract(key, frame, fmt="sgx", keep_other_formats=True)
        path = lake.extract_path(key, fmt="sgx")
        damaged = bytearray(path.read_bytes())
        damaged[-3] ^= 0xFF
        path.write_bytes(bytes(damaged))
        result = lake.query(ExtractQuery.for_key(key))
        assert result.frame.content_hash() == frame.content_hash()

    def test_access_control_enforced(self):
        lake = DataLakeStore(granted_principals={"seagull"})
        with pytest.raises(AccessDeniedError):
            lake.query(ExtractQuery())
        with pytest.raises(AccessDeniedError):
            list(lake.scan(ExtractQuery()))

    def test_interval_none_preserves_recorded_interval(self, tmp_path):
        lake = DataLakeStore(tmp_path, write_format="sgx")
        key = ExtractKey("r0", 0)
        frame = LoadFrame(10)
        frame.add_server(
            ServerMetadata(server_id="s0", region="r0"), make_series([1.0] * 4, interval=10)
        )
        lake.write_extract(key, frame)
        result = lake.query(ExtractQuery.for_key(key, interval_minutes=None))
        assert result.frame.interval_minutes == 10


class TestPushdownByteLevel:
    """Acceptance criterion: excluded servers' chunks and unprojected
    column buffers are never decoded or checksummed."""

    def _sgx_lake(self, tmp_path, n=8):
        lake = DataLakeStore(tmp_path, write_format="sgx")
        key = ExtractKey("r0", 0)
        lake.write_extract(key, mixed_frame(n=n))
        return lake, key

    def test_server_filter_reduces_verified_bytes(self, tmp_path):
        lake, key = self._sgx_lake(tmp_path, n=8)
        full = lake.query(ExtractQuery.for_key(key))
        two = lake.query(ExtractQuery.for_key(key, servers=("s0", "s1")))
        assert full.stats.payload_bytes_verified == full.stats.payload_bytes_stored
        assert two.stats.servers_skipped == 6
        assert two.stats.payload_bytes_verified == two.stats.payload_bytes_stored // 4

    def test_corrupt_excluded_server_invisible_to_filtered_query(self, tmp_path):
        lake, key = self._sgx_lake(tmp_path, n=4)
        path = lake.extract_path(key, fmt="sgx")
        damaged = bytearray(path.read_bytes())
        damaged[-4] ^= 0xFF  # inside the last server's values buffer
        path.write_bytes(bytes(damaged))
        with pytest.raises(ColumnarFormatError):
            lake.query(ExtractQuery.for_key(key, fmt="sgx"))
        filtered = lake.query(ExtractQuery.for_key(key, fmt="sgx", servers=("s0", "s1")))
        assert filtered.frame.server_ids() == ["s0", "s1"]

    def test_projection_reduces_verified_bytes(self, tmp_path):
        lake, key = self._sgx_lake(tmp_path)
        projected = lake.query(ExtractQuery.for_key(key, columns=("timestamps",)))
        assert projected.stats.payload_bytes_verified == projected.stats.payload_bytes_stored // 2
        assert projected.stats.columns_skipped > 0

    def test_corrupt_values_invisible_to_projected_query(self, tmp_path):
        lake, key = self._sgx_lake(tmp_path, n=1)
        path = lake.extract_path(key, fmt="sgx")
        damaged = bytearray(path.read_bytes())
        damaged[-4] ^= 0xFF
        path.write_bytes(bytes(damaged))
        with pytest.raises(ColumnarFormatError):
            lake.query(ExtractQuery.for_key(key, fmt="sgx"))
        projected = lake.query(ExtractQuery.for_key(key, fmt="sgx", columns=("timestamps",)))
        assert projected.frame.server_ids() == ["s0"]


class TestCrossFormatParity:
    """Satellite: the same query answers identically on CSV and .sgx,
    including empty-series handling after slicing."""

    QUERIES = [
        ExtractQuery(regions=("r0",), weeks=(0,)),
        ExtractQuery(regions=("r0",), weeks=(0,), start_minute=100, end_minute=700),
        ExtractQuery(regions=("r0",), weeks=(0,), start_minute=1440, end_minute=2880),
        # A range that leaves *every* server empty.
        ExtractQuery(regions=("r0",), weeks=(0,), start_minute=900000, end_minute=900100),
        ExtractQuery(regions=("r0",), weeks=(0,), servers=("s0", "s2")),
        ExtractQuery(regions=("r0",), weeks=(0,), engines=("mysql",)),
        ExtractQuery(regions=("r0",), weeks=(0,), columns=("timestamps",)),
        ExtractQuery(
            regions=("r0",),
            weeks=(0,),
            start_minute=1500,
            end_minute=4000,
            engines=("postgresql",),
            columns=("timestamps",),
            limit=200,
        ),
    ]

    @pytest.fixture()
    def dual_lakes(self, tmp_path):
        frame = mixed_frame()
        csv_lake = DataLakeStore(tmp_path / "csv", write_format="csv")
        sgx_lake = DataLakeStore(tmp_path / "sgx", write_format="sgx")
        key = ExtractKey("r0", 0)
        csv_lake.write_extract(key, frame)
        sgx_lake.write_extract(key, frame)
        return csv_lake, sgx_lake

    @pytest.mark.parametrize("query", QUERIES, ids=range(len(QUERIES)))
    def test_same_query_identical_frames(self, dual_lakes, query):
        csv_lake, sgx_lake = dual_lakes
        via_csv = csv_lake.query(query).frame
        via_sgx = sgx_lake.query(query).frame
        assert via_csv.server_ids() == via_sgx.server_ids()
        assert via_csv.content_hash() == via_sgx.content_hash()

    def test_ranged_query_drops_empty_series_in_both_formats(self, dual_lakes):
        csv_lake, sgx_lake = dual_lakes
        # Only s3 (starting at minute 3*1440) overlaps this range.
        q = ExtractQuery(regions=("r0",), weeks=(0,), start_minute=3 * 1440, end_minute=4 * 1440)
        assert csv_lake.query(q).frame.server_ids() == ["s3"]
        assert sgx_lake.query(q).frame.server_ids() == ["s3"]

    def test_unranged_sgx_keeps_empty_series_servers(self, tmp_path):
        # CSV cannot represent a zero-sample server at all, so parity is
        # only definable for ranged reads; lock the .sgx behaviour here.
        lake = DataLakeStore(tmp_path, write_format="sgx")
        key = ExtractKey("r0", 0)
        frame = LoadFrame(5)
        frame.add_server(ServerMetadata(server_id="idle", region="r0"), LoadSeries.empty(5))
        lake.write_extract(key, frame)
        assert lake.query(ExtractQuery.for_key(key)).frame.server_ids() == ["idle"]
        ranged = lake.query(ExtractQuery.for_key(key, start_minute=0, end_minute=10))
        assert ranged.frame.server_ids() == []


class TestLakeScan:
    def test_scan_streams_all_servers(self, lake_one_key):
        lake, key = lake_one_key
        q = ExtractQuery.for_key(key)
        rows = list(lake.scan(q))
        assert [metadata.server_id for _key, metadata, _series in rows] == [
            "s0",
            "s1",
            "s2",
            "s3",
        ]
        assert all(scanned_key == key for scanned_key, _md, _s in rows)

    def test_scan_matches_query_frame(self, lake_one_key):
        lake, key = lake_one_key
        q = ExtractQuery.for_key(key, start_minute=100, end_minute=3000)
        frame = LoadFrame(5)
        for _key, metadata, series in lake.scan(q):
            frame.add_server(metadata, series)
        assert frame.content_hash() == lake.query(q).frame.content_hash()

    def test_scan_respects_limit(self, lake_one_key):
        lake, key = lake_one_key
        q = ExtractQuery.for_key(key, limit=300)
        rows = list(lake.scan(q))
        assert sum(len(series) for _k, _m, series in rows) == 300

    def test_scan_fills_stats(self, lake_one_key):
        lake, key = lake_one_key
        stats = ScanStats()
        for _ in lake.scan(ExtractQuery.for_key(key), stats=stats):
            pass
        assert stats.extracts_scanned == 1
        assert stats.servers_seen == 4
        assert stats.rows == 4 * 288

    def test_scan_early_exit_skips_remaining_payloads(self, tmp_path):
        # Abandon the scan after the first server while a later server's
        # payload is corrupt: laziness means the damage is never read.
        lake = DataLakeStore(tmp_path, write_format="sgx")
        key = ExtractKey("r0", 0)
        lake.write_extract(key, mixed_frame(n=3))
        path = lake.extract_path(key, fmt="sgx")
        damaged = bytearray(path.read_bytes())
        damaged[-4] ^= 0xFF
        path.write_bytes(bytes(damaged))
        scan = lake.scan(ExtractQuery.for_key(key, fmt="sgx"))
        _key, metadata, _series = next(scan)
        assert metadata.server_id == "s0"
        scan.close()

    def test_scan_structure_damage_falls_back_to_csv(self, tmp_path):
        lake = DataLakeStore(tmp_path)
        key = ExtractKey("r0", 0)
        frame = mixed_frame(n=2)
        lake.write_extract(key, frame, fmt="csv")
        lake.write_extract(key, frame, fmt="sgx", keep_other_formats=True)
        path = lake.extract_path(key, fmt="sgx")
        damaged = bytearray(path.read_bytes())
        damaged[50] ^= 0xFF  # dictionary/structure region
        path.write_bytes(bytes(damaged))
        rows = list(lake.scan(ExtractQuery.for_key(key)))
        assert [m.server_id for _k, m, _s in rows] == ["s0", "s1"]

    def test_scan_limit_exhaustion_stops_before_next_server_decode(self, tmp_path):
        # Once the row limit is exhausted the scan must return without
        # decoding (or CRC-checking) the following server -- corrupt it
        # and consume the scan to completion to prove it.
        lake = DataLakeStore(tmp_path, write_format="sgx")
        key = ExtractKey("r0", 0)
        lake.write_extract(key, mixed_frame(n=2))
        path = lake.extract_path(key, fmt="sgx")
        damaged = bytearray(path.read_bytes())
        damaged[-4] ^= 0xFF  # s1's values buffer
        path.write_bytes(bytes(damaged))
        stats = ScanStats()
        q = ExtractQuery.for_key(key, fmt="sgx", limit=288)  # exactly s0's rows
        rows = list(lake.scan(q, stats=stats))
        assert [m.server_id for _k, m, _s in rows] == ["s0"]
        assert stats.rows == 288

    def test_scan_limit_zero_reads_nothing(self, tmp_path):
        lake = DataLakeStore(tmp_path, write_format="sgx")
        key = ExtractKey("r0", 0)
        lake.write_extract(key, mixed_frame(n=2))
        stats = ScanStats()
        assert list(lake.scan(ExtractQuery.for_key(key, limit=0), stats=stats)) == []
        assert stats.extracts_scanned == 0

    def test_scan_rejects_mixed_intervals_like_query(self, tmp_path):
        # query() refuses to merge extracts with different recorded
        # intervals; the streaming dual must not silently mix them.
        lake = DataLakeStore(tmp_path, write_format="sgx")
        five = LoadFrame(5)
        five.add_server(ServerMetadata(server_id="a", region="r0"), make_series([1.0] * 4))
        ten = LoadFrame(10)
        ten.add_server(
            ServerMetadata(server_id="b", region="r0"), make_series([1.0] * 4, interval=10)
        )
        lake.write_extract(ExtractKey("r0", 0), five)
        lake.write_extract(ExtractKey("r0", 1), ten)
        q = ExtractQuery(regions=("r0",), interval_minutes=None)
        with pytest.raises(QueryError, match="different sampling intervals"):
            lake.query(q)
        with pytest.raises(QueryError, match="different sampling intervals"):
            list(lake.scan(q))

    def test_scan_metadata_only_walk_never_decodes_values(self, tmp_path):
        lake = DataLakeStore(tmp_path, write_format="sgx")
        key = ExtractKey("r0", 0)
        lake.write_extract(key, mixed_frame(n=4))
        stats = ScanStats()
        q = ExtractQuery.for_key(key, columns=("timestamps",))
        metadata_by_server = {
            metadata.server_id: metadata for _k, metadata, _s in lake.scan(q, stats=stats)
        }
        assert len(metadata_by_server) == 4
        assert stats.columns_skipped == stats.chunks_seen - stats.chunks_pruned
        assert stats.payload_bytes_verified == stats.payload_bytes_stored // 2
