"""Unit tests for the acceptable error bound and bucket ratio (Definitions 1-2)."""

import numpy as np
import pytest

from repro.metrics.bucket_ratio import (
    DEFAULT_ACCURACY_THRESHOLD,
    DEFAULT_ERROR_BOUND,
    ErrorBound,
    bucket_ratio,
    is_accurate_prediction,
)

from tests.helpers import make_series


class TestErrorBound:
    def test_default_is_plus10_minus5(self):
        assert DEFAULT_ERROR_BOUND.over_tolerance == 10.0
        assert DEFAULT_ERROR_BOUND.under_tolerance == 5.0

    def test_asymmetry_over_prediction_allowed(self):
        # Over-predicting by 10 is acceptable, by 10.5 is not.
        assert DEFAULT_ERROR_BOUND.within(30.0, 20.0)
        assert not DEFAULT_ERROR_BOUND.within(30.6, 20.0)

    def test_asymmetry_under_prediction_stricter(self):
        # Under-predicting by 5 is acceptable, by 6 is not.
        assert DEFAULT_ERROR_BOUND.within(15.0, 20.0)
        assert not DEFAULT_ERROR_BOUND.within(14.0, 20.0)

    def test_contains_mask(self):
        predicted = np.array([10.0, 25.0, 10.0])
        true = np.array([10.0, 10.0, 20.0])
        mask = DEFAULT_ERROR_BOUND.contains(predicted, true)
        assert mask.tolist() == [True, False, False]

    def test_rejects_negative_tolerances(self):
        with pytest.raises(ValueError):
            ErrorBound(over_tolerance=-1.0)

    def test_custom_bound(self):
        bound = ErrorBound(over_tolerance=1.0, under_tolerance=1.0)
        assert bound.within(10.5, 10.0)
        assert not bound.within(12.0, 10.0)


class TestBucketRatio:
    def test_perfect_prediction_is_one(self):
        truth = make_series([10, 20, 30])
        assert bucket_ratio(truth, truth) == pytest.approx(1.0)

    def test_half_in_bound(self):
        predicted = np.array([10.0, 50.0])
        true = np.array([10.0, 10.0])
        assert bucket_ratio(predicted, true) == pytest.approx(0.5)

    def test_series_alignment_by_timestamp(self):
        predicted = make_series([10, 20, 30], start=0)
        true = make_series([100, 30], start=5)  # overlaps at minutes 5 and 10
        # predicted at 5 is 20 vs true 100 (out), predicted at 10 is 30 vs 30 (in)
        assert bucket_ratio(predicted, true) == pytest.approx(0.5)

    def test_no_overlap_is_nan(self):
        a = make_series([1, 2], start=0)
        b = make_series([1, 2], start=1000)
        assert np.isnan(bucket_ratio(a, b))

    def test_array_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            bucket_ratio(np.array([1.0]), np.array([1.0, 2.0]))

    def test_paper_figure2_example_inaccurate(self):
        # A prediction where only 75% of points are within bound must be
        # classified inaccurate despite looking "close enough" (Figure 2).
        true = np.full(100, 50.0)
        predicted = np.full(100, 50.0)
        predicted[:25] = 30.0  # 25% of points under-predicted by 20
        assert bucket_ratio(predicted, true) == pytest.approx(0.75)
        assert not is_accurate_prediction(predicted, true)


class TestIsAccuratePrediction:
    def test_threshold_is_90_percent(self):
        assert DEFAULT_ACCURACY_THRESHOLD == pytest.approx(0.90)

    def test_exactly_at_threshold_is_accurate(self):
        true = np.full(10, 50.0)
        predicted = true.copy()
        predicted[0] = 0.0  # 90% in bound
        assert is_accurate_prediction(predicted, true)

    def test_below_threshold_is_inaccurate(self):
        true = np.full(10, 50.0)
        predicted = true.copy()
        predicted[:2] = 0.0  # 80% in bound
        assert not is_accurate_prediction(predicted, true)

    def test_empty_comparison_is_not_accurate(self):
        a = make_series([1], start=0)
        b = make_series([1], start=500)
        assert not is_accurate_prediction(a, b)

    def test_custom_threshold(self):
        true = np.full(10, 50.0)
        predicted = true.copy()
        predicted[:3] = 0.0
        assert is_accurate_prediction(predicted, true, threshold=0.7)
