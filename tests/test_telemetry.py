"""Unit tests for the synthetic telemetry substrate."""

import numpy as np
import pytest

from repro.storage.datalake import DataLakeStore, ExtractKey
from repro.telemetry.extraction import LoadExtractionQuery
from repro.telemetry.fleet import (
    FLEET_CLASS_MIX,
    FleetSpec,
    RegionSpec,
    ServerClass,
    default_fleet_spec,
    sql_database_fleet_spec,
)
from repro.telemetry.generator import (
    WorkloadGenerator,
    daily_trace,
    stable_trace,
    unstable_trace,
    weekly_trace,
)
from repro.telemetry.raw_store import RawTelemetryStore
from repro.timeseries.calendar import MINUTES_PER_WEEK

from tests.helpers import POINTS_PER_DAY


class TestFleetSpec:
    def test_default_mix_sums_to_one(self):
        assert sum(FLEET_CLASS_MIX.values()) == pytest.approx(1.0)

    def test_default_fleet_spec_regions(self):
        spec = default_fleet_spec()
        assert len(spec.regions) == 4
        assert spec.total_servers == 750
        assert spec.region_names() == [f"region-{i}" for i in range(4)]

    def test_region_lookup(self):
        spec = default_fleet_spec()
        assert spec.region("region-1").n_servers == 200
        with pytest.raises(KeyError):
            spec.region("nowhere")

    def test_invalid_mix_rejected(self):
        with pytest.raises(ValueError):
            FleetSpec(
                regions=(RegionSpec("r", 1),),
                class_mix={ServerClass.STABLE: 0.4},
            )

    def test_invalid_region_rejected(self):
        with pytest.raises(ValueError):
            RegionSpec(name="", n_servers=1)
        with pytest.raises(ValueError):
            RegionSpec(name="r", n_servers=-1)

    def test_sql_fleet_spec(self):
        spec = sql_database_fleet_spec(n_databases=100)
        assert spec.interval_minutes == 15
        assert spec.total_servers == 100
        assert spec.engine_mix == {"sql": 1.0}


class TestTraceGenerators:
    def test_stable_trace_variance_small(self):
        rng = np.random.default_rng(0)
        values = stable_trace(rng, 1000, base_load=20.0)
        assert abs(values.mean() - 20.0) < 1.0
        assert values.std() < 3.0

    def test_daily_trace_repeats(self):
        rng = np.random.default_rng(0)
        values = daily_trace(rng, 2 * POINTS_PER_DAY, POINTS_PER_DAY, 10.0, 30.0, noise_std=0.0)
        np.testing.assert_allclose(values[:POINTS_PER_DAY], values[POINTS_PER_DAY:])

    def test_weekly_trace_weekend_differs(self):
        rng = np.random.default_rng(0)
        values = weekly_trace(rng, 7 * POINTS_PER_DAY, POINTS_PER_DAY, 10.0, 40.0, noise_std=0.0)
        weekday = values[:POINTS_PER_DAY]
        saturday = values[5 * POINTS_PER_DAY : 6 * POINTS_PER_DAY]
        assert not np.allclose(weekday, saturday)

    def test_unstable_trace_is_volatile(self):
        rng = np.random.default_rng(0)
        values = unstable_trace(rng, 7 * POINTS_PER_DAY, POINTS_PER_DAY, 30.0, 30.0)
        assert values.std() > 5.0


class TestWorkloadGenerator:
    def test_generate_region_counts(self, small_fleet_spec):
        generator = WorkloadGenerator(small_fleet_spec)
        frame = generator.generate_region("region-1")
        assert len(frame) == 15
        assert all(metadata.region == "region-1" for _, metadata, _ in frame.items())

    def test_generate_fleet_merges_regions(self, small_fleet):
        assert len(small_fleet) == 45
        assert small_fleet.regions() == ["region-0", "region-1"]

    def test_values_within_cpu_range(self, small_fleet):
        for _, _, series in small_fleet.items():
            if series.is_empty:
                continue
            assert series.minimum() >= 0.0
            assert series.maximum() <= 100.0

    def test_short_lived_servers_are_short(self, small_fleet):
        for _server_id, metadata, series in small_fleet.items():
            if metadata.true_class == "short_lived":
                assert series.span_days < 21

    def test_long_lived_servers_cover_horizon(self, small_fleet):
        for _server_id, metadata, series in small_fleet.items():
            if metadata.true_class != "short_lived":
                assert series.span_days == pytest.approx(28.0)

    def test_default_backup_on_last_day(self, small_fleet, small_fleet_spec):
        last_day_start = (small_fleet_spec.weeks * 7 - 1) * 1440
        for _, metadata, _ in small_fleet.items():
            assert metadata.default_backup_start >= last_day_start
            assert metadata.default_backup_end <= last_day_start + 1440

    def test_deterministic_given_seed(self):
        spec = default_fleet_spec(servers_per_region=(5,), weeks=2, seed=99)
        first = WorkloadGenerator(spec).generate_region("region-0")
        second = WorkloadGenerator(spec).generate_region("region-0")
        for sid in first.server_ids():
            assert first.series(sid) == second.series(sid)

    def test_true_class_recorded_in_metadata(self, small_fleet):
        classes = {metadata.true_class for _, metadata, _ in small_fleet.items()}
        assert classes <= {c.value for c in ServerClass}


class TestRawStoreAndExtraction:
    @pytest.fixture(scope="class")
    def raw_setup(self):
        spec = default_fleet_spec(servers_per_region=(6,), weeks=2, seed=3)
        frame = WorkloadGenerator(spec).generate_region("region-0")
        store = RawTelemetryStore()
        store.ingest_frame(frame, noise_rng=np.random.default_rng(0))
        return spec, frame, store

    def test_ingest_creates_minute_rows(self, raw_setup):
        _, frame, store = raw_setup
        assert store.regions() == ["region-0"]
        assert store.row_count("region-0") > frame.total_points()

    def test_raw_rows_accessible(self, raw_setup):
        _, frame, store = raw_setup
        sid = frame.server_ids()[0]
        ts, vs = store.raw_rows("region-0", sid)
        assert ts.shape == vs.shape
        assert ts.size > 0

    def test_missing_server_raises(self, raw_setup):
        _, _, store = raw_setup
        with pytest.raises(KeyError):
            store.raw_rows("region-0", "missing")

    def test_extraction_writes_weekly_extract(self, raw_setup):
        _, frame, store = raw_setup
        lake = DataLakeStore()
        query = LoadExtractionQuery(store, lake)
        report = query.extract_week("region-0", 0)
        assert report.servers > 0
        assert lake.has_extract(ExtractKey("region-0", 0))

    def test_extracted_load_close_to_original(self, raw_setup):
        _, frame, store = raw_setup
        lake = DataLakeStore()
        LoadExtractionQuery(store, lake).extract_week("region-0", 0)
        extract = lake.read_extract(ExtractKey("region-0", 0))
        sid = next(
            sid for sid, md, s in frame.items()
            if not s.is_empty and s.start < MINUTES_PER_WEEK
        )
        original_week = frame.series(sid).slice(0, MINUTES_PER_WEEK)
        extracted = extract.series(sid)
        common_original, common_extracted = original_week.align_to(extracted)
        assert common_original.size > 0
        assert np.mean(np.abs(common_original - common_extracted)) < 2.0

    def test_extract_all_regions(self, raw_setup):
        _, _, store = raw_setup
        lake = DataLakeStore()
        reports = LoadExtractionQuery(store, lake).extract_all_regions(1)
        assert len(reports) == 1
        assert reports[0].key.week == 1

    def test_extraction_report_as_dict(self, raw_setup):
        _, _, store = raw_setup
        lake = DataLakeStore()
        report = LoadExtractionQuery(store, lake).extract_week("region-0", 0)
        payload = report.as_dict()
        assert payload["region"] == "region-0"
        assert payload["extracted_points"] > 0
        assert payload["verified"] is False

    def test_extraction_readback_verification(self, raw_setup):
        _, _, store = raw_setup
        lake = DataLakeStore(write_format="sgx")
        report = LoadExtractionQuery(store, lake).extract_week("region-0", 0, verify=True)
        assert report.verified
        assert report.servers > 0

    def test_extraction_verification_detects_lost_write(self, raw_setup):
        from repro.telemetry.extraction import ExtractionVerificationError

        _, _, store = raw_setup

        class LossyLake(DataLakeStore):
            def write_extract(self, key, frame, **kwargs):
                trimmed = frame.select(frame.server_ids()[:-1])  # drop one server
                return super().write_extract(key, trimmed, **kwargs)

        lake = LossyLake(write_format="sgx")
        with pytest.raises(ExtractionVerificationError, match="did not read back"):
            LoadExtractionQuery(store, lake).extract_week("region-0", 0, verify=True)
