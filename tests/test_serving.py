"""Tests for the unified prediction-serving API (repro.serving)."""

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import SeagullPipeline
from repro.models.persistent import PreviousDayForecaster
from repro.parallel.executor import PartitionedExecutor
from repro.serving import (
    NoActiveVersionError,
    PredictionCache,
    PredictionRequest,
    PredictionService,
    ServingError,
    VersionMismatchError,
    history_fingerprint,
    prediction_cache_key,
)
from repro.telemetry.fleet import default_fleet_spec
from repro.telemetry.generator import WorkloadGenerator

from tests.helpers import diurnal_series


def fitted_forecaster(seed=0, days=7):
    return PreviousDayForecaster().fit(diurnal_series(days, noise=0.3, seed=seed))


def service_with_version(region="r0", servers=("srv-0", "srv-1")):
    service = PredictionService()
    forecasters = {sid: fitted_forecaster(seed=i) for i, sid in enumerate(servers)}
    service.deploy(region, "persistent_previous_day", trained_week=1, forecasters=forecasters)
    return service


class TestRequestValidation:
    def test_rejects_bad_fields(self):
        with pytest.raises(ValueError):
            PredictionRequest(region="", server_id="s", n_points=1)
        with pytest.raises(ValueError):
            PredictionRequest(region="r", server_id="", n_points=1)
        with pytest.raises(ValueError):
            PredictionRequest(region="r", server_id="s", n_points=0)
        with pytest.raises(ValueError):
            PredictionRequest(region="r", server_id="s", n_points=1, version=0)


class TestPredict:
    def test_predict_routes_to_active_version(self):
        service = service_with_version()
        response = service.predict(PredictionRequest(region="r0", server_id="srv-0", n_points=12))
        assert len(response.series) == 12
        assert response.served_by_version == 1
        assert response.served_by_model == "persistent_previous_day"
        assert not response.cache_hit
        assert response.latency_seconds >= 0.0

    def test_predict_cache_hit_on_repeat(self):
        service = service_with_version()
        request = PredictionRequest(region="r0", server_id="srv-0", n_points=12)
        first = service.predict(request)
        second = service.predict(request)
        assert not first.cache_hit
        assert second.cache_hit
        assert second.series == first.series

    def test_use_cache_false_bypasses(self):
        service = service_with_version()
        request = PredictionRequest(region="r0", server_id="srv-0", n_points=12, use_cache=False)
        service.predict(request)
        assert not service.predict(request).cache_hit

    def test_no_active_version_raises(self):
        with pytest.raises(NoActiveVersionError):
            PredictionService().predict(
                PredictionRequest(region="nowhere", server_id="s", n_points=1)
            )

    def test_unknown_server_raises_serving_error(self):
        service = service_with_version()
        with pytest.raises(ServingError):
            service.predict(PredictionRequest(region="r0", server_id="ghost", n_points=1))

    def test_version_pin(self):
        service = service_with_version()
        service.deploy("r0", "ssa", 2, {"srv-0": fitted_forecaster(seed=9)})
        pinned = service.predict(
            PredictionRequest(region="r0", server_id="srv-0", n_points=6, version=1)
        )
        assert pinned.served_by_version == 1
        active = service.predict(PredictionRequest(region="r0", server_id="srv-0", n_points=6))
        assert active.served_by_version == 2

    def test_unknown_version_pin_raises(self):
        service = service_with_version()
        with pytest.raises(VersionMismatchError):
            service.predict(
                PredictionRequest(region="r0", server_id="srv-0", n_points=6, version=9)
            )

    def test_model_pin_accepts_aliases(self):
        service = service_with_version()
        response = service.predict(
            PredictionRequest(region="r0", server_id="srv-0", n_points=6, model="pf")
        )
        assert response.served_by_model == "persistent_previous_day"
        with pytest.raises(VersionMismatchError):
            service.predict(
                PredictionRequest(region="r0", server_id="srv-0", n_points=6, model="ssa")
            )


class TestPredictBatch:
    def test_batch_serves_all_servers(self):
        service = service_with_version()
        batch = service.predict_batch(region="r0", n_points=12)
        assert batch.n_served == 2
        assert sorted(batch.predictions()) == ["srv-0", "srv-1"]
        assert batch.skipped == ()
        assert batch.failed == ()

    def test_batch_isolates_skips_and_failures(self):
        service = PredictionService()
        service.deploy(
            "r0",
            "pf",
            1,
            {"good": fitted_forecaster(), "bad": PreviousDayForecaster()},  # bad: unfitted
        )
        batch = service.predict_batch(
            region="r0", n_points=6, server_ids=["good", "bad", "ghost"]
        )
        assert list(batch.predictions()) == ["good"]
        assert batch.skipped == ("ghost",)
        assert batch.failed_ids == ("bad",)

    def test_batch_cache_hits_counted(self):
        service = service_with_version()
        cold = service.predict_batch(region="r0", n_points=12)
        warm = service.predict_batch(region="r0", n_points=12)
        assert cold.cache_hits == 0
        assert warm.cache_hits == 2
        assert warm.predictions() == cold.predictions()

    def test_batch_with_thread_executor(self):
        with PartitionedExecutor("threads", 2) as executor:
            service = PredictionService(executor=executor)
            forecasters = {f"srv-{i}": fitted_forecaster(seed=i) for i in range(8)}
            service.deploy("r0", "pf", 1, forecasters)
            batch = service.predict_batch(region="r0", n_points=12, use_cache=False)
            assert batch.n_served == 8
            assert batch.n_partitions == 2

    def test_process_executor_rejected(self):
        with pytest.raises(ValueError):
            PredictionService(executor=PartitionedExecutor("processes", 2))

    def test_concurrent_scoring_keeps_exact_endpoint_counts(self):
        from concurrent.futures import ThreadPoolExecutor

        from repro.core.endpoints import ScoringEndpoint

        forecasters = {f"srv-{i}": fitted_forecaster(seed=i) for i in range(4)}
        endpoint = ScoringEndpoint("r0", "pf", 1, forecasters)
        rounds = 50

        def hammer(server_id):
            for _ in range(rounds):
                endpoint.predict_many([server_id, "ghost"], 6)

        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(hammer, forecasters))
        # Counter increments are lock-protected: no lost updates under
        # concurrent fan-out.
        assert endpoint.request_count == 4 * rounds
        assert endpoint.failure_count == 0

    def test_batch_preserves_request_order(self):
        service = service_with_version()
        service.predict(PredictionRequest(region="r0", server_id="srv-1", n_points=12))
        batch = service.predict_batch(region="r0", n_points=12, server_ids=["srv-1", "srv-0"])
        assert [r.server_id for r in batch.responses] == ["srv-1", "srv-0"]


class TestFallbackRouting:
    """Registry fallback must re-route serving and show up in health()."""

    def test_fallback_routes_to_previous_known_good_version(self):
        service = PredictionService()
        v1_forecaster = fitted_forecaster(seed=1)
        service.deploy("r0", "pf", 1, {"srv-0": v1_forecaster})
        v1_series = service.predict(
            PredictionRequest(region="r0", server_id="srv-0", n_points=12)
        ).series
        service.deploy("r0", "pf", 2, {"srv-0": fitted_forecaster(seed=2, days=8)})
        v2 = service.predict(PredictionRequest(region="r0", server_id="srv-0", n_points=12))
        assert v2.served_by_version == 2
        assert not service.health("r0")["fell_back"]

        service.registry.fallback("r0")
        restored = service.predict(
            PredictionRequest(region="r0", server_id="srv-0", n_points=12)
        )
        assert restored.served_by_version == 1
        assert restored.series == v1_series

    def test_health_reports_the_flip(self):
        service = PredictionService()
        service.deploy("r0", "pf", 1, {"srv-0": fitted_forecaster(seed=1)})
        service.deploy("r0", "pf", 2, {"srv-0": fitted_forecaster(seed=2)})
        service.registry.fallback("r0")
        health = service.health("r0")
        assert health["fell_back"] is True
        assert health["active_version"] == 1
        assert health["failed_versions"] == [2]
        overall = service.health()
        assert overall["regions"]["r0"]["fell_back"] is True

    def test_regressed_pipeline_deployment_serves_known_good_version(self):
        """End to end: a pipeline run whose accuracy regresses falls back,
        and the serving layer immediately routes to the prior version."""
        spec = default_fleet_spec(servers_per_region=(10,), weeks=4, seed=5)
        frame = WorkloadGenerator(spec).generate_region("region-0")
        config = PipelineConfig(fallback_threshold_pct=100.1)
        pipeline = SeagullPipeline(config)
        first = pipeline.run(frame, region="region-0", week=2)
        second = pipeline.run(frame, region="region-0", week=3)
        assert second.fell_back
        server_id = next(iter(first.predictions))
        response = pipeline.serving.predict(
            PredictionRequest(region="region-0", server_id=server_id, n_points=288)
        )
        assert response.served_by_version == first.model_record.version
        health = pipeline.serving.health("region-0")
        assert health["fell_back"] is True
        assert health["active_version"] == first.model_record.version


class TestPredictionCache:
    def test_lru_eviction(self):
        cache = PredictionCache(capacity=2)
        series = diurnal_series(1)
        k1 = prediction_cache_key("r", "a", 1, 4, "f")
        k2 = prediction_cache_key("r", "b", 1, 4, "f")
        k3 = prediction_cache_key("r", "c", 1, 4, "f")
        cache.put(k1, series)
        cache.put(k2, series)
        assert cache.get(k1) is not None  # refresh k1; k2 becomes LRU
        cache.put(k3, series)
        assert cache.get(k2) is None
        assert cache.get(k1) is not None
        assert cache.stats.evictions == 1

    def test_stats_counters(self):
        cache = PredictionCache(capacity=4)
        key = prediction_cache_key("r", "a", 1, 4, "f")
        assert cache.get(key) is None
        cache.put(key, diurnal_series(1))
        assert cache.get(key) is not None
        stats = cache.stats
        assert stats.hits == 1 and stats.misses == 1 and stats.size == 1
        assert 0.0 < stats.hit_rate < 1.0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PredictionCache(capacity=0)

    def test_fingerprint_distinguishes_histories(self):
        a = fitted_forecaster(seed=1)
        b = fitted_forecaster(seed=2)
        assert history_fingerprint(a) != history_fingerprint(b)
        assert history_fingerprint(a) == history_fingerprint(fitted_forecaster(seed=1))
        assert history_fingerprint(PreviousDayForecaster()) == "unfitted"

    def test_retraining_changes_cache_key(self):
        """Same region/server/horizon but new history must miss the cache."""
        service = PredictionService()
        service.deploy("r0", "pf", 1, {"srv-0": fitted_forecaster(seed=1)})
        first = service.predict(PredictionRequest(region="r0", server_id="srv-0", n_points=6))
        service.deploy("r0", "pf", 2, {"srv-0": fitted_forecaster(seed=3, days=9)})
        second = service.predict(PredictionRequest(region="r0", server_id="srv-0", n_points=6))
        assert not second.cache_hit
        assert second.served_by_version == 2
        assert first.series != second.series


class TestDeployPrecomputed:
    def test_precomputed_round_trip(self):
        prediction = diurnal_series(1)
        service = PredictionService()
        record = service.deploy_precomputed("r0", {"srv-0": prediction}, model_name="pf")
        assert record.version == 1
        response = service.predict(
            PredictionRequest(region="r0", server_id="srv-0", n_points=len(prediction))
        )
        assert response.series == prediction

    def test_servers_listing(self):
        service = service_with_version()
        assert service.servers("r0") == ["srv-0", "srv-1"]
        assert service.regions() == ["r0"]


class TestHealthPublishing:
    def test_publish_health_records_dashboard_events(self):
        from repro.core.dashboard import Dashboard

        dashboard = Dashboard()
        service = PredictionService(dashboard=dashboard)
        service.deploy("r0", "pf", 1, {"srv-0": fitted_forecaster()})
        service.publish_health(run_id="probe")
        events = dashboard.events(kind="serving_health")
        assert len(events) == 1
        assert events[0].payload["active_version"] == 1

    def test_pipeline_rejects_serving_that_cannot_persist_records(self):
        """A pipeline given a document store must not silently adopt an
        injected service whose registry skips persistence."""
        from repro.core.registry import ModelRegistry
        from repro.storage.documentdb import DocumentStore

        store = DocumentStore()
        with pytest.raises(ValueError):
            SeagullPipeline(
                PipelineConfig(), document_store=store, serving=PredictionService()
            )
        # A store-backed registry behind the service is accepted and used.
        registry = ModelRegistry(store, container="models")
        pipeline = SeagullPipeline(
            PipelineConfig(),
            document_store=store,
            serving=PredictionService(registry=registry),
        )
        assert pipeline.registry is registry
        spec = default_fleet_spec(servers_per_region=(6,), weeks=4, seed=3)
        frame = WorkloadGenerator(spec).generate_region("region-0")
        result = pipeline.run(frame, region="region-0", week=3)
        assert result.succeeded
        assert store.count("models") >= 1

    def test_pipeline_run_emits_serving_health(self):
        spec = default_fleet_spec(servers_per_region=(8,), weeks=4, seed=7)
        frame = WorkloadGenerator(spec).generate_region("region-0")
        pipeline = SeagullPipeline(PipelineConfig())
        result = pipeline.run(frame, region="region-0", week=3)
        assert result.succeeded
        events = pipeline.dashboard.events(region="region-0", kind="serving_health")
        assert events
        assert events[-1].payload["active_version"] == result.model_record.version