"""Unit tests for telemetry regularisation and resampling."""

import numpy as np
import pytest

from repro.timeseries.resample import coverage_fraction, downsample_mean, fill_gaps, regularize
from repro.timeseries.series import LoadSeries

from tests.helpers import make_series


class TestRegularize:
    def test_bucket_mean_aggregation(self):
        ts = np.array([0, 1, 2, 5, 6])
        vs = np.array([10.0, 20.0, 30.0, 40.0, 60.0])
        series = regularize(ts, vs, 5)
        assert series.timestamps.tolist() == [0, 5]
        assert series.values.tolist() == [20.0, 50.0]

    def test_unordered_input(self):
        ts = np.array([6, 0, 5, 1])
        vs = np.array([60.0, 10.0, 40.0, 20.0])
        series = regularize(ts, vs, 5)
        assert series.timestamps.tolist() == [0, 5]
        assert series.values.tolist() == [15.0, 50.0]

    def test_empty_input(self):
        series = regularize([], [], 5)
        assert series.is_empty
        assert series.interval_minutes == 5

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            regularize([0, 1], [1.0], 5)

    def test_gaps_are_not_filled(self):
        ts = np.array([0, 20])
        vs = np.array([1.0, 2.0])
        series = regularize(ts, vs, 5)
        assert series.timestamps.tolist() == [0, 20]


class TestFillGaps:
    def test_interpolates_missing_points(self):
        gappy = regularize(np.array([0, 20]), np.array([0.0, 4.0]), 5)
        filled = fill_gaps(gappy)
        assert filled.timestamps.tolist() == [0, 5, 10, 15, 20]
        assert filled.values.tolist() == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_constant_fill(self):
        gappy = regularize(np.array([0, 15]), np.array([1.0, 2.0]), 5)
        filled = fill_gaps(gappy, fill_value=0.0)
        assert filled.values.tolist() == [1.0, 0.0, 0.0, 2.0]

    def test_no_gaps_is_copy(self):
        series = make_series([1, 2, 3])
        assert fill_gaps(series) == series

    def test_single_point_is_copy(self):
        series = make_series([5.0])
        assert fill_gaps(series) == series


class TestDownsample:
    def test_five_to_fifteen_minutes(self):
        series = make_series([1, 2, 3, 4, 5, 6], start=0, interval=5)
        coarse = downsample_mean(series, 15)
        assert coarse.interval_minutes == 15
        assert coarse.values.tolist() == [2.0, 5.0]

    def test_same_interval_returns_copy(self):
        series = make_series([1, 2, 3])
        assert downsample_mean(series, 5) == series

    def test_rejects_finer_interval(self):
        series = make_series([1, 2], interval=15)
        with pytest.raises(ValueError):
            downsample_mean(series, 5)

    def test_rejects_non_multiple(self):
        series = make_series([1, 2], interval=5)
        with pytest.raises(ValueError):
            downsample_mean(series, 7)

    def test_empty_series(self):
        coarse = downsample_mean(LoadSeries.empty(5), 15)
        assert coarse.is_empty
        assert coarse.interval_minutes == 15


class TestCoverage:
    def test_full_coverage(self):
        series = make_series([1, 2, 3, 4], start=0)
        assert coverage_fraction(series, 0, 20) == pytest.approx(1.0)

    def test_partial_coverage(self):
        series = make_series([1, 2], start=0)
        assert coverage_fraction(series, 0, 20) == pytest.approx(0.5)

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            coverage_fraction(make_series([1]), 10, 10)
