"""Unit tests for the preemptive auto-scale use case (Appendix A)."""

import numpy as np
import pytest

from repro.autoscale.classification import classify_databases
from repro.autoscale.policy import (
    AutoscalePolicy,
    ScaleAction,
    capacity_headroom_histogram,
    pct_reaching_capacity,
)
from repro.autoscale.predictor import AutoscalePredictor
from repro.telemetry.fleet import sql_database_fleet_spec
from repro.telemetry.generator import WorkloadGenerator
from repro.timeseries.frame import LoadFrame, ServerMetadata
from repro.timeseries.series import LoadSeries

from tests.helpers import make_series


@pytest.fixture(scope="module")
def sql_fleet() -> LoadFrame:
    spec = sql_database_fleet_spec(n_databases=40, weeks=4, seed=23)
    return WorkloadGenerator(spec).generate_fleet()


class TestDatabaseClassification:
    def test_classifies_every_database(self, sql_fleet):
        result = classify_databases(sql_fleet)
        assert result.n_databases == len(sql_fleet)
        assert set(result.stable_ids) | set(result.unstable_ids) == set(sql_fleet.server_ids())

    def test_percentages_sum_to_100(self, sql_fleet):
        result = classify_databases(sql_fleet)
        assert result.pct_stable + result.pct_unstable == pytest.approx(100.0)

    def test_some_but_not_all_databases_stable(self, sql_fleet):
        """Appendix A reports ~19% stable; the synthetic fleet should land in
        a broad band around that (neither zero nor everything)."""
        result = classify_databases(sql_fleet)
        assert 5.0 < result.pct_stable < 60.0

    def test_empty_fleet(self):
        result = classify_databases(LoadFrame(15))
        assert np.isnan(result.pct_stable)

    def test_as_dict(self, sql_fleet):
        payload = classify_databases(sql_fleet).as_dict()
        assert payload["n_databases"] == len(sql_fleet)


class TestAutoscalePredictor:
    def test_fleet_evaluation_produces_scores(self, sql_fleet):
        predictor = AutoscalePredictor(training_days=7)
        evaluation = predictor.evaluate_fleet(
            sql_fleet.select(sql_fleet.server_ids()[:8]),
            model_names=["persistent_previous_day", "ssa"],
        )
        scores = {score.model_name: score for score in evaluation.scores()}
        assert set(scores) == {"persistent_previous_day", "ssa"}
        for score in scores.values():
            assert score.n_databases > 0
            assert score.mean_nrmse >= 0 or np.isnan(score.mean_nrmse)

    def test_persistent_forecast_has_negligible_fit_cost(self, sql_fleet):
        predictor = AutoscalePredictor()
        evaluation = predictor.evaluate_fleet(
            sql_fleet.select(sql_fleet.server_ids()[:5]),
            model_names=["persistent_previous_day"],
        )
        score = evaluation.score("persistent_previous_day")
        assert score.total_fit_seconds < 1.0

    def test_predict_database_skips_short_history(self):
        predictor = AutoscalePredictor()
        short = make_series(np.full(10, 5.0), interval=15)
        result = predictor.predict_database("db", short, "persistent_previous_day", target_day=20)
        assert result is None

    def test_invalid_training_days(self):
        with pytest.raises(ValueError):
            AutoscalePredictor(training_days=0)

    def test_forecast_metrics_finite_for_valid_database(self, sql_fleet):
        predictor = AutoscalePredictor()
        sid = next(
            sid for sid, md, s in sql_fleet.items() if md.true_class != "short_lived"
        )
        series = sql_fleet.series(sid)
        result = predictor.predict_database(sid, series, "persistent_previous_day", series.days()[-1])
        assert result is not None
        assert len(result.forecast) == 96


class TestAutoscalePolicy:
    def test_scale_up_on_high_predicted_peak(self):
        policy = AutoscalePolicy()
        forecast = make_series(np.full(96, 90.0), interval=15)
        recommendation = policy.recommend("db", forecast)
        assert recommendation.action is ScaleAction.SCALE_UP
        assert recommendation.headroom_pct == pytest.approx(10.0)

    def test_scale_down_on_low_peak(self):
        policy = AutoscalePolicy()
        forecast = make_series(np.full(96, 10.0), interval=15)
        assert policy.recommend("db", forecast).action is ScaleAction.SCALE_DOWN

    def test_hold_in_between(self):
        policy = AutoscalePolicy()
        forecast = make_series(np.full(96, 50.0), interval=15)
        assert policy.recommend("db", forecast).action is ScaleAction.HOLD

    def test_empty_forecast_holds(self):
        recommendation = AutoscalePolicy().recommend("db", LoadSeries.empty(15))
        assert recommendation.action is ScaleAction.HOLD
        assert np.isnan(recommendation.predicted_peak)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            AutoscalePolicy(scale_up_threshold=20.0, scale_down_threshold=30.0)

    def test_fleet_recommendations_and_counts(self):
        policy = AutoscalePolicy()
        forecasts = {
            "hot": make_series(np.full(96, 95.0), interval=15),
            "cold": make_series(np.full(96, 5.0), interval=15),
        }
        recommendations = policy.recommend_fleet(forecasts)
        counts = policy.action_counts(recommendations)
        assert counts["scale_up"] == 1
        assert counts["scale_down"] == 1
        assert counts["hold"] == 0


class TestCapacityAnalysis:
    def test_histogram_sums_to_100(self, sql_fleet):
        histogram = capacity_headroom_histogram(sql_fleet)
        assert sum(histogram.values()) == pytest.approx(100.0)

    def test_pct_reaching_capacity_bounds(self, sql_fleet):
        pct = pct_reaching_capacity(sql_fleet)
        assert 0.0 <= pct <= 100.0

    def test_minority_of_servers_reach_capacity(self, small_fleet):
        """Figure 13(b): only a small minority of servers ever reach their
        CPU capacity within the observation window."""
        pct = pct_reaching_capacity(small_fleet)
        assert pct < 25.0

    def test_empty_frame(self):
        assert capacity_headroom_histogram(LoadFrame(5)) == {}
        assert np.isnan(pct_reaching_capacity(LoadFrame(5)))
