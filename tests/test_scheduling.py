"""Unit tests for the backup-scheduling use case (fabric, scheduler, runner, impact)."""

import numpy as np
import pytest

from repro.features.extractor import FeatureExtractionModule
from repro.metrics.predictable import PredictabilityVerdict
from repro.scheduling.backup import BackupScheduler, ScheduleOutcome
from repro.scheduling.fabric import BACKUP_WINDOW_PROPERTY, FabricPropertyStore
from repro.scheduling.impact import BackupImpactAnalyzer
from repro.scheduling.runner import RunnerService
from repro.timeseries.calendar import MINUTES_PER_DAY
from repro.timeseries.frame import LoadFrame, ServerMetadata
from repro.timeseries.series import LoadSeries

from tests.helpers import POINTS_PER_DAY, diurnal_series


def predictable_verdict(server_id="srv", predictable=True) -> PredictabilityVerdict:
    return PredictabilityVerdict(
        server_id=server_id,
        evaluated_days=(6, 13, 20),
        window_correct_days=(6, 13, 20) if predictable else (6,),
        load_accurate_days=(6, 13, 20) if predictable else (6,),
        required_days=3,
        predictable=predictable,
    )


def metadata_for(server_id: str, backup_day: int = 27, offset: int = 600) -> ServerMetadata:
    start = backup_day * MINUTES_PER_DAY + offset
    return ServerMetadata(
        server_id=server_id,
        region="region-0",
        default_backup_start=start,
        default_backup_end=start + 60,
        backup_duration_minutes=60,
    )


class TestFabricPropertyStore:
    def test_set_and_get(self):
        fabric = FabricPropertyStore()
        fabric.set_property("srv", "key", 5)
        assert fabric.get_property("srv", "key") == 5

    def test_versioning(self):
        fabric = FabricPropertyStore()
        fabric.set_property("srv", "key", 1)
        record = fabric.set_property("srv", "key", 2)
        assert record.version == 2

    def test_default_for_missing(self):
        assert FabricPropertyStore().get_property("srv", "missing", default="x") == "x"

    def test_clear_property(self):
        fabric = FabricPropertyStore()
        fabric.set_property("srv", "key", 1)
        assert fabric.clear_property("srv", "key") is True
        assert fabric.clear_property("srv", "key") is False

    def test_backup_window_helpers(self):
        fabric = FabricPropertyStore()
        fabric.set_backup_window_start("srv", 1234)
        assert fabric.backup_window_start("srv") == 1234
        assert fabric.backup_window_start("other") is None
        assert fabric.servers_with_property(BACKUP_WINDOW_PROPERTY) == ["srv"]


class TestBackupScheduler:
    def test_predictable_server_moves_to_predicted_window(self):
        metadata = metadata_for("srv")
        truth = diurnal_series(28, noise=0.2, seed=1)
        prediction = truth.day(27)
        decision = BackupScheduler().schedule_server(metadata, prediction, predictable_verdict())
        assert decision.outcome is ScheduleOutcome.MOVED_TO_PREDICTED_WINDOW
        assert decision.moved
        assert decision.backup_day == 27
        # The chosen start must lie within the backup day.
        assert 27 * MINUTES_PER_DAY <= decision.scheduled_start < 28 * MINUTES_PER_DAY

    def test_unpredictable_server_keeps_default(self):
        metadata = metadata_for("srv")
        prediction = diurnal_series(28).day(27)
        decision = BackupScheduler().schedule_server(
            metadata, prediction, predictable_verdict(predictable=False)
        )
        assert decision.outcome is ScheduleOutcome.DEFAULT_KEPT_NOT_PREDICTABLE
        assert decision.scheduled_start == metadata.default_backup_start

    def test_missing_verdict_keeps_default(self):
        metadata = metadata_for("srv")
        decision = BackupScheduler().schedule_server(metadata, diurnal_series(28).day(27), None)
        assert not decision.moved

    def test_missing_prediction_keeps_default(self):
        decision = BackupScheduler().schedule_server(metadata_for("srv"), None, predictable_verdict())
        assert decision.outcome is ScheduleOutcome.DEFAULT_KEPT_NO_PREDICTION

    def test_unusable_prediction_keeps_default(self):
        # Prediction covers the wrong day, so no window can be found.
        wrong_day = diurnal_series(1)
        decision = BackupScheduler().schedule_server(
            metadata_for("srv"), wrong_day, predictable_verdict()
        )
        assert decision.outcome is ScheduleOutcome.DEFAULT_KEPT_PREDICTION_UNUSABLE

    def test_fabric_property_written(self):
        scheduler = BackupScheduler()
        metadata = metadata_for("srv")
        scheduler.schedule_server(metadata, diurnal_series(28).day(27), predictable_verdict())
        assert scheduler.fabric.backup_window_start("srv") is not None

    def test_schedule_fleet(self):
        scheduler = BackupScheduler()
        metadata = {f"srv-{i}": metadata_for(f"srv-{i}") for i in range(3)}
        predictions = {f"srv-{i}": diurnal_series(28, seed=i).day(27) for i in range(3)}
        verdicts = {f"srv-{i}": predictable_verdict(f"srv-{i}", predictable=(i != 1)) for i in range(3)}
        decisions = scheduler.schedule_fleet(metadata, predictions, verdicts)
        assert len(decisions) == 3
        assert decisions["srv-0"].moved
        assert not decisions["srv-1"].moved

    def test_decision_as_dict(self):
        decision = BackupScheduler().schedule_server(
            metadata_for("srv"), diurnal_series(28).day(27), predictable_verdict()
        )
        payload = decision.as_dict()
        assert payload["server_id"] == "srv"
        assert payload["outcome"] == "moved_to_predicted_window"


def serving_with(predictions, region="region-0"):
    """A PredictionService with one deployed version replaying ``predictions``."""
    from repro.serving import PredictionService

    serving = PredictionService()
    serving.deploy_precomputed(region, predictions, model_name="pf", trained_week=3)
    return serving


class TestRunnerService:
    def test_run_day_schedules_fleet(self):
        predictions = {"srv-0": diurnal_series(28).day(27)}
        runner = RunnerService("region-0", serving=serving_with(predictions))
        metadata = {"srv-0": metadata_for("srv-0")}
        verdicts = {"srv-0": predictable_verdict("srv-0")}
        execution = runner.run_day("cluster-1", 27, metadata, verdicts)
        assert execution.succeeded
        assert "srv-0" in execution.decisions
        assert execution.decisions["srv-0"].moved
        # Predictions were obtained through the serving layer.
        assert execution.serving is not None
        assert execution.serving.n_served == 1
        assert execution.serving.served_by_version == 1
        assert runner.availability() == 1.0

    def test_repeated_run_day_served_from_prediction_cache(self):
        predictions = {"srv-0": diurnal_series(28).day(27)}
        runner = RunnerService("region-0", serving=serving_with(predictions))
        metadata = {"srv-0": metadata_for("srv-0")}
        verdicts = {"srv-0": predictable_verdict("srv-0")}
        first = runner.run_day("cluster-1", 27, metadata, verdicts)
        second = runner.run_day("cluster-2", 27, metadata, verdicts)
        assert first.serving.cache_hits == 0
        assert second.serving.cache_hits == 1
        assert first.decisions["srv-0"].scheduled_start == second.decisions[
            "srv-0"
        ].scheduled_start

    def test_no_active_version_keeps_default_windows(self):
        from repro.serving import PredictionService

        runner = RunnerService("region-0", serving=PredictionService())
        metadata = {"srv-0": metadata_for("srv-0")}
        execution = runner.run_day("cluster-1", 27, metadata, {})
        assert execution.succeeded
        assert execution.serving is None
        assert execution.decisions["srv-0"].scheduled_start == metadata[
            "srv-0"
        ].default_backup_start

    def test_failed_probe_blocks_scheduling(self):
        runner = RunnerService("region-0", probes={"backup_service": lambda: False})
        execution = runner.run_day("cluster-1", 27, {}, {})
        assert not execution.succeeded
        assert execution.decisions == {}
        assert runner.availability() == 0.0

    def test_raising_probe_is_recorded_not_raised(self):
        def broken():
            raise RuntimeError("probe down")

        runner = RunnerService("region-0", probes={"bad": broken})
        execution = runner.run_day("cluster-1", 27, {}, {})
        assert not execution.succeeded
        assert execution.probes[0].detail == "probe down"

    def test_only_own_region_scheduled(self):
        runner = RunnerService("region-1", serving=serving_with({}, region="region-1"))
        metadata = {"srv-0": metadata_for("srv-0")}  # region-0 server
        execution = runner.run_day("cluster-1", 27, metadata, {})
        assert execution.decisions == {}

    def test_add_probe_and_executions(self):
        runner = RunnerService("region-0")
        runner.add_probe("ok", lambda: True)
        runner.run_day("c", 1, {}, {})
        assert len(runner.executions()) == 1

    def _lake_with_due_servers(self):
        from repro.storage.datalake import DataLakeStore, ExtractKey

        lake = DataLakeStore(write_format="sgx")
        frame = LoadFrame(5)
        frame.add_server(metadata_for("srv-0"), diurnal_series(28))
        frame.add_server(metadata_for("srv-1"), diurnal_series(28, seed=2))
        lake.write_extract(ExtractKey("region-0", 0), frame)
        other = LoadFrame(5)
        other_metadata = ServerMetadata(
            server_id="foreign", region="region-9", default_backup_start=100
        )
        other.add_server(other_metadata, diurnal_series(1))
        lake.write_extract(ExtractKey("region-9", 0), other)
        return lake

    def test_run_day_from_lake_streams_due_metadata(self):
        predictions = {"srv-0": diurnal_series(28).day(27)}
        runner = RunnerService("region-0", serving=serving_with(predictions))
        lake = self._lake_with_due_servers()
        verdicts = {"srv-0": predictable_verdict("srv-0")}
        execution = runner.run_day_from_lake("cluster-1", 27, lake, verdicts)
        assert execution.succeeded
        # Both region-0 servers were scheduled; the foreign region's
        # extract partition was never scanned.
        assert set(execution.decisions) == {"srv-0", "srv-1"}
        assert execution.decisions["srv-0"].moved

    def test_run_day_from_lake_narrows_with_query(self):
        from repro.storage.query import ExtractQuery

        runner = RunnerService("region-0", serving=serving_with({}))
        lake = self._lake_with_due_servers()
        execution = runner.run_day_from_lake(
            "cluster-1",
            27,
            lake,
            {},
            query=ExtractQuery(servers=("srv-1",), regions=("ignored",)),
        )
        # The runner forces its own region; the server allow-list holds.
        assert set(execution.decisions) == {"srv-1"}


class TestBackupImpactAnalyzer:
    def build_fleet(self):
        """Three servers: one with a deep daily valley (default collides with
        the peak), one stable, one busy with a valley."""
        frame = LoadFrame(5)

        # Daily-pattern server: valley at night, default backup at noon peak.
        diurnal = diurnal_series(28, base=10, amplitude=60, noise=0.3, seed=1)
        frame.add_server(metadata_for("daily", offset=720), diurnal)

        # Stable server: any window is a lowest-load window.
        stable_values = np.clip(12 + np.random.default_rng(2).normal(0, 1, 28 * POINTS_PER_DAY), 0, 100)
        frame.add_server(metadata_for("stable", offset=300), LoadSeries.from_values(stable_values))

        # Busy server: load above 60 most of the day with a short quiet window.
        busy_values = np.full(28 * POINTS_PER_DAY, 75.0)
        for day in range(28):
            start = day * POINTS_PER_DAY + 30
            busy_values[start : start + 48] = 20.0
        frame.add_server(metadata_for("busy", offset=720), LoadSeries.from_values(busy_values))
        return frame

    def test_impact_report(self):
        frame = self.build_fleet()
        features = FeatureExtractionModule().extract_frame(frame)
        scheduler = BackupScheduler()
        predictions = {sid: frame.series(sid).day(26).shift(MINUTES_PER_DAY) for sid in frame.server_ids()}
        verdicts = {sid: predictable_verdict(sid) for sid in frame.server_ids()}
        metadata = {sid: frame.metadata(sid) for sid in frame.server_ids()}
        decisions = scheduler.schedule_fleet(metadata, predictions, verdicts)

        report = BackupImpactAnalyzer().analyze(frame, decisions, features)
        assert report.n_servers == 3
        # The daily and busy servers' backups moved into their valleys.
        assert report.pct_moved_to_ll_window > 0
        assert report.improved_hours > 0
        # The stable server's default window already is a LL window.
        assert report.pct_stable_default_already_ll == pytest.approx(100.0)
        # The busy server avoided a collision.
        assert report.pct_busy_collisions_avoided == pytest.approx(100.0)
        assert report.pct_windows_incorrect < 50.0

    def test_empty_decisions(self):
        report = BackupImpactAnalyzer().analyze(LoadFrame(5), {}, {})
        assert report.n_servers == 0
        assert np.isnan(report.pct_moved_to_ll_window)
