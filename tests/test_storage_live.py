"""Unit tests for the live tail: WAL framing, replay, sealing, tail reads.

Layered bottom-up: the raw WAL (torn tails, CRC damage, watermark
dedupe), the read-side :class:`LiveTailIndex`, the
:class:`LiveIngestor` write surface (sealing = one manifest
transaction), and the query/scan/aggregate unification of committed
segments with unsealed tail rows -- plus the gc-vs-active-tail safety
regression.
"""

import warnings

import numpy as np
import pytest

from repro.storage.datalake import DataLakeStore, ExtractKey, ExtractNotFoundError
from repro.storage.live import (
    NO_WATERMARK,
    LiveIngestError,
    LiveIngestor,
    LiveTailIndex,
    LiveWalError,
    LiveWalWarning,
    StaleBatchError,
    committed_seal_watermark,
    wal_path,
)
from repro.storage.live.wal import TailWal, read_tail
from repro.storage.query import ExtractQuery, ScanStats
from repro.timeseries.calendar import MINUTES_PER_DAY
from repro.timeseries.frame import LoadFrame, ServerMetadata
from repro.timeseries.resample import regularize

from tests.helpers import make_series

META = ServerMetadata(server_id="srv-a", region="r0")
META_B = ServerMetadata(server_id="srv-b", region="r0")
KEY = ExtractKey(region="r0", week=0)


def minute_batch(start, n, level=10.0):
    """``n`` one-minute raw samples starting at ``start``."""
    ts = np.arange(start, start + n, dtype=np.int64)
    return ts, np.full(n, level, dtype=np.float64)


# ---------------------------------------------------------------------- #
# WAL framing and replay
# ---------------------------------------------------------------------- #


class TestTailWal:
    def test_roundtrip_preserves_batches_and_metadata(self, tmp_path):
        path = wal_path(tmp_path, "r0", 0)
        wal, replay = TailWal.open(path, "r0", 0, 5)
        assert replay.frames == [] and replay.sealed_through == NO_WATERMARK
        ts, vs = minute_batch(0, 7, level=3.5)
        wal.append(META, ts, vs)
        wal.append(META_B, ts + 7, vs + 1.0)
        wal.close()

        replay = read_tail(path)
        assert [f.metadata.server_id for f in replay.frames] == ["srv-a", "srv-b"]
        assert replay.frames[0].metadata.region == "r0"
        np.testing.assert_array_equal(replay.frames[0].timestamps, ts)
        np.testing.assert_array_equal(replay.frames[1].values, vs + 1.0)
        assert replay.rows == 14 and not replay.torn

    def test_lives_under_manifest_live_dir(self, tmp_path):
        path = wal_path(tmp_path, "r0", 3)
        assert path == tmp_path / "_manifest" / "live" / "r0" / "week0003.tail.wal"

    def test_torn_tail_drops_partial_frame_loudly(self, tmp_path):
        path = wal_path(tmp_path, "r0", 0)
        wal, _ = TailWal.open(path, "r0", 0, 5)
        wal.append(META, *minute_batch(0, 5))
        wal.append(META, *minute_batch(5, 5))
        wal.close()
        intact = path.stat().st_size
        path.write_bytes(path.read_bytes() + b"\x09\x00\x00\x00partial")

        with pytest.warns(LiveWalWarning, match="torn trailing"):
            replay = read_tail(path)
        assert replay.torn and replay.frames_dropped == 1
        assert len(replay.frames) == 2 and replay.rows == 10
        assert replay.bytes_dropped == path.stat().st_size - intact

    def test_crc_damage_drops_frame_and_everything_after(self, tmp_path):
        path = wal_path(tmp_path, "r0", 0)
        wal, _ = TailWal.open(path, "r0", 0, 5)
        wal.append(META, *minute_batch(0, 5))
        wal.append(META, *minute_batch(5, 5))
        wal.append(META, *minute_batch(10, 5))
        wal.close()
        good = read_tail(path)
        data = bytearray(path.read_bytes())
        # Flip a payload byte in the middle frame: its CRC no longer
        # matches, so it and the (valid) frame after it are dropped.
        frame_len = (path.stat().st_size - good.bytes_dropped) // 3  # same-size frames
        header_end = path.stat().st_size - 3 * frame_len
        data[header_end + frame_len + 40] ^= 0xFF
        path.write_bytes(bytes(data))

        with pytest.warns(LiveWalWarning):
            replay = read_tail(path)
        assert len(replay.frames) == 1 and replay.frames_dropped == 1
        np.testing.assert_array_equal(replay.frames[0].timestamps, np.arange(5))

    def test_torn_header_replays_as_unacknowledged_empty_tail(self, tmp_path):
        path = wal_path(tmp_path, "r0", 0)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"SGW")  # creation crashed inside the header
        with pytest.warns(LiveWalWarning, match="header torn"):
            replay = read_tail(path)
        assert replay.frames == [] and replay.bytes_dropped == 3

    def test_open_self_heals_torn_tail(self, tmp_path):
        path = wal_path(tmp_path, "r0", 0)
        wal, _ = TailWal.open(path, "r0", 0, 5)
        wal.append(META, *minute_batch(0, 5))
        wal.close()
        path.write_bytes(path.read_bytes() + b"\xde\xad\xbe\xef")

        with pytest.warns(LiveWalWarning):
            wal, replay = TailWal.open(path, "r0", 0, 5)
        wal.close()
        assert replay.torn and replay.rows == 5
        # The rewrite left coherent bytes: a fresh replay is clean.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            healed = read_tail(path)
        assert not healed.torn and healed.rows == 5

    def test_replay_dedupes_rows_below_watermark(self, tmp_path):
        path = wal_path(tmp_path, "r0", 0)
        wal, _ = TailWal.open(path, "r0", 0, 5)
        wal.append(META, *minute_batch(0, 10))  # entirely below
        wal.append(META, *minute_batch(5, 10))  # straddles
        wal.close()

        replay = read_tail(path, watermark=10)
        assert replay.sealed_through == 10
        assert replay.frames_deduped == 1 and len(replay.frames) == 1
        np.testing.assert_array_equal(replay.frames[0].timestamps, np.arange(10, 15))

    def test_open_against_foreign_partition_raises(self, tmp_path):
        path = wal_path(tmp_path, "r0", 0)
        wal, _ = TailWal.open(path, "r0", 0, 5)
        wal.append(META, *minute_batch(0, 5))
        wal.close()
        with pytest.raises(LiveWalError, match="belongs to"):
            TailWal.open(path, "r1", 0, 5)

    def test_rewrite_is_atomic_and_cleans_stray_tmps(self, tmp_path):
        path = wal_path(tmp_path, "r0", 0)
        wal, _ = TailWal.open(path, "r0", 0, 5)
        wal.append(META, *minute_batch(0, 5))
        wal.close()
        stray = path.with_name(path.name + ".tmp-999")
        stray.write_bytes(b"leftover from a crashed rewrite")

        wal, replay = TailWal.open(path, "r0", 0, 5)
        wal.close()
        assert not stray.exists()
        assert replay.rows == 5

    def test_fsync_every_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="fsync_every"):
            TailWal(wal_path(tmp_path, "r0", 0), "r0", 0, 5, fsync_every=0)


class TestLiveTailIndex:
    def test_keys_discovers_on_disk_tails(self, tmp_path):
        for region, week in [("r0", 0), ("r0", 2), ("r1", 1)]:
            wal, _ = TailWal.open(wal_path(tmp_path, region, week), region, week, 5)
            wal.close()
        index = LiveTailIndex(tmp_path)
        assert index.keys() == [("r0", 0), ("r0", 2), ("r1", 1)]

    def test_tail_caches_until_wal_changes(self, tmp_path):
        wal, _ = TailWal.open(wal_path(tmp_path, "r0", 0), "r0", 0, 5)
        wal.append(META, *minute_batch(0, 5))
        wal.flush()
        index = LiveTailIndex(tmp_path)
        first = index.tail("r0", 0)
        assert first is not None and first.raw_rows == 5
        assert index.tail("r0", 0) is first  # unchanged signature -> cached

        wal.append(META, *minute_batch(5, 5))
        wal.flush()
        assert index.tail("r0", 0).raw_rows == 10
        wal.close()

    def test_empty_or_missing_tail_is_none(self, tmp_path):
        index = LiveTailIndex(tmp_path)
        assert index.tail("r0", 0) is None
        wal, _ = TailWal.open(wal_path(tmp_path, "r0", 0), "r0", 0, 5)
        wal.close()
        assert index.tail("r0", 0) is None  # header only, no frames


# ---------------------------------------------------------------------- #
# LiveIngestor
# ---------------------------------------------------------------------- #


def make_ingestor(tmp_path, **kwargs):
    store = DataLakeStore(tmp_path / "lake")
    kwargs.setdefault("interval_minutes", 5)
    kwargs.setdefault("chunk_minutes", MINUTES_PER_DAY)
    return store, LiveIngestor(store, **kwargs)


class TestLiveIngestor:
    def test_requires_on_disk_unpinned_store(self, tmp_path):
        with pytest.raises(ValueError, match="on-disk"):
            LiveIngestor(DataLakeStore())
        store = DataLakeStore(tmp_path / "lake")
        store.write_extract(KEY, LoadFrame(5))
        pinned = DataLakeStore(tmp_path / "lake", pinned_generation=1)
        with pytest.raises(ValueError, match="pinned"):
            LiveIngestor(pinned)

    def test_chunk_must_be_multiple_of_interval(self, tmp_path):
        store = DataLakeStore(tmp_path / "lake")
        with pytest.raises(ValueError, match="multiple"):
            LiveIngestor(store, interval_minutes=7, chunk_minutes=MINUTES_PER_DAY)

    def test_ingest_accumulates_and_reopen_replays(self, tmp_path):
        store, ingestor = make_ingestor(tmp_path)
        ingestor.ingest(KEY, META, *minute_batch(0, 60))
        ingestor.ingest(KEY, META_B, *minute_batch(0, 30))
        assert ingestor.pending_rows(KEY) == 90
        assert ingestor.tails() == [KEY]
        ingestor.close()

        reopened = LiveIngestor(store, interval_minutes=5)
        assert reopened.pending_rows(KEY) == 90
        assert reopened.watermark(KEY) == NO_WATERMARK
        reopened.close()

    def test_seal_commits_one_manifest_transaction(self, tmp_path):
        store, ingestor = make_ingestor(tmp_path)
        ingestor.ingest(KEY, META, *minute_batch(0, MINUTES_PER_DAY + 60))
        report = ingestor.seal(KEY, MINUTES_PER_DAY)
        ingestor.close()

        assert report.sealed_through == MINUTES_PER_DAY
        assert report.rows_sealed == MINUTES_PER_DAY // 5
        assert report.servers == ("srv-a",)
        assert report.generation == 1
        assert report.tail_rows_remaining == 60
        assert store.manifest.current().generation == 1
        assert committed_seal_watermark(store.root, "r0", 0) == MINUTES_PER_DAY

        # The committed segment holds exactly the sealed window; the
        # unified read surface adds the 60 unsealed minutes on top.
        sealed = store.read_extract(KEY, fmt="sgx")
        assert sealed.series("srv-a").start == 0
        assert len(sealed.series("srv-a")) == MINUTES_PER_DAY // 5
        unified = store.read_extract(KEY)
        assert len(unified.series("srv-a")) == (MINUTES_PER_DAY + 60) // 5

    def test_seal_boundary_must_be_chunk_aligned(self, tmp_path):
        _, ingestor = make_ingestor(tmp_path)
        ingestor.ingest(KEY, META, *minute_batch(0, MINUTES_PER_DAY))
        with pytest.raises(LiveIngestError, match="not aligned"):
            ingestor.seal(KEY, 77)
        ingestor.close()

    def test_seal_with_nothing_below_boundary_is_noop(self, tmp_path):
        _, ingestor = make_ingestor(tmp_path)
        assert ingestor.seal(KEY) is None  # no tail at all
        ingestor.ingest(KEY, META, *minute_batch(MINUTES_PER_DAY, 10))
        assert ingestor.seal(KEY, MINUTES_PER_DAY) is None
        ingestor.close()

    def test_stale_batch_below_watermark_rejected(self, tmp_path):
        store, ingestor = make_ingestor(tmp_path)
        ingestor.ingest(KEY, META, *minute_batch(0, MINUTES_PER_DAY))
        ingestor.seal(KEY, MINUTES_PER_DAY)
        with pytest.raises(StaleBatchError, match="immutable"):
            ingestor.ingest(KEY, META, *minute_batch(MINUTES_PER_DAY - 5, 10))
        # At/above the watermark is fine.
        assert ingestor.ingest(KEY, META, *minute_batch(MINUTES_PER_DAY, 10)) == 10
        ingestor.close()

    def test_consecutive_seals_extend_the_segment(self, tmp_path):
        store, ingestor = make_ingestor(tmp_path)
        ingestor.ingest(KEY, META, *minute_batch(0, 2 * MINUTES_PER_DAY))
        first = ingestor.seal(KEY, MINUTES_PER_DAY)
        second = ingestor.seal(KEY, 2 * MINUTES_PER_DAY)
        ingestor.close()

        assert (first.generation, second.generation) == (1, 2)
        assert second.window_start == MINUTES_PER_DAY
        series = store.read_extract(KEY).series("srv-a")
        assert len(series) == 2 * MINUTES_PER_DAY // 5
        assert ingestor.pending_rows() == 0

    def test_seal_due_seals_every_tail_to_the_boundary(self, tmp_path):
        _, ingestor = make_ingestor(tmp_path)
        other = ExtractKey(region="r1", week=0)
        ingestor.ingest(KEY, META, *minute_batch(0, MINUTES_PER_DAY + 30))
        ingestor.ingest(other, ServerMetadata(server_id="x", region="r1"),
                        *minute_batch(0, MINUTES_PER_DAY))
        reports = ingestor.seal_due(MINUTES_PER_DAY + 30)
        ingestor.close()
        assert [r.key for r in reports] == [KEY, other]
        assert all(r.sealed_through == MINUTES_PER_DAY for r in reports)

    def test_seal_preserves_pinned_reader(self, tmp_path):
        store, ingestor = make_ingestor(tmp_path)
        frame = LoadFrame(5)
        frame.add_server(META, make_series([1.0] * 288, start=0))
        store.write_extract(KEY, frame)  # generation 1
        pinned = DataLakeStore(store.root, pinned_generation=1)

        ingestor.ingest(KEY, META, *minute_batch(MINUTES_PER_DAY, MINUTES_PER_DAY))
        report = ingestor.seal(KEY, 2 * MINUTES_PER_DAY)
        ingestor.close()
        assert report.generation == 2
        # The pinned reader still sees exactly generation 1's bytes and
        # never the tail.
        assert len(pinned.read_extract(KEY).series("srv-a")) == 288
        assert pinned.query(ExtractQuery.for_key(KEY)).stats.tail_rows_scanned == 0


# ---------------------------------------------------------------------- #
# Query/scan/aggregate unification
# ---------------------------------------------------------------------- #


class TestTailReads:
    def test_query_unifies_committed_and_tail(self, tmp_path):
        store, ingestor = make_ingestor(tmp_path)
        ingestor.ingest(KEY, META, *minute_batch(0, MINUTES_PER_DAY + 300))
        ingestor.seal(KEY, MINUTES_PER_DAY)

        result = store.query(ExtractQuery.for_key(KEY))
        series = result.frame.series("srv-a")
        assert len(series) == (MINUTES_PER_DAY + 300) // 5
        assert result.stats.tail_rows_scanned == 300
        ingestor.close()

    def test_tail_only_partition_visible_to_query_not_read_extract(self, tmp_path):
        store, ingestor = make_ingestor(tmp_path)
        ingestor.ingest(KEY, META, *minute_batch(0, 50))
        ingestor.flush()

        result = store.query(ExtractQuery.for_key(KEY))
        assert len(result.frame.series("srv-a")) == 10  # 50 raw -> 5-minute grid
        with pytest.raises(ExtractNotFoundError):
            store.read_extract(KEY)  # stored-segment contract unchanged
        ingestor.close()

    def test_include_tail_false_and_forced_fmt_exclude_tail(self, tmp_path):
        store, ingestor = make_ingestor(tmp_path)
        ingestor.ingest(KEY, META, *minute_batch(0, MINUTES_PER_DAY + 300))
        ingestor.seal(KEY, MINUTES_PER_DAY)

        committed_rows = MINUTES_PER_DAY // 5
        no_tail = store.query(ExtractQuery.for_key(KEY), include_tail=False)
        assert len(no_tail.frame.series("srv-a")) == committed_rows
        assert no_tail.stats.tail_rows_scanned == 0
        forced = store.query(ExtractQuery.for_key(KEY, fmt="sgx"))
        assert len(forced.frame.series("srv-a")) == committed_rows
        ingestor.close()

    def test_tail_rows_respect_server_and_range_filters(self, tmp_path):
        store, ingestor = make_ingestor(tmp_path)
        ingestor.ingest(KEY, META, *minute_batch(0, 100))
        ingestor.ingest(KEY, META_B, *minute_batch(0, 100))
        ingestor.flush()

        result = store.query(
            ExtractQuery.for_key(KEY, servers=("srv-b",), start_minute=50, end_minute=80)
        )
        assert list(result.frame.server_ids()) == ["srv-b"]
        series = result.frame.series("srv-b")
        assert series.start >= 50 and series.timestamps.max() < 80
        # Raw tail rows are only counted for servers that pass the filter.
        assert result.stats.tail_rows_scanned == 100
        ingestor.close()

    def test_scan_streams_tail_after_committed(self, tmp_path):
        store, ingestor = make_ingestor(tmp_path)
        ingestor.ingest(KEY, META, *minute_batch(0, MINUTES_PER_DAY + 300))
        ingestor.seal(KEY, MINUTES_PER_DAY)

        stats = ScanStats()
        items = list(store.scan(ExtractQuery.for_key(KEY), stats=stats))
        ingestor.close()
        assert [meta.server_id for _key, meta, _series in items] == ["srv-a", "srv-a"]
        assert stats.tail_rows_scanned == 300
        total = sum(len(series) for _key, _meta, series in items)
        assert total == (MINUTES_PER_DAY + 300) // 5

    def test_aggregate_answer_is_invariant_across_seal(self, tmp_path):
        store, ingestor = make_ingestor(tmp_path)
        rng = np.random.default_rng(3)
        ts = np.arange(0, MINUTES_PER_DAY, dtype=np.int64)
        vs = rng.uniform(0.0, 100.0, ts.size)
        ingestor.ingest(KEY, META, ts, vs)
        ingestor.flush()

        q = ExtractQuery.for_key(KEY, aggregates=("count", "sum", "min", "max"))
        before = store.query(q).aggregates[()]
        ingestor.seal(KEY, MINUTES_PER_DAY)
        after = store.query(q).aggregates[()]
        ingestor.close()
        assert before["count"] == after["count"] == MINUTES_PER_DAY // 5
        assert before["sum"] == pytest.approx(after["sum"])
        assert (before["min"], before["max"]) == (
            pytest.approx(after["min"]), pytest.approx(after["max"])
        )

    def test_no_double_count_when_crash_left_sealed_rows_in_wal(self, tmp_path):
        store, ingestor = make_ingestor(tmp_path)
        ingestor.ingest(KEY, META, *minute_batch(0, MINUTES_PER_DAY + 60))
        ingestor.seal(KEY, MINUTES_PER_DAY)
        ingestor.close()

        # Simulate the crash window between commit and trim: restore a
        # WAL that still carries the sealed rows.
        wal, _ = TailWal.open(wal_path(store.root, "r0", 0), "r0", 0, 5)
        wal.rewrite([], NO_WATERMARK)
        wal.append(META, *minute_batch(0, MINUTES_PER_DAY + 60))
        wal.close()

        result = store.query(ExtractQuery.for_key(KEY))
        # The txlog watermark wins: sealed rows surface exactly once.
        assert len(result.frame.series("srv-a")) == (MINUTES_PER_DAY + 60) // 5
        assert result.stats.tail_rows_scanned == 60


# ---------------------------------------------------------------------- #
# Satellite 2: gc never touches an active tail
# ---------------------------------------------------------------------- #


class TestGcSafety:
    def test_collect_garbage_mid_ingestion_preserves_the_tail(self, tmp_path):
        store, ingestor = make_ingestor(tmp_path)
        ingestor.ingest(KEY, META, *minute_batch(0, 2 * MINUTES_PER_DAY))
        ingestor.seal(KEY, MINUTES_PER_DAY)  # gen 1
        ingestor.seal(KEY, 2 * MINUTES_PER_DAY)  # gen 2: gen-1 segment is garbage
        ingestor.ingest(KEY, META, *minute_batch(2 * MINUTES_PER_DAY, 120))
        ingestor.flush()

        wal_file = wal_path(store.root, "r0", 0)
        before = wal_file.read_bytes()
        report = store.manifest.collect_garbage()
        assert report.segments_removed >= 1  # the superseded gen-1 segment

        # The active tail is untouched, on disk and still queryable.
        assert wal_file.read_bytes() == before
        result = store.query(ExtractQuery.for_key(KEY))
        assert result.stats.tail_rows_scanned == 120
        assert len(result.frame.series("srv-a")) == (2 * MINUTES_PER_DAY + 120) // 5

        # And the ingestor keeps working across the gc.
        ingestor.ingest(KEY, META, *minute_batch(2 * MINUTES_PER_DAY + 120, 60))
        assert ingestor.pending_rows(KEY) == 180
        ingestor.close()

    def test_orphan_sweep_ignores_live_tmp_files(self, tmp_path):
        store, ingestor = make_ingestor(tmp_path)
        ingestor.ingest(KEY, META, *minute_batch(0, MINUTES_PER_DAY))
        ingestor.seal(KEY, MINUTES_PER_DAY)
        ingestor.close()
        # A crashed WAL rewrite can leave a tmp inside _manifest/live;
        # only TailWal.open may reclaim it, never the manifest sweep/gc.
        stray = wal_path(store.root, "r0", 0).with_name("week0000.tail.wal.tmp-1")
        stray.write_bytes(b"crashed rewrite")

        store.manifest.collect_garbage()
        assert stray.exists()
        wal, _ = TailWal.open(wal_path(store.root, "r0", 0), "r0", 0, 5)
        wal.close()
        assert not stray.exists()


# ---------------------------------------------------------------------- #
# Satellite 1: honest interval_minutes (resample parity)
# ---------------------------------------------------------------------- #


class TestIntervalResampleParity:
    @pytest.mark.parametrize("fmt", ["sgx", "csv"])
    def test_query_interval_matches_manual_resample(self, tmp_path, fmt):
        store = DataLakeStore(tmp_path / "lake", write_format=fmt)
        rng = np.random.default_rng(11)
        frame = LoadFrame(5)
        for meta in (META, META_B):
            frame.add_server(
                meta,
                make_series(rng.uniform(0.0, 100.0, 288), start=0, interval=5),
            )
        store.write_extract(KEY, frame)

        native = store.query(ExtractQuery.for_key(KEY, interval_minutes=None)).frame
        bucketed = store.query(ExtractQuery.for_key(KEY, interval_minutes=60)).frame
        for server_id, _meta, series in native.items():
            expected = regularize(series.timestamps, series.values, 60)
            got = bucketed.series(server_id)
            assert got.interval_minutes == 60
            np.testing.assert_array_equal(got.timestamps, expected.timestamps)
            np.testing.assert_allclose(got.values, expected.values)

    def test_ranged_resample_stays_inside_the_range(self, tmp_path):
        store = DataLakeStore(tmp_path / "lake")
        frame = LoadFrame(5)
        frame.add_server(META, make_series(np.arange(288.0), start=0, interval=5))
        store.write_extract(KEY, frame)

        result = store.query(
            ExtractQuery.for_key(
                KEY, interval_minutes=60, start_minute=90, end_minute=600
            )
        )
        series = result.frame.series("srv-a")
        # Bucket starts are grid-aligned, so the first surviving bucket
        # is 120 (the 60-bucket at 60 reaches back before 90).
        assert series.start >= 90
        assert int(series.timestamps.max()) < 600
        assert series.interval_minutes == 60

    def test_tail_rows_bucket_onto_the_requested_interval(self, tmp_path):
        store, ingestor = make_ingestor(tmp_path)
        ingestor.ingest(KEY, META, *minute_batch(0, 120, level=4.0))
        ingestor.flush()
        result = store.query(ExtractQuery.for_key(KEY, interval_minutes=30))
        series = result.frame.series("srv-a")
        assert series.interval_minutes == 30 and len(series) == 4
        np.testing.assert_allclose(series.values, 4.0)
        ingestor.close()
