"""Unit tests for the model registry / plug-in point."""

import pytest

from repro.models.base import Forecaster
from repro.models.persistent import PreviousDayForecaster
from repro.models.registry import (
    MODEL_DISPLAY_NAMES,
    UnknownModelError,
    available_models,
    canonical_name,
    create_forecaster,
    register_model,
)
from repro.models.seasonal import SeasonalAdditiveForecaster
from repro.models.ssa import SsaForecaster


class TestLookup:
    def test_available_models_contains_paper_lineup(self):
        models = available_models()
        for name in ("persistent_previous_day", "ssa", "feedforward", "seasonal_additive", "arima"):
            assert name in models

    def test_canonical_name_resolves_aliases(self):
        assert canonical_name("Prophet") == "seasonal_additive"
        assert canonical_name("NimbusML") == "ssa"
        assert canonical_name("gluon") == "feedforward"
        assert canonical_name("pf") == "persistent_previous_day"

    def test_unknown_model_raises(self):
        with pytest.raises(UnknownModelError):
            canonical_name("transformer-9000")

    def test_unknown_model_error_message_is_clean(self):
        with pytest.raises(UnknownModelError) as exc_info:
            canonical_name("transformer-9000")
        message = str(exc_info.value)
        # LookupError, not KeyError: str(err) must not carry repr-quoting
        # noise, and the message names the accepted aliases.
        assert message.startswith("unknown model 'transformer-9000'")
        assert "accepted aliases" in message
        assert "prophet" in message and "nimbus" in message
        assert isinstance(exc_info.value, LookupError)
        assert not isinstance(exc_info.value, KeyError)

    def test_create_forecaster_types(self):
        assert isinstance(create_forecaster("prophet"), SeasonalAdditiveForecaster)
        assert isinstance(create_forecaster("ssa"), SsaForecaster)
        assert isinstance(create_forecaster("persistent"), PreviousDayForecaster)

    def test_display_names_cover_all_models(self):
        for name in available_models():
            assert name in MODEL_DISPLAY_NAMES


class TestRegisterModel:
    def test_register_and_create_custom_model(self):
        class ConstantForecaster(PreviousDayForecaster):
            name = "constant_test_model"

        register_model("constant_test_model", ConstantForecaster, overwrite=True)
        created = create_forecaster("constant_test_model")
        assert isinstance(created, ConstantForecaster)
        assert isinstance(created, Forecaster)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_model("ssa", SsaForecaster)
