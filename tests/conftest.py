"""Shared fixtures for the Seagull reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.telemetry.fleet import FleetSpec, ServerClass, default_fleet_spec
from repro.telemetry.generator import WorkloadGenerator
from repro.timeseries.calendar import MINUTES_PER_DAY
from repro.timeseries.frame import LoadFrame, ServerMetadata
from repro.timeseries.series import LoadSeries

from tests.helpers import POINTS_PER_DAY, diurnal_series


@pytest.fixture
def simple_series() -> LoadSeries:
    """Four weeks of a clean diurnal trace."""
    return diurnal_series(28, noise=0.5, seed=3)


@pytest.fixture
def stable_series() -> LoadSeries:
    """Four weeks of near-constant load."""
    rng = np.random.default_rng(11)
    n = 28 * POINTS_PER_DAY
    return LoadSeries.from_values(np.clip(15 + rng.normal(0, 1.0, n), 0, 100))


@pytest.fixture
def small_metadata() -> ServerMetadata:
    backup_start = 27 * MINUTES_PER_DAY + 600
    return ServerMetadata(
        server_id="srv-1",
        region="region-0",
        default_backup_start=backup_start,
        default_backup_end=backup_start + 60,
        backup_duration_minutes=60,
    )


@pytest.fixture(scope="session")
def small_fleet_spec() -> FleetSpec:
    return default_fleet_spec(servers_per_region=(30, 15), weeks=4, seed=21)


@pytest.fixture(scope="session")
def small_fleet(small_fleet_spec) -> LoadFrame:
    """A two-region, 45-server synthetic fleet shared by many tests."""
    return WorkloadGenerator(small_fleet_spec).generate_fleet()


@pytest.fixture(scope="session")
def region_frame(small_fleet) -> LoadFrame:
    """Only the first region of the shared fleet."""
    return small_fleet.filter(lambda metadata, series: metadata.region == "region-0")


@pytest.fixture(scope="session")
def class_servers() -> dict[str, LoadSeries]:
    """One generated server per ground-truth class, keyed by class name."""
    spec = default_fleet_spec(servers_per_region=(1,), weeks=4, seed=5)
    generator = WorkloadGenerator(spec)
    servers: dict[str, LoadSeries] = {}
    for server_class in ServerClass:
        generated = generator.generate_server(
            f"probe-{server_class.value}", "region-0", server_class
        )
        servers[server_class.value] = generated.series
    return servers
