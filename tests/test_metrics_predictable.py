"""Unit tests for the predictable-server rule (Definition 9)."""

import numpy as np

from repro.metrics.predictable import is_predictable_server
from repro.timeseries.calendar import MINUTES_PER_DAY
from repro.timeseries.series import LoadSeries

from tests.helpers import POINTS_PER_DAY, diurnal_series


def perfect_prediction_case(n_days=28):
    truth = diurnal_series(n_days, noise=0.2, seed=7)
    # A prediction equal to the truth on every evaluation day.
    return truth, truth


class TestPredictableServer:
    def test_perfect_predictions_are_predictable(self):
        truth, predicted = perfect_prediction_case()
        verdict = is_predictable_server(
            "srv", truth, predicted, evaluation_days=[6, 13, 20], backup_duration_minutes=60
        )
        assert verdict.predictable
        assert verdict.evaluated_days == (6, 13, 20)
        assert verdict.window_correct_days == (6, 13, 20)
        assert verdict.load_accurate_days == (6, 13, 20)

    def test_too_few_days_is_not_predictable(self):
        truth, predicted = perfect_prediction_case()
        verdict = is_predictable_server(
            "srv", truth, predicted, evaluation_days=[6, 13], backup_duration_minutes=60
        )
        assert not verdict.predictable
        assert "required" in verdict.reason

    def test_one_bad_day_breaks_predictability(self):
        truth = diurnal_series(28, noise=0.2, seed=7)
        # Corrupt the prediction on day 13: shift the diurnal shape by half a
        # day so the predicted valley lands on the true peak.
        predicted_values = truth.values.copy()
        day13 = slice(13 * POINTS_PER_DAY, 14 * POINTS_PER_DAY)
        predicted_values[day13] = np.roll(predicted_values[day13], POINTS_PER_DAY // 2)
        predicted = LoadSeries.from_values(predicted_values)
        verdict = is_predictable_server(
            "srv", truth, predicted, evaluation_days=[6, 13, 20], backup_duration_minutes=60
        )
        assert not verdict.predictable
        assert 13 not in verdict.window_correct_days or 13 not in verdict.load_accurate_days

    def test_missing_days_reported_in_reason(self):
        truth = diurnal_series(7)
        predicted = truth
        verdict = is_predictable_server(
            "srv", truth, predicted, evaluation_days=[6, 30, 40], backup_duration_minutes=60
        )
        assert not verdict.predictable
        assert verdict.evaluated_days == (6,)

    def test_required_days_configurable(self):
        truth, predicted = perfect_prediction_case()
        verdict = is_predictable_server(
            "srv",
            truth,
            predicted,
            evaluation_days=[6],
            backup_duration_minutes=60,
            required_days=1,
        )
        assert verdict.predictable

    def test_as_dict_contains_core_fields(self):
        truth, predicted = perfect_prediction_case()
        verdict = is_predictable_server(
            "srv", truth, predicted, evaluation_days=[6, 13, 20], backup_duration_minutes=60
        )
        payload = verdict.as_dict()
        assert payload["server_id"] == "srv"
        assert payload["predictable"] is True
        assert payload["evaluated_days"] == [6, 13, 20]

    def test_duplicate_days_are_deduplicated(self):
        truth, predicted = perfect_prediction_case()
        verdict = is_predictable_server(
            "srv", truth, predicted, evaluation_days=[6, 6, 13, 20], backup_duration_minutes=60
        )
        assert verdict.evaluated_days == (6, 13, 20)
