"""Unit tests for the ML forecasters (SSA, feed-forward, seasonal, ARIMA)."""

import numpy as np
import pytest

from repro.metrics.standard import mean_absolute_error
from repro.models.arima import ArimaConfig, ArimaForecaster
from repro.models.base import ForecastError
from repro.models.feedforward import FeedForwardConfig, FeedForwardForecaster
from repro.models.seasonal import SeasonalAdditiveForecaster, SeasonalConfig
from repro.models.ssa import SsaForecaster
from repro.timeseries.series import LoadSeries

from tests.helpers import POINTS_PER_DAY, diurnal_series, make_series


@pytest.fixture(scope="module")
def weekly_history() -> LoadSeries:
    """One week of a clean diurnal trace used to train every model."""
    return diurnal_series(7, base=20, amplitude=40, noise=1.0, seed=4)


@pytest.fixture(scope="module")
def next_day_truth() -> LoadSeries:
    return diurnal_series(8, base=20, amplitude=40, noise=1.0, seed=4).day(7)


class TestSsaForecaster:
    def test_forecast_tracks_diurnal_shape(self, weekly_history, next_day_truth):
        forecast = SsaForecaster(rank=6).fit(weekly_history).predict(POINTS_PER_DAY)
        error = mean_absolute_error(forecast.values, next_day_truth.values)
        assert error < 8.0

    def test_forecast_clipped_to_valid_range(self, weekly_history):
        forecast = SsaForecaster().fit(weekly_history).predict(POINTS_PER_DAY)
        assert forecast.minimum() >= 0.0
        assert forecast.maximum() <= 100.0

    def test_history_too_short_raises(self):
        with pytest.raises(ForecastError):
            SsaForecaster().fit(make_series([1.0, 2.0]))

    def test_rank_validation(self):
        with pytest.raises(ValueError):
            SsaForecaster(rank=0)

    def test_custom_window(self, weekly_history):
        forecast = SsaForecaster(window_points=96, rank=4).fit(weekly_history).predict(48)
        assert len(forecast) == 48


class TestFeedForwardForecaster:
    def test_learns_diurnal_shape(self, weekly_history, next_day_truth):
        config = FeedForwardConfig(hidden_units=32, epochs=8, seed=1)
        forecast = FeedForwardForecaster(config).fit(weekly_history).predict(POINTS_PER_DAY)
        error = mean_absolute_error(forecast.values, next_day_truth.values)
        # The network should clearly beat a constant-mean prediction.
        baseline = mean_absolute_error(
            np.full(POINTS_PER_DAY, weekly_history.mean()), next_day_truth.values
        )
        assert error < baseline

    def test_deterministic_given_seed(self, weekly_history):
        config = FeedForwardConfig(epochs=2, seed=7)
        first = FeedForwardForecaster(config).fit(weekly_history).predict(48)
        second = FeedForwardForecaster(config).fit(weekly_history).predict(48)
        np.testing.assert_allclose(first.values, second.values)

    def test_history_too_short_raises(self):
        with pytest.raises(ForecastError):
            FeedForwardForecaster().fit(make_series(np.ones(100)))

    def test_multi_chunk_forecast_length(self, weekly_history):
        config = FeedForwardConfig(epochs=2, seed=3)
        forecast = FeedForwardForecaster(config).fit(weekly_history).predict(POINTS_PER_DAY + 7)
        assert len(forecast) == POINTS_PER_DAY + 7


class TestSeasonalAdditiveForecaster:
    def test_learns_daily_seasonality(self, weekly_history, next_day_truth):
        forecast = SeasonalAdditiveForecaster().fit(weekly_history).predict(POINTS_PER_DAY)
        error = mean_absolute_error(forecast.values, next_day_truth.values)
        assert error < 8.0

    def test_selected_hyperparameters_exposed(self, weekly_history):
        model = SeasonalAdditiveForecaster().fit(weekly_history)
        selected = model.selected_hyperparameters
        assert "alpha" in selected and "n_changepoints" in selected
        assert selected["alpha"] in SeasonalConfig().ridge_candidates

    def test_history_too_short_raises(self):
        with pytest.raises(ForecastError):
            SeasonalAdditiveForecaster().fit(make_series([1.0, 2.0]))

    def test_flat_history_predicts_flat(self):
        history = make_series(np.full(7 * POINTS_PER_DAY, 42.0))
        forecast = SeasonalAdditiveForecaster().fit(history).predict(96)
        assert np.all(np.abs(forecast.values - 42.0) < 3.0)


class TestArimaForecaster:
    def test_forecast_on_autoregressive_signal(self):
        rng = np.random.default_rng(0)
        n = 600
        values = np.zeros(n)
        for t in range(1, n):
            values[t] = 0.8 * values[t - 1] + rng.normal(0, 1.0)
        values = np.clip(values + 30.0, 0, 100)
        history = make_series(values, interval=15)
        config = ArimaConfig(max_p=2, max_d=1, max_q=1, max_training_points=400)
        forecaster = ArimaForecaster(config).fit(history)
        forecast = forecaster.predict(8)
        assert len(forecast) == 8
        assert forecaster.order[0] >= 1  # picked an autoregressive order

    def test_history_too_short_raises(self):
        with pytest.raises(ForecastError):
            ArimaForecaster().fit(make_series(np.ones(8)))

    def test_training_points_cap_applies(self):
        config = ArimaConfig(max_p=1, max_d=0, max_q=0, max_training_points=64)
        history = make_series(np.sin(np.arange(500)) * 10 + 30)
        forecaster = ArimaForecaster(config).fit(history)
        assert len(forecaster.predict(4)) == 4

    def test_arima_is_markedly_slower_than_persistent(self):
        """The paper excludes ARIMA because its per-server order search is
        orders of magnitude more expensive than persistent forecast."""
        import time

        from repro.models.persistent import PreviousDayForecaster

        history = diurnal_series(7, noise=1.0, seed=9)

        start = time.perf_counter()
        PreviousDayForecaster().fit(history).predict(POINTS_PER_DAY)
        persistent_time = time.perf_counter() - start

        start = time.perf_counter()
        ArimaForecaster(ArimaConfig(max_p=1, max_d=1, max_q=1, max_training_points=576)).fit(
            history
        ).predict(POINTS_PER_DAY)
        arima_time = time.perf_counter() - start

        assert arima_time > 5 * persistent_time
