"""Unit tests for lowest-load windows (Definitions 7-8)."""

import numpy as np
import pytest

from repro.metrics.bucket_ratio import ErrorBound
from repro.metrics.ll_window import (
    LowestLoadWindow,
    WindowSearchError,
    default_window_is_lowest,
    is_window_correctly_chosen,
    lowest_load_window,
    predicted_and_true_windows,
    window_average_load,
    window_for_default_backup,
)
from repro.timeseries.calendar import MINUTES_PER_DAY
from repro.timeseries.series import LoadSeries

from tests.helpers import POINTS_PER_DAY, make_series


def day_with_valley(valley_start_point: int, valley_points: int, day: int = 0,
                    base: float = 50.0, valley_level: float = 5.0) -> LoadSeries:
    """One day of constant load with a rectangular valley."""
    values = np.full(POINTS_PER_DAY, base)
    values[valley_start_point : valley_start_point + valley_points] = valley_level
    return LoadSeries.from_values(values, start=day * MINUTES_PER_DAY)


class TestLowestLoadWindow:
    def test_finds_valley(self):
        series = day_with_valley(100, 12)  # one-hour valley at point 100
        window = lowest_load_window(series, 0, 60)
        assert window.start == 100 * 5
        assert window.average_load == pytest.approx(5.0)
        assert window.duration_minutes == 60

    def test_window_longer_than_valley_centers_on_cheapest_interval(self):
        series = day_with_valley(100, 6)  # 30-minute valley, 60-minute backup
        window = lowest_load_window(series, 0, 60)
        # The best 60-minute window must contain the whole valley.
        assert window.start <= 100 * 5
        assert window.end >= (100 + 6) * 5

    def test_ties_resolve_to_earliest(self):
        series = LoadSeries.from_values(np.full(POINTS_PER_DAY, 10.0))
        window = lowest_load_window(series, 0, 30)
        assert window.start == 0

    def test_day_offset_respected(self):
        series = day_with_valley(50, 12, day=3)
        window = lowest_load_window(series, 3, 60)
        assert window.start == 3 * MINUTES_PER_DAY + 50 * 5

    def test_missing_day_raises(self):
        series = day_with_valley(0, 12, day=0)
        with pytest.raises(WindowSearchError):
            lowest_load_window(series, 5, 60)

    def test_day_shorter_than_window_raises(self):
        series = make_series([1.0, 2.0, 3.0])
        with pytest.raises(WindowSearchError):
            lowest_load_window(series, 0, 60)

    def test_non_positive_duration_rejected(self):
        with pytest.raises(ValueError):
            lowest_load_window(day_with_valley(0, 1), 0, 0)

    def test_window_properties(self):
        window = LowestLoadWindow(start=100, duration_minutes=60, average_load=3.0)
        assert window.end == 160
        assert window.overlaps(LowestLoadWindow(start=150, duration_minutes=30, average_load=1.0))
        assert not window.overlaps(LowestLoadWindow(start=160, duration_minutes=30, average_load=1.0))
        assert window.as_dict()["duration_minutes"] == 60


class TestCorrectlyChosenWindow:
    def test_exact_match_is_correct(self):
        truth = day_with_valley(100, 12)
        assert is_window_correctly_chosen(truth, truth, 0, 60)

    def test_nonoverlapping_but_similar_load_is_correct(self):
        # Figure 8: predicted and true windows do not overlap but the true
        # load during the predicted window is only slightly higher.
        truth_values = np.full(POINTS_PER_DAY, 50.0)
        truth_values[100:112] = 5.0     # true LL window
        truth_values[200:212] = 7.0     # slightly worse second valley
        truth = LoadSeries.from_values(truth_values)

        predicted_values = np.full(POINTS_PER_DAY, 50.0)
        predicted_values[200:212] = 4.0  # prediction picks the second valley
        predicted = LoadSeries.from_values(predicted_values)

        assert is_window_correctly_chosen(predicted, truth, 0, 60)

    def test_prediction_pointing_at_busy_period_is_incorrect(self):
        # Figure 9: load predicted accurately during the predicted window,
        # but the true LL window is much lower -> incorrectly chosen.
        truth_values = np.full(POINTS_PER_DAY, 50.0)
        truth_values[100:112] = 2.0
        truth = LoadSeries.from_values(truth_values)

        predicted_values = np.full(POINTS_PER_DAY, 50.0)
        predicted_values[250:262] = 1.0
        predicted = LoadSeries.from_values(predicted_values)

        assert not is_window_correctly_chosen(predicted, truth, 0, 60)

    def test_orthogonality_window_correct_but_load_inaccurate(self):
        # Figure 10: the windows coincide, so the window is chosen correctly
        # even though the predicted level is far below the true level.
        truth_values = np.full(POINTS_PER_DAY, 80.0)
        truth_values[100:112] = 40.0
        truth = LoadSeries.from_values(truth_values)
        predicted = LoadSeries.from_values(np.where(truth_values == 40.0, 5.0, 60.0))
        assert is_window_correctly_chosen(predicted, truth, 0, 60)

    def test_custom_bound(self):
        truth_values = np.full(POINTS_PER_DAY, 50.0)
        truth_values[100:112] = 10.0
        truth_values[200:212] = 25.0
        truth = LoadSeries.from_values(truth_values)
        predicted_values = np.full(POINTS_PER_DAY, 50.0)
        predicted_values[200:212] = 1.0
        predicted = LoadSeries.from_values(predicted_values)
        # 15-point difference: incorrect under the default +10 bound, correct
        # under a looser +20 bound.
        assert not is_window_correctly_chosen(predicted, truth, 0, 60)
        loose = ErrorBound(over_tolerance=20.0, under_tolerance=5.0)
        assert is_window_correctly_chosen(predicted, truth, 0, 60, bound=loose)

    def test_predicted_and_true_windows_helper(self):
        truth = day_with_valley(100, 12)
        predicted = day_with_valley(50, 12)
        pred_window, true_window = predicted_and_true_windows(predicted, truth, 0, 60)
        assert pred_window.start == 50 * 5
        assert true_window.start == 100 * 5


class TestDefaultWindowHelpers:
    def test_window_average_load(self):
        series = make_series([10, 20, 30, 40], start=0)
        assert window_average_load(series, 0, 10) == pytest.approx(15.0)

    def test_window_for_default_backup(self):
        series = day_with_valley(0, 12)
        window = window_for_default_backup(series, 0, 60)
        assert window.average_load == pytest.approx(5.0)

    def test_default_window_is_lowest_true_case(self):
        series = day_with_valley(100, 24)
        assert default_window_is_lowest(series, 100 * 5, 0, 60)

    def test_default_window_is_lowest_false_case(self):
        series = day_with_valley(100, 24)
        assert not default_window_is_lowest(series, 0, 0, 60)
