"""Unit tests for the content-addressed artifact cache."""

import json

import pytest

from repro.storage.artifacts import (
    ARTIFACTS_CONTAINER,
    ArtifactStore,
    artifact_key,
    canonical_json,
    content_digest,
)
from repro.storage.documentdb import DocumentStore
from repro.timeseries.frame import LoadFrame, ServerMetadata
from repro.timeseries.series import LoadSeries


def make_frame(values=(1.0, 2.0, 3.0), region="region-0", backup_start=0):
    frame = LoadFrame(5)
    metadata = ServerMetadata(
        server_id="srv-1", region=region, default_backup_start=backup_start
    )
    frame.add_server(metadata, LoadSeries.from_values(list(values)))
    return frame


class TestArtifactKey:
    def test_key_is_stable(self):
        key_a = artifact_key("features", "abc", {"bound": 10, "threshold": 0.9})
        key_b = artifact_key("features", "abc", {"threshold": 0.9, "bound": 10})
        assert key_a == key_b
        assert key_a.startswith("features-")

    def test_key_changes_with_stage_input_and_params(self):
        base = artifact_key("features", "abc", {"bound": 10})
        assert artifact_key("train", "abc", {"bound": 10}) != base
        assert artifact_key("features", "abd", {"bound": 10}) != base
        assert artifact_key("features", "abc", {"bound": 11}) != base


class TestFrameContentHash:
    def test_hash_is_deterministic_and_order_insensitive(self):
        frame_a = LoadFrame(5)
        frame_b = LoadFrame(5)
        meta_1 = ServerMetadata(server_id="a")
        meta_2 = ServerMetadata(server_id="b")
        series = LoadSeries.from_values([1.0, 2.0])
        frame_a.add_server(meta_1, series)
        frame_a.add_server(meta_2, series)
        frame_b.add_server(meta_2, series)
        frame_b.add_server(meta_1, series)
        assert frame_a.content_hash() == frame_b.content_hash()

    def test_hash_changes_on_value_change(self):
        assert make_frame((1.0, 2.0, 3.0)).content_hash() != make_frame(
            (1.0, 2.0, 3.5)
        ).content_hash()

    def test_hash_changes_on_metadata_change(self):
        assert make_frame(backup_start=0).content_hash() != make_frame(
            backup_start=60
        ).content_hash()


class TestArtifactStoreHitMiss:
    def test_miss_then_hit(self):
        store = ArtifactStore()
        key = artifact_key("features", "hash", {})
        assert store.get(key) is None
        store.put(key, {"value": [1, 2, 3]})
        assert store.get(key) == {"value": [1, 2, 3]}
        assert store.stats.misses == 1
        assert store.stats.hits == 1
        assert store.stats.puts == 1
        assert store.stats.hit_rate == pytest.approx(0.5)

    def test_content_change_misses(self):
        store = ArtifactStore()
        store.put(artifact_key("features", make_frame((1.0,)).content_hash(), {}), {"x": 1})
        changed_key = artifact_key("features", make_frame((2.0,)).content_hash(), {})
        assert store.get(changed_key) is None

    def test_per_stage_counters(self):
        store = ArtifactStore()
        store.put(artifact_key("a_stage", "h", {}), {"x": 1})
        store.get(artifact_key("a_stage", "h", {}))
        store.get(artifact_key("b_stage", "h", {}))
        assert store.stats.hits_by_stage == {"a_stage": 1}
        assert store.stats.misses_by_stage == {"b_stage": 1}

    def test_invalidate_and_clear(self):
        store = ArtifactStore()
        key = artifact_key("s", "h", {})
        store.put(key, {"x": 1})
        assert store.invalidate(key)
        assert not store.invalidate(key)
        store.put(key, {"x": 1})
        store.clear()
        assert len(store) == 0
        assert store.get(key) is None


class TestCorruptionFallback:
    def test_checksum_mismatch_is_a_miss_and_evicts(self):
        backing = DocumentStore()
        store = ArtifactStore(backing)
        key = artifact_key("features", "h", {})
        store.put(key, {"x": 1})
        # Tamper with the payload without updating the checksum.
        document = backing.get(ARTIFACTS_CONTAINER, key)
        body = dict(document.body)
        body["payload"] = {"x": 2}
        backing.upsert(ARTIFACTS_CONTAINER, key, body)
        assert store.get(key) is None
        assert store.stats.corrupt_entries == 1
        # The corrupt entry was evicted; a fresh put works again.
        store.put(key, {"x": 3})
        assert store.get(key) == {"x": 3}

    def test_garbage_envelope_is_a_miss(self):
        backing = DocumentStore()
        store = ArtifactStore(backing)
        key = artifact_key("features", "h", {})
        backing.upsert(ARTIFACTS_CONTAINER, key, {"not": "an envelope"})
        assert store.get(key) is None
        assert store.stats.corrupt_entries == 1

    def test_failed_eviction_is_recorded_not_swallowed(self):
        # A corrupt entry whose eviction itself fails must still read as a
        # miss, and the failure must be visible in stats rather than
        # silently dropped.
        class StubbornStore(DocumentStore):
            def delete(self, container, key):
                raise RuntimeError("backing store refused the delete")

        backing = StubbornStore()
        store = ArtifactStore(backing)
        key = artifact_key("features", "h", {})
        store.put(key, {"x": 1})
        document = backing.get(ARTIFACTS_CONTAINER, key)
        body = dict(document.body)
        body["payload"] = {"x": 2}
        backing.upsert(ARTIFACTS_CONTAINER, key, body)
        assert store.get(key) is None
        assert store.stats.corrupt_entries == 1
        assert store.stats.failed_evictions == 1
        assert store.stats.as_dict()["failed_evictions"] == 1

    def test_unreadable_persisted_file_recovers(self, tmp_path):
        path = tmp_path / "artifacts.json"
        store = ArtifactStore.at(path)
        key = artifact_key("features", "h", {})
        store.put(key, {"x": 1})
        # Corrupt the JSON file on disk; reopening must not crash -- the bad
        # file is quarantined, the cache starts empty and the caller simply
        # recomputes.
        path.write_text("{ this is not json")
        fresh = ArtifactStore.at(path)
        assert fresh.get(key) is None
        assert (tmp_path / "artifacts.json.corrupt").exists()
        fresh.put(key, {"x": 2})
        assert ArtifactStore.at(path).get(key) == {"x": 2}

    def test_persisted_roundtrip(self, tmp_path):
        path = tmp_path / "artifacts.json"
        ArtifactStore.at(path).put(artifact_key("s", "h", {"p": 1}), {"data": [1.5, 2.5]})
        reopened = ArtifactStore.at(path)
        assert reopened.get(artifact_key("s", "h", {"p": 1})) == {"data": [1.5, 2.5]}


class TestCanonicalJson:
    def test_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_float_roundtrip_exact(self):
        value = 0.1 + 0.2
        assert json.loads(canonical_json({"v": value}))["v"] == value

    def test_content_digest_str_bytes_agree(self):
        assert content_digest("abc") == content_digest(b"abc")
