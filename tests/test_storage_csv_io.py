"""Unit tests for CSV extract serialisation."""

import pytest

from repro.storage import csv_io
from repro.timeseries.frame import LoadFrame, ServerMetadata

from tests.helpers import make_series


@pytest.fixture
def frame() -> LoadFrame:
    frame = LoadFrame(5)
    for index in range(3):
        frame.add_server(
            ServerMetadata(
                server_id=f"srv-{index}",
                region="region-7",
                engine="mysql",
                default_backup_start=100,
                default_backup_end=160,
                backup_duration_minutes=60,
                true_class="stable",
            ),
            make_series([float(index), float(index) + 1.0]),
        )
    return frame


class TestFileRoundTrip:
    def test_write_returns_row_count(self, frame, tmp_path):
        rows = csv_io.write_frame_csv(frame, tmp_path / "extract.csv")
        assert rows == 6

    def test_roundtrip_preserves_series_and_metadata(self, frame, tmp_path):
        path = tmp_path / "sub" / "extract.csv"
        csv_io.write_frame_csv(frame, path)
        loaded = csv_io.read_frame_csv(path)
        assert loaded.server_ids() == frame.server_ids()
        for sid in frame.server_ids():
            assert loaded.series(sid) == frame.series(sid)
            assert loaded.metadata(sid).engine == "mysql"
            assert loaded.metadata(sid).true_class == "stable"

    def test_read_missing_columns_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("server_id,foo\na,1\n")
        with pytest.raises(csv_io.CsvSchemaError):
            csv_io.read_frame_csv(path)

    def test_read_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(csv_io.CsvSchemaError):
            csv_io.read_frame_csv(path)


class TestTextRoundTrip:
    def test_text_roundtrip(self, frame):
        text = csv_io.frame_to_csv_text(frame)
        loaded = csv_io.frame_from_csv_text(text)
        assert loaded.total_points() == frame.total_points()

    def test_header_first_line(self, frame):
        text = csv_io.frame_to_csv_text(frame)
        assert text.splitlines()[0].startswith("server_id,timestamp_minutes")
