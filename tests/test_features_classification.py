"""Unit tests for server classification (Section 3.2, Figure 3)."""

import numpy as np
import pytest

from repro.features.classification import (
    PREDICTABLE_LABELS,
    ClassificationResult,
    ServerClassLabel,
    classify_frame,
    classify_server,
)
from repro.timeseries.frame import LoadFrame, ServerMetadata
from repro.timeseries.series import LoadSeries

from tests.helpers import POINTS_PER_DAY, diurnal_series, make_series, weekly_profile_series


class TestClassifyServer:
    def test_short_lived(self):
        assert classify_server(diurnal_series(10)) is ServerClassLabel.SHORT_LIVED

    def test_stable(self):
        rng = np.random.default_rng(1)
        series = make_series(np.clip(25 + rng.normal(0, 1.0, 28 * POINTS_PER_DAY), 0, 100))
        assert classify_server(series) is ServerClassLabel.STABLE

    def test_daily(self):
        assert classify_server(diurnal_series(28, noise=0.5, seed=2)) is ServerClassLabel.DAILY

    def test_weekly(self):
        assert classify_server(weekly_profile_series(28)) is ServerClassLabel.WEEKLY

    def test_no_pattern(self):
        rng = np.random.default_rng(9)
        values = np.clip(40 + np.cumsum(rng.normal(0, 2.0, 28 * POINTS_PER_DAY)), 0, 100)
        assert classify_server(LoadSeries.from_values(values)) is ServerClassLabel.NO_PATTERN

    def test_generated_classes_recovered(self, class_servers):
        # The synthetic generator's ground truth should be recovered by the
        # classifier for the unambiguous classes.
        assert classify_server(class_servers["stable"]) is ServerClassLabel.STABLE
        assert classify_server(class_servers["short_lived"]) is ServerClassLabel.SHORT_LIVED
        assert classify_server(class_servers["daily"]) in (
            ServerClassLabel.DAILY,
            ServerClassLabel.STABLE,
        )
        assert classify_server(class_servers["unstable"]) is ServerClassLabel.NO_PATTERN


class TestClassificationResult:
    def build(self):
        labels = {
            "a": ServerClassLabel.STABLE,
            "b": ServerClassLabel.STABLE,
            "c": ServerClassLabel.SHORT_LIVED,
            "d": ServerClassLabel.NO_PATTERN,
        }
        return ClassificationResult(labels=labels)

    def test_counts_and_percentages(self):
        result = self.build()
        assert result.count(ServerClassLabel.STABLE) == 2
        assert result.percentage(ServerClassLabel.STABLE) == pytest.approx(50.0)
        assert result.percentages()["short_lived"] == pytest.approx(25.0)

    def test_predictable_percentage(self):
        assert self.build().predictable_percentage() == pytest.approx(50.0)

    def test_servers_with(self):
        assert self.build().servers_with(ServerClassLabel.NO_PATTERN) == ["d"]

    def test_empty_result_is_nan(self):
        empty = ClassificationResult(labels={})
        assert np.isnan(empty.percentage(ServerClassLabel.STABLE))
        assert np.isnan(empty.predictable_percentage())

    def test_as_dict(self):
        payload = self.build().as_dict()
        assert payload["n_servers"] == 4
        assert "percentages" in payload

    def test_predictable_labels_constant(self):
        assert ServerClassLabel.STABLE in PREDICTABLE_LABELS
        assert ServerClassLabel.NO_PATTERN not in PREDICTABLE_LABELS


class TestClassifyFrame:
    def test_classifies_every_server(self, small_fleet):
        result = classify_frame(small_fleet)
        assert len(result.labels) == len(small_fleet)

    def test_subset_classification(self, small_fleet):
        ids = small_fleet.server_ids()[:5]
        result = classify_frame(small_fleet, server_ids=ids)
        assert sorted(result.labels) == sorted(ids)

    def test_fleet_mix_matches_generator_intent(self, small_fleet):
        """The classifier should broadly recover the generated class mix:
        most servers stable or short-lived, few pattern-free."""
        result = classify_frame(small_fleet)
        percentages = result.percentages()
        assert percentages["stable"] > 30.0
        assert percentages["short_lived"] > 20.0
        assert percentages["no_pattern"] < 25.0
