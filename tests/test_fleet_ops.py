"""Tests for the fleet orchestrator, its report and the CLI."""

import json

import pytest

from repro.core.config import PipelineConfig
from repro.fleet_ops.cli import main as fleet_main
from repro.fleet_ops.orchestrator import FleetOrchestrator, unit_cache_path
from repro.fleet_ops.report import FleetReport, FleetUnitOutcome
from repro.fleet_ops.synthesis import populate_lake
from repro.storage.datalake import DataLakeStore, ExtractKey
from repro.telemetry.fleet import default_fleet_spec, extract_spec
from repro.timeseries.calendar import MINUTES_PER_DAY
from repro.telemetry.generator import WorkloadGenerator


def columnar_version() -> int:
    """The current .sgx writer version (what an in-place upgrade targets)."""
    from repro.storage import columnar

    return columnar.VERSION


@pytest.fixture(scope="module")
def fleet_spec():
    return default_fleet_spec(servers_per_region=(8, 5), weeks=4, seed=13)


@pytest.fixture(scope="module")
def memory_lake(fleet_spec):
    lake = DataLakeStore()
    populate_lake(lake, fleet_spec, weeks=range(2))
    return lake


class TestExtractSynthesis:
    def test_extract_spec_is_deterministic(self, fleet_spec):
        assert extract_spec(fleet_spec, "region-0", 1) == extract_spec(fleet_spec, "region-0", 1)

    def test_extract_spec_varies_by_region_and_week(self, fleet_spec):
        seeds = {
            extract_spec(fleet_spec, region, week).seed
            for region in ("region-0", "region-1")
            for week in (0, 1, 2)
        }
        assert len(seeds) == 6

    def test_extract_spec_rejects_negative_week(self, fleet_spec):
        with pytest.raises(ValueError):
            extract_spec(fleet_spec, "region-0", -1)

    def test_weekly_extract_content_is_reproducible(self, fleet_spec):
        generator = WorkloadGenerator(fleet_spec)
        first = generator.generate_weekly_extract("region-0", 0)
        second = WorkloadGenerator(fleet_spec).generate_weekly_extract("region-0", 0)
        assert first.content_hash() == second.content_hash()

    def test_weekly_extracts_differ_across_weeks(self, fleet_spec):
        generator = WorkloadGenerator(fleet_spec)
        assert (
            generator.generate_weekly_extract("region-0", 0).content_hash()
            != generator.generate_weekly_extract("region-0", 1).content_hash()
        )

    def test_populate_lake_writes_every_unit(self, memory_lake, fleet_spec):
        keys = memory_lake.list_extracts()
        assert len(keys) == 4  # 2 regions x 2 weeks
        for key in keys:
            assert memory_lake.extract_fingerprint(key)

    def test_populate_lake_skips_existing(self, fleet_spec):
        lake = DataLakeStore()
        first = populate_lake(lake, fleet_spec, weeks=[0])
        fingerprints = {key: lake.extract_fingerprint(key) for key in first}
        second = populate_lake(lake, fleet_spec, weeks=[0])
        assert first == second
        assert fingerprints == {key: lake.extract_fingerprint(key) for key in second}

    def test_populate_lake_regenerates_on_spec_change(self, tmp_path):
        from dataclasses import replace

        spec = default_fleet_spec(servers_per_region=(4,), weeks=4, seed=1)
        lake = DataLakeStore(tmp_path / "lake")
        keys = populate_lake(lake, spec, weeks=[0])
        before = lake.extract_fingerprint(keys[0])
        # Same keys, different seed: stale extracts must be regenerated,
        # not silently reused.
        changed = populate_lake(lake, replace(spec, seed=2), weeks=[0])
        assert changed == keys
        assert lake.extract_fingerprint(keys[0]) != before
        # And with the new spec recorded, a further call is a no-op again.
        populate_lake(lake, replace(spec, seed=2), weeks=[0])
        assert lake.extract_fingerprint(keys[0]) != before


class TestOrchestratorRun:
    @pytest.fixture(scope="class")
    def report(self, memory_lake):
        with FleetOrchestrator(memory_lake, PipelineConfig()) as orchestrator:
            return orchestrator.run()

    def test_all_units_processed(self, report):
        assert report.n_units == 4
        assert report.n_succeeded == 4
        assert report.n_failed == 0

    def test_per_region_rollup(self, report):
        summary = report.per_region_summary()
        assert set(summary) == {"region-0", "region-1"}
        assert summary["region-0"]["units"] == 2
        assert summary["region-0"]["n_servers"] == 16  # 8 servers x 2 weekly extracts
        assert summary["region-1"]["n_servers"] == 10

    def test_component_runtimes_present_per_region(self, report):
        table = report.per_region_component_seconds()
        for region_totals in table.values():
            assert region_totals["model_training"] >= 0.0
            assert region_totals["data_ingestion"] > 0.0

    def test_predictability_rollup_counts(self, report):
        rollup = report.predictability_rollup()
        assert rollup["n_servers"] == 26
        assert 0 <= rollup["n_predictable"] <= rollup["n_servers"]

    def test_report_as_dict_is_json_serializable(self, report):
        payload = json.dumps(report.as_dict())
        assert "per_region" in payload

    def test_render_text_mentions_each_region(self, report):
        text = report.render_text()
        assert "region-0" in text and "region-1" in text

    def test_explicit_unit_subset(self, memory_lake):
        with FleetOrchestrator(memory_lake, PipelineConfig()) as orchestrator:
            report = orchestrator.run([ExtractKey("region-1", 0)])
        assert report.n_units == 1
        assert report.outcomes[0].region == "region-1"

    def test_missing_extract_fails_unit_not_fleet(self, memory_lake):
        with FleetOrchestrator(memory_lake, PipelineConfig()) as orchestrator:
            report = orchestrator.run(
                [ExtractKey("region-0", 0), ExtractKey("region-9", 7)]
            )
        assert report.n_units == 2
        assert report.n_succeeded == 1
        assert report.n_failed == 1
        failed = [o for o in report.outcomes if not o.succeeded][0]
        assert failed.region == "region-9"
        assert report.incident_rollup()["by_severity"].get("critical") == 1

    def test_executor_shared_across_runs(self, memory_lake):
        orchestrator = FleetOrchestrator(memory_lake, PipelineConfig(), backend="threads")
        try:
            orchestrator.run([ExtractKey("region-0", 0), ExtractKey("region-1", 0)])
            first_pool = orchestrator.executor._pool
            orchestrator.run([ExtractKey("region-0", 0), ExtractKey("region-1", 0)])
            assert orchestrator.executor._pool is first_pool
        finally:
            orchestrator.close()
        assert orchestrator.executor.closed

    def test_access_controlled_lake_with_principal(self, tmp_path, fleet_spec):
        lake = DataLakeStore(tmp_path / "lake", granted_principals={"seagull"})
        spec_lake = DataLakeStore(tmp_path / "lake")  # same root, no ACL object
        populate_lake(spec_lake, fleet_spec, weeks=[0])
        with FleetOrchestrator(
            lake, PipelineConfig(), principal="seagull"
        ) as orchestrator:
            report = orchestrator.run()
        assert report.n_failed == 0

    def test_access_controlled_lake_without_principal_denied(self, tmp_path, fleet_spec):
        from repro.storage.datalake import AccessDeniedError

        lake = DataLakeStore(tmp_path / "lake", granted_principals={"seagull"})
        with FleetOrchestrator(lake, PipelineConfig()) as orchestrator:
            with pytest.raises(AccessDeniedError):
                orchestrator.run()
            # Explicit unit lists must not bypass the gate either (disk
            # workers reopen the lake without the allow-list).
            with pytest.raises(AccessDeniedError):
                orchestrator.run([ExtractKey("region-0", 0)])

    def test_owned_parallel_executor_sized_by_fleet_heuristic(self, memory_lake):
        with FleetOrchestrator(
            memory_lake, PipelineConfig(), backend="threads"
        ) as orchestrator:
            orchestrator.run([ExtractKey("region-0", 0), ExtractKey("region-1", 0)])
            # min(units, usable CPUs, cap) can never exceed the unit count.
            assert orchestrator.executor.n_workers <= 2

    def test_external_executor_not_closed(self, memory_lake):
        from repro.parallel.executor import PartitionedExecutor

        executor = PartitionedExecutor.serial()
        with FleetOrchestrator(memory_lake, PipelineConfig(), executor=executor):
            pass
        assert not executor.closed


class TestOrchestratorCaching:
    @pytest.fixture()
    def disk_lake(self, tmp_path, fleet_spec):
        lake = DataLakeStore(tmp_path / "lake")
        populate_lake(lake, fleet_spec, weeks=range(2))
        return lake

    def test_warm_rerun_served_from_unit_cache(self, disk_lake, tmp_path):
        cache_dir = tmp_path / "cache"
        with FleetOrchestrator(
            disk_lake, PipelineConfig(), cache_dir=cache_dir
        ) as orchestrator:
            cold = orchestrator.run()
            warm = orchestrator.run()
        assert cold.cache_summary()["unit_hits"] == 0
        assert cold.cache_summary()["stage_misses"] == 12  # 3 stages x 4 units
        assert warm.cache_summary()["unit_hits"] == 4
        assert all(outcome.from_unit_cache for outcome in warm.outcomes)

    def test_warm_outcomes_identical_to_cold(self, disk_lake, tmp_path):
        with FleetOrchestrator(
            disk_lake, PipelineConfig(), cache_dir=tmp_path / "cache"
        ) as orchestrator:
            cold = orchestrator.run()
            warm = orchestrator.run()
        for before, after in zip(cold.outcomes, warm.outcomes, strict=True):
            assert after.region == before.region and after.week == before.week
            assert after.summary == before.summary
            assert after.n_predictable == before.n_predictable
            assert after.n_predictions == before.n_predictions

    def test_changed_extract_recomputes_that_unit_only(self, disk_lake, tmp_path, fleet_spec):
        cache_dir = tmp_path / "cache"
        with FleetOrchestrator(
            disk_lake, PipelineConfig(), cache_dir=cache_dir
        ) as orchestrator:
            orchestrator.run()
            # Overwrite one extract with different content.
            changed_key = ExtractKey("region-0", 0)
            frame = WorkloadGenerator(fleet_spec).generate_weekly_extract("region-0", 3)
            disk_lake.write_extract(changed_key, frame)
            second = orchestrator.run()
        assert second.cache_summary()["unit_hits"] == 3
        recomputed = [o for o in second.outcomes if not o.from_unit_cache]
        assert [(o.region, o.week) for o in recomputed] == [("region-0", 0)]

    def test_config_change_reuses_feature_stage(self, disk_lake, tmp_path):
        cache_dir = tmp_path / "cache"
        with FleetOrchestrator(
            disk_lake, PipelineConfig(), cache_dir=cache_dir
        ) as orchestrator:
            orchestrator.run()
        with FleetOrchestrator(
            disk_lake,
            PipelineConfig(model_name="persistent_previous_equivalent_day"),
            cache_dir=cache_dir,
        ) as orchestrator:
            report = orchestrator.run()
        # New model: whole-unit outcomes are invalid, but the frame content
        # did not change, so the feature stage is served from cache.
        assert report.cache_summary()["unit_hits"] == 0
        for outcome in report.outcomes:
            assert outcome.cache_events["features"] == "hit"
            assert outcome.cache_events["train_infer"] == "miss"

    def test_corrupt_unit_cache_file_recovers(self, disk_lake, tmp_path):
        cache_dir = tmp_path / "cache"
        with FleetOrchestrator(
            disk_lake, PipelineConfig(), cache_dir=cache_dir
        ) as orchestrator:
            orchestrator.run()
            unit_cache_path(cache_dir, "region-0", 0).write_text("not json at all")
            report = orchestrator.run()
        assert report.n_failed == 0
        # The corrupted unit recomputed; the others were cache hits.
        assert report.cache_summary()["unit_hits"] == 3

    def test_executor_backend_change_keeps_unit_cache(self, disk_lake, tmp_path):
        cache_dir = tmp_path / "cache"
        units = [ExtractKey("region-0", 0)]
        with FleetOrchestrator(
            disk_lake, PipelineConfig(), cache_dir=cache_dir
        ) as orchestrator:
            orchestrator.run(units)
        # Execution knobs change how a unit is computed, not what it
        # computes: the cached outcome must still be served.
        with FleetOrchestrator(
            disk_lake,
            PipelineConfig().with_executor("threads", 2),
            cache_dir=cache_dir,
        ) as orchestrator:
            warm = orchestrator.run(units)
        assert warm.cache_summary()["unit_hits"] == 1

    def test_processes_backend_with_cache(self, disk_lake, tmp_path):
        cache_dir = tmp_path / "cache"
        units = [ExtractKey("region-0", 0), ExtractKey("region-1", 0)]
        with FleetOrchestrator(
            disk_lake,
            PipelineConfig(),
            backend="processes",
            n_workers=2,
            cache_dir=cache_dir,
        ) as orchestrator:
            cold = orchestrator.run(units)
            warm = orchestrator.run(units)
        assert cold.n_succeeded == 2
        assert warm.cache_summary()["unit_hits"] == 2


class TestUnitOutcomePayload:
    def test_roundtrip(self):
        outcome = FleetUnitOutcome(
            region="region-0",
            week=1,
            run_id="run-1",
            succeeded=True,
            abort_reason="",
            timings={"model_training": 1.5},
            summary={"pct_windows_correct": 80.0},
            n_servers=10,
            n_predictions=7,
            n_predictable=5,
            incidents=[{"severity": "warning", "source": "x", "message": "m", "region": "r"}],
            cache_events={"features": "miss"},
            wall_seconds=2.0,
        )
        restored = FleetUnitOutcome.from_payload(outcome.to_payload())
        assert restored == outcome

    def test_cache_hit_view_keeps_compute_timings(self):
        outcome = FleetUnitOutcome(
            region="r",
            week=0,
            run_id="run",
            succeeded=True,
            abort_reason="",
            timings={"model_training": 3.0},
            summary=None,
            n_servers=1,
            n_predictions=1,
            n_predictable=1,
            incidents=[],
            cache_events={},
            wall_seconds=3.5,
        )
        hit = outcome.as_cache_hit(0.01)
        assert hit.from_unit_cache
        assert hit.timings["model_training"] == 3.0
        assert hit.wall_seconds == 0.01


class TestFleetReportEdgeCases:
    def test_empty_report(self):
        report = FleetReport(outcomes=[], backend="serial", n_workers=1, wall_seconds=0.0)
        assert report.n_units == 0
        assert report.predictability_rollup()["pct_predictable"] == 0.0
        assert report.render_text()


class TestColumnarFleetRuns:
    def test_sgx_memory_lake_matches_csv_lake(self, fleet_spec):
        csv_lake = DataLakeStore()
        sgx_lake = DataLakeStore(write_format="sgx")
        populate_lake(csv_lake, fleet_spec, weeks=[0])
        populate_lake(sgx_lake, fleet_spec, weeks=[0])
        with FleetOrchestrator(csv_lake, PipelineConfig()) as orchestrator:
            from_csv = orchestrator.run()
        with FleetOrchestrator(sgx_lake, PipelineConfig()) as orchestrator:
            from_sgx = orchestrator.run()
        assert from_sgx.n_succeeded == from_csv.n_succeeded == 2
        for csv_outcome, sgx_outcome in zip(from_csv.outcomes, from_sgx.outcomes, strict=True):
            assert sgx_outcome.summary == csv_outcome.summary
            assert sgx_outcome.n_predictable == csv_outcome.n_predictable

    def test_sgx_disk_lake_with_process_backend(self, tmp_path, fleet_spec):
        lake = DataLakeStore(tmp_path / "lake", write_format="sgx")
        populate_lake(lake, fleet_spec, weeks=[0])
        with FleetOrchestrator(
            lake, PipelineConfig(), backend="processes", n_workers=2
        ) as orchestrator:
            report = orchestrator.run()
        assert report.n_failed == 0

    def test_memory_lake_corrupt_sgx_falls_back_to_csv_copy(self, fleet_spec):
        # The in-memory handoff must keep the lake's damaged-.sgx-degrades-
        # to-CSV behaviour: workers get the CSV bytes as a fallback.
        from repro.storage.columnar import frame_to_sgx_bytes

        lake = DataLakeStore()
        populate_lake(lake, fleet_spec, weeks=[0])
        key = lake.list_extracts()[0]
        frame = lake.read_extract(key)
        lake.write_extract(key, frame, fmt="sgx", keep_other_formats=True)
        damaged = bytearray(frame_to_sgx_bytes(frame))
        damaged[-3] ^= 0xFF
        lake._memory[key]["sgx"] = bytes(damaged)
        with FleetOrchestrator(lake, PipelineConfig()) as orchestrator:
            report = orchestrator.run([key])
        assert report.n_failed == 0

    def test_convert_refreshes_fingerprints_but_keeps_stage_cache(
        self, tmp_path, fleet_spec
    ):
        """Converting the lake changes stored bytes (new unit fingerprints)
        while frame content -- and so every stage-cache key -- is unchanged."""
        from repro.storage.migrate import convert_lake

        lake = DataLakeStore(tmp_path / "lake")
        populate_lake(lake, fleet_spec, weeks=[0])
        cache_dir = tmp_path / "cache"
        with FleetOrchestrator(
            lake, PipelineConfig(), cache_dir=cache_dir
        ) as orchestrator:
            orchestrator.run()
            convert_lake(lake, "sgx", delete_source=True)
            report = orchestrator.run()
        assert report.cache_summary()["unit_hits"] == 0
        for outcome in report.outcomes:
            assert outcome.cache_events["features"] == "hit"
            assert outcome.cache_events["train_infer"] == "hit"
            assert outcome.cache_events["evaluation"] == "hit"


class TestConvertCli:
    def _csv_lake(self, tmp_path):
        spec = default_fleet_spec(servers_per_region=(4, 3), weeks=4, seed=5)
        lake = DataLakeStore(tmp_path / "lake")
        populate_lake(lake, spec, weeks=range(2))
        return lake

    def test_convert_reports_rollup(self, capsys, tmp_path):
        lake = self._csv_lake(tmp_path)
        code = fleet_main(["convert", "--lake-dir", str(lake.root)])
        out = capsys.readouterr().out
        assert code == 0
        assert "4 extract(s) converted" in out
        assert "rows" in out and "bytes" in out
        for key in lake.list_extracts():
            assert lake.extract_formats(key) == ("sgx", "csv")

    def test_convert_delete_source_migrates_in_place(self, capsys, tmp_path):
        lake = self._csv_lake(tmp_path)
        before = {key: lake.read_extract(key).content_hash() for key in lake.list_extracts()}
        code = fleet_main(
            ["convert", "--lake-dir", str(lake.root), "--delete-source"]
        )
        assert code == 0
        for key, content_hash in before.items():
            assert lake.extract_formats(key) == ("sgx",)
            assert lake.read_extract(key).content_hash() == content_hash

    def test_convert_back_to_csv_is_lossless(self, capsys, tmp_path):
        lake = self._csv_lake(tmp_path)
        before = {key: lake.read_extract(key).content_hash() for key in lake.list_extracts()}
        assert fleet_main(["convert", "--lake-dir", str(lake.root), "--delete-source"]) == 0
        assert fleet_main(
            ["convert", "--lake-dir", str(lake.root), "--to", "csv", "--delete-source"]
        ) == 0
        for key, content_hash in before.items():
            assert lake.extract_formats(key) == ("csv",)
            assert lake.read_extract(key).content_hash() == content_hash

    def test_convert_is_idempotent(self, capsys, tmp_path):
        lake = self._csv_lake(tmp_path)
        assert fleet_main(["convert", "--lake-dir", str(lake.root)]) == 0
        capsys.readouterr()
        assert fleet_main(["convert", "--lake-dir", str(lake.root)]) == 0
        assert "0 extract(s) converted, 4 already current" in capsys.readouterr().out

    def test_convert_json_rollup(self, capsys, tmp_path):
        lake = self._csv_lake(tmp_path)
        code = fleet_main(["convert", "--lake-dir", str(lake.root), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_converted"] == 4
        assert payload["rows_converted"] > 0
        assert payload["bytes_out"] < payload["bytes_in"]  # columnar is smaller

    def test_delete_source_cleans_up_dual_format_lake(self, capsys, tmp_path):
        # A convert without --delete-source leaves both formats; a later
        # --delete-source run must still remove the stale sources even
        # though every key is already in the target format.
        lake = self._csv_lake(tmp_path)
        assert fleet_main(["convert", "--lake-dir", str(lake.root)]) == 0
        assert all("csv" in lake.extract_formats(key) for key in lake.list_extracts())
        capsys.readouterr()
        assert fleet_main(["convert", "--lake-dir", str(lake.root), "--delete-source"]) == 0
        for key in lake.list_extracts():
            assert lake.extract_formats(key) == ("sgx",)
        # The destructive run must say so, not read like a no-op.
        out = capsys.readouterr().out
        assert "Deleted 4 source copy(ies)" in out
        assert "removed stale .csv copy" in out

    def test_delete_source_refuses_on_diverged_copies(self, tmp_path):
        from repro.storage.migrate import ConversionVerificationError, convert_lake

        lake = self._csv_lake(tmp_path)
        keys = lake.list_extracts()
        convert_lake(lake, "sgx")
        # Make one CSV copy diverge from its .sgx sibling.
        frame = lake.read_extract(keys[0]).filter(lambda md, s: md.server_id != "")
        frame.remove_server(frame.server_ids()[0])
        lake.write_extract(keys[0], frame, fmt="csv", keep_other_formats=True)
        with pytest.raises(ConversionVerificationError, match="disagrees"):
            convert_lake(lake, "sgx", delete_source=True)
        assert "csv" in lake.extract_formats(keys[0])  # source kept

    def test_convert_to_csv_refuses_empty_series_server(self, tmp_path):
        from repro.storage.migrate import ConversionVerificationError, convert_lake
        from repro.timeseries.frame import LoadFrame, ServerMetadata
        from repro.timeseries.series import LoadSeries

        lake = DataLakeStore(tmp_path / "lake", write_format="sgx")
        frame = LoadFrame(5)
        frame.add_server(
            ServerMetadata(server_id="retired", region="r0"), LoadSeries.empty(5)
        )
        lake.write_extract(ExtractKey("r0", 0), frame)
        with pytest.raises(ConversionVerificationError, match="no samples"):
            convert_lake(lake, "csv")
        # Nothing half-written: the .sgx copy is still the only one.
        assert lake.extract_formats(ExtractKey("r0", 0)) == ("sgx",)

    def test_convert_upgrades_v1_sgx_in_place(self, capsys, tmp_path):
        from repro.storage.columnar import sgx_version

        from tests.helpers import frame_to_sgx_v1_bytes

        lake = self._csv_lake(tmp_path)
        assert fleet_main(["convert", "--lake-dir", str(lake.root), "--delete-source"]) == 0
        key = lake.list_extracts()[0]
        frame = lake.read_extract(key, None)
        lake.write_extract_bytes(key, "sgx", frame_to_sgx_v1_bytes(frame))
        assert sgx_version(lake.read_extract_bytes(key, fmt="sgx")[1]) == 1
        capsys.readouterr()
        assert fleet_main(["convert", "--lake-dir", str(lake.root)]) == 0
        out = capsys.readouterr().out
        assert "1 extract(s) converted, 3 already current" in out
        assert sgx_version(lake.read_extract_bytes(key, fmt="sgx")[1]) == columnar_version()
        assert lake.read_extract(key, None).content_hash() == frame.content_hash()

    def test_convert_upgrade_deletes_leftover_source(self, tmp_path):
        # A v1 .sgx with a CSV sibling: one --delete-source upgrade run
        # must both re-encode the .sgx and drop the stale CSV.
        from repro.storage.columnar import sgx_version
        from repro.storage.migrate import convert_lake

        from tests.helpers import frame_to_sgx_v1_bytes

        lake = self._csv_lake(tmp_path)
        convert_lake(lake, "sgx")  # keeps CSV sources
        key = lake.list_extracts()[0]
        frame = lake.read_extract(key, None)
        lake.write_extract_bytes(
            key, "sgx", frame_to_sgx_v1_bytes(frame), keep_other_formats=True
        )
        report = convert_lake(lake, "sgx", delete_source=True)
        assert sgx_version(lake.read_extract_bytes(key, fmt="sgx")[1]) == columnar_version()
        for each in lake.list_extracts():
            assert lake.extract_formats(each) == ("sgx",)
        upgraded = [r for r in report.records if not r.skipped]
        assert len(upgraded) == 1
        assert upgraded[0].deleted_formats == ("csv",)
        assert lake.read_extract(key, None).content_hash() == frame.content_hash()

    def test_convert_upgrade_honours_store_chunk_policy(self, tmp_path):
        # Without an explicit --chunk-minutes, an in-place upgrade must
        # follow the lake's configured policy, same as fresh conversions.
        from repro.storage.columnar import sgx_summary, sgx_version
        from repro.storage.migrate import convert_lake

        from tests.helpers import frame_to_sgx_v1_bytes

        seeded = self._csv_lake(tmp_path)
        convert_lake(seeded, "sgx", delete_source=True)
        key = seeded.list_extracts()[0]
        frame = seeded.read_extract(key, None)
        seeded.write_extract_bytes(key, "sgx", frame_to_sgx_v1_bytes(frame))
        lake = DataLakeStore(seeded.root, write_format="sgx", chunk_minutes=0)
        convert_lake(lake, "sgx")
        raw = lake.read_extract_bytes(key, fmt="sgx")[1]
        assert sgx_version(raw) == columnar_version()
        info = sgx_summary(raw)
        assert info["n_chunks"] == info["n_servers"]  # whole-series chunks

    def test_convert_chunk_minutes_rechunks_already_current_lake(self, capsys, tmp_path):
        from repro.storage.columnar import sgx_summary

        lake = self._csv_lake(tmp_path)
        assert fleet_main(["convert", "--lake-dir", str(lake.root), "--delete-source"]) == 0
        key = lake.list_extracts()[0]
        per_day = sgx_summary(lake.read_extract_bytes(key, fmt="sgx")[1])["n_chunks"]
        capsys.readouterr()
        code = fleet_main(
            ["convert", "--lake-dir", str(lake.root), "--chunk-minutes", "720"]
        )
        assert code == 0
        assert "4 extract(s) converted" in capsys.readouterr().out
        assert sgx_summary(lake.read_extract_bytes(key, fmt="sgx")[1])["n_chunks"] > per_day
        # Re-running under the same policy finds byte-identical encodings.
        capsys.readouterr()
        assert fleet_main(
            ["convert", "--lake-dir", str(lake.root), "--chunk-minutes", "720"]
        ) == 0
        assert "0 extract(s) converted, 4 already current" in capsys.readouterr().out

    def test_convert_negative_chunk_minutes_rejected(self, capsys, tmp_path):
        lake = self._csv_lake(tmp_path)
        code = fleet_main(
            ["convert", "--lake-dir", str(lake.root), "--chunk-minutes", "-3"]
        )
        assert code == 2
        assert "non-negative" in capsys.readouterr().err

    def test_convert_missing_lake_dir_fails_without_creating_it(self, capsys, tmp_path):
        missing = tmp_path / "no-such-lake"
        assert fleet_main(["convert", "--lake-dir", str(missing)]) == 2
        assert not missing.exists()
        assert "does not exist" in capsys.readouterr().err

    def test_convert_unknown_region_fails(self, capsys, tmp_path):
        lake = self._csv_lake(tmp_path)
        code = fleet_main(
            ["convert", "--lake-dir", str(lake.root), "--region", "regoin-0"]
        )
        assert code == 2
        assert "has no partition" in capsys.readouterr().err

    def _corrupt_sgx_file(self, lake, key):
        damaged = bytearray(lake.extract_path(key, fmt="sgx").read_bytes())
        damaged[-3] ^= 0xFF
        lake.extract_path(key, fmt="sgx").write_bytes(bytes(damaged))  # repro: allow[manifest-boundary] simulating out-of-band disk damage

    def test_reconverts_damaged_target_from_healthy_source(self, tmp_path):
        from repro.storage.migrate import convert_lake

        lake = self._csv_lake(tmp_path)
        key = lake.list_extracts()[0]
        expected = lake.read_extract(key).content_hash()
        convert_lake(lake, "sgx")  # dual-format lake
        self._corrupt_sgx_file(lake, key)
        # Re-running must not trust the damaged .sgx -- with or without
        # verification, and even when deleting sources.
        report = convert_lake(lake, "sgx", delete_source=True, verify=False)
        assert report.n_converted == 1  # the damaged one, from its CSV
        assert lake.extract_formats(key) == ("sgx",)
        assert lake.read_extract(key).content_hash() == expected

    def test_damaged_target_without_source_aborts_cleanly(self, capsys, tmp_path):
        from repro.storage.migrate import convert_lake

        lake = self._csv_lake(tmp_path)
        key = lake.list_extracts()[0]
        convert_lake(lake, "sgx", delete_source=True)
        self._corrupt_sgx_file(lake, key)
        # Library: typed error naming the problem.
        from repro.storage.migrate import ConversionVerificationError

        with pytest.raises(ConversionVerificationError, match="unreadable"):
            convert_lake(lake, "sgx")
        # CLI: documented exit code and message, not a traceback.
        code = fleet_main(["convert", "--lake-dir", str(lake.root), "--to", "csv"])
        assert code == 1
        assert "conversion aborted" in capsys.readouterr().err

    def test_convert_preserves_nondefault_interval(self, tmp_path):
        from repro.storage.migrate import ConversionVerificationError, convert_lake
        from repro.timeseries.frame import LoadFrame, ServerMetadata
        from tests.helpers import make_series

        lake = DataLakeStore(tmp_path / "lake", write_format="sgx")
        frame = LoadFrame(10)
        frame.add_server(
            ServerMetadata(server_id="s0", region="r0"),
            make_series([1.0, 2.0, 3.0], interval=10),
        )
        key = ExtractKey("r0", 0)
        lake.write_extract(key, frame)
        # Idempotent re-convert must keep the recorded 10-minute interval,
        # not rewrite it to the 5-minute default.
        convert_lake(lake, "sgx")
        assert lake.read_extract(key, None).interval_minutes == 10
        # The CSV schema cannot carry the interval; converting must refuse
        # rather than silently degrade it -- with or without verification.
        with pytest.raises(ConversionVerificationError, match="sampling interval"):
            convert_lake(lake, "csv")
        with pytest.raises(ConversionVerificationError, match="sampling interval"):
            convert_lake(lake, "csv", verify=False, delete_source=True)
        assert lake.extract_formats(key) == ("sgx",)

    def test_convert_single_region(self, capsys, tmp_path):
        lake = self._csv_lake(tmp_path)
        code = fleet_main(
            ["convert", "--lake-dir", str(lake.root), "--region", "region-1"]
        )
        assert code == 0
        assert lake.extract_formats(ExtractKey("region-0", 0)) == ("csv",)
        assert "sgx" in lake.extract_formats(ExtractKey("region-1", 0))


class TestQueryHandoff:
    """Workers receive (lake handle, ExtractQuery) -- never extract bytes."""

    def _captured_tasks(self, monkeypatch, lake, units=None):
        import repro.fleet_ops.orchestrator as orchestrator_module

        captured = []
        real_execute = orchestrator_module._execute_unit

        def spy(task):
            captured.append(task)
            return real_execute(task)

        monkeypatch.setattr(orchestrator_module, "_execute_unit", spy)
        with FleetOrchestrator(lake, PipelineConfig()) as orchestrator:
            report = orchestrator.run(units)
            return report, captured, orchestrator

    def test_tasks_carry_handle_and_query_not_payloads(self, monkeypatch, memory_lake):
        import pickle

        from repro.storage.query import ExtractQuery

        report, tasks, _orch = self._captured_tasks(monkeypatch, memory_lake)
        assert report.n_failed == 0
        assert len(tasks) == 4
        extract_bytes = sum(
            memory_lake.extract_size_bytes(key) for key in memory_lake.list_extracts()
        )
        for task in tasks:
            assert not hasattr(task, "payload")
            assert isinstance(task.query, ExtractQuery)
            assert task.query.regions == (task.region,)
            assert task.query.weeks == (task.week,)
            assert task.lake_root is not None
            # The task is orders of magnitude smaller than the extract it
            # describes: payload bytes stay out of the executor entirely.
            assert len(pickle.dumps(task)) < extract_bytes // 20

    def test_memory_lake_spills_to_disk_handle(self, monkeypatch, fleet_spec):
        from pathlib import Path

        lake = DataLakeStore(write_format="sgx")
        populate_lake(lake, fleet_spec, weeks=[0])
        report, tasks, orchestrator = self._captured_tasks(monkeypatch, lake)
        assert report.n_failed == 0
        spill_root = Path(tasks[0].lake_root)
        assert all(task.lake_root == str(spill_root) for task in tasks)
        # close() (already called) removed the spill directory.
        assert not spill_root.exists()

    def test_spill_preserves_fingerprints_and_unit_cache(self, tmp_path, fleet_spec):
        # The unit-outcome cache is keyed by the stored-bytes fingerprint;
        # spilling must be byte-identical or warm re-runs would recompute.
        lake = DataLakeStore()
        populate_lake(lake, fleet_spec, weeks=[0])
        cache_dir = tmp_path / "cache"
        with FleetOrchestrator(lake, PipelineConfig(), cache_dir=cache_dir) as orchestrator:
            cold = orchestrator.run()
            warm = orchestrator.run()
        assert cold.cache_summary()["unit_hits"] == 0
        assert warm.cache_summary()["unit_hits"] == 2

    def test_memory_lake_with_process_backend(self, fleet_spec):
        # The ROADMAP open item: in-memory lakes used to ship whole
        # payloads to process workers; the spill handle closes that.
        lake = DataLakeStore(write_format="sgx")
        populate_lake(
            lake,
            default_fleet_spec(servers_per_region=(4, 3), weeks=4, seed=5),
            weeks=[0],
        )
        with FleetOrchestrator(
            lake, PipelineConfig(), backend="processes", n_workers=2
        ) as orchestrator:
            report = orchestrator.run()
        assert report.n_units == 2
        assert report.n_failed == 0

    def test_warm_rerun_does_not_rewrite_unchanged_spill(self, fleet_spec):
        # Re-spilling the whole lake on every run would defeat cheap warm
        # re-runs; unchanged stored bytes must not be rewritten to disk.
        from pathlib import Path

        lake = DataLakeStore(write_format="sgx")
        keys = populate_lake(lake, fleet_spec, weeks=[0])
        with FleetOrchestrator(lake, PipelineConfig()) as orchestrator:
            orchestrator.run(keys)
            spill_root = Path(orchestrator._spill_dir)
            before = {
                path: path.stat().st_mtime_ns for path in spill_root.rglob("extract_*")
            }
            assert before
            orchestrator.run(keys)
            after = {
                path: path.stat().st_mtime_ns for path in spill_root.rglob("extract_*")
            }
        assert after == before  # byte-identical extracts: no rewrite

    def test_spill_refreshes_changed_extracts(self, monkeypatch, fleet_spec):
        lake = DataLakeStore()
        keys = populate_lake(lake, fleet_spec, weeks=[0])
        with FleetOrchestrator(lake, PipelineConfig()) as orchestrator:
            first = orchestrator.run([keys[0]])
            # Mutate the in-memory extract between runs; the spill handle
            # must serve the new content, not a stale copy.
            frame = WorkloadGenerator(fleet_spec).generate_weekly_extract(
                keys[0].region, 3
            )
            lake.write_extract(keys[0], frame)
            second = orchestrator.run([keys[0]])
        assert first.n_failed == second.n_failed == 0
        assert (
            second.outcomes[0].n_servers == len(frame)
        )


class TestScanRollup:
    """Satellite: per-unit ScanStats roll into FleetReport."""

    def test_outcomes_carry_scan_stats(self, memory_lake):
        with FleetOrchestrator(memory_lake, PipelineConfig()) as orchestrator:
            report = orchestrator.run()
        for outcome in report.outcomes:
            assert outcome.scan["extracts_scanned"] == 1
            assert outcome.scan["rows"] > 0
            assert outcome.scan["servers_seen"] == outcome.n_servers

    def test_scan_rollup_sums_units(self, memory_lake):
        with FleetOrchestrator(memory_lake, PipelineConfig()) as orchestrator:
            report = orchestrator.run()
        rollup = report.scan_rollup()
        assert rollup["extracts_scanned"] == 4
        assert rollup["rows"] == sum(o.scan["rows"] for o in report.outcomes)
        assert 0.0 < rollup["verified_fraction"] <= 1.0
        assert rollup["servers_seen"] == 26

    def test_scan_rollup_rendered_and_serialized(self, memory_lake):
        with FleetOrchestrator(memory_lake, PipelineConfig()) as orchestrator:
            report = orchestrator.run()
        assert "Scan:" in report.render_text()
        assert "payload bytes CRC-verified" in report.render_text()
        assert "scan" in report.as_dict()
        json.dumps(report.as_dict())  # stays JSON-serializable

    def test_scan_stats_survive_unit_cache_roundtrip(self, tmp_path, fleet_spec):
        lake = DataLakeStore(tmp_path / "lake")
        populate_lake(lake, fleet_spec, weeks=[0])
        with FleetOrchestrator(
            lake, PipelineConfig(), cache_dir=tmp_path / "cache"
        ) as orchestrator:
            cold = orchestrator.run()
            warm = orchestrator.run()
        for before, after in zip(cold.outcomes, warm.outcomes, strict=True):
            assert after.from_unit_cache
            assert after.scan == before.scan

    def test_failed_unit_has_empty_scan(self, memory_lake):
        with FleetOrchestrator(memory_lake, PipelineConfig()) as orchestrator:
            report = orchestrator.run([ExtractKey("region-9", 7)])
        assert report.outcomes[0].scan == {}
        assert report.scan_rollup()["extracts_scanned"] == 0


class TestFleetCli:
    def test_cli_runs_and_reports(self, capsys, tmp_path):
        code = fleet_main(
            [
                "--servers",
                "6,4",
                "--weeks",
                "1",
                "--lake-dir",
                str(tmp_path / "lake"),
                "--cache-dir",
                str(tmp_path / "cache"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Fleet run: 2 units" in out

    def test_cli_json_output(self, capsys, tmp_path):
        code = fleet_main(
            [
                "--servers",
                "5",
                "--weeks",
                "1",
                "--json",
                "--lake-dir",
                str(tmp_path / "lake"),
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["run"]["n_units"] == 1

    def test_cli_rerun_requires_cache_dir(self, capsys):
        assert fleet_main(["--rerun"]) == 2

    def test_cli_rejects_bad_servers(self, capsys):
        assert fleet_main(["--servers", "nope"]) == 2
        assert fleet_main(["--servers", "0"]) == 2

    def test_cli_rerun_hits_cache(self, capsys, tmp_path):
        code = fleet_main(
            [
                "--servers",
                "5",
                "--weeks",
                "1",
                "--rerun",
                "--lake-dir",
                str(tmp_path / "lake"),
                "--cache-dir",
                str(tmp_path / "cache"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "warm re-run" in out
        assert "Warm-cache speedup" in out


class TestLiveCli:
    LIVE_ARGS = [
        "live",
        "--servers",
        "2",
        "--days",
        "2",
        "--batch-minutes",
        "360",
        "--drift-day",
        "1",
    ]

    def test_live_runs_and_reports(self, capsys, tmp_path):
        lake_dir = tmp_path / "lake"
        code = fleet_main([*self.LIVE_ARGS, "--lake-dir", str(lake_dir)])
        out = capsys.readouterr().out
        assert code == 0
        assert "action bootstrap -> version 1" in out
        assert "drifted, action retrain -> version 2" in out
        assert "Committed generation 2" in out
        assert "Serving health: active version 2" in out
        # The lake the simulation built persists when a dir was given.
        assert (lake_dir / "_manifest" / "MANIFEST.json").exists()

    def test_live_json_output(self, capsys):
        code = fleet_main([*self.LIVE_ARGS, "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["lake_dir"] is None  # temp lake, already cleaned up
        assert payload["generation"] == 2
        assert payload["tail_rows_pending"] == 0
        assert [d["day"] for d in payload["days"]] == [0, 1]
        (first,), (second,) = (d["seals"] for d in payload["days"])
        assert first["action"] == "bootstrap" and first["drifted"] is None
        assert second["action"] == "retrain" and second["drifted"] is True
        assert second["rows_sealed"] == 2 * MINUTES_PER_DAY // 5
        assert payload["health"]["active_version"] == 2

    def test_live_rejects_bad_flags(self, capsys):
        assert fleet_main(["live", "--days", "0"]) == 2
        assert fleet_main(["live", "--interval", "7"]) == 2
        assert fleet_main(["live", "--batch-minutes", "0"]) == 2
        assert fleet_main(["live", "--fsync-every", "0"]) == 2
        assert fleet_main(["live", "--drift-factor", "-1"]) == 2
