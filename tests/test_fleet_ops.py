"""Tests for the fleet orchestrator, its report and the CLI."""

import json

import pytest

from repro.core.config import PipelineConfig
from repro.fleet_ops.cli import main as fleet_main
from repro.fleet_ops.orchestrator import FleetOrchestrator, unit_cache_path
from repro.fleet_ops.report import FleetReport, FleetUnitOutcome
from repro.fleet_ops.synthesis import populate_lake
from repro.storage.datalake import DataLakeStore, ExtractKey
from repro.telemetry.fleet import default_fleet_spec, extract_spec
from repro.telemetry.generator import WorkloadGenerator


@pytest.fixture(scope="module")
def fleet_spec():
    return default_fleet_spec(servers_per_region=(8, 5), weeks=4, seed=13)


@pytest.fixture(scope="module")
def memory_lake(fleet_spec):
    lake = DataLakeStore()
    populate_lake(lake, fleet_spec, weeks=range(2))
    return lake


class TestExtractSynthesis:
    def test_extract_spec_is_deterministic(self, fleet_spec):
        assert extract_spec(fleet_spec, "region-0", 1) == extract_spec(fleet_spec, "region-0", 1)

    def test_extract_spec_varies_by_region_and_week(self, fleet_spec):
        seeds = {
            extract_spec(fleet_spec, region, week).seed
            for region in ("region-0", "region-1")
            for week in (0, 1, 2)
        }
        assert len(seeds) == 6

    def test_extract_spec_rejects_negative_week(self, fleet_spec):
        with pytest.raises(ValueError):
            extract_spec(fleet_spec, "region-0", -1)

    def test_weekly_extract_content_is_reproducible(self, fleet_spec):
        generator = WorkloadGenerator(fleet_spec)
        first = generator.generate_weekly_extract("region-0", 0)
        second = WorkloadGenerator(fleet_spec).generate_weekly_extract("region-0", 0)
        assert first.content_hash() == second.content_hash()

    def test_weekly_extracts_differ_across_weeks(self, fleet_spec):
        generator = WorkloadGenerator(fleet_spec)
        assert (
            generator.generate_weekly_extract("region-0", 0).content_hash()
            != generator.generate_weekly_extract("region-0", 1).content_hash()
        )

    def test_populate_lake_writes_every_unit(self, memory_lake, fleet_spec):
        keys = memory_lake.list_extracts()
        assert len(keys) == 4  # 2 regions x 2 weeks
        for key in keys:
            assert memory_lake.extract_fingerprint(key)

    def test_populate_lake_skips_existing(self, fleet_spec):
        lake = DataLakeStore()
        first = populate_lake(lake, fleet_spec, weeks=[0])
        fingerprints = {key: lake.extract_fingerprint(key) for key in first}
        second = populate_lake(lake, fleet_spec, weeks=[0])
        assert first == second
        assert fingerprints == {key: lake.extract_fingerprint(key) for key in second}

    def test_populate_lake_regenerates_on_spec_change(self, tmp_path):
        from dataclasses import replace

        spec = default_fleet_spec(servers_per_region=(4,), weeks=4, seed=1)
        lake = DataLakeStore(tmp_path / "lake")
        keys = populate_lake(lake, spec, weeks=[0])
        before = lake.extract_fingerprint(keys[0])
        # Same keys, different seed: stale extracts must be regenerated,
        # not silently reused.
        changed = populate_lake(lake, replace(spec, seed=2), weeks=[0])
        assert changed == keys
        assert lake.extract_fingerprint(keys[0]) != before
        # And with the new spec recorded, a further call is a no-op again.
        populate_lake(lake, replace(spec, seed=2), weeks=[0])
        assert lake.extract_fingerprint(keys[0]) != before


class TestOrchestratorRun:
    @pytest.fixture(scope="class")
    def report(self, memory_lake):
        with FleetOrchestrator(memory_lake, PipelineConfig()) as orchestrator:
            return orchestrator.run()

    def test_all_units_processed(self, report):
        assert report.n_units == 4
        assert report.n_succeeded == 4
        assert report.n_failed == 0

    def test_per_region_rollup(self, report):
        summary = report.per_region_summary()
        assert set(summary) == {"region-0", "region-1"}
        assert summary["region-0"]["units"] == 2
        assert summary["region-0"]["n_servers"] == 16  # 8 servers x 2 weekly extracts
        assert summary["region-1"]["n_servers"] == 10

    def test_component_runtimes_present_per_region(self, report):
        table = report.per_region_component_seconds()
        for region_totals in table.values():
            assert region_totals["model_training"] >= 0.0
            assert region_totals["data_ingestion"] > 0.0

    def test_predictability_rollup_counts(self, report):
        rollup = report.predictability_rollup()
        assert rollup["n_servers"] == 26
        assert 0 <= rollup["n_predictable"] <= rollup["n_servers"]

    def test_report_as_dict_is_json_serializable(self, report):
        payload = json.dumps(report.as_dict())
        assert "per_region" in payload

    def test_render_text_mentions_each_region(self, report):
        text = report.render_text()
        assert "region-0" in text and "region-1" in text

    def test_explicit_unit_subset(self, memory_lake):
        with FleetOrchestrator(memory_lake, PipelineConfig()) as orchestrator:
            report = orchestrator.run([ExtractKey("region-1", 0)])
        assert report.n_units == 1
        assert report.outcomes[0].region == "region-1"

    def test_missing_extract_fails_unit_not_fleet(self, memory_lake):
        with FleetOrchestrator(memory_lake, PipelineConfig()) as orchestrator:
            report = orchestrator.run(
                [ExtractKey("region-0", 0), ExtractKey("region-9", 7)]
            )
        assert report.n_units == 2
        assert report.n_succeeded == 1
        assert report.n_failed == 1
        failed = [o for o in report.outcomes if not o.succeeded][0]
        assert failed.region == "region-9"
        assert report.incident_rollup()["by_severity"].get("critical") == 1

    def test_executor_shared_across_runs(self, memory_lake):
        orchestrator = FleetOrchestrator(memory_lake, PipelineConfig(), backend="threads")
        try:
            orchestrator.run([ExtractKey("region-0", 0), ExtractKey("region-1", 0)])
            first_pool = orchestrator.executor._pool
            orchestrator.run([ExtractKey("region-0", 0), ExtractKey("region-1", 0)])
            assert orchestrator.executor._pool is first_pool
        finally:
            orchestrator.close()
        assert orchestrator.executor.closed

    def test_external_executor_not_closed(self, memory_lake):
        from repro.parallel.executor import PartitionedExecutor

        executor = PartitionedExecutor.serial()
        with FleetOrchestrator(memory_lake, PipelineConfig(), executor=executor):
            pass
        assert not executor.closed


class TestOrchestratorCaching:
    @pytest.fixture()
    def disk_lake(self, tmp_path, fleet_spec):
        lake = DataLakeStore(tmp_path / "lake")
        populate_lake(lake, fleet_spec, weeks=range(2))
        return lake

    def test_warm_rerun_served_from_unit_cache(self, disk_lake, tmp_path):
        cache_dir = tmp_path / "cache"
        with FleetOrchestrator(
            disk_lake, PipelineConfig(), cache_dir=cache_dir
        ) as orchestrator:
            cold = orchestrator.run()
            warm = orchestrator.run()
        assert cold.cache_summary()["unit_hits"] == 0
        assert cold.cache_summary()["stage_misses"] == 12  # 3 stages x 4 units
        assert warm.cache_summary()["unit_hits"] == 4
        assert all(outcome.from_unit_cache for outcome in warm.outcomes)

    def test_warm_outcomes_identical_to_cold(self, disk_lake, tmp_path):
        with FleetOrchestrator(
            disk_lake, PipelineConfig(), cache_dir=tmp_path / "cache"
        ) as orchestrator:
            cold = orchestrator.run()
            warm = orchestrator.run()
        for before, after in zip(cold.outcomes, warm.outcomes):
            assert after.region == before.region and after.week == before.week
            assert after.summary == before.summary
            assert after.n_predictable == before.n_predictable
            assert after.n_predictions == before.n_predictions

    def test_changed_extract_recomputes_that_unit_only(self, disk_lake, tmp_path, fleet_spec):
        cache_dir = tmp_path / "cache"
        with FleetOrchestrator(
            disk_lake, PipelineConfig(), cache_dir=cache_dir
        ) as orchestrator:
            orchestrator.run()
            # Overwrite one extract with different content.
            changed_key = ExtractKey("region-0", 0)
            frame = WorkloadGenerator(fleet_spec).generate_weekly_extract("region-0", 3)
            disk_lake.write_extract(changed_key, frame)
            second = orchestrator.run()
        assert second.cache_summary()["unit_hits"] == 3
        recomputed = [o for o in second.outcomes if not o.from_unit_cache]
        assert [(o.region, o.week) for o in recomputed] == [("region-0", 0)]

    def test_config_change_reuses_feature_stage(self, disk_lake, tmp_path):
        cache_dir = tmp_path / "cache"
        with FleetOrchestrator(
            disk_lake, PipelineConfig(), cache_dir=cache_dir
        ) as orchestrator:
            orchestrator.run()
        with FleetOrchestrator(
            disk_lake,
            PipelineConfig(model_name="persistent_previous_equivalent_day"),
            cache_dir=cache_dir,
        ) as orchestrator:
            report = orchestrator.run()
        # New model: whole-unit outcomes are invalid, but the frame content
        # did not change, so the feature stage is served from cache.
        assert report.cache_summary()["unit_hits"] == 0
        for outcome in report.outcomes:
            assert outcome.cache_events["features"] == "hit"
            assert outcome.cache_events["train_infer"] == "miss"

    def test_corrupt_unit_cache_file_recovers(self, disk_lake, tmp_path):
        cache_dir = tmp_path / "cache"
        with FleetOrchestrator(
            disk_lake, PipelineConfig(), cache_dir=cache_dir
        ) as orchestrator:
            orchestrator.run()
            unit_cache_path(cache_dir, "region-0", 0).write_text("not json at all")
            report = orchestrator.run()
        assert report.n_failed == 0
        # The corrupted unit recomputed; the others were cache hits.
        assert report.cache_summary()["unit_hits"] == 3

    def test_executor_backend_change_keeps_unit_cache(self, disk_lake, tmp_path):
        cache_dir = tmp_path / "cache"
        units = [ExtractKey("region-0", 0)]
        with FleetOrchestrator(
            disk_lake, PipelineConfig(), cache_dir=cache_dir
        ) as orchestrator:
            orchestrator.run(units)
        # Execution knobs change how a unit is computed, not what it
        # computes: the cached outcome must still be served.
        with FleetOrchestrator(
            disk_lake,
            PipelineConfig().with_executor("threads", 2),
            cache_dir=cache_dir,
        ) as orchestrator:
            warm = orchestrator.run(units)
        assert warm.cache_summary()["unit_hits"] == 1

    def test_processes_backend_with_cache(self, disk_lake, tmp_path):
        cache_dir = tmp_path / "cache"
        units = [ExtractKey("region-0", 0), ExtractKey("region-1", 0)]
        with FleetOrchestrator(
            disk_lake,
            PipelineConfig(),
            backend="processes",
            n_workers=2,
            cache_dir=cache_dir,
        ) as orchestrator:
            cold = orchestrator.run(units)
            warm = orchestrator.run(units)
        assert cold.n_succeeded == 2
        assert warm.cache_summary()["unit_hits"] == 2


class TestUnitOutcomePayload:
    def test_roundtrip(self):
        outcome = FleetUnitOutcome(
            region="region-0",
            week=1,
            run_id="run-1",
            succeeded=True,
            abort_reason="",
            timings={"model_training": 1.5},
            summary={"pct_windows_correct": 80.0},
            n_servers=10,
            n_predictions=7,
            n_predictable=5,
            incidents=[{"severity": "warning", "source": "x", "message": "m", "region": "r"}],
            cache_events={"features": "miss"},
            wall_seconds=2.0,
        )
        restored = FleetUnitOutcome.from_payload(outcome.to_payload())
        assert restored == outcome

    def test_cache_hit_view_keeps_compute_timings(self):
        outcome = FleetUnitOutcome(
            region="r",
            week=0,
            run_id="run",
            succeeded=True,
            abort_reason="",
            timings={"model_training": 3.0},
            summary=None,
            n_servers=1,
            n_predictions=1,
            n_predictable=1,
            incidents=[],
            cache_events={},
            wall_seconds=3.5,
        )
        hit = outcome.as_cache_hit(0.01)
        assert hit.from_unit_cache
        assert hit.timings["model_training"] == 3.0
        assert hit.wall_seconds == 0.01


class TestFleetReportEdgeCases:
    def test_empty_report(self):
        report = FleetReport(outcomes=[], backend="serial", n_workers=1, wall_seconds=0.0)
        assert report.n_units == 0
        assert report.predictability_rollup()["pct_predictable"] == 0.0
        assert report.render_text()


class TestFleetCli:
    def test_cli_runs_and_reports(self, capsys, tmp_path):
        code = fleet_main(
            [
                "--servers",
                "6,4",
                "--weeks",
                "1",
                "--lake-dir",
                str(tmp_path / "lake"),
                "--cache-dir",
                str(tmp_path / "cache"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Fleet run: 2 units" in out

    def test_cli_json_output(self, capsys, tmp_path):
        code = fleet_main(
            [
                "--servers",
                "5",
                "--weeks",
                "1",
                "--json",
                "--lake-dir",
                str(tmp_path / "lake"),
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["run"]["n_units"] == 1

    def test_cli_rerun_requires_cache_dir(self, capsys):
        assert fleet_main(["--rerun"]) == 2

    def test_cli_rejects_bad_servers(self, capsys):
        assert fleet_main(["--servers", "nope"]) == 2
        assert fleet_main(["--servers", "0"]) == 2

    def test_cli_rerun_hits_cache(self, capsys, tmp_path):
        code = fleet_main(
            [
                "--servers",
                "5",
                "--weeks",
                "1",
                "--rerun",
                "--lake-dir",
                str(tmp_path / "lake"),
                "--cache-dir",
                str(tmp_path / "cache"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "warm re-run" in out
        assert "Warm-cache speedup" in out
