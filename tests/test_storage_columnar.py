"""Unit tests for the binary columnar ``.sgx`` extract format."""

import struct
import zlib

import numpy as np
import pytest

from repro.storage import columnar
from repro.storage.columnar import (
    HEADER_BYTES,
    MAGIC,
    ColumnarFormatError,
    SgxReadStats,
    frame_from_sgx_bytes,
    frame_to_sgx_bytes,
    read_frame_sgx,
    sgx_summary,
    sgx_version,
    write_frame_sgx,
)
from repro.timeseries.frame import LoadFrame, ServerMetadata
from repro.timeseries.series import LoadSeries

from tests.helpers import frame_to_sgx_v1_bytes, frame_to_sgx_v2_bytes, make_series

#: Bytes from a chunk's max_ts field to the end of its fixed header
#: (max_ts i64 + ts_crc u32 + vs_crc u32).
_CHUNK_FIXED_TAIL = 16


def build_frame(n_servers=3, points=12, interval=5) -> LoadFrame:
    frame = LoadFrame(interval)
    for index in range(n_servers):
        metadata = ServerMetadata(
            server_id=f"srv-{index}",
            region="westus2",
            engine=("postgresql", "mysql", "sql")[index % 3],
            default_backup_start=60 * index,
            default_backup_end=60 * index + 30,
            backup_duration_minutes=45,
            true_class=("stable", "daily", "")[index % 3],
        )
        values = np.linspace(0.0, 99.0, points) + index
        frame.add_server(metadata, make_series(values, start=index * 1440, interval=interval))
    return frame


class TestRoundTrip:
    def test_bytes_roundtrip_preserves_content_hash(self):
        frame = build_frame()
        restored = frame_from_sgx_bytes(frame_to_sgx_bytes(frame))
        assert restored.content_hash() == frame.content_hash()

    def test_roundtrip_preserves_metadata_exactly(self):
        frame = build_frame()
        restored = frame_from_sgx_bytes(frame_to_sgx_bytes(frame))
        for server_id in frame.server_ids():
            assert restored.metadata(server_id) == frame.metadata(server_id)

    def test_roundtrip_preserves_values_bit_exactly(self):
        frame = LoadFrame(5)
        values = [0.1, 1 / 3, 2.5000000001, 99.99999999]
        frame.add_server(ServerMetadata(server_id="s"), make_series(values))
        restored = frame_from_sgx_bytes(frame_to_sgx_bytes(frame))
        assert np.array_equal(restored.series("s").values, np.asarray(values))

    def test_roundtrip_on_disk(self, tmp_path):
        frame = build_frame()
        path = tmp_path / "extract.sgx"
        rows = write_frame_sgx(frame, path)
        assert rows == frame.total_points()
        assert read_frame_sgx(path).content_hash() == frame.content_hash()

    def test_empty_frame_roundtrip(self):
        frame = LoadFrame(5)
        restored = frame_from_sgx_bytes(frame_to_sgx_bytes(frame))
        assert len(restored) == 0
        assert restored.interval_minutes == 5

    def test_empty_series_roundtrip(self):
        frame = LoadFrame(5)
        frame.add_server(ServerMetadata(server_id="s"), LoadSeries.empty(5))
        restored = frame_from_sgx_bytes(frame_to_sgx_bytes(frame))
        assert restored.series("s").is_empty

    def test_interval_taken_from_header_by_default(self):
        frame = build_frame(interval=15)
        assert frame_from_sgx_bytes(frame_to_sgx_bytes(frame)).interval_minutes == 15

    def test_unicode_strings_roundtrip(self):
        frame = LoadFrame(5)
        metadata = ServerMetadata(server_id="sérvér-0", region="日本東部", engine="postgresql")
        frame.add_server(metadata, make_series([1.0, 2.0]))
        restored = frame_from_sgx_bytes(frame_to_sgx_bytes(frame))
        assert restored.metadata("sérvér-0").region == "日本東部"

    def test_dictionary_is_shared_across_servers(self):
        # 20 servers, one region/engine: the strings are stored once.
        many = build_frame(n_servers=20, points=1)
        lone = build_frame(n_servers=1, points=1)
        per_server = (len(frame_to_sgx_bytes(many)) - len(frame_to_sgx_bytes(lone))) / 19
        encoded_meta = len("westus2") + len("postgresql")
        # record header + v4 chunk header (64 bytes) + one point + slack:
        # loose enough for the fixed fields, tight enough that re-encoding
        # the region/engine strings per server would blow it.
        assert per_server < 88 + 16 + 10 + encoded_meta  # no repeated strings


class TestZoneMapPruning:
    def test_time_range_read_cuts_series(self):
        frame = build_frame(n_servers=1, points=288)  # one day from minute 0
        data = frame_to_sgx_bytes(frame)
        part = frame_from_sgx_bytes(data, start_minute=60, end_minute=120)
        series = part.series("srv-0")
        assert series.start >= 60 and series.end < 120

    def test_non_overlapping_servers_are_omitted(self):
        frame = build_frame(n_servers=3, points=12)  # server i starts at i*1440
        data = frame_to_sgx_bytes(frame)
        part = frame_from_sgx_bytes(data, start_minute=1440, end_minute=2880)
        assert part.server_ids() == ["srv-1"]

    def test_pruned_chunks_skip_checksum_verification(self):
        frame = build_frame(n_servers=3, points=12)
        data = bytearray(frame_to_sgx_bytes(frame))
        # Corrupt the *last* server's payload (starts at minute 2*1440).
        data[-4] ^= 0xFF
        with pytest.raises(ColumnarFormatError):
            frame_from_sgx_bytes(bytes(data))
        # A range read that prunes that chunk never touches the damage.
        part = frame_from_sgx_bytes(bytes(data), start_minute=0, end_minute=1440)
        assert part.server_ids() == ["srv-0"]

    def test_open_ended_ranges(self):
        frame = build_frame(n_servers=3, points=12)
        data = frame_to_sgx_bytes(frame)
        assert frame_from_sgx_bytes(data, start_minute=2880).server_ids() == ["srv-2"]
        assert frame_from_sgx_bytes(data, end_minute=1440).server_ids() == ["srv-0"]

    def test_partial_read_does_not_pin_file_buffer(self):
        frame = build_frame(n_servers=4, points=288)
        data = frame_to_sgx_bytes(frame)
        part = frame_from_sgx_bytes(data, start_minute=0, end_minute=60)
        for server_id in part.server_ids():
            for array in (part.series(server_id).timestamps, part.series(server_id).values):
                owner = array
                while getattr(owner, "base", None) is not None:
                    owner = owner.base
                # The kept slice must own its data, not reference the
                # whole .sgx byte buffer.
                assert not isinstance(owner, (bytes, bytearray, memoryview))

    def test_full_range_equals_full_read(self):
        frame = build_frame()
        data = frame_to_sgx_bytes(frame)
        part = frame_from_sgx_bytes(data, start_minute=0, end_minute=10 * 1440)
        assert part.content_hash() == frame.content_hash()


class TestCorruption:
    def test_empty_bytes(self):
        with pytest.raises(ColumnarFormatError, match="truncated"):
            frame_from_sgx_bytes(b"")

    def test_bad_magic(self):
        data = bytearray(frame_to_sgx_bytes(build_frame()))
        data[:4] = b"NOPE"
        with pytest.raises(ColumnarFormatError, match="magic"):
            frame_from_sgx_bytes(bytes(data))

    def test_csv_bytes_are_rejected(self):
        with pytest.raises(ColumnarFormatError):
            frame_from_sgx_bytes(b"server_id,timestamp_minutes,avg_cpu_percent\n" * 10)

    def test_truncated_header(self):
        data = frame_to_sgx_bytes(build_frame())
        with pytest.raises(ColumnarFormatError, match="truncated"):
            frame_from_sgx_bytes(data[: HEADER_BYTES - 4])

    def test_truncated_body(self):
        data = frame_to_sgx_bytes(build_frame())
        with pytest.raises(ColumnarFormatError, match="truncated"):
            frame_from_sgx_bytes(data[:-10])

    def test_header_field_tamper_detected_by_header_crc(self):
        data = bytearray(frame_to_sgx_bytes(build_frame()))
        # Inflate n_servers without fixing the header CRC.
        struct.pack_into("<I", data, 12, 9999)
        with pytest.raises(ColumnarFormatError, match="header checksum"):
            frame_from_sgx_bytes(bytes(data))

    def test_unsupported_version(self):
        data = bytearray(frame_to_sgx_bytes(build_frame()))
        crc_offset = HEADER_BYTES - 4  # header CRC is the last header field
        struct.pack_into("<H", data, 4, 99)
        struct.pack_into("<I", data, crc_offset, zlib.crc32(bytes(data[:crc_offset])))
        with pytest.raises(ColumnarFormatError, match="version"):
            frame_from_sgx_bytes(bytes(data))

    def test_payload_bit_flip_detected(self):
        data = bytearray(frame_to_sgx_bytes(build_frame()))
        data[-1] ^= 0x01
        with pytest.raises(ColumnarFormatError, match="checksum"):
            frame_from_sgx_bytes(bytes(data))

    def test_appended_garbage_detected(self):
        data = frame_to_sgx_bytes(build_frame())
        with pytest.raises(ColumnarFormatError):
            frame_from_sgx_bytes(data + b"extra")

    def test_zone_map_tamper_detected_even_on_pruned_reads(self):
        frame = build_frame(n_servers=1, points=12)
        data = bytearray(frame_to_sgx_bytes(frame))
        # max_ts sits in the 8 bytes just before the payload CRC at the
        # end of the single chunk's fixed header.
        idx = len(data) - 12 * 16 - _CHUNK_FIXED_TAIL
        data[idx] ^= 0xFF
        with pytest.raises(ColumnarFormatError, match="structure checksum"):
            frame_from_sgx_bytes(bytes(data))
        # A time-range read must not trust the tampered zone map either.
        with pytest.raises(ColumnarFormatError, match="structure checksum"):
            frame_from_sgx_bytes(bytes(data), start_minute=0, end_minute=1)

    def test_dictionary_tamper_detected(self):
        data = bytearray(frame_to_sgx_bytes(build_frame()))
        # Flip a bit inside the first dictionary string ("westus2" -> a
        # different, still-valid region name).
        data[HEADER_BYTES + 3] ^= 0x01
        with pytest.raises(ColumnarFormatError, match="structure checksum"):
            frame_from_sgx_bytes(bytes(data))
        with pytest.raises(ColumnarFormatError, match="structure checksum"):
            sgx_summary(bytes(data))

    def test_error_is_a_value_error(self):
        # Ingestion error handling catches ValueError; the typed error
        # must stay inside that hierarchy.
        assert issubclass(ColumnarFormatError, ValueError)


def multi_day_frame(n_servers=2, n_days=7, interval=5) -> LoadFrame:
    """Servers spanning ``n_days`` consecutive days from minute 0."""
    frame = LoadFrame(interval)
    points = n_days * (1440 // interval)
    for index in range(n_servers):
        metadata = ServerMetadata(server_id=f"srv-{index}", region="westus2")
        values = (np.arange(points, dtype=float) + index) % 100
        frame.add_server(metadata, make_series(values, start=0, interval=interval))
    return frame


class TestUnsortedRejection:
    """The headline bugfix: unsorted series must be rejected, not
    round-tripped with a corrupt zone map."""

    def _frame_with_timestamps(self, timestamps):
        frame = LoadFrame(5)
        series = LoadSeries(
            np.asarray(timestamps, dtype=np.int64),
            np.arange(len(timestamps), dtype=float),
            5,
            validate=False,
        )
        frame.add_server(ServerMetadata(server_id="srv-bad"), series)
        return frame

    def test_unsorted_series_rejected_naming_server(self):
        frame = self._frame_with_timestamps([0, 10, 5, 15])
        with pytest.raises(ColumnarFormatError, match="srv-bad"):
            frame_to_sgx_bytes(frame)

    def test_reversed_series_rejected(self):
        frame = self._frame_with_timestamps([15, 10, 5, 0])
        with pytest.raises(ColumnarFormatError, match="strictly increasing"):
            frame_to_sgx_bytes(frame)

    def test_duplicate_timestamps_rejected(self):
        frame = self._frame_with_timestamps([0, 5, 5, 10])
        with pytest.raises(ColumnarFormatError, match="strictly increasing"):
            frame_to_sgx_bytes(frame)

    def test_unsorted_series_never_reaches_disk(self, tmp_path):
        frame = self._frame_with_timestamps([0, 10, 5])
        path = tmp_path / "bad.sgx"
        with pytest.raises(ColumnarFormatError):
            write_frame_sgx(frame, path)
        assert not path.exists()

    def test_irregular_but_sorted_series_is_accepted(self):
        # Sortedness, not grid regularity, is what zone maps need.
        frame = self._frame_with_timestamps([0, 5, 7, 100])
        restored = frame_from_sgx_bytes(frame_to_sgx_bytes(frame))
        assert restored.series("srv-bad").start == 0
        assert restored.series("srv-bad").end == 100

    def test_single_point_and_empty_series_accepted(self):
        frame = LoadFrame(5)
        frame.add_server(ServerMetadata(server_id="one"), make_series([1.0]))
        frame.add_server(ServerMetadata(server_id="none"), LoadSeries.empty(5))
        restored = frame_from_sgx_bytes(frame_to_sgx_bytes(frame))
        assert len(restored.series("one")) == 1
        assert restored.series("none").is_empty


class TestChunking:
    """Format v2: per-day chunks let zone maps prune within a server."""

    def test_writer_splits_one_chunk_per_day(self):
        frame = multi_day_frame(n_servers=2, n_days=7)
        info = sgx_summary(frame_to_sgx_bytes(frame))
        assert info["version"] == columnar.VERSION
        assert info["n_servers"] == 2
        assert info["n_chunks"] == 14
        per_server = [c for c in info["chunks"] if c["server_id"] == "srv-0"]
        assert len(per_server) == 7
        for day, chunk in enumerate(per_server):
            assert chunk["min_ts"] == day * 1440
            assert chunk["max_ts"] == (day + 1) * 1440 - 5

    def test_chunk_minutes_zero_writes_single_chunk(self):
        frame = multi_day_frame(n_servers=1, n_days=7)
        info = sgx_summary(frame_to_sgx_bytes(frame, chunk_minutes=0))
        assert info["n_chunks"] == 1

    def test_chunk_minutes_knob_controls_granularity(self):
        frame = multi_day_frame(n_servers=1, n_days=2)
        assert sgx_summary(frame_to_sgx_bytes(frame, chunk_minutes=720))["n_chunks"] == 4
        assert sgx_summary(frame_to_sgx_bytes(frame, chunk_minutes=2880))["n_chunks"] == 1

    def test_negative_chunk_minutes_rejected(self):
        with pytest.raises(ValueError, match="chunk_minutes"):
            frame_to_sgx_bytes(multi_day_frame(1, 1), chunk_minutes=-1)

    def test_multi_chunk_roundtrip_preserves_content_hash(self):
        frame = multi_day_frame(n_servers=3, n_days=7)
        restored = frame_from_sgx_bytes(frame_to_sgx_bytes(frame))
        assert restored.content_hash() == frame.content_hash()

    def test_range_exactly_on_day_boundaries(self):
        frame = multi_day_frame(n_servers=1, n_days=7)
        data = frame_to_sgx_bytes(frame)
        part = frame_from_sgx_bytes(data, start_minute=1440, end_minute=2880)
        series = part.series("srv-0")
        expected = frame.series("srv-0").slice(1440, 2880)
        assert series == expected
        assert series.start == 1440
        assert series.end == 2880 - 5

    def test_range_spanning_two_chunks_merges_seamlessly(self):
        frame = multi_day_frame(n_servers=1, n_days=7)
        data = frame_to_sgx_bytes(frame)
        part = frame_from_sgx_bytes(data, start_minute=1000, end_minute=2000)
        assert part.series("srv-0") == frame.series("srv-0").slice(1000, 2000)

    def test_range_inside_one_chunk_prunes_the_rest(self):
        frame = multi_day_frame(n_servers=1, n_days=7)
        stats = SgxReadStats()
        part = frame_from_sgx_bytes(
            frame_to_sgx_bytes(frame), start_minute=3000, end_minute=3100, stats=stats
        )
        assert part.series("srv-0") == frame.series("srv-0").slice(3000, 3100)
        assert stats.chunks_pruned == 6

    def test_one_day_read_verifies_fraction_of_payload(self):
        frame = multi_day_frame(n_servers=4, n_days=7)
        data = frame_to_sgx_bytes(frame)
        full = SgxReadStats()
        frame_from_sgx_bytes(data, stats=full)
        day = SgxReadStats()
        frame_from_sgx_bytes(data, start_minute=0, end_minute=1440, stats=day)
        assert full.payload_bytes_verified == full.payload_bytes_total
        assert day.payload_bytes_verified * 2 <= full.payload_bytes_verified
        assert day.payload_bytes_verified == full.payload_bytes_total // 7
        assert day.chunks_pruned == 4 * 6

    def test_damage_in_pruned_day_is_skipped_within_server(self):
        # v2's point: damage in day 6 must not block a day-0 read of the
        # *same* server.
        frame = multi_day_frame(n_servers=1, n_days=7)
        data = bytearray(frame_to_sgx_bytes(frame))
        data[-4] ^= 0xFF  # last bytes belong to the final day's values
        with pytest.raises(ColumnarFormatError, match="checksum"):
            frame_from_sgx_bytes(bytes(data))
        part = frame_from_sgx_bytes(bytes(data), start_minute=0, end_minute=1440)
        assert part.series("srv-0") == frame.series("srv-0").slice(0, 1440)

    def test_gap_spanning_whole_days_writes_no_empty_chunks(self):
        frame = LoadFrame(5)
        ts = np.concatenate(
            [np.arange(0, 1440, 5, dtype=np.int64), np.arange(4320, 5760, 5, dtype=np.int64)]
        )
        series = LoadSeries(ts, np.zeros(ts.shape[0]), 5, validate=False)
        frame.add_server(ServerMetadata(server_id="gappy"), series)
        info = sgx_summary(frame_to_sgx_bytes(frame))
        assert info["n_chunks"] == 2  # days 1-2 are absent, not empty chunks
        restored = frame_from_sgx_bytes(frame_to_sgx_bytes(frame))
        assert restored.series("gappy") == series

    def test_empty_series_sentinel_chunk(self):
        frame = LoadFrame(5)
        frame.add_server(ServerMetadata(server_id="idle"), LoadSeries.empty(5))
        data = frame_to_sgx_bytes(frame)
        info = sgx_summary(data)
        assert info["n_chunks"] == 1
        assert info["chunks"][0]["n_points"] == 0
        assert info["chunks"][0]["min_ts"] > info["chunks"][0]["max_ts"]  # matches no range
        assert frame_from_sgx_bytes(data).series("idle").is_empty
        # Under pruning the sentinel matches nothing, so the server drops.
        assert len(frame_from_sgx_bytes(data, start_minute=0, end_minute=10)) == 0

    def test_out_of_order_chunks_rejected(self):
        # Hand-assemble a v2 file whose two chunks are swapped in time but
        # whose CRCs are all internally consistent -- the reader must not
        # silently merge them into a corrupt (unsorted) series.
        import struct as _struct
        import zlib as _zlib

        def packed(text):
            encoded = text.encode()
            return _struct.pack("<H", len(encoded)) + encoded

        day0_ts = np.arange(0, 1440, 5, dtype="<i8")
        day1_ts = np.arange(1440, 2880, 5, dtype="<i8")
        vs = np.zeros(day0_ts.shape[0], dtype="<f8")
        payloads, table = [], b""
        for ts in (day1_ts, day0_ts):  # wrong order on purpose
            payload = ts.tobytes() + vs.tobytes()
            table += columnar._CHUNK_HEADER_V2.pack(
                ts.shape[0], int(ts[0]), int(ts[-1]), _zlib.crc32(payload)
            )
            payloads.append(payload)
        dict_section = packed("r") + packed("e") + packed("")
        record = packed("srv-0") + columnar._SERVER_FIXED.pack(0, 1, 2, 0, 0, 60, 2) + table
        structure_crc = _zlib.crc32(record, _zlib.crc32(dict_section))
        body = dict_section + record + b"".join(payloads)
        header = columnar._FILE_HEADER.pack(
            MAGIC, 2, 0, 5, 1, 3, HEADER_BYTES + len(body), structure_crc
        )
        data = header + _struct.pack("<I", _zlib.crc32(header)) + body
        with pytest.raises(ColumnarFormatError, match="out-of-order"):
            frame_from_sgx_bytes(data)

    def test_truncated_chunk_table_detected(self):
        frame = multi_day_frame(n_servers=1, n_days=3)
        data = frame_to_sgx_bytes(frame)
        with pytest.raises(ColumnarFormatError, match="truncated"):
            frame_from_sgx_bytes(data[: len(data) // 2])


class TestV1Compatibility:
    """Files written by the v1 (single-chunk) writer stay readable."""

    def test_v1_roundtrip_preserves_content_hash(self):
        frame = build_frame()
        data = frame_to_sgx_v1_bytes(frame)
        assert sgx_version(data) == 1
        restored = frame_from_sgx_bytes(data)
        assert restored.content_hash() == frame.content_hash()

    def test_v1_metadata_preserved(self):
        frame = build_frame()
        restored = frame_from_sgx_bytes(frame_to_sgx_v1_bytes(frame))
        for server_id in frame.server_ids():
            assert restored.metadata(server_id) == frame.metadata(server_id)

    def test_v1_summary_reports_version_and_single_chunks(self):
        frame = multi_day_frame(n_servers=2, n_days=7)
        info = sgx_summary(frame_to_sgx_v1_bytes(frame))
        assert info["version"] == 1
        assert info["n_servers"] == 2
        assert info["n_chunks"] == 2  # one whole-series chunk per server

    def test_v1_pruned_read_still_works_per_server(self):
        frame = build_frame(n_servers=3, points=12)  # server i starts at i*1440
        data = frame_to_sgx_v1_bytes(frame)
        part = frame_from_sgx_bytes(data, start_minute=1440, end_minute=2880)
        assert part.server_ids() == ["srv-1"]

    def test_v1_time_slice_within_server(self):
        frame = multi_day_frame(n_servers=1, n_days=7)
        data = frame_to_sgx_v1_bytes(frame)
        part = frame_from_sgx_bytes(data, start_minute=1000, end_minute=2000)
        assert part.series("srv-0") == frame.series("srv-0").slice(1000, 2000)

    def test_v1_empty_series_roundtrip(self):
        frame = LoadFrame(5)
        frame.add_server(ServerMetadata(server_id="idle"), LoadSeries.empty(5))
        restored = frame_from_sgx_bytes(frame_to_sgx_v1_bytes(frame))
        assert restored.series("idle").is_empty

    def test_v1_payload_corruption_detected(self):
        data = bytearray(frame_to_sgx_v1_bytes(build_frame()))
        data[-1] ^= 0x01
        with pytest.raises(ColumnarFormatError, match="checksum"):
            frame_from_sgx_bytes(bytes(data))

    def test_version_four_is_current(self):
        assert columnar.VERSION == 4
        assert sgx_version(frame_to_sgx_bytes(build_frame())) == 4


class TestV2Compatibility:
    """Files written by the v2 (joint-payload-CRC) writer stay readable."""

    def test_v2_roundtrip_preserves_content_hash(self):
        frame = multi_day_frame(n_servers=2, n_days=7)
        data = frame_to_sgx_v2_bytes(frame)
        assert sgx_version(data) == 2
        restored = frame_from_sgx_bytes(data)
        assert restored.content_hash() == frame.content_hash()

    def test_v2_time_slice_within_server(self):
        frame = multi_day_frame(n_servers=1, n_days=7)
        data = frame_to_sgx_v2_bytes(frame)
        part = frame_from_sgx_bytes(data, start_minute=1000, end_minute=2000)
        assert part.series("srv-0") == frame.series("srv-0").slice(1000, 2000)

    def test_v2_payload_corruption_detected(self):
        data = bytearray(frame_to_sgx_v2_bytes(build_frame()))
        data[-1] ^= 0x01
        with pytest.raises(ColumnarFormatError, match="checksum"):
            frame_from_sgx_bytes(bytes(data))

    def test_v2_projection_still_checksums_whole_payload(self):
        # The joint CRC cannot vouch for the timestamps alone, so a
        # timestamps-only read of a v2 file must verify all payload bytes
        # (the decode is still skipped).
        frame = multi_day_frame(n_servers=2, n_days=2)
        stats = SgxReadStats()
        restored = frame_from_sgx_bytes(
            frame_to_sgx_v2_bytes(frame), columns=("timestamps",), stats=stats
        )
        assert stats.payload_bytes_verified == stats.payload_bytes_total
        assert stats.columns_skipped == 4  # 2 servers x 2 day chunks
        assert np.isnan(restored.series("srv-0").values).all()


class TestServerPushdown:
    """Server filtering skips excluded servers' chunks at the byte level."""

    def test_allow_list_filters_servers(self):
        data = frame_to_sgx_bytes(build_frame(n_servers=3))
        part = frame_from_sgx_bytes(data, servers=("srv-0", "srv-2"))
        assert part.server_ids() == ["srv-0", "srv-2"]

    def test_predicate_filters_on_metadata(self):
        data = frame_to_sgx_bytes(build_frame(n_servers=6))
        part = frame_from_sgx_bytes(data, predicate=lambda md: md.engine == "mysql")
        assert part.server_ids() == ["srv-1", "srv-4"]

    def test_excluded_servers_chunks_never_verified(self):
        frame = multi_day_frame(n_servers=4, n_days=3)
        stats = SgxReadStats()
        frame_from_sgx_bytes(frame_to_sgx_bytes(frame), servers=("srv-0",), stats=stats)
        assert stats.servers_seen == 4
        assert stats.servers_skipped == 3
        assert stats.chunks_pruned == 9  # 3 excluded servers x 3 day chunks
        assert stats.payload_bytes_verified == stats.payload_bytes_total // 4

    def test_corruption_in_excluded_server_is_never_touched(self):
        # The strongest possible "never read" proof: damage an excluded
        # server's payload and watch the filtered read not notice.
        frame = build_frame(n_servers=3, points=12)
        data = bytearray(frame_to_sgx_bytes(frame))
        data[-4] ^= 0xFF  # last server's values buffer
        with pytest.raises(ColumnarFormatError):
            frame_from_sgx_bytes(bytes(data))
        part = frame_from_sgx_bytes(bytes(data), servers=("srv-0", "srv-1"))
        assert part.server_ids() == ["srv-0", "srv-1"]

    def test_filter_composes_with_time_range(self):
        frame = multi_day_frame(n_servers=3, n_days=7)
        part = frame_from_sgx_bytes(
            frame_to_sgx_bytes(frame),
            start_minute=1440,
            end_minute=2880,
            servers=("srv-1",),
        )
        assert part.server_ids() == ["srv-1"]
        assert part.series("srv-1") == frame.series("srv-1").slice(1440, 2880)

    def test_unknown_server_filter_yields_empty_frame(self):
        data = frame_to_sgx_bytes(build_frame())
        assert len(frame_from_sgx_bytes(data, servers=("nope",))) == 0


class TestColumnProjection:
    """v3 per-column CRCs: unprojected buffers are neither decoded nor
    checksummed."""

    def test_timestamps_only_read_halves_verified_bytes(self):
        frame = multi_day_frame(n_servers=2, n_days=3)
        stats = SgxReadStats()
        frame_from_sgx_bytes(frame_to_sgx_bytes(frame), columns=("timestamps",), stats=stats)
        assert stats.payload_bytes_verified == stats.payload_bytes_total // 2
        assert stats.columns_skipped == 6  # 2 servers x 3 day chunks

    def test_unprojected_values_are_nan(self):
        frame = build_frame(n_servers=2)
        restored = frame_from_sgx_bytes(
            frame_to_sgx_bytes(frame), columns=("timestamps",)
        )
        for server_id in restored.server_ids():
            series = restored.series(server_id)
            assert np.array_equal(series.timestamps, frame.series(server_id).timestamps)
            assert np.isnan(series.values).all()

    def test_corrupt_values_buffer_invisible_to_timestamps_only_read(self):
        frame = build_frame(n_servers=1, points=12)
        data = bytearray(frame_to_sgx_bytes(frame))
        data[-4] ^= 0xFF  # inside the values buffer
        with pytest.raises(ColumnarFormatError):
            frame_from_sgx_bytes(bytes(data))
        part = frame_from_sgx_bytes(bytes(data), columns=("timestamps",))
        assert np.array_equal(part.series("srv-0").timestamps, frame.series("srv-0").timestamps)

    def test_corrupt_timestamps_detected_even_under_projection(self):
        frame = build_frame(n_servers=1, points=12)
        data = bytearray(frame_to_sgx_bytes(frame))
        # First payload byte of the single server's first chunk is a
        # timestamps byte; the projected read must still checksum it.
        data[len(data) - 12 * 16] ^= 0xFF
        with pytest.raises(ColumnarFormatError, match="checksum"):
            frame_from_sgx_bytes(bytes(data), columns=("timestamps",))

    def test_full_projection_equals_default(self):
        frame = build_frame()
        data = frame_to_sgx_bytes(frame)
        assert (
            frame_from_sgx_bytes(data, columns=("timestamps", "values")).content_hash()
            == frame_from_sgx_bytes(data).content_hash()
        )

    def test_values_only_projection_rejected(self):
        data = frame_to_sgx_bytes(build_frame())
        with pytest.raises(ValueError, match="timestamps"):
            frame_from_sgx_bytes(data, columns=("values",))

    def test_unknown_column_rejected(self):
        data = frame_to_sgx_bytes(build_frame())
        with pytest.raises(ValueError, match="unknown column"):
            frame_from_sgx_bytes(data, columns=("timestamps", "cpu"))


class TestStreamingScan:
    """scan_sgx_bytes: lazy per-server iteration over verified structure."""

    def test_scan_yields_all_servers_in_order(self):
        frame = build_frame(n_servers=3)
        scanned = list(columnar.scan_sgx_bytes(frame_to_sgx_bytes(frame)))
        assert [metadata.server_id for metadata, _series in scanned] == frame.server_ids()
        for metadata, series in scanned:
            assert series == frame.series(metadata.server_id)

    def test_scan_is_lazy_per_server(self):
        # Abandoning the scan after the first server must leave the later
        # servers' payloads untouched -- corrupt them to prove it.
        frame = build_frame(n_servers=3, points=12)
        data = bytearray(frame_to_sgx_bytes(frame))
        data[-4] ^= 0xFF  # damage the last server's payload
        scan = columnar.scan_sgx_bytes(bytes(data))
        metadata, series = next(scan)
        assert metadata.server_id == "srv-0"
        scan.close()

    def test_scan_verifies_structure_before_first_yield(self):
        frame = build_frame(n_servers=3)
        data = bytearray(frame_to_sgx_bytes(frame))
        data[HEADER_BYTES + 3] ^= 0x01  # dictionary tamper
        scan = columnar.scan_sgx_bytes(bytes(data))
        with pytest.raises(ColumnarFormatError, match="structure checksum"):
            next(scan)

    def test_duplicate_server_records_rejected(self):
        # Hand-assemble a v3 file holding the same server twice with
        # internally consistent CRCs; the reader must refuse it.
        def packed(text):
            encoded = text.encode()
            return struct.pack("<H", len(encoded)) + encoded

        ts = np.arange(0, 60, 5, dtype="<i8")
        vs = np.zeros(ts.shape[0], dtype="<f8")
        table = columnar._CHUNK_HEADER_V3.pack(
            ts.shape[0], int(ts[0]), int(ts[-1]),
            zlib.crc32(ts.tobytes()), zlib.crc32(vs.tobytes()),
        )
        record = packed("srv-0") + columnar._SERVER_FIXED.pack(0, 1, 2, 0, 0, 60, 1) + table
        payload = ts.tobytes() + vs.tobytes()
        dict_section = packed("r") + packed("e") + packed("")
        structure_crc = zlib.crc32(record, zlib.crc32(record, zlib.crc32(dict_section)))
        body = dict_section + record + payload + record + payload
        header = columnar._FILE_HEADER.pack(
            MAGIC, 3, 0, 5, 2, 3, HEADER_BYTES + len(body), structure_crc
        )
        data = header + struct.pack("<I", zlib.crc32(header)) + body
        with pytest.raises(ColumnarFormatError, match="duplicate"):
            frame_from_sgx_bytes(data)


class TestBufferHandling:
    """Reads from bytearray/memoryview must not copy the whole file."""

    def test_bytearray_and_memoryview_inputs_roundtrip(self):
        frame = build_frame()
        data = frame_to_sgx_bytes(frame)
        for buffer in (bytearray(data), memoryview(data), memoryview(bytearray(data))):
            restored = frame_from_sgx_bytes(buffer)
            assert restored.content_hash() == frame.content_hash()

    def test_mutable_buffer_read_does_not_alias_caller_memory(self):
        frame = build_frame(n_servers=1, points=12)
        buffer = bytearray(frame_to_sgx_bytes(frame))
        restored = frame_from_sgx_bytes(buffer)
        before = restored.series("srv-0").values.copy()
        buffer[-5] ^= 0xFF  # caller mutates its buffer after the read
        assert np.array_equal(restored.series("srv-0").values, before)

    def test_pruned_read_never_materialises_full_copy(self):
        import tracemalloc

        frame = multi_day_frame(n_servers=24, n_days=7)
        buffer = bytearray(frame_to_sgx_bytes(frame))  # ~2.3 MB
        view = memoryview(buffer)
        tracemalloc.start()
        try:
            frame_from_sgx_bytes(view, start_minute=0, end_minute=1440)
            _current, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        # The old implementation called bytes(data) up front: peak would
        # be at least the full file size.  A pruned read keeps ~1/7.
        assert peak < len(buffer) // 2

    def test_summary_accepts_mutable_buffers(self):
        frame = build_frame()
        info = sgx_summary(bytearray(frame_to_sgx_bytes(frame)))
        assert info["n_servers"] == len(frame)


class TestSummary:
    def test_summary_fields(self):
        frame = build_frame(n_servers=2, points=7)
        info = sgx_summary(frame_to_sgx_bytes(frame))
        assert info["version"] == columnar.VERSION
        assert info["n_servers"] == 2
        assert info["n_points"] == 14
        assert info["interval_minutes"] == 5
        assert len(info["chunks"]) == 2

    def test_summary_zone_maps(self):
        frame = build_frame(n_servers=2, points=12)
        chunk = sgx_summary(frame_to_sgx_bytes(frame))["chunks"][1]
        series = frame.series("srv-1")
        assert chunk["min_ts"] == series.start
        assert chunk["max_ts"] == series.end

    def test_magic_prefix(self):
        assert frame_to_sgx_bytes(build_frame()).startswith(MAGIC)
