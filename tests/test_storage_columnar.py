"""Unit tests for the binary columnar ``.sgx`` extract format."""

import struct
import zlib

import numpy as np
import pytest

from repro.storage import columnar
from repro.storage.columnar import (
    HEADER_BYTES,
    MAGIC,
    ColumnarFormatError,
    frame_from_sgx_bytes,
    frame_to_sgx_bytes,
    read_frame_sgx,
    sgx_summary,
    write_frame_sgx,
)
from repro.timeseries.frame import LoadFrame, ServerMetadata
from repro.timeseries.series import LoadSeries

from tests.helpers import make_series

#: Bytes from a chunk's max_ts field to the end of its fixed header
#: (max_ts i64 + payload_crc u32).
_CHUNK_FIXED_TAIL = 12


def build_frame(n_servers=3, points=12, interval=5) -> LoadFrame:
    frame = LoadFrame(interval)
    for index in range(n_servers):
        metadata = ServerMetadata(
            server_id=f"srv-{index}",
            region="westus2",
            engine=("postgresql", "mysql", "sql")[index % 3],
            default_backup_start=60 * index,
            default_backup_end=60 * index + 30,
            backup_duration_minutes=45,
            true_class=("stable", "daily", "")[index % 3],
        )
        values = np.linspace(0.0, 99.0, points) + index
        frame.add_server(metadata, make_series(values, start=index * 1440, interval=interval))
    return frame


class TestRoundTrip:
    def test_bytes_roundtrip_preserves_content_hash(self):
        frame = build_frame()
        restored = frame_from_sgx_bytes(frame_to_sgx_bytes(frame))
        assert restored.content_hash() == frame.content_hash()

    def test_roundtrip_preserves_metadata_exactly(self):
        frame = build_frame()
        restored = frame_from_sgx_bytes(frame_to_sgx_bytes(frame))
        for server_id in frame.server_ids():
            assert restored.metadata(server_id) == frame.metadata(server_id)

    def test_roundtrip_preserves_values_bit_exactly(self):
        frame = LoadFrame(5)
        values = [0.1, 1 / 3, 2.5000000001, 99.99999999]
        frame.add_server(ServerMetadata(server_id="s"), make_series(values))
        restored = frame_from_sgx_bytes(frame_to_sgx_bytes(frame))
        assert np.array_equal(restored.series("s").values, np.asarray(values))

    def test_roundtrip_on_disk(self, tmp_path):
        frame = build_frame()
        path = tmp_path / "extract.sgx"
        rows = write_frame_sgx(frame, path)
        assert rows == frame.total_points()
        assert read_frame_sgx(path).content_hash() == frame.content_hash()

    def test_empty_frame_roundtrip(self):
        frame = LoadFrame(5)
        restored = frame_from_sgx_bytes(frame_to_sgx_bytes(frame))
        assert len(restored) == 0
        assert restored.interval_minutes == 5

    def test_empty_series_roundtrip(self):
        frame = LoadFrame(5)
        frame.add_server(ServerMetadata(server_id="s"), LoadSeries.empty(5))
        restored = frame_from_sgx_bytes(frame_to_sgx_bytes(frame))
        assert restored.series("s").is_empty

    def test_interval_taken_from_header_by_default(self):
        frame = build_frame(interval=15)
        assert frame_from_sgx_bytes(frame_to_sgx_bytes(frame)).interval_minutes == 15

    def test_unicode_strings_roundtrip(self):
        frame = LoadFrame(5)
        metadata = ServerMetadata(server_id="sérvér-0", region="日本東部", engine="postgresql")
        frame.add_server(metadata, make_series([1.0, 2.0]))
        restored = frame_from_sgx_bytes(frame_to_sgx_bytes(frame))
        assert restored.metadata("sérvér-0").region == "日本東部"

    def test_dictionary_is_shared_across_servers(self):
        # 20 servers, one region/engine: the strings are stored once.
        many = build_frame(n_servers=20, points=1)
        lone = build_frame(n_servers=1, points=1)
        per_server = (len(frame_to_sgx_bytes(many)) - len(frame_to_sgx_bytes(lone))) / 19
        encoded_meta = len("westus2") + len("postgresql")
        assert per_server < 60 + 16 + 10 + encoded_meta  # no repeated strings


class TestZoneMapPruning:
    def test_time_range_read_cuts_series(self):
        frame = build_frame(n_servers=1, points=288)  # one day from minute 0
        data = frame_to_sgx_bytes(frame)
        part = frame_from_sgx_bytes(data, start_minute=60, end_minute=120)
        series = part.series("srv-0")
        assert series.start >= 60 and series.end < 120

    def test_non_overlapping_servers_are_omitted(self):
        frame = build_frame(n_servers=3, points=12)  # server i starts at i*1440
        data = frame_to_sgx_bytes(frame)
        part = frame_from_sgx_bytes(data, start_minute=1440, end_minute=2880)
        assert part.server_ids() == ["srv-1"]

    def test_pruned_chunks_skip_checksum_verification(self):
        frame = build_frame(n_servers=3, points=12)
        data = bytearray(frame_to_sgx_bytes(frame))
        # Corrupt the *last* server's payload (starts at minute 2*1440).
        data[-4] ^= 0xFF
        with pytest.raises(ColumnarFormatError):
            frame_from_sgx_bytes(bytes(data))
        # A range read that prunes that chunk never touches the damage.
        part = frame_from_sgx_bytes(bytes(data), start_minute=0, end_minute=1440)
        assert part.server_ids() == ["srv-0"]

    def test_open_ended_ranges(self):
        frame = build_frame(n_servers=3, points=12)
        data = frame_to_sgx_bytes(frame)
        assert frame_from_sgx_bytes(data, start_minute=2880).server_ids() == ["srv-2"]
        assert frame_from_sgx_bytes(data, end_minute=1440).server_ids() == ["srv-0"]

    def test_partial_read_does_not_pin_file_buffer(self):
        frame = build_frame(n_servers=4, points=288)
        data = frame_to_sgx_bytes(frame)
        part = frame_from_sgx_bytes(data, start_minute=0, end_minute=60)
        for server_id in part.server_ids():
            for array in (part.series(server_id).timestamps, part.series(server_id).values):
                owner = array
                while getattr(owner, "base", None) is not None:
                    owner = owner.base
                # The kept slice must own its data, not reference the
                # whole .sgx byte buffer.
                assert not isinstance(owner, (bytes, bytearray, memoryview))

    def test_full_range_equals_full_read(self):
        frame = build_frame()
        data = frame_to_sgx_bytes(frame)
        part = frame_from_sgx_bytes(data, start_minute=0, end_minute=10 * 1440)
        assert part.content_hash() == frame.content_hash()


class TestCorruption:
    def test_empty_bytes(self):
        with pytest.raises(ColumnarFormatError, match="truncated"):
            frame_from_sgx_bytes(b"")

    def test_bad_magic(self):
        data = bytearray(frame_to_sgx_bytes(build_frame()))
        data[:4] = b"NOPE"
        with pytest.raises(ColumnarFormatError, match="magic"):
            frame_from_sgx_bytes(bytes(data))

    def test_csv_bytes_are_rejected(self):
        with pytest.raises(ColumnarFormatError):
            frame_from_sgx_bytes(b"server_id,timestamp_minutes,avg_cpu_percent\n" * 10)

    def test_truncated_header(self):
        data = frame_to_sgx_bytes(build_frame())
        with pytest.raises(ColumnarFormatError, match="truncated"):
            frame_from_sgx_bytes(data[: HEADER_BYTES - 4])

    def test_truncated_body(self):
        data = frame_to_sgx_bytes(build_frame())
        with pytest.raises(ColumnarFormatError, match="truncated"):
            frame_from_sgx_bytes(data[:-10])

    def test_header_field_tamper_detected_by_header_crc(self):
        data = bytearray(frame_to_sgx_bytes(build_frame()))
        # Inflate n_servers without fixing the header CRC.
        struct.pack_into("<I", data, 12, 9999)
        with pytest.raises(ColumnarFormatError, match="header checksum"):
            frame_from_sgx_bytes(bytes(data))

    def test_unsupported_version(self):
        data = bytearray(frame_to_sgx_bytes(build_frame()))
        crc_offset = HEADER_BYTES - 4  # header CRC is the last header field
        struct.pack_into("<H", data, 4, 99)
        struct.pack_into("<I", data, crc_offset, zlib.crc32(bytes(data[:crc_offset])))
        with pytest.raises(ColumnarFormatError, match="version"):
            frame_from_sgx_bytes(bytes(data))

    def test_payload_bit_flip_detected(self):
        data = bytearray(frame_to_sgx_bytes(build_frame()))
        data[-1] ^= 0x01
        with pytest.raises(ColumnarFormatError, match="checksum"):
            frame_from_sgx_bytes(bytes(data))

    def test_appended_garbage_detected(self):
        data = frame_to_sgx_bytes(build_frame())
        with pytest.raises(ColumnarFormatError):
            frame_from_sgx_bytes(data + b"extra")

    def test_zone_map_tamper_detected_even_on_pruned_reads(self):
        frame = build_frame(n_servers=1, points=12)
        data = bytearray(frame_to_sgx_bytes(frame))
        # max_ts sits in the 8 bytes just before the payload CRC at the
        # end of the single chunk's fixed header.
        idx = len(data) - 12 * 16 - _CHUNK_FIXED_TAIL
        data[idx] ^= 0xFF
        with pytest.raises(ColumnarFormatError, match="structure checksum"):
            frame_from_sgx_bytes(bytes(data))
        # A time-range read must not trust the tampered zone map either.
        with pytest.raises(ColumnarFormatError, match="structure checksum"):
            frame_from_sgx_bytes(bytes(data), start_minute=0, end_minute=1)

    def test_dictionary_tamper_detected(self):
        data = bytearray(frame_to_sgx_bytes(build_frame()))
        # Flip a bit inside the first dictionary string ("westus2" -> a
        # different, still-valid region name).
        data[HEADER_BYTES + 3] ^= 0x01
        with pytest.raises(ColumnarFormatError, match="structure checksum"):
            frame_from_sgx_bytes(bytes(data))
        with pytest.raises(ColumnarFormatError, match="structure checksum"):
            sgx_summary(bytes(data))

    def test_error_is_a_value_error(self):
        # Ingestion error handling catches ValueError; the typed error
        # must stay inside that hierarchy.
        assert issubclass(ColumnarFormatError, ValueError)


class TestSummary:
    def test_summary_fields(self):
        frame = build_frame(n_servers=2, points=7)
        info = sgx_summary(frame_to_sgx_bytes(frame))
        assert info["version"] == columnar.VERSION
        assert info["n_servers"] == 2
        assert info["n_points"] == 14
        assert info["interval_minutes"] == 5
        assert len(info["chunks"]) == 2

    def test_summary_zone_maps(self):
        frame = build_frame(n_servers=2, points=12)
        chunk = sgx_summary(frame_to_sgx_bytes(frame))["chunks"][1]
        series = frame.series("srv-1")
        assert chunk["min_ts"] == series.start
        assert chunk["max_ts"] == series.end

    def test_magic_prefix(self):
        assert frame_to_sgx_bytes(build_frame()).startswith(MAGIC)
