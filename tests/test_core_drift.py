"""Unit tests for usage-pattern drift detection."""

import numpy as np
import pytest

from repro.core.config import PipelineConfig
from repro.core.drift import DriftDetector, DriftThresholds
from repro.core.incidents import IncidentManager
from repro.core.pipeline import SeagullPipeline
from repro.telemetry.fleet import default_fleet_spec
from repro.telemetry.generator import WorkloadGenerator
from repro.timeseries.series import LoadSeries


@pytest.fixture(scope="module")
def stable_run_pair():
    """Two consecutive runs on the same fleet (no drift expected)."""
    spec = default_fleet_spec(servers_per_region=(15,), weeks=4, seed=51)
    frame = WorkloadGenerator(spec).generate_region("region-0")
    pipeline = SeagullPipeline(PipelineConfig())
    first = pipeline.run(frame, region="region-0", week=2)
    second = pipeline.run(frame, region="region-0", week=3)
    return first, second


@pytest.fixture(scope="module")
def drifted_run():
    """A run on a fleet whose behaviour degenerated into pattern-free noise."""
    spec = default_fleet_spec(servers_per_region=(15,), weeks=4, seed=51)
    frame = WorkloadGenerator(spec).generate_region("region-0")
    rng = np.random.default_rng(5)

    def scramble(server_id, series):
        if series.is_empty:
            return series
        noisy = np.clip(
            series.values + np.cumsum(rng.normal(0, 2.0, len(series))), 0, 100
        )
        return series.with_values(noisy)

    scrambled = frame.map_series(scramble)
    pipeline = SeagullPipeline(PipelineConfig())
    return pipeline.run(scrambled, region="region-0", week=4)


class TestDriftDetector:
    def test_first_observation_has_no_report(self, stable_run_pair):
        first, _ = stable_run_pair
        detector = DriftDetector()
        assert detector.observe(first) is None

    def test_identical_fleet_does_not_drift(self, stable_run_pair):
        first, second = stable_run_pair
        detector = DriftDetector()
        detector.observe(first)
        report = detector.observe(second)
        assert report is not None
        assert not report.drifted
        assert report.class_shift_pct == pytest.approx(0.0, abs=1.0)

    def test_degenerated_fleet_is_flagged(self, stable_run_pair, drifted_run):
        first, _ = stable_run_pair
        incidents = IncidentManager()
        detector = DriftDetector(incidents=incidents)
        detector.observe(first)
        report = detector.observe(drifted_run)
        assert report is not None
        assert report.drifted
        assert report.details
        assert incidents.incidents(region="region-0")

    def test_failed_runs_are_ignored(self, stable_run_pair):
        from repro.core.pipeline import PipelineRunResult

        first, _ = stable_run_pair
        detector = DriftDetector()
        detector.observe(first)
        failed = PipelineRunResult(
            run_id="x", region="region-0", week=9, config=first.config, succeeded=False
        )
        assert detector.observe(failed) is None

    def test_thresholds_configurable(self, stable_run_pair, drifted_run):
        first, _ = stable_run_pair
        lenient = DriftThresholds(
            max_accuracy_drop_pct=100.0,
            max_predictable_drop_pct=100.0,
            max_class_shift_pct=100.0,
        )
        detector = DriftDetector(thresholds=lenient)
        detector.observe(first)
        report = detector.observe(drifted_run)
        assert report is not None
        assert not report.drifted

    def test_report_as_dict(self, stable_run_pair):
        first, second = stable_run_pair
        detector = DriftDetector()
        detector.observe(first)
        report = detector.observe(second)
        payload = report.as_dict()
        assert payload["region"] == "region-0"
        assert isinstance(payload["details"], list)
