"""Unit tests for usage-pattern drift detection."""

import numpy as np
import pytest

from repro.core.config import PipelineConfig
from repro.core.drift import DriftDetector, DriftThresholds
from repro.core.incidents import IncidentManager
from repro.core.pipeline import SeagullPipeline
from repro.telemetry.fleet import default_fleet_spec
from repro.telemetry.generator import WorkloadGenerator
from repro.timeseries.series import LoadSeries


@pytest.fixture(scope="module")
def stable_run_pair():
    """Two consecutive runs on the same fleet (no drift expected)."""
    spec = default_fleet_spec(servers_per_region=(15,), weeks=4, seed=51)
    frame = WorkloadGenerator(spec).generate_region("region-0")
    pipeline = SeagullPipeline(PipelineConfig())
    first = pipeline.run(frame, region="region-0", week=2)
    second = pipeline.run(frame, region="region-0", week=3)
    return first, second


@pytest.fixture(scope="module")
def drifted_run():
    """A run on a fleet whose behaviour degenerated into pattern-free noise."""
    spec = default_fleet_spec(servers_per_region=(15,), weeks=4, seed=51)
    frame = WorkloadGenerator(spec).generate_region("region-0")
    rng = np.random.default_rng(5)

    def scramble(server_id, series):
        if series.is_empty:
            return series
        noisy = np.clip(
            series.values + np.cumsum(rng.normal(0, 2.0, len(series))), 0, 100
        )
        return series.with_values(noisy)

    scrambled = frame.map_series(scramble)
    pipeline = SeagullPipeline(PipelineConfig())
    return pipeline.run(scrambled, region="region-0", week=4)


class TestDriftDetector:
    def test_first_observation_has_no_report(self, stable_run_pair):
        first, _ = stable_run_pair
        detector = DriftDetector()
        assert detector.observe(first) is None

    def test_identical_fleet_does_not_drift(self, stable_run_pair):
        first, second = stable_run_pair
        detector = DriftDetector()
        detector.observe(first)
        report = detector.observe(second)
        assert report is not None
        assert not report.drifted
        assert report.class_shift_pct == pytest.approx(0.0, abs=1.0)

    def test_degenerated_fleet_is_flagged(self, stable_run_pair, drifted_run):
        first, _ = stable_run_pair
        incidents = IncidentManager()
        detector = DriftDetector(incidents=incidents)
        detector.observe(first)
        report = detector.observe(drifted_run)
        assert report is not None
        assert report.drifted
        assert report.details
        assert incidents.incidents(region="region-0")

    def test_failed_runs_are_ignored(self, stable_run_pair):
        from repro.core.pipeline import PipelineRunResult

        first, _ = stable_run_pair
        detector = DriftDetector()
        detector.observe(first)
        failed = PipelineRunResult(
            run_id="x", region="region-0", week=9, config=first.config, succeeded=False
        )
        assert detector.observe(failed) is None

    def test_thresholds_configurable(self, stable_run_pair, drifted_run):
        first, _ = stable_run_pair
        lenient = DriftThresholds(
            max_accuracy_drop_pct=100.0,
            max_predictable_drop_pct=100.0,
            max_class_shift_pct=100.0,
        )
        detector = DriftDetector(thresholds=lenient)
        detector.observe(first)
        report = detector.observe(drifted_run)
        assert report is not None
        assert not report.drifted

    def test_report_as_dict(self, stable_run_pair):
        first, second = stable_run_pair
        detector = DriftDetector()
        detector.observe(first)
        report = detector.observe(second)
        payload = report.as_dict()
        assert payload["region"] == "region-0"
        assert isinstance(payload["details"], list)


# ---------------------------------------------------------------------- #
# Live-window drift (the streaming data plane's detector)
# ---------------------------------------------------------------------- #


def window_summary(mean, std=5.0, n_servers=4, n_rows=100, region="r0", start=0):
    from repro.core.drift import WindowSummary

    return WindowSummary(
        region=region,
        window_start=start,
        window_end=start + 1440,
        n_servers=n_servers,
        n_rows=n_rows,
        mean_load=mean,
        std_load=std,
    )


class TestLoadWindowDriftDetector:
    def test_first_window_is_the_baseline(self):
        from repro.core.drift import LoadWindowDriftDetector

        detector = LoadWindowDriftDetector()
        assert detector.observe(window_summary(50.0)) is None

    def test_stable_windows_do_not_drift(self):
        from repro.core.drift import LoadWindowDriftDetector

        detector = LoadWindowDriftDetector()
        detector.observe(window_summary(50.0))
        report = detector.observe(window_summary(52.0, start=1440))
        assert report is not None and not report.drifted

    def test_mean_shift_flags_drift_and_raises_incident(self):
        from repro.core.drift import LoadWindowDriftDetector
        from repro.core.incidents import IncidentSeverity

        incidents = IncidentManager()
        detector = LoadWindowDriftDetector(incidents=incidents)
        detector.observe(window_summary(50.0))
        report = detector.observe(window_summary(150.0, start=1440))
        assert report.drifted and report.mean_shift_pct == pytest.approx(200.0)
        (incident,) = incidents.incidents()
        assert incident.source == "live_window_drift"
        assert incident.severity is IncidentSeverity.WARNING

    def test_population_shift_flags_drift(self):
        from repro.core.drift import LoadWindowDriftDetector

        detector = LoadWindowDriftDetector()
        detector.observe(window_summary(50.0, n_servers=10))
        report = detector.observe(window_summary(50.0, n_servers=4, start=1440))
        assert report.drifted
        assert report.population_shift_pct == pytest.approx(60.0)

    def test_empty_window_never_overwrites_the_baseline(self):
        from repro.core.drift import LoadWindowDriftDetector

        detector = LoadWindowDriftDetector()
        detector.observe(window_summary(50.0))
        assert detector.observe(window_summary(float("nan"), n_rows=0)) is None
        # The next populated window still compares against mean 50.
        report = detector.observe(window_summary(150.0, start=2880))
        assert report.drifted

    def test_thresholds_configurable(self):
        from repro.core.drift import LoadWindowDriftDetector, WindowDriftThresholds

        lenient = WindowDriftThresholds(
            max_mean_shift_pct=1000.0,
            max_std_shift_pct=1000.0,
            max_population_shift_pct=1000.0,
        )
        detector = LoadWindowDriftDetector(thresholds=lenient)
        detector.observe(window_summary(50.0))
        report = detector.observe(window_summary(150.0, start=1440))
        assert report is not None and not report.drifted

    def test_summary_from_frame_concatenates_servers(self):
        from repro.core.drift import WindowSummary
        from repro.timeseries.frame import LoadFrame, ServerMetadata

        frame = LoadFrame(5)
        frame.add_server(
            ServerMetadata(server_id="a", region="r0"),
            LoadSeries.from_values(np.full(10, 10.0), start=0, interval_minutes=5),
        )
        frame.add_server(
            ServerMetadata(server_id="b", region="r0"),
            LoadSeries.from_values(np.full(10, 30.0), start=0, interval_minutes=5),
        )
        summary = WindowSummary.from_frame("r0", frame, 0, 50)
        assert summary.n_servers == 2 and summary.n_rows == 20
        assert summary.mean_load == pytest.approx(20.0)

    def test_report_as_dict(self):
        from repro.core.drift import LoadWindowDriftDetector

        detector = LoadWindowDriftDetector()
        detector.observe(window_summary(50.0))
        payload = detector.observe(window_summary(60.0, start=1440)).as_dict()
        assert payload["region"] == "r0"
        assert isinstance(payload["details"], list)
