"""Unit tests for lifespan (Definition 3) and stability (Definitions 4, 10)."""

import numpy as np
import pytest

from repro.features.lifespan import (
    DEFAULT_LIFESPAN_THRESHOLD_DAYS,
    is_long_lived,
    lifespan_days,
    observed_day_range,
)
from repro.features.stability import is_stable, is_stable_database, stability_bucket_ratio
from repro.timeseries.series import LoadSeries

from tests.helpers import POINTS_PER_DAY, diurnal_series, make_series


class TestLifespan:
    def test_lifespan_of_four_weeks(self):
        series = diurnal_series(28)
        assert lifespan_days(series) == pytest.approx(28.0)

    def test_lifespan_of_empty_series_is_zero(self):
        assert lifespan_days(LoadSeries.empty()) == 0.0

    def test_threshold_is_three_weeks(self):
        assert DEFAULT_LIFESPAN_THRESHOLD_DAYS == 21

    def test_long_lived_boundary(self):
        exactly_21 = diurnal_series(21)
        just_over = diurnal_series(22)
        assert not is_long_lived(exactly_21)  # "more than three weeks"
        assert is_long_lived(just_over)

    def test_short_lived(self):
        assert not is_long_lived(diurnal_series(5))

    def test_observed_day_range(self):
        series = diurnal_series(3, start_day=4)
        assert observed_day_range(series) == (4, 6)

    def test_observed_day_range_empty(self):
        assert observed_day_range(LoadSeries.empty()) == (-1, -1)


class TestStableServer:
    def test_constant_load_is_stable(self):
        series = make_series(np.full(7 * POINTS_PER_DAY, 20.0))
        assert stability_bucket_ratio(series) == pytest.approx(1.0)
        assert is_stable(series)

    def test_small_noise_is_stable(self):
        rng = np.random.default_rng(0)
        series = make_series(np.clip(20 + rng.normal(0, 1.0, 7 * POINTS_PER_DAY), 0, 100))
        assert is_stable(series)

    def test_strong_diurnal_swing_is_unstable(self):
        series = diurnal_series(7, base=10, amplitude=50)
        assert not is_stable(series)

    def test_empty_series_is_not_stable(self):
        assert not is_stable(LoadSeries.empty())
        assert np.isnan(stability_bucket_ratio(LoadSeries.empty()))

    def test_asymmetric_bound_effect(self):
        # A series oscillating between mean-6 and mean+6 violates the -5
        # under-prediction bound half of the time (predicting the mean
        # under-estimates the high half by 6) -> unstable.
        values = np.tile([14.0, 26.0], 7 * POINTS_PER_DAY // 2)
        assert not is_stable(make_series(values))


class TestStableDatabase:
    def test_constant_database_is_stable(self):
        series = make_series(np.full(7 * 96, 30.0), interval=15)
        assert is_stable_database(series)

    def test_recent_spike_makes_unstable(self):
        values = np.full(7 * 96, 30.0)
        values[-96:] = 80.0  # last day jumps far beyond one std of the series
        assert not is_stable_database(make_series(values, interval=15))

    def test_empty_database_is_not_stable(self):
        assert not is_stable_database(LoadSeries.empty(15))

    def test_zero_variance_is_stable(self):
        series = make_series(np.full(4 * 96, 10.0), interval=15)
        assert is_stable_database(series)
