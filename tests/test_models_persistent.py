"""Unit tests for the persistent-forecast variants (Section 5.1)."""

import numpy as np
import pytest

from repro.models.base import ForecastError, NotFittedError
from repro.models.persistent import (
    PersistentForecastVariant,
    PreviousDayForecaster,
    PreviousEquivalentDayForecaster,
    PreviousWeekAverageForecaster,
    make_persistent_forecaster,
)
from repro.timeseries.calendar import MINUTES_PER_DAY
from repro.timeseries.series import LoadSeries

from tests.helpers import POINTS_PER_DAY, diurnal_series, weekly_profile_series


class TestPreviousDay:
    def test_replicates_last_day(self):
        history = diurnal_series(7, noise=0.0)
        forecast = PreviousDayForecaster().fit(history).predict(POINTS_PER_DAY)
        np.testing.assert_allclose(forecast.values, history.day(6).values)

    def test_forecast_grid_follows_history(self):
        history = diurnal_series(7)
        forecast = PreviousDayForecaster().fit(history).predict(10)
        assert forecast.start == history.end + history.interval_minutes

    def test_multi_day_horizon_tiles_last_day(self):
        history = diurnal_series(7, noise=0.0)
        forecast = PreviousDayForecaster().fit(history).predict(2 * POINTS_PER_DAY)
        np.testing.assert_allclose(
            forecast.values[:POINTS_PER_DAY], forecast.values[POINTS_PER_DAY:]
        )

    def test_requires_at_least_one_day(self):
        short = diurnal_series(1).slice(0, 100)
        with pytest.raises(ForecastError):
            PreviousDayForecaster().fit(short)

    def test_no_training_needed_flag(self):
        assert PreviousDayForecaster.requires_training is False

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            PreviousDayForecaster().predict(10)

    def test_empty_history_rejected(self):
        with pytest.raises(ForecastError):
            PreviousDayForecaster().fit(LoadSeries.empty())

    def test_non_positive_horizon_rejected(self):
        forecaster = PreviousDayForecaster().fit(diurnal_series(2))
        with pytest.raises(ValueError):
            forecaster.predict(0)


class TestPreviousEquivalentDay:
    def test_replicates_same_weekday_last_week(self):
        history = weekly_profile_series(14)
        forecast = PreviousEquivalentDayForecaster().fit(history).predict(POINTS_PER_DAY)
        np.testing.assert_allclose(forecast.values, history.day(7).values)

    def test_requires_a_week_of_history(self):
        with pytest.raises(ForecastError):
            PreviousEquivalentDayForecaster().fit(diurnal_series(3))

    def test_captures_weekly_pattern_better_than_previous_day(self):
        history = weekly_profile_series(14)  # forecast day 14 (a Sunday)
        truth = weekly_profile_series(15).day(14)
        eq_day = PreviousEquivalentDayForecaster().fit(history).predict(POINTS_PER_DAY)
        prev_day = PreviousDayForecaster().fit(history).predict(POINTS_PER_DAY)
        eq_error = np.mean(np.abs(eq_day.values - truth.values))
        prev_error = np.mean(np.abs(prev_day.values - truth.values))
        assert eq_error <= prev_error


class TestPreviousWeekAverage:
    def test_predicts_constant_mean(self):
        history = diurnal_series(7, noise=0.0)
        forecast = PreviousWeekAverageForecaster().fit(history).predict(10)
        assert np.allclose(forecast.values, history.last_days(7).mean())

    def test_requires_one_day(self):
        with pytest.raises(ForecastError):
            PreviousWeekAverageForecaster().fit(diurnal_series(1).slice(0, 200))


class TestFactory:
    def test_factory_by_enum(self):
        assert isinstance(
            make_persistent_forecaster(PersistentForecastVariant.PREVIOUS_DAY),
            PreviousDayForecaster,
        )

    def test_factory_by_string(self):
        assert isinstance(
            make_persistent_forecaster("previous_equivalent_day"),
            PreviousEquivalentDayForecaster,
        )
        assert isinstance(
            make_persistent_forecaster("previous_week_average"),
            PreviousWeekAverageForecaster,
        )

    def test_factory_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_persistent_forecaster("nope")

    def test_fit_result_reports_zero_cost_training(self):
        forecaster = PreviousDayForecaster().fit(diurnal_series(7))
        assert forecaster.fit_result is not None
        assert forecaster.fit_result.fit_seconds < 0.5
        assert forecaster.fit_result.n_training_points == 7 * POINTS_PER_DAY
