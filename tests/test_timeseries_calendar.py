"""Unit tests for calendar arithmetic."""

import pytest

from repro.timeseries import calendar


class TestDayAndWeekIndices:
    def test_day_index_at_epoch(self):
        assert calendar.day_index(0) == 0

    def test_day_index_last_minute_of_day(self):
        assert calendar.day_index(calendar.MINUTES_PER_DAY - 1) == 0

    def test_day_index_first_minute_of_next_day(self):
        assert calendar.day_index(calendar.MINUTES_PER_DAY) == 1

    def test_week_index(self):
        assert calendar.week_index(calendar.MINUTES_PER_WEEK * 3 + 5) == 3

    def test_day_start_rounds_down(self):
        ts = 3 * calendar.MINUTES_PER_DAY + 777
        assert calendar.day_start(ts) == 3 * calendar.MINUTES_PER_DAY

    def test_week_start_rounds_down(self):
        ts = 2 * calendar.MINUTES_PER_WEEK + 5000
        assert calendar.week_start(ts) == 2 * calendar.MINUTES_PER_WEEK

    def test_next_and_previous_day_start(self):
        ts = 5 * calendar.MINUTES_PER_DAY + 100
        assert calendar.next_day_start(ts) == 6 * calendar.MINUTES_PER_DAY
        assert calendar.previous_day_start(ts) == 4 * calendar.MINUTES_PER_DAY

    def test_previous_equivalent_day_is_one_week_back(self):
        ts = 10 * calendar.MINUTES_PER_DAY + 50
        assert calendar.previous_equivalent_day_start(ts) == 3 * calendar.MINUTES_PER_DAY


class TestMinuteOffsets:
    def test_minute_of_day(self):
        assert calendar.minute_of_day(2 * calendar.MINUTES_PER_DAY + 61) == 61

    def test_minute_of_week(self):
        assert calendar.minute_of_week(calendar.MINUTES_PER_WEEK + 5) == 5

    def test_day_of_week_epoch_is_monday(self):
        assert calendar.day_of_week(0) == 0
        assert calendar.day_name(0) == "Monday"

    def test_day_of_week_wraps(self):
        assert calendar.day_of_week(7 * calendar.MINUTES_PER_DAY) == 0
        assert calendar.day_name(6 * calendar.MINUTES_PER_DAY) == "Sunday"


class TestBounds:
    def test_day_bounds(self):
        start, end = calendar.day_bounds(2)
        assert start == 2 * calendar.MINUTES_PER_DAY
        assert end - start == calendar.MINUTES_PER_DAY

    def test_week_bounds(self):
        start, end = calendar.week_bounds(1)
        assert start == calendar.MINUTES_PER_WEEK
        assert end - start == calendar.MINUTES_PER_WEEK


class TestPointsPerDay:
    def test_five_minute_grid(self):
        assert calendar.points_per_day(5) == 288

    def test_fifteen_minute_grid(self):
        assert calendar.points_per_day(15) == 96

    def test_points_per_week(self):
        assert calendar.points_per_week(5) == 2016

    def test_rejects_non_divisor_interval(self):
        with pytest.raises(ValueError):
            calendar.points_per_day(7)

    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError):
            calendar.points_per_day(0)


class TestAlignment:
    def test_align_down(self):
        assert calendar.align_down(17, 5) == 15

    def test_align_down_exact(self):
        assert calendar.align_down(20, 5) == 20

    def test_align_up(self):
        assert calendar.align_up(17, 5) == 20

    def test_align_up_exact(self):
        assert calendar.align_up(20, 5) == 20
