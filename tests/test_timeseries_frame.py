"""Unit tests for LoadFrame."""

import pytest

from repro.timeseries.frame import LoadFrame, ServerMetadata

from tests.helpers import make_series


def build_frame(n_servers: int = 4, points: int = 10) -> LoadFrame:
    frame = LoadFrame(5)
    for index in range(n_servers):
        metadata = ServerMetadata(
            server_id=f"srv-{index}",
            region="region-0" if index % 2 == 0 else "region-1",
            backup_duration_minutes=30,
        )
        frame.add_server(metadata, make_series([float(index)] * points))
    return frame


class TestMutation:
    def test_add_and_len(self):
        frame = build_frame(3)
        assert len(frame) == 3
        assert "srv-1" in frame

    def test_add_duplicate_raises(self):
        frame = build_frame(1)
        with pytest.raises(KeyError):
            frame.add_server(ServerMetadata(server_id="srv-0"), make_series([1.0]))

    def test_add_duplicate_with_overwrite(self):
        frame = build_frame(1)
        frame.add_server(ServerMetadata(server_id="srv-0"), make_series([9.0]), overwrite=True)
        assert frame.series("srv-0").values.tolist() == [9.0]

    def test_interval_mismatch_rejected(self):
        frame = LoadFrame(5)
        with pytest.raises(ValueError):
            frame.add_server(ServerMetadata(server_id="x"), make_series([1.0], interval=15))

    def test_remove_server(self):
        frame = build_frame(2)
        frame.remove_server("srv-0")
        assert "srv-0" not in frame
        with pytest.raises(KeyError):
            frame.remove_server("srv-0")


class TestAccess:
    def test_server_ids_preserve_order(self):
        frame = build_frame(3)
        assert frame.server_ids() == ["srv-0", "srv-1", "srv-2"]

    def test_metadata_roundtrip(self):
        frame = build_frame(1)
        assert frame.metadata("srv-0").backup_duration_minutes == 30

    def test_items_yields_triples(self):
        frame = build_frame(2)
        triples = list(frame.items())
        assert triples[0][0] == "srv-0"
        assert triples[0][1].server_id == "srv-0"

    def test_total_points(self):
        frame = build_frame(3, points=7)
        assert frame.total_points() == 21

    def test_regions(self):
        frame = build_frame(4)
        assert frame.regions() == ["region-0", "region-1"]


class TestTransform:
    def test_filter(self):
        frame = build_frame(4)
        region0 = frame.filter(lambda metadata, series: metadata.region == "region-0")
        assert len(region0) == 2

    def test_select_preserves_order(self):
        frame = build_frame(4)
        selected = frame.select(["srv-3", "srv-0"])
        assert selected.server_ids() == ["srv-3", "srv-0"]

    def test_select_unknown_raises(self):
        with pytest.raises(KeyError):
            build_frame(1).select(["nope"])

    def test_slice_time(self):
        frame = build_frame(2, points=10)
        sliced = frame.slice_time(0, 25)
        assert all(len(sliced.series(sid)) == 5 for sid in sliced.server_ids())

    def test_map_series(self):
        frame = build_frame(2)
        doubled = frame.map_series(lambda sid, series: series.with_values(series.values * 2))
        assert doubled.series("srv-1").values.tolist() == [2.0] * 10

    def test_partition_covers_all_servers(self):
        frame = build_frame(5)
        parts = frame.partition(2)
        assert sum(len(p) for p in parts) == 5
        all_ids = [sid for part in parts for sid in part.server_ids()]
        assert sorted(all_ids) == sorted(frame.server_ids())

    def test_partition_more_than_servers(self):
        parts = build_frame(2).partition(10)
        assert len(parts) == 2

    def test_partition_empty_frame(self):
        assert LoadFrame().partition(3) == []

    def test_partition_rejects_non_positive(self):
        with pytest.raises(ValueError):
            build_frame(1).partition(0)

    def test_merge(self):
        a = build_frame(2)
        b = LoadFrame(5)
        b.add_server(ServerMetadata(server_id="other"), make_series([1.0]))
        merged = a.merge(b)
        assert len(merged) == 3

    def test_merge_interval_mismatch(self):
        with pytest.raises(ValueError):
            build_frame(1).merge(LoadFrame(15))


class TestCsvRoundTrip:
    def test_rows_roundtrip(self):
        frame = build_frame(3, points=4)
        rows = [dict(zip(LoadFrame.CSV_HEADER, row, strict=True)) for row in frame.to_rows()]
        rebuilt = LoadFrame.from_rows(rows)
        assert rebuilt.server_ids() == frame.server_ids()
        for sid in frame.server_ids():
            assert rebuilt.series(sid) == frame.series(sid)
            assert rebuilt.metadata(sid).region == frame.metadata(sid).region

    def test_from_rows_sorts_timestamps(self):
        rows = [
            {"server_id": "a", "timestamp_minutes": 10, "avg_cpu_percent": 2.0},
            {"server_id": "a", "timestamp_minutes": 0, "avg_cpu_percent": 1.0},
        ]
        frame = LoadFrame.from_rows(rows)
        assert frame.series("a").values.tolist() == [1.0, 2.0]


class TestServerMetadata:
    def test_with_backup_window(self):
        metadata = ServerMetadata(server_id="x")
        updated = metadata.with_backup_window(100, 160)
        assert updated.default_backup_start == 100
        assert updated.default_backup_end == 160
        assert metadata.default_backup_start == 0
