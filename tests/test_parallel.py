"""Unit tests for the partitioned executor and partition helpers."""

import pytest

from repro.parallel.executor import ExecutionBackend, PartitionedExecutor
from repro.parallel.partition import chunk_evenly, partition_dict, partition_list


def square_sum(chunk):
    return sum(x * x for x in chunk)


class TestChunkEvenly:
    def test_even_split(self):
        assert chunk_evenly(6, 3) == [(0, 2), (2, 4), (4, 6)]

    def test_uneven_split_front_loads(self):
        assert chunk_evenly(5, 3) == [(0, 2), (2, 4), (4, 5)]

    def test_more_chunks_than_items(self):
        assert chunk_evenly(2, 5) == [(0, 1), (1, 2)]

    def test_zero_items(self):
        assert chunk_evenly(0, 3) == []

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            chunk_evenly(3, 0)
        with pytest.raises(ValueError):
            chunk_evenly(-1, 2)


class TestPartitionHelpers:
    def test_partition_list(self):
        assert partition_list([1, 2, 3, 4, 5], 2) == [[1, 2, 3], [4, 5]]

    def test_partition_list_preserves_all_items(self):
        items = list(range(17))
        parts = partition_list(items, 4)
        assert sorted(x for part in parts for x in part) == items

    def test_partition_dict(self):
        parts = partition_dict({"a": 1, "b": 2, "c": 3}, 2)
        assert len(parts) == 2
        merged = {}
        for part in parts:
            merged.update(part)
        assert merged == {"a": 1, "b": 2, "c": 3}


class TestExecutorBackends:
    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    def test_map_results_in_order(self, backend):
        executor = PartitionedExecutor(backend, n_workers=2)
        partitions = [[1, 2], [3], [4, 5, 6]]
        assert executor.map(square_sum, partitions) == [5, 9, 77]

    def test_string_backend_resolution(self):
        assert PartitionedExecutor("processes").backend is ExecutionBackend.PROCESSES

    def test_empty_partitions(self):
        assert PartitionedExecutor().map(square_sum, []) == []

    def test_map_flat(self):
        executor = PartitionedExecutor()
        result = executor.map_flat(lambda chunk: [x + 1 for x in chunk], [[1, 2], [3]])
        assert result == [2, 3, 4]

    def test_last_report_populated(self):
        executor = PartitionedExecutor()
        executor.map(square_sum, [[1], [2]])
        report = executor.last_report
        assert report is not None
        assert report.n_partitions == 2
        assert report.backend is ExecutionBackend.SERIAL
        assert report.elapsed_seconds >= 0

    def test_constructors(self):
        assert PartitionedExecutor.serial().backend is ExecutionBackend.SERIAL
        assert PartitionedExecutor.parallel(2).backend is ExecutionBackend.PROCESSES
        assert PartitionedExecutor.parallel(2).n_workers == 2

    def test_n_workers_defaults_to_positive(self):
        assert PartitionedExecutor().n_workers >= 1
