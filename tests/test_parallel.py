"""Unit tests for the partitioned executor and partition helpers."""

import pytest

from repro.parallel import executor as executor_module
from repro.parallel.executor import (
    ExecutionBackend,
    PartitionedExecutor,
    default_worker_count,
)
from repro.parallel.partition import chunk_evenly, partition_dict, partition_list


def square_sum(chunk):
    return sum(x * x for x in chunk)


class TestChunkEvenly:
    def test_even_split(self):
        assert chunk_evenly(6, 3) == [(0, 2), (2, 4), (4, 6)]

    def test_uneven_split_front_loads(self):
        assert chunk_evenly(5, 3) == [(0, 2), (2, 4), (4, 5)]

    def test_more_chunks_than_items(self):
        assert chunk_evenly(2, 5) == [(0, 1), (1, 2)]

    def test_zero_items(self):
        assert chunk_evenly(0, 3) == []

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            chunk_evenly(3, 0)
        with pytest.raises(ValueError):
            chunk_evenly(-1, 2)


class TestPartitionHelpers:
    def test_partition_list(self):
        assert partition_list([1, 2, 3, 4, 5], 2) == [[1, 2, 3], [4, 5]]

    def test_partition_list_preserves_all_items(self):
        items = list(range(17))
        parts = partition_list(items, 4)
        assert sorted(x for part in parts for x in part) == items

    def test_partition_dict(self):
        parts = partition_dict({"a": 1, "b": 2, "c": 3}, 2)
        assert len(parts) == 2
        merged = {}
        for part in parts:
            merged.update(part)
        assert merged == {"a": 1, "b": 2, "c": 3}


class TestExecutorBackends:
    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    def test_map_results_in_order(self, backend):
        executor = PartitionedExecutor(backend, n_workers=2)
        partitions = [[1, 2], [3], [4, 5, 6]]
        assert executor.map(square_sum, partitions) == [5, 9, 77]

    def test_string_backend_resolution(self):
        assert PartitionedExecutor("processes").backend is ExecutionBackend.PROCESSES

    def test_empty_partitions(self):
        assert PartitionedExecutor().map(square_sum, []) == []

    def test_map_flat(self):
        executor = PartitionedExecutor()
        result = executor.map_flat(lambda chunk: [x + 1 for x in chunk], [[1, 2], [3]])
        assert result == [2, 3, 4]

    def test_last_report_populated(self):
        executor = PartitionedExecutor()
        executor.map(square_sum, [[1], [2]])
        report = executor.last_report
        assert report is not None
        assert report.n_partitions == 2
        assert report.backend is ExecutionBackend.SERIAL
        assert report.elapsed_seconds >= 0

    def test_constructors(self):
        assert PartitionedExecutor.serial().backend is ExecutionBackend.SERIAL
        assert PartitionedExecutor.parallel(2).backend is ExecutionBackend.PROCESSES
        assert PartitionedExecutor.parallel(2).n_workers == 2

    def test_n_workers_defaults_to_positive(self):
        assert PartitionedExecutor().n_workers >= 1


class TestWorkerCountDefault:
    def test_default_worker_count_positive(self):
        assert default_worker_count() >= 1

    def test_recommended_fleet_workers_never_exceeds_units(self):
        from repro.parallel.executor import recommended_fleet_workers

        assert recommended_fleet_workers(3, available=16) == 3
        assert recommended_fleet_workers(1, available=16) == 1

    def test_recommended_fleet_workers_never_exceeds_cores(self):
        from repro.parallel.executor import recommended_fleet_workers

        assert recommended_fleet_workers(100, available=4) == 4
        assert recommended_fleet_workers(100, available=1) == 1

    def test_recommended_fleet_workers_capped(self):
        from repro.parallel.executor import MAX_FLEET_WORKERS, recommended_fleet_workers

        assert recommended_fleet_workers(1000, available=64) == MAX_FLEET_WORKERS

    def test_recommended_fleet_workers_degenerate_inputs(self):
        from repro.parallel.executor import recommended_fleet_workers

        assert recommended_fleet_workers(0) == 1
        assert recommended_fleet_workers(-5, available=8) == 1
        assert recommended_fleet_workers(4) >= 1  # host default path

    def test_safe_when_cpu_count_is_none(self, monkeypatch):
        monkeypatch.setattr(executor_module.os, "cpu_count", lambda: None)
        monkeypatch.delattr(executor_module.os, "sched_getaffinity", raising=False)
        assert default_worker_count() == 1
        assert PartitionedExecutor("threads").n_workers == 1

    def test_prefers_affinity_when_available(self, monkeypatch):
        monkeypatch.setattr(
            executor_module.os, "sched_getaffinity", lambda pid: {0, 1, 2}, raising=False
        )
        assert default_worker_count() == 3


class TestExecutorLifecycle:
    def test_thread_pool_reused_across_map_calls(self):
        executor = PartitionedExecutor("threads", n_workers=2)
        executor.map(square_sum, [[1], [2]])
        first_pool = executor._pool
        executor.map(square_sum, [[3], [4]])
        assert executor._pool is first_pool
        executor.close()

    def test_serial_backend_never_creates_pool(self):
        executor = PartitionedExecutor()
        executor.map(square_sum, [[1], [2]])
        assert executor._pool is None

    def test_context_manager_closes_pool(self):
        with PartitionedExecutor("threads", n_workers=2) as executor:
            assert executor.map(square_sum, [[1, 2], [3]]) == [5, 9]
            assert not executor.closed
        assert executor.closed
        assert executor._pool is None

    def test_map_after_close_raises(self):
        executor = PartitionedExecutor("threads", n_workers=2)
        executor.close()
        with pytest.raises(RuntimeError):
            executor.map(square_sum, [[1]])

    def test_reenter_after_close_raises(self):
        executor = PartitionedExecutor()
        executor.close()
        with pytest.raises(RuntimeError), executor:
            pass  # pragma: no cover - never reached

    def test_close_is_idempotent(self):
        executor = PartitionedExecutor("threads", n_workers=2)
        executor.map(square_sum, [[1], [2]])
        executor.close()
        executor.close()
        assert executor.closed

    def test_process_pool_reused_across_map_calls(self):
        with PartitionedExecutor("processes", n_workers=1) as executor:
            assert executor.map(square_sum, [[1, 2], [3]]) == [5, 9]
            first_pool = executor._pool
            assert executor.map(square_sum, [[2, 2], [4]]) == [8, 16]
            assert executor._pool is first_pool
