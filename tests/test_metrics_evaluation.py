"""Unit tests for the Accuracy Evaluation Module."""

import math

import numpy as np
import pytest

from repro.metrics.evaluation import (
    AccuracyEvaluationModule,
    evaluate_server_day,
)
from repro.parallel.executor import PartitionedExecutor
from repro.timeseries.frame import LoadFrame, ServerMetadata
from repro.timeseries.series import LoadSeries

from tests.helpers import POINTS_PER_DAY, diurnal_series


def build_truth_frame(n_servers=4, n_days=28) -> LoadFrame:
    frame = LoadFrame(5)
    for index in range(n_servers):
        series = diurnal_series(n_days, noise=0.3, seed=index)
        frame.add_server(
            ServerMetadata(server_id=f"srv-{index}", backup_duration_minutes=60), series
        )
    return frame


def perfect_predictions(frame: LoadFrame, days) -> dict[str, LoadSeries]:
    predictions = {}
    for server_id, _, series in frame.items():
        chunks = [series.day(day) for day in days]
        combined = chunks[0]
        for chunk in chunks[1:]:
            combined = combined.concat(chunk)
        predictions[server_id] = combined
    return predictions


class TestEvaluateServerDay:
    def test_perfect_prediction(self):
        truth = diurnal_series(7)
        result = evaluate_server_day("srv", truth, truth, day=3, backup_duration_minutes=60)
        assert result.window_correct
        assert result.load_accurate
        assert result.bucket_ratio_in_window == pytest.approx(1.0)
        assert result.evaluable

    def test_unevaluable_day(self):
        truth = diurnal_series(7)
        result = evaluate_server_day("srv", truth, truth, day=50, backup_duration_minutes=60)
        assert not result.evaluable
        assert not result.window_correct
        assert math.isnan(result.bucket_ratio_in_window)
        assert result.failure_reason

    def test_inaccurate_load_detected(self):
        truth = diurnal_series(7)
        predicted = truth.with_values(np.clip(truth.values - 30.0, 0, 100))
        result = evaluate_server_day("srv", truth, predicted, day=3, backup_duration_minutes=60)
        assert not result.load_accurate

    def test_as_dict(self):
        truth = diurnal_series(7)
        result = evaluate_server_day("srv", truth, truth, day=2, backup_duration_minutes=60)
        payload = result.as_dict()
        assert payload["server_id"] == "srv"
        assert payload["day"] == 2


class TestAccuracyEvaluationModule:
    def test_evaluate_counts_all_server_days(self):
        frame = build_truth_frame()
        days = [6, 13, 20]
        predictions = perfect_predictions(frame, days)
        module = AccuracyEvaluationModule()
        evaluations = module.evaluate(frame, predictions, {sid: days for sid in frame.server_ids()})
        assert len(evaluations) == len(frame) * len(days)
        assert all(e.window_correct for e in evaluations)

    def test_summary_percentages(self):
        frame = build_truth_frame()
        days = [6, 13, 20]
        predictions = perfect_predictions(frame, days)
        module = AccuracyEvaluationModule()
        evaluations = module.evaluate(frame, predictions, {sid: days for sid in frame.server_ids()})
        summary = module.summarize(evaluations)
        assert summary.pct_windows_correct == pytest.approx(100.0)
        assert summary.pct_load_accurate == pytest.approx(100.0)
        assert summary.pct_predictable_servers == pytest.approx(100.0)
        assert summary.n_servers == len(frame)

    def test_summary_empty(self):
        module = AccuracyEvaluationModule()
        summary = module.summarize([])
        assert summary.n_server_days == 0
        assert math.isnan(summary.pct_windows_correct)

    def test_missing_predictions_are_skipped(self):
        frame = build_truth_frame(n_servers=3)
        days = [6, 13, 20]
        predictions = perfect_predictions(frame, days)
        del predictions["srv-0"]
        module = AccuracyEvaluationModule()
        evaluations = module.evaluate(frame, predictions, {sid: days for sid in frame.server_ids()})
        assert {e.server_id for e in evaluations} == {"srv-1", "srv-2"}

    def test_parallel_backend_matches_serial(self):
        frame = build_truth_frame(n_servers=6)
        days = [6, 13, 20]
        predictions = perfect_predictions(frame, days)
        days_map = {sid: days for sid in frame.server_ids()}

        serial = AccuracyEvaluationModule(executor=PartitionedExecutor.serial())
        parallel = AccuracyEvaluationModule(executor=PartitionedExecutor("threads", n_workers=3))
        serial_results = serial.evaluate(frame, predictions, days_map)
        parallel_results = parallel.evaluate(frame, predictions, days_map)

        key = lambda e: (e.server_id, e.day)
        assert sorted(map(key, serial_results)) == sorted(map(key, parallel_results))
        assert serial.summarize(serial_results) == parallel.summarize(parallel_results)

    def test_predictability_verdicts(self):
        frame = build_truth_frame(n_servers=2)
        days = [6, 13, 20]
        predictions = perfect_predictions(frame, days)
        module = AccuracyEvaluationModule()
        verdicts = module.predictability(
            frame, predictions, {sid: days for sid in frame.server_ids()}
        )
        assert len(verdicts) == 2
        assert all(v.predictable for v in verdicts.values())
