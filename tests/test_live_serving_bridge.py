"""End-to-end tests for the live loop: ingest -> seal -> drift -> promote.

The acceptance scenario of the live subsystem: batches stream into the
tail, queries see them immediately, day-boundary seals commit manifest
generations (pinned readers unaffected), the serving bridge detects the
load-distribution drift and promotes a freshly retrained model -- and a
kill-and-reopen in the middle loses at most the unfsynced WAL tail.
"""

import numpy as np
import pytest

from repro.serving import LiveServingBridge, PredictionService
from repro.storage.datalake import DataLakeStore, ExtractKey
from repro.storage.live import LiveIngestor, LiveWalWarning, wal_path
from repro.storage.query import ExtractQuery
from repro.timeseries.calendar import MINUTES_PER_DAY
from repro.timeseries.frame import ServerMetadata

REGION = "region-live"
KEY = ExtractKey(region=REGION, week=0)
SERVERS = [ServerMetadata(server_id=f"srv-{i}", region=REGION) for i in range(3)]


def ingest_day(ingestor, day, factor=1.0, batch_minutes=120, seed=None):
    """Stream one synthetic day in hourly-ish batches; returns raw rows."""
    rng = np.random.default_rng(1000 * day if seed is None else seed)
    start = day * MINUTES_PER_DAY
    rows = 0
    for offset in range(0, MINUTES_PER_DAY, batch_minutes):
        ts = np.arange(start + offset, start + offset + batch_minutes, dtype=np.int64)
        phase = 2.0 * np.pi * (ts % MINUTES_PER_DAY) / MINUTES_PER_DAY
        load = factor * (50.0 + 20.0 * np.sin(phase))
        for meta in SERVERS:
            noisy = np.maximum(load + rng.normal(0.0, 1.0, ts.size), 0.0)
            rows += ingestor.ingest(KEY, meta, ts, noisy)
    return rows


class TestLiveLoop:
    def test_full_loop_drift_promotes_a_new_version(self, tmp_path):
        store = DataLakeStore(tmp_path / "lake")
        service = PredictionService()
        bridge = LiveServingBridge(store, service)
        actions = []
        with LiveIngestor(store, chunk_minutes=MINUTES_PER_DAY) as ingestor:
            for day in range(4):
                factor = 3.0 if day >= 2 else 1.0
                ingest_day(ingestor, day, factor=factor)
                ingestor.flush()  # readers see exactly the fsync'd state

                # Mid-stream: the unsealed day is already queryable.
                live = store.query(
                    ExtractQuery.for_key(
                        KEY,
                        start_minute=day * MINUTES_PER_DAY,
                        end_minute=(day + 1) * MINUTES_PER_DAY,
                    )
                )
                assert live.stats.tail_rows_scanned == 3 * MINUTES_PER_DAY
                assert live.rows == 3 * MINUTES_PER_DAY // 5

                (report,) = ingestor.seal_due((day + 1) * MINUTES_PER_DAY)
                assert report.generation == day + 1
                event = bridge.on_sealed(report)
                actions.append(event.action)

        assert actions == ["bootstrap", "none", "retrain", "none"]
        health = service.health(REGION)
        assert health["active_version"] == 2
        assert health["n_versions"] == 2
        assert not health["fell_back"]
        # The drift verdict that triggered the retrain is on record.
        drifted = [e for e in bridge.events if e.verdict is not None and e.verdict.drifted]
        assert len(drifted) == 1 and drifted[0].action == "retrain"

    def test_seal_leaves_pinned_reader_on_its_generation(self, tmp_path):
        store = DataLakeStore(tmp_path / "lake")
        with LiveIngestor(store, chunk_minutes=MINUTES_PER_DAY) as ingestor:
            ingest_day(ingestor, 0)
            ingestor.seal(KEY, MINUTES_PER_DAY)  # generation 1
            pinned = DataLakeStore(store.root, pinned_generation=1)
            day_rows = 3 * MINUTES_PER_DAY // 5

            ingest_day(ingestor, 1)
            ingestor.seal(KEY, 2 * MINUTES_PER_DAY)  # generation 2

            assert store.manifest.current().generation == 2
            assert pinned.query(ExtractQuery.for_key(KEY)).rows == day_rows
            assert store.query(ExtractQuery.for_key(KEY)).rows == 2 * day_rows

    def test_kill_and_reopen_loses_at_most_the_unfsynced_tail(self, tmp_path):
        store = DataLakeStore(tmp_path / "lake")
        with LiveIngestor(store, chunk_minutes=MINUTES_PER_DAY) as ingestor:
            ingest_day(ingestor, 0)
            ingestor.seal(KEY, MINUTES_PER_DAY)
            ingest_day(ingestor, 1)
            ingestor.flush()

        # "Kill" the collector mid-append: a partial frame at the end of
        # the WAL, exactly what an OS crash between fsyncs leaves behind.
        path = wal_path(store.root, REGION, 0)
        durable = path.stat().st_size
        with path.open("ab") as handle:
            handle.write(b"\xff\x00\x00\x00half-written frame bytes")

        with pytest.warns(LiveWalWarning, match="torn"):
            reopened = LiveIngestor(store, chunk_minutes=MINUTES_PER_DAY)
        # Every fsync'd row survived; only the torn frame is gone, and
        # the reopen healed the file in place.
        assert reopened.pending_rows(KEY) == 3 * MINUTES_PER_DAY
        assert reopened.watermark(KEY) == MINUTES_PER_DAY
        assert path.stat().st_size == durable

        # The loop continues where it left off.
        report = reopened.seal(KEY, 2 * MINUTES_PER_DAY)
        assert report is not None and report.generation == 2
        assert store.query(ExtractQuery.for_key(KEY)).rows == 2 * 3 * MINUTES_PER_DAY // 5
        reopened.close()

    def test_bridge_skips_promotion_when_nothing_fits(self, tmp_path):
        # A forecaster that needs a previous day cannot fit on a region's
        # very first sealed window if that window is shorter than its lag;
        # the bridge reports action "none" instead of deploying garbage.
        store = DataLakeStore(tmp_path / "lake")
        service = PredictionService()
        bridge = LiveServingBridge(store, service)
        with LiveIngestor(store, chunk_minutes=60) as ingestor:
            ts = np.arange(0, 60, dtype=np.int64)
            ingestor.ingest(KEY, SERVERS[0], ts, np.full(60, 10.0))
            (report,) = ingestor.seal_due(60)
            event = bridge.on_sealed(report)
        assert event.action == "none"
        assert event.active_version is None
        assert service.health(REGION)["active_version"] is None
