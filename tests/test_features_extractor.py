"""Unit tests for the Feature Extraction Module."""

import numpy as np
import pytest

from repro.features.classification import ServerClassLabel
from repro.features.extractor import FeatureExtractionModule, ServerFeatures
from repro.timeseries.frame import LoadFrame, ServerMetadata

from tests.helpers import POINTS_PER_DAY, diurnal_series, make_series


@pytest.fixture
def module() -> FeatureExtractionModule:
    return FeatureExtractionModule()


class TestExtractServer:
    def test_basic_features(self, module):
        metadata = ServerMetadata(server_id="srv", region="r0", engine="mysql",
                                  backup_duration_minutes=45)
        series = diurnal_series(28, base=20, amplitude=30, noise=0.5)
        features = module.extract_server(metadata, series)
        assert features.server_id == "srv"
        assert features.region == "r0"
        assert features.engine == "mysql"
        assert features.lifespan_days == pytest.approx(28.0)
        assert 20.0 <= features.mean_load <= 50.0
        assert features.backup_duration_minutes == 45
        assert features.label is ServerClassLabel.DAILY

    def test_busy_flag(self, module):
        metadata = ServerMetadata(server_id="busy")
        series = make_series(np.full(22 * POINTS_PER_DAY, 70.0))
        features = module.extract_server(metadata, series)
        assert features.is_busy
        assert not features.reaches_capacity

    def test_capacity_flag(self, module):
        metadata = ServerMetadata(server_id="full")
        values = np.full(22 * POINTS_PER_DAY, 50.0)
        values[100] = 100.0
        features = module.extract_server(metadata, make_series(values))
        assert features.reaches_capacity

    def test_empty_series_features(self, module):
        features = module.extract_server(ServerMetadata(server_id="empty"),
                                         make_series([]))
        assert features.lifespan_days == 0.0
        assert features.mean_load == 0.0
        assert features.label is ServerClassLabel.SHORT_LIVED

    def test_as_dict_round_trip(self, module):
        features = module.extract_server(ServerMetadata(server_id="srv"), diurnal_series(28))
        payload = features.as_dict()
        assert payload["server_id"] == "srv"
        assert payload["label"] == features.label.value


class TestExtractFrame:
    def test_extracts_every_server(self, module, small_fleet):
        features = module.extract_frame(small_fleet)
        assert sorted(features) == sorted(small_fleet.server_ids())
        assert all(isinstance(f, ServerFeatures) for f in features.values())

    def test_capacity_histogram_sums_to_100(self, module, small_fleet):
        features = module.extract_frame(small_fleet)
        histogram = module.capacity_histogram(features)
        assert sum(histogram.values()) == pytest.approx(100.0)

    def test_capacity_histogram_empty(self, module):
        assert module.capacity_histogram({}) == {}
