"""Unit tests for NRMSE / MASE (Appendix A.2)."""

import numpy as np
import pytest

from repro.metrics.standard import (
    mase,
    mean_absolute_error,
    mean_nrmse,
    prediction_error,
    rmse,
)

from tests.helpers import make_series


class TestPredictionError:
    def test_forecast_minus_true(self):
        error = prediction_error(np.array([3.0, 5.0]), np.array([1.0, 6.0]))
        assert error.tolist() == [2.0, -1.0]

    def test_series_alignment(self):
        forecast = make_series([1, 2, 3], start=0)
        true = make_series([1, 1], start=5)
        assert prediction_error(forecast, true).tolist() == [1.0, 2.0]

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            prediction_error(np.array([1.0]), np.array([1.0, 2.0]))


class TestMeanNrmse:
    def test_perfect_forecast_is_zero(self):
        true = np.array([10.0, 20.0, 30.0])
        assert mean_nrmse(true, true) == pytest.approx(0.0)

    def test_mean_forecast_is_about_one(self):
        # Predicting the mean yields NRMSE = std/mean of the true series;
        # for this symmetric series that equals ~0.41, and scaling the
        # deviations up makes it exceed 1, the reference point the paper
        # cites.
        true = np.array([10.0, 30.0])
        forecast = np.array([20.0, 20.0])
        expected = np.sqrt(np.mean((forecast - true) ** 2)) / np.mean(true)
        assert mean_nrmse(forecast, true) == pytest.approx(expected)

    def test_zero_true_mean_is_nan(self):
        assert np.isnan(mean_nrmse(np.array([1.0]), np.array([0.0])))

    def test_empty_is_nan(self):
        a = make_series([1], start=0)
        b = make_series([1], start=100)
        assert np.isnan(mean_nrmse(a, b))


class TestMase:
    def test_naive_forecast_scores_one(self):
        true = np.array([1.0, 2.0, 3.0, 4.0])
        naive = np.array([0.0, 1.0, 2.0, 3.0])  # one-step-behind persistence
        assert mase(naive, true) == pytest.approx(1.0)

    def test_better_than_naive_is_below_one(self):
        true = np.array([1.0, 2.0, 3.0, 4.0])
        good = true + 0.1
        assert mase(good, true) < 1.0

    def test_training_series_scaling(self):
        true = np.array([10.0, 10.0, 10.0])
        forecast = np.array([11.0, 11.0, 11.0])
        training = np.array([0.0, 2.0, 0.0, 2.0])
        assert mase(forecast, true, training_true=training) == pytest.approx(0.5)

    def test_constant_true_without_training_is_nan(self):
        true = np.array([5.0, 5.0, 5.0])
        assert np.isnan(mase(true, true))

    def test_too_short_scale_series_is_nan(self):
        assert np.isnan(mase(np.array([1.0]), np.array([1.0])))


class TestAuxiliaryMetrics:
    def test_rmse(self):
        assert rmse(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == pytest.approx(np.sqrt(12.5))

    def test_mae(self):
        assert mean_absolute_error(np.array([1.0, 3.0]), np.array([2.0, 1.0])) == pytest.approx(1.5)

    def test_empty_aux_metrics_nan(self):
        a = make_series([1], start=0)
        b = make_series([1], start=100)
        assert np.isnan(rmse(a, b))
        assert np.isnan(mean_absolute_error(a, b))
