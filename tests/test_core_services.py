"""Unit tests for core services: config, model registry, endpoints, incidents,
dashboard and the weekly scheduler."""

import math

import pytest

from repro.core.config import AUTOSCALE_CONFIG, PipelineConfig
from repro.core.dashboard import Dashboard
from repro.core.endpoints import EndpointError, ScoringEndpoint
from repro.core.incidents import IncidentManager, IncidentSeverity
from repro.core.pipeline import SeagullPipeline
from repro.core.registry import DeploymentError, ModelRegistry, ModelStatus
from repro.core.scheduler import PipelineScheduler
from repro.models.persistent import PreviousDayForecaster
from repro.parallel.executor import ExecutionBackend
from repro.storage.datalake import DataLakeStore, ExtractKey
from repro.storage.documentdb import DocumentStore
from repro.telemetry.fleet import default_fleet_spec
from repro.telemetry.generator import WorkloadGenerator

from tests.helpers import diurnal_series


class TestPipelineConfig:
    def test_defaults_match_paper(self):
        config = PipelineConfig()
        assert config.model_name == "persistent_previous_day"
        assert config.training_days == 7
        assert config.history_weeks == 3
        assert config.error_bound.over_tolerance == 10.0
        assert config.accuracy_threshold == pytest.approx(0.90)

    def test_with_model(self):
        config = PipelineConfig().with_model("ssa")
        assert config.model_name == "ssa"

    def test_with_executor(self):
        config = PipelineConfig().with_executor("processes", 4)
        assert config.executor_backend is ExecutionBackend.PROCESSES
        assert config.n_workers == 4

    def test_validation_of_bad_values(self):
        with pytest.raises(ValueError):
            PipelineConfig(training_days=0)
        with pytest.raises(ValueError):
            PipelineConfig(horizon_days=0)
        with pytest.raises(ValueError):
            PipelineConfig(accuracy_threshold=1.5)
        with pytest.raises(ValueError):
            PipelineConfig(min_history_days=0)

    def test_autoscale_config(self):
        assert AUTOSCALE_CONFIG.use_case == "auto_scale"
        assert AUTOSCALE_CONFIG.interval_minutes == 15

    def test_as_dict(self):
        payload = PipelineConfig().as_dict()
        assert payload["model_name"] == "persistent_previous_day"
        assert payload["over_tolerance"] == 10.0


class TestModelRegistry:
    def test_deploy_and_active(self):
        registry = ModelRegistry()
        record = registry.deploy("r0", "persistent_previous_day", trained_week=3)
        assert record.version == 1
        assert registry.active("r0") == record

    def test_redeploy_retires_previous(self):
        registry = ModelRegistry()
        registry.deploy("r0", "persistent_previous_day", 3)
        second = registry.deploy("r0", "ssa", 4)
        versions = registry.versions("r0")
        assert versions[0].status is ModelStatus.RETIRED
        assert registry.active("r0") == second

    def test_record_accuracy(self):
        registry = ModelRegistry()
        registry.deploy("r0", "pf", 1)
        updated = registry.record_accuracy("r0", 1, 97.5)
        assert updated.accuracy_pct == pytest.approx(97.5)

    def test_record_accuracy_unknown_version(self):
        registry = ModelRegistry()
        with pytest.raises(DeploymentError):
            registry.record_accuracy("r0", 9, 50.0)

    def test_fallback_restores_previous_good_version(self):
        registry = ModelRegistry()
        registry.deploy("r0", "pf", 1)
        registry.deploy("r0", "ssa", 2)
        restored = registry.fallback("r0")
        assert restored.version == 1
        assert restored.status is ModelStatus.ACTIVE
        assert registry.versions("r0")[1].status is ModelStatus.FAILED

    def test_fallback_without_prior_version_fails(self):
        registry = ModelRegistry()
        registry.deploy("r0", "pf", 1)
        with pytest.raises(DeploymentError):
            registry.fallback("r0")

    def test_fallback_without_any_deployment_fails(self):
        with pytest.raises(DeploymentError):
            ModelRegistry().fallback("r0")

    def test_mark_failed(self):
        registry = ModelRegistry()
        registry.deploy("r0", "pf", 1)
        failed = registry.mark_failed("r0", 1, notes="deployment error")
        assert failed.status is ModelStatus.FAILED
        assert registry.active("r0") is None

    def test_persistence_to_document_store(self):
        store = DocumentStore()
        registry = ModelRegistry(store, container="models")
        registry.deploy("r0", "pf", 1)
        assert store.count("models") == 1

    def test_regions(self):
        registry = ModelRegistry()
        registry.deploy("a", "pf", 1)
        registry.deploy("b", "pf", 1)
        assert registry.regions() == ["a", "b"]


class TestScoringEndpoint:
    def build_endpoint(self):
        history = diurnal_series(7)
        forecaster = PreviousDayForecaster().fit(history)
        return ScoringEndpoint("r0", "pf", 1, {"srv-0": forecaster})

    def test_predict_known_server(self):
        endpoint = self.build_endpoint()
        forecast = endpoint.predict("srv-0", 12)
        assert len(forecast) == 12
        assert endpoint.request_count == 1
        assert endpoint.failure_count == 0

    def test_predict_unknown_server_raises(self):
        endpoint = self.build_endpoint()
        with pytest.raises(EndpointError):
            endpoint.predict("ghost", 12)
        assert endpoint.failure_count == 1

    def test_predict_many_skips_unknown(self):
        endpoint = self.build_endpoint()
        result = endpoint.predict_many(["srv-0", "ghost"], 6)
        assert list(result.predictions) == ["srv-0"]
        assert result.skipped == ("ghost",)
        assert result.failed == {}
        assert not result.complete
        # Skipped servers were never scorable: no request/failure counted.
        assert endpoint.request_count == 1
        assert endpoint.failure_count == 0

    def test_predict_many_isolates_failures(self):
        history = diurnal_series(7)
        good = PreviousDayForecaster().fit(history)
        endpoint = ScoringEndpoint(
            "r0", "pf", 1, {"srv-bad": PreviousDayForecaster(), "srv-ok": good}
        )
        result = endpoint.predict_many(["srv-bad", "srv-ok"], 6)
        # The unfitted forecaster raises mid-batch; srv-ok is still scored.
        assert list(result.predictions) == ["srv-ok"]
        assert "srv-bad" in result.failed
        assert "NotFittedError" in result.failed["srv-bad"]
        assert endpoint.request_count == 2
        assert endpoint.failure_count == 1

    def test_predict_many_accepts_any_iterable(self):
        endpoint = self.build_endpoint()
        result = endpoint.predict_many(iter(["srv-0"]), 6)
        assert list(result.predictions) == ["srv-0"]
        assert result.complete

    def test_health_summary(self):
        endpoint = self.build_endpoint()
        health = endpoint.health()
        assert health["n_servers"] == 1
        assert health["region"] == "r0"

    def test_servers_and_can_score(self):
        endpoint = self.build_endpoint()
        assert endpoint.servers() == ["srv-0"]
        assert endpoint.can_score("srv-0")
        assert not endpoint.can_score("other")


class TestIncidentManager:
    def test_raise_and_query(self):
        manager = IncidentManager()
        manager.raise_incident(IncidentSeverity.WARNING, "validation", "odd data", region="r0")
        manager.raise_incident(IncidentSeverity.CRITICAL, "training", "boom", region="r1")
        assert len(manager.incidents()) == 2
        assert len(manager.incidents(severity=IncidentSeverity.CRITICAL)) == 1
        assert len(manager.incidents(region="r0")) == 1
        assert manager.has_critical()

    def test_acknowledge(self):
        manager = IncidentManager()
        incident = manager.raise_incident(IncidentSeverity.CRITICAL, "x", "y")
        manager.acknowledge(incident.incident_id)
        assert not manager.has_critical()
        assert manager.incidents(unacknowledged_only=True) == []

    def test_acknowledge_unknown_raises(self):
        with pytest.raises(KeyError):
            IncidentManager().acknowledge(42)

    def test_handlers_invoked(self):
        manager = IncidentManager()
        seen = []
        manager.add_handler(seen.append)
        manager.raise_incident(IncidentSeverity.INFO, "s", "m")
        assert len(seen) == 1

    def test_clear(self):
        manager = IncidentManager()
        manager.raise_incident(IncidentSeverity.INFO, "s", "m")
        manager.clear()
        assert manager.incidents() == []


class TestDashboard:
    def test_record_and_filter(self):
        dashboard = Dashboard()
        dashboard.record("run-1", "r0", "component_timing", {"component": "x", "seconds": 1.0})
        dashboard.record("run-1", "r0", "run_summary", {"succeeded": True})
        dashboard.record("run-2", "r1", "run_summary", {"succeeded": False})
        assert len(dashboard.events()) == 3
        assert len(dashboard.events(region="r0")) == 2
        assert dashboard.runs() == ["run-1", "run-2"]
        assert dashboard.latest_summary("r1") == {"succeeded": False}

    def test_latest_summary_missing_region(self):
        assert Dashboard().latest_summary("nowhere") is None

    def test_render_text(self):
        dashboard = Dashboard()
        dashboard.record("run-1", "r0", "component_timing", {"component": "x", "seconds": 0.5})
        dashboard.record("run-1", "r0", "run_summary", {"ok": True})
        text = dashboard.render_text()
        assert "run-1" in text and "x: 0.500s" in text


class TestPipelineScheduler:
    @pytest.fixture
    def lake_with_extracts(self):
        spec = default_fleet_spec(servers_per_region=(8,), weeks=4, seed=13)
        frame = WorkloadGenerator(spec).generate_region("region-0")
        lake = DataLakeStore()
        lake.write_extract(ExtractKey("region-0", 3), frame)
        return lake

    def test_run_week_executes_each_region_once(self, lake_with_extracts):
        pipeline = SeagullPipeline(PipelineConfig(), data_lake=lake_with_extracts)
        scheduler = PipelineScheduler(pipeline, ["region-0"])
        runs = scheduler.run_week(3)
        assert len(runs) == 1
        assert scheduler.has_run("region-0", 3)
        # Running the same week again is a no-op.
        assert scheduler.run_week(3) == []

    def test_advance_week_moves_clock(self, lake_with_extracts):
        pipeline = SeagullPipeline(PipelineConfig(), data_lake=lake_with_extracts)
        scheduler = PipelineScheduler(pipeline, ["region-0"])
        assert scheduler.current_week == 0
        scheduler.advance_week()
        assert scheduler.current_week == 1

    def test_missing_extract_raises_incident_not_exception(self, lake_with_extracts):
        pipeline = SeagullPipeline(PipelineConfig(), data_lake=lake_with_extracts)
        scheduler = PipelineScheduler(pipeline, ["region-0"])
        runs = scheduler.run_week(7)  # no extract for week 7
        assert len(runs) == 1
        assert not runs[0].result.succeeded
        assert pipeline.incidents.has_critical()

    def test_requires_regions(self, lake_with_extracts):
        pipeline = SeagullPipeline(PipelineConfig(), data_lake=lake_with_extracts)
        with pytest.raises(ValueError):
            PipelineScheduler(pipeline, [])
