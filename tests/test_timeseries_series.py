"""Unit tests for LoadSeries."""

import numpy as np
import pytest

from repro.timeseries.calendar import MINUTES_PER_DAY
from repro.timeseries.series import IrregularSeriesError, LoadSeries

from tests.helpers import diurnal_series, make_series


class TestConstruction:
    def test_from_values_builds_regular_grid(self):
        series = LoadSeries.from_values([1.0, 2.0, 3.0], start=10, interval_minutes=5)
        assert series.timestamps.tolist() == [10, 15, 20]
        assert series.values.tolist() == [1.0, 2.0, 3.0]

    def test_empty_series(self):
        series = LoadSeries.empty()
        assert series.is_empty
        assert len(series) == 0

    def test_rejects_length_mismatch(self):
        with pytest.raises(IrregularSeriesError):
            LoadSeries([0, 5], [1.0])

    def test_rejects_non_increasing_timestamps(self):
        with pytest.raises(IrregularSeriesError):
            LoadSeries([0, 0], [1.0, 2.0])

    def test_rejects_wrong_spacing(self):
        with pytest.raises(IrregularSeriesError):
            LoadSeries([0, 7], [1.0, 2.0], interval_minutes=5)

    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError):
            LoadSeries([0], [1.0], interval_minutes=0)

    def test_rejects_two_dimensional_input(self):
        with pytest.raises(IrregularSeriesError):
            LoadSeries(np.zeros((2, 2)), np.zeros((2, 2)))

    def test_values_are_read_only_views(self):
        series = make_series([1, 2, 3])
        with pytest.raises(ValueError):
            series.values[0] = 99.0

    def test_equality(self):
        a = make_series([1, 2, 3])
        b = make_series([1, 2, 3])
        c = make_series([1, 2, 4])
        assert a == b
        assert a != c

    def test_repr_mentions_length(self):
        series = make_series([1, 2, 3])
        assert "n=3" in repr(series)


class TestSpanAndAccessors:
    def test_start_end(self):
        series = make_series([1, 2, 3], start=100)
        assert series.start == 100
        assert series.end == 110

    def test_start_of_empty_raises(self):
        with pytest.raises(ValueError):
            _ = LoadSeries.empty().start

    def test_span_counts_final_interval(self):
        series = make_series([1, 2, 3], start=0, interval=5)
        assert series.span_minutes == 15

    def test_span_days(self):
        series = diurnal_series(2)
        assert series.span_days == pytest.approx(2.0)

    def test_iteration_yields_pairs(self):
        series = make_series([1.5, 2.5], start=0)
        assert list(series) == [(0, 1.5), (5, 2.5)]

    def test_value_at_present_timestamp(self):
        series = make_series([1.0, 2.0], start=0)
        assert series.value_at(5) == 2.0

    def test_value_at_missing_uses_default(self):
        series = make_series([1.0, 2.0], start=0)
        assert series.value_at(123, default=-1.0) == -1.0

    def test_value_at_missing_without_default_raises(self):
        series = make_series([1.0])
        with pytest.raises(KeyError):
            series.value_at(999)


class TestSlicing:
    def test_slice_half_open(self):
        series = make_series([1, 2, 3, 4], start=0)
        sliced = series.slice(5, 15)
        assert sliced.values.tolist() == [2, 3]

    def test_slice_outside_range_is_empty(self):
        series = make_series([1, 2, 3])
        assert series.slice(1000, 2000).is_empty

    def test_slice_rejects_inverted_bounds(self):
        series = make_series([1, 2, 3])
        with pytest.raises(ValueError):
            series.slice(10, 0)

    def test_day_extraction(self):
        series = diurnal_series(3)
        day1 = series.day(1)
        assert len(day1) == 288
        assert day1.start == MINUTES_PER_DAY

    def test_week_extraction(self):
        series = diurnal_series(14)
        assert len(series.week(1)) == 7 * 288

    def test_last_days(self):
        series = diurnal_series(10)
        assert len(series.last_days(2)) == 2 * 288

    def test_days_lists_covered_days(self):
        series = diurnal_series(3, start_day=2)
        assert series.days() == [2, 3, 4]

    def test_has_complete_day(self):
        series = diurnal_series(2)
        assert series.has_complete_day(0)
        assert not series.has_complete_day(5)


class TestShiftAndAlign:
    def test_shift_moves_timestamps(self):
        series = make_series([1, 2], start=0)
        shifted = series.shift(100)
        assert shifted.timestamps.tolist() == [100, 105]
        assert shifted.values.tolist() == [1, 2]

    def test_align_to_common_grid(self):
        a = make_series([1, 2, 3, 4], start=0)
        b = make_series([10, 20, 30], start=5)
        av, bv = a.align_to(b)
        assert av.tolist() == [2, 3, 4]
        assert bv.tolist() == [10, 20, 30]

    def test_align_to_disjoint_is_empty(self):
        a = make_series([1, 2], start=0)
        b = make_series([1, 2], start=1000)
        av, bv = a.align_to(b)
        assert av.size == 0 and bv.size == 0


class TestAggregation:
    def test_mean_std_min_max(self):
        series = make_series([1.0, 2.0, 3.0])
        assert series.mean() == pytest.approx(2.0)
        assert series.minimum() == 1.0
        assert series.maximum() == 3.0
        assert series.std() == pytest.approx(np.std([1.0, 2.0, 3.0]))

    def test_empty_aggregates_are_nan(self):
        empty = LoadSeries.empty()
        assert np.isnan(empty.mean())
        assert np.isnan(empty.std())
        assert np.isnan(empty.minimum())
        assert np.isnan(empty.maximum())

    def test_stats_object(self):
        stats = make_series([2.0, 4.0]).stats()
        assert stats.count == 2
        assert stats.mean == pytest.approx(3.0)
        assert stats.as_dict()["max"] == 4.0

    def test_window_average(self):
        series = make_series([1, 2, 3, 4], start=0)
        assert series.window_average(0, 10) == pytest.approx(1.5)

    def test_rolling_mean_shape_and_tail(self):
        series = make_series([1, 1, 4, 4])
        rolled = series.rolling_mean(2)
        assert rolled.shape == (4,)
        assert rolled[-1] == pytest.approx(4.0)

    def test_rolling_mean_rejects_bad_window(self):
        with pytest.raises(ValueError):
            make_series([1, 2]).rolling_mean(0)

    def test_clip(self):
        series = make_series([-5.0, 50.0, 150.0])
        clipped = series.clip()
        assert clipped.values.tolist() == [0.0, 50.0, 100.0]


class TestCombination:
    def test_concat_appends(self):
        a = make_series([1, 2], start=0)
        b = make_series([3, 4], start=10)
        combined = a.concat(b)
        assert combined.values.tolist() == [1, 2, 3, 4]

    def test_concat_rejects_overlap(self):
        a = make_series([1, 2], start=0)
        b = make_series([3, 4], start=5)
        with pytest.raises(IrregularSeriesError):
            a.concat(b)

    def test_concat_rejects_interval_mismatch(self):
        a = make_series([1, 2], start=0, interval=5)
        b = make_series([3, 4], start=100, interval=15)
        with pytest.raises(IrregularSeriesError):
            a.concat(b)

    def test_concat_with_empty(self):
        a = make_series([1, 2], start=0)
        assert a.concat(LoadSeries.empty()) == a
        assert LoadSeries.empty().concat(a) == a

    def test_with_values_replaces_values(self):
        a = make_series([1, 2, 3])
        b = a.with_values(np.array([4.0, 5.0, 6.0]))
        assert b.values.tolist() == [4, 5, 6]
        assert b.timestamps.tolist() == a.timestamps.tolist()

    def test_with_values_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            make_series([1, 2]).with_values(np.array([1.0]))

    def test_copy_is_independent(self):
        a = make_series([1, 2])
        b = a.copy()
        assert a == b and a is not b

    def test_to_rows(self):
        rows = make_series([1.0], start=5).to_rows("srv")
        assert rows == [("srv", 5, 1.0)]
