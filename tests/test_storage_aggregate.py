"""Tests for the aggregate query mode and the v4 chunk-statistics path.

Parity is the contract under test: whatever mix of sources answers an
aggregate -- stored v4 chunk statistics, decoded partial-overlap chunks,
CSV rows -- the reductions must match a naive recompute over the
materialised row path, and degraded/legacy lakes must agree with fresh
ones.  The pairwise (Chan/Welford) merge is additionally checked for
fold-order independence with hypothesis.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import columnar
from repro.storage.aggregate import AggregateAccumulator, GroupState
from repro.storage.datalake import DataLakeStore, ExtractKey
from repro.storage.query import ExtractQuery, QueryError
from repro.timeseries.calendar import MINUTES_PER_DAY
from repro.timeseries.frame import LoadFrame, ServerMetadata
from repro.timeseries.series import LoadSeries

from tests.helpers import diurnal_series, frame_to_sgx_v3_bytes

ALL_REDUCTIONS = ("count", "sum", "min", "max", "mean", "variance", "std")


def build_frame(n_servers: int = 4, n_days: int = 7) -> LoadFrame:
    frame = LoadFrame(5)
    for i in range(n_servers):
        metadata = ServerMetadata(
            server_id=f"srv-{i}",
            region="westus2",
            engine="postgresql" if i % 2 else "mysql",
            default_backup_start=0,
            default_backup_end=360,
            backup_duration_minutes=45,
            true_class="stable",
        )
        frame.add_server(metadata, diurnal_series(n_days, noise=1.5, seed=i))
    return frame


def make_lake(frame: LoadFrame, fmt: str) -> DataLakeStore:
    lake = DataLakeStore(write_format=fmt)
    lake.write_extract(ExtractKey("westus2", 0), frame)
    return lake


def naive_aggregate(frame, query):
    """Recompute the reductions directly from the materialised rows."""
    group_by = query.group_by or ()
    lo, hi = query.time_range()
    allow = set(query.servers) if query.servers is not None else None
    engines = set(query.engines) if query.engines is not None else None
    groups: dict[tuple, list[np.ndarray]] = {}
    for server_id, metadata, series in frame.items():
        if allow is not None and server_id not in allow:
            continue
        if engines is not None and metadata.engine not in engines:
            continue
        ts, vs = series.timestamps, series.values
        mask = (ts >= lo) & (ts < hi)
        if not mask.any():
            continue
        if "day" in group_by:
            for day in np.unique(ts[mask] // MINUTES_PER_DAY):
                key = tuple(
                    server_id if name == "server" else int(day) for name in group_by
                )
                groups.setdefault(key, []).append(vs[mask & (ts // MINUTES_PER_DAY == day)])
        else:
            key = (server_id,) if "server" in group_by else ()
            groups.setdefault(key, []).append(vs[mask])
    out = {}
    for key, parts in groups.items():
        values = np.concatenate(parts)
        out[key] = {
            "count": int(values.shape[0]),
            "sum": float(values.sum()),
            "min": float(values.min()),
            "max": float(values.max()),
            "mean": float(values.mean()),
            "variance": float(values.var()),
            "std": float(values.std()),
        }
    return out


def assert_aggregates_close(got, want):
    assert set(got) == set(want)
    for key in want:
        for name in ALL_REDUCTIONS:
            assert got[key][name] == pytest.approx(want[key][name], rel=1e-9, abs=1e-7), (
                key,
                name,
            )


class TestAggregateRowParity:
    """Aggregate answers match a naive recompute of the row path."""

    @pytest.mark.parametrize("fmt", ["csv", "sgx"])
    @pytest.mark.parametrize(
        "start,end",
        [
            (None, None),  # full scan: every chunk fully covered
            (MINUTES_PER_DAY, 3 * MINUTES_PER_DAY),  # day-aligned: full chunks
            (700, 5 * MINUTES_PER_DAY - 300),  # partial chunks at both edges
        ],
        ids=["full", "chunk-aligned", "partial-overlap"],
    )
    @pytest.mark.parametrize("group_by", [None, ("server",), ("day",), ("server", "day")])
    def test_parity(self, fmt, start, end, group_by):
        frame = build_frame()
        lake = make_lake(frame, fmt)
        query = ExtractQuery(
            aggregates=ALL_REDUCTIONS,
            group_by=group_by,
            start_minute=start,
            end_minute=end,
        )
        result = lake.query(query)
        assert result.frame.total_points() == 0  # no rows materialised
        assert_aggregates_close(result.aggregates, naive_aggregate(frame, query))

    @pytest.mark.parametrize("fmt", ["csv", "sgx"])
    def test_parity_with_server_and_engine_filters(self, fmt):
        frame = build_frame(n_servers=6)
        lake = make_lake(frame, fmt)
        query = ExtractQuery(
            aggregates=ALL_REDUCTIONS,
            group_by=("server",),
            servers=("srv-1", "srv-2", "srv-3", "srv-5"),
            engines=("postgresql",),
        )
        result = lake.query(query)
        want = naive_aggregate(frame, query)
        assert set(result.aggregates) == {("srv-1",), ("srv-3",), ("srv-5",)}
        assert_aggregates_close(result.aggregates, want)

    def test_empty_scope_is_empty_mapping_not_nan(self):
        lake = make_lake(build_frame(), "sgx")
        result = lake.query(
            ExtractQuery(aggregates=("mean", "min"), servers=("no-such-server",))
        )
        assert result.aggregates == {}
        ranged = lake.query(
            ExtractQuery(aggregates=("mean",), start_minute=10**9, end_minute=10**9 + 10)
        )
        assert ranged.aggregates == {}

    def test_results_are_nan_free(self):
        frame = build_frame()
        lake = make_lake(frame, "sgx")
        result = lake.query(
            ExtractQuery(aggregates=ALL_REDUCTIONS, group_by=("server", "day"))
        )
        assert result.aggregates
        for reductions in result.aggregates.values():
            for value in reductions.values():
                assert not math.isnan(value)

    def test_damaged_sgx_falls_back_to_csv_without_double_count(self):
        frame = build_frame()
        lake = DataLakeStore(write_format="sgx")
        key = ExtractKey("westus2", 0)
        lake.write_extract(key, frame)
        _fmt, raw = lake.read_extract_bytes(key, fmt="sgx")
        lake.write_extract_bytes(key, "csv", b"", keep_other_formats=True)
        import repro.storage.csv_io as csv_io

        lake.write_extract_bytes(
            key, "csv", csv_io.frame_to_csv_text(frame).encode(), keep_other_formats=True
        )
        damaged = bytearray(raw)
        damaged[-1] ^= 0x01  # payload corruption: structure still parses
        lake.write_extract_bytes(key, "sgx", bytes(damaged), keep_other_formats=True)
        query = ExtractQuery(aggregates=ALL_REDUCTIONS, group_by=("server",))
        result = lake.query(query)
        assert_aggregates_close(result.aggregates, naive_aggregate(frame, query))


class TestDecodeAvoidance:
    """Fully covered chunks are answered from statistics, not payloads."""

    def test_full_scan_decodes_nothing(self):
        lake = make_lake(build_frame(), "sgx")
        result = lake.query(ExtractQuery(aggregates=ALL_REDUCTIONS, group_by=("day",)))
        stats = result.stats
        assert stats.chunks_answered_from_stats == stats.chunks_seen
        assert stats.payload_bytes_verified == 0
        assert stats.bytes_decoded_avoided == stats.payload_bytes_stored

    def test_partial_range_decodes_only_edge_chunks(self):
        lake = make_lake(build_frame(n_servers=2, n_days=7), "sgx")
        result = lake.query(
            ExtractQuery(
                aggregates=("mean",),
                start_minute=700,  # mid-day cut: day 0 is a partial chunk
                end_minute=5 * MINUTES_PER_DAY,  # aligned: days 1-4 fully covered
            )
        )
        stats = result.stats
        assert stats.chunks_answered_from_stats == 2 * 4  # days 1-4, both servers
        assert stats.chunks_pruned == 2 * 2  # days 5-6 zone-map pruned
        assert stats.payload_bytes_verified == 2 * 288 * 16  # the two partial chunks
        assert stats.bytes_decoded_avoided == 2 * 4 * 288 * 16

    def test_count_only_needs_no_value_stats_on_any_version(self):
        frame = build_frame(n_servers=2, n_days=3)
        v3 = frame_to_sgx_v3_bytes(frame)
        acc = AggregateAccumulator(("count",), ("server",))
        stats = columnar.SgxReadStats()
        columnar.aggregate_sgx_bytes(v3, acc, stats=stats)
        assert stats.chunks_answered_from_stats == stats.chunks_seen
        assert stats.payload_bytes_verified == 0
        for i in range(2):
            assert acc.results()[(f"srv-{i}",)]["count"] == 3 * 288

    def test_value_reductions_on_v3_fall_back_to_decode(self):
        frame = build_frame(n_servers=2, n_days=3)
        v3 = frame_to_sgx_v3_bytes(frame)
        acc = AggregateAccumulator(("mean",), ("server",))
        stats = columnar.SgxReadStats()
        columnar.aggregate_sgx_bytes(v3, acc, stats=stats)
        assert stats.chunks_answered_from_stats == 0
        assert stats.payload_bytes_verified == stats.payload_bytes_total
        for i in range(2):
            series = frame.series(f"srv-{i}")
            assert acc.results()[(f"srv-{i}",)]["mean"] == pytest.approx(
                float(series.values.mean())
            )

    def test_day_straddling_chunk_decodes_when_grouped_by_day(self):
        # One whole-series chunk spanning 3 days: grouping by day cannot
        # use its statistics, grouping by server can.
        frame = build_frame(n_servers=1, n_days=3)
        data = columnar.frame_to_sgx_bytes(frame, chunk_minutes=0)
        by_day = AggregateAccumulator(("mean",), ("day",))
        day_stats = columnar.SgxReadStats()
        columnar.aggregate_sgx_bytes(data, by_day, stats=day_stats)
        assert day_stats.chunks_answered_from_stats == 0
        assert len(by_day.results()) == 3
        by_server = AggregateAccumulator(("mean",), ("server",))
        server_stats = columnar.SgxReadStats()
        columnar.aggregate_sgx_bytes(data, by_server, stats=server_stats)
        assert server_stats.chunks_answered_from_stats == 1
        assert server_stats.payload_bytes_verified == 0


class TestQueryValidation:
    def test_unknown_reduction_rejected(self):
        with pytest.raises(QueryError, match="unknown aggregate reduction"):
            ExtractQuery(aggregates=("median",))

    def test_group_by_requires_aggregates(self):
        with pytest.raises(QueryError, match="group_by requires aggregates"):
            ExtractQuery(group_by=("day",))

    def test_limit_incompatible_with_aggregates(self):
        with pytest.raises(QueryError, match="limit"):
            ExtractQuery(aggregates=("count",), limit=10)

    def test_column_projection_incompatible_with_aggregates(self):
        with pytest.raises(QueryError, match="projection"):
            ExtractQuery(aggregates=("count",), columns=("timestamps",))

    def test_aggregates_canonicalise_and_hash_equal(self):
        a = ExtractQuery(aggregates=["std", "mean", "count"], group_by=["day", "server"])
        b = ExtractQuery(aggregates=("count", "mean", "std"), group_by=("server", "day"))
        assert a == b and hash(a) == hash(b)
        assert a.cache_token() == b.cache_token()

    def test_aggregate_token_differs_from_row_token(self):
        row = ExtractQuery()
        agg = ExtractQuery(aggregates=("count",))
        assert row.cache_token() != agg.cache_token()

    def test_scan_rejects_aggregate_queries(self):
        lake = make_lake(build_frame(n_servers=1, n_days=1), "sgx")
        with pytest.raises(QueryError, match="row stream"):
            list(lake.scan(ExtractQuery(aggregates=("count",))))


class TestUpgrade:
    """In-place v4 upgrades: boundary preservation and idempotence."""

    def test_upgrade_preserves_custom_chunk_boundaries_byte_for_byte(self):
        frame = build_frame(n_servers=2, n_days=6)
        v3 = frame_to_sgx_v3_bytes(frame, chunk_minutes=720)  # half-day chunks
        upgraded = columnar.upgrade_sgx_bytes(v3)
        assert columnar.sgx_version(upgraded) == 4
        old = columnar.sgx_summary(v3)["chunks"]
        new = columnar.sgx_summary(upgraded)["chunks"]
        assert [
            (c["server_id"], c["n_points"], c["min_ts"], c["max_ts"]) for c in old
        ] == [(c["server_id"], c["n_points"], c["min_ts"], c["max_ts"]) for c in new]
        # The payload region is byte-identical: only header + chunk tables changed.
        restored = columnar.frame_from_sgx_bytes(upgraded)
        assert restored.content_hash() == frame.content_hash()

    def test_upgrade_is_idempotent_on_v4(self):
        data = columnar.frame_to_sgx_bytes(build_frame(n_servers=1, n_days=2))
        assert columnar.upgrade_sgx_bytes(data) == data

    def test_upgrade_rejects_corrupt_payload(self):
        damaged = bytearray(frame_to_sgx_v3_bytes(build_frame(n_servers=1, n_days=2)))
        damaged[-1] ^= 0x01
        with pytest.raises(columnar.ColumnarFormatError, match="checksum"):
            columnar.upgrade_sgx_bytes(bytes(damaged))

    def test_upgraded_v3_matches_fresh_v4_writer(self):
        frame = build_frame(n_servers=2, n_days=3)
        upgraded = columnar.upgrade_sgx_bytes(frame_to_sgx_v3_bytes(frame))
        fresh = columnar.frame_to_sgx_bytes(frame)
        assert upgraded == fresh  # default per-day chunks: identical files

    def test_convert_lake_preserves_v3_boundaries_and_short_circuits(self, tmp_path):
        from repro.storage.migrate import convert_lake

        frame = build_frame(n_servers=2, n_days=6)
        lake = DataLakeStore(tmp_path / "lake", write_format="sgx")
        key = ExtractKey("westus2", 0)
        # Land a genuine v3 file with non-default half-day chunks.
        lake.write_extract_bytes(key, "sgx", frame_to_sgx_v3_bytes(frame, chunk_minutes=720))
        before = columnar.sgx_summary(lake.read_extract_bytes(key, fmt="sgx")[1])
        report = convert_lake(lake, "sgx")
        assert report.n_converted == 1
        raw = lake.read_extract_bytes(key, fmt="sgx")[1]
        assert columnar.sgx_version(raw) == columnar.VERSION
        after = columnar.sgx_summary(raw)
        assert [
            (c["server_id"], c["n_points"], c["min_ts"], c["max_ts"])
            for c in after["chunks"]
        ] == [
            (c["server_id"], c["n_points"], c["min_ts"], c["max_ts"])
            for c in before["chunks"]
        ]
        # Re-converting the now-v4 lake is a no-op short-circuit.
        again = convert_lake(lake, "sgx")
        assert again.n_converted == 0 and again.n_skipped == 1
        assert lake.read_extract_bytes(key, fmt="sgx")[1] == raw


# Hypothesis strategies ---------------------------------------------------- #

loads = st.floats(min_value=0.0, max_value=100.0, allow_nan=False, width=32)


def load_arrays(min_size=1, max_size=200):
    return st.lists(loads, min_size=min_size, max_size=max_size).map(
        lambda values: np.asarray(values, dtype=np.float64)
    )


class TestMergeExactness:
    """The pairwise merge agrees with a naive recompute, any fold order."""

    @given(st.lists(load_arrays(), min_size=1, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_chunked_fold_matches_naive(self, parts):
        state = GroupState()
        for part in parts:
            # Alternate the two fold paths: stored statistics vs arrays.
            if len(part) % 2:
                state.fold_stats(
                    int(part.shape[0]),
                    float(part.sum()),
                    float(part.min()),
                    float(part.max()),
                    float(np.dot(part, part)),
                )
            else:
                state.fold_array(part)
        values = np.concatenate(parts)
        got = state.result(ALL_REDUCTIONS)
        assert got["count"] == values.shape[0]
        assert got["sum"] == pytest.approx(float(values.sum()), rel=1e-9)
        assert got["min"] == float(values.min())
        assert got["max"] == float(values.max())
        assert got["mean"] == pytest.approx(float(values.mean()), rel=1e-9)
        assert got["variance"] == pytest.approx(float(values.var()), rel=1e-6, abs=1e-7)
        assert got["std"] == pytest.approx(float(values.std()), rel=1e-6, abs=1e-7)

    @given(st.lists(load_arrays(), min_size=2, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_accumulator_merge_matches_single_fold(self, parts):
        merged = AggregateAccumulator(ALL_REDUCTIONS, ("server",))
        for part in parts:
            partial = merged.spawn()
            partial.fold_columns("srv", np.arange(part.shape[0], dtype=np.int64), part)
            merged.merge(partial)
        direct = AggregateAccumulator(ALL_REDUCTIONS, ("server",))
        # Fold day-split to vary the internal chunking too.
        values = np.concatenate(parts)
        direct.fold_columns("srv", np.arange(values.shape[0], dtype=np.int64), values)
        got, want = merged.results()[("srv",)], direct.results()[("srv",)]
        for name in ALL_REDUCTIONS:
            assert got[name] == pytest.approx(want[name], rel=1e-9, abs=1e-7)

    @given(load_arrays(min_size=2))
    @settings(max_examples=60, deadline=None)
    def test_constant_series_variance_never_negative(self, values):
        constant = np.full(values.shape[0], float(values[0]))
        state = GroupState()
        state.fold_stats(
            int(constant.shape[0]),
            float(constant.sum()),
            float(constant.min()),
            float(constant.max()),
            float(np.dot(constant, constant)),
        )
        result = state.result(("variance", "std"))
        assert result["variance"] >= 0.0
        assert result["std"] >= 0.0

    @given(st.lists(load_arrays(max_size=120), min_size=1, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_sgx_roundtrip_aggregate_matches_naive(self, parts):
        frame = LoadFrame(5)
        for i, part in enumerate(parts):
            frame.add_server(
                ServerMetadata(server_id=f"s{i}", region="r", engine="e"),
                LoadSeries.from_values(part, interval_minutes=5),
            )
        data = columnar.frame_to_sgx_bytes(frame)
        acc = AggregateAccumulator(ALL_REDUCTIONS, ("server",))
        stats = columnar.SgxReadStats()
        columnar.aggregate_sgx_bytes(data, acc, stats=stats)
        assert stats.payload_bytes_verified == 0  # all from stored stats
        for i, part in enumerate(parts):
            got = acc.results()[(f"s{i}",)]
            assert got["mean"] == pytest.approx(float(part.mean()), rel=1e-9)
            assert got["variance"] == pytest.approx(
                float(part.var()), rel=1e-6, abs=1e-7
            )
