"""Crash-injection tests for the transactional lake manifest.

Every mutation of an on-disk :class:`DataLakeStore` is one manifest
transaction; this suite kills the writer at every fault point of every
mutation protocol (fresh write, overwrite, byte write, delete, lake
conversion, in-place ``.sgx`` upgrade) and asserts the recovered lake is
*exactly* the pre-transaction or the post-transaction state -- never a
mix -- and that re-running the interrupted mutation converges on the
clean outcome.  A hypothesis property test does the same over random
operation sequences, and a pinned-reader test asserts the ISSUE's
acceptance criterion: a reader holding generation N through a concurrent
convert keeps answering byte-for-byte from generation N.
"""

from __future__ import annotations

import hashlib
import tempfile
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.datalake import DataLakeStore, ExtractKey
from repro.storage.live import LIVE_FAULT_POINTS, LiveIngestor
from repro.storage.manifest import FAULT_POINTS, InjectedCrash, fault_handler
from repro.storage.migrate import convert_lake
from repro.storage.query import ExtractQuery
from repro.timeseries.calendar import MINUTES_PER_DAY
from repro.timeseries.frame import LoadFrame, ServerMetadata

from tests.helpers import CrashInjector, frame_to_sgx_v1_bytes, make_series


def small_frame(n: int = 2, level: float = 1.0, prefix: str = "s") -> LoadFrame:
    frame = LoadFrame(5)
    for index in range(n):
        frame.add_server(
            ServerMetadata(server_id=f"{prefix}{index}", region="r0"),
            make_series([level, level + 1.0, level + 2.0]),
        )
    return frame


def lake_state(root: Path) -> dict:
    """The complete reader-observable state of the lake at ``root``.

    Keys, their stored formats, and a digest of every stored payload --
    byte-level, so an in-place ``.sgx`` version upgrade (same logical
    content, different bytes) still reads as a distinct state.  Opening a
    fresh store here is the point: it runs crash recovery exactly like a
    process that reopens the lake after a kill.
    """
    lake = DataLakeStore(root)
    state = {}
    for key in lake.list_extracts():
        state[(key.region, key.week)] = {
            fmt: hashlib.sha256(lake.read_extract_bytes(key, fmt=fmt)[1]).hexdigest()
            for fmt in lake.extract_formats(key)
        }
    return state


# --------------------------------------------------------------------- #
# Deterministic crash matrix: every fault point of every mutation
# --------------------------------------------------------------------- #


@dataclass
class Scenario:
    """One lake mutation plus the clean transaction-boundary states.

    ``ref_stages`` replays the mutation's internal transaction sequence
    one transaction at a time on a reference lake; the states after each
    prefix are the only states crash recovery is ever allowed to land on.
    """

    name: str
    setup: Callable[[Path], None]
    mutate: Callable[[Path], None]
    ref_stages: list[Callable[[Path], None]] = field(default_factory=list)
    #: Whether the mutation stages payload bytes (delete-only
    #: transactions never reach the segment.* fault points).
    stages_segments: bool = True

    def __post_init__(self) -> None:
        if not self.ref_stages:
            self.ref_stages = [self.mutate]


KEY = ExtractKey("r0", 7)


def _setup_empty(root: Path) -> None:
    DataLakeStore(root)


def _setup_csv(root: Path) -> None:
    DataLakeStore(root, write_format="csv").write_extract(KEY, small_frame())


def _setup_dual(root: Path) -> None:
    lake = DataLakeStore(root, write_format="csv")
    lake.write_extract(KEY, small_frame())
    lake.write_extract(KEY, small_frame(), fmt="sgx", keep_other_formats=True)


def _setup_v1(root: Path) -> None:
    DataLakeStore(root).write_extract_bytes(
        KEY, "sgx", frame_to_sgx_v1_bytes(small_frame())
    )


SCENARIOS = [
    Scenario(
        name="fresh-write",
        setup=_setup_empty,
        mutate=lambda root: DataLakeStore(root, write_format="sgx").write_extract(
            KEY, small_frame()
        ),
    ),
    Scenario(
        # Overwriting a CSV copy with .sgx drops the stale CSV entry in
        # the same transaction -- a crash must never publish one half.
        name="overwrite-drops-other-format",
        setup=_setup_csv,
        mutate=lambda root: DataLakeStore(root).write_extract(
            KEY, small_frame(level=5.0), fmt="sgx"
        ),
    ),
    Scenario(
        name="write-bytes",
        setup=_setup_csv,
        mutate=lambda root: DataLakeStore(root).write_extract_bytes(
            KEY, "sgx", frame_to_sgx_v1_bytes(small_frame(level=9.0))
        ),
    ),
    Scenario(
        name="delete-dual-format",
        setup=_setup_dual,
        mutate=lambda root: DataLakeStore(root).delete_extract(KEY),
        stages_segments=False,
    ),
    Scenario(
        # convert --delete-source runs two transactions per key: stage
        # the .sgx copy (keeping the CSV alive for verification), then
        # drop the CSV.  The dual-format middle state is a legal
        # transaction boundary; anything else is a torn write.
        name="convert-delete-source",
        setup=_setup_csv,
        mutate=lambda root: convert_lake(
            DataLakeStore(root), "sgx", delete_source=True
        ),
        ref_stages=[
            lambda root: (lambda lake: lake.write_extract(
                KEY, lake.read_extract(KEY, fmt="csv"), fmt="sgx",
                keep_other_formats=True,
            ))(DataLakeStore(root)),
            lambda root: DataLakeStore(root).delete_extract(KEY, fmt="csv"),
        ],
    ),
    Scenario(
        # In-place v1 -> current upgrade: same logical content before and
        # after, so only the byte-level state digests tell pre from post.
        name="upgrade-v1-in-place",
        setup=_setup_v1,
        mutate=lambda root: convert_lake(DataLakeStore(root), "sgx"),
    ),
]


@pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s.name)
def test_crash_at_every_fault_point_recovers_atomically(tmp_path, scenario):
    # Clean reference run: the states at each transaction boundary.
    ref = tmp_path / "ref"
    scenario.setup(ref)
    allowed = [lake_state(ref)]
    for stage in scenario.ref_stages:
        stage(ref)
        allowed.append(lake_state(ref))
    assert allowed[0] != allowed[-1], "scenario must actually change the lake"

    # Recording run: discover how often the mutation hits each point.
    recorded = tmp_path / "recorded"
    scenario.setup(recorded)
    recorder = CrashInjector(None)
    with fault_handler(recorder):
        scenario.mutate(recorded)
    assert lake_state(recorded) == allowed[-1]
    counts = Counter(recorder.seen)
    expected_points = (
        set(FAULT_POINTS)
        if scenario.stages_segments
        else set(FAULT_POINTS) - {"segment.tmp", "segment.final", "txlog.staged"}
    )
    assert set(counts) == expected_points

    # Crash at the i-th hit of every fault point; recovery must land on
    # a transaction boundary, and a re-run must converge on the clean
    # outcome.
    for point in FAULT_POINTS:
        for occurrence in range(1, counts.get(point, 0) + 1):
            work = tmp_path / f"work-{point}-{occurrence}"
            scenario.setup(work)
            injector = CrashInjector(point, occurrence=occurrence)
            with fault_handler(injector):
                with pytest.raises(InjectedCrash):
                    scenario.mutate(work)
            recovered = lake_state(work)
            assert recovered in allowed, (
                f"crash at {point}#{occurrence} recovered to a state that is "
                "not any transaction boundary (torn transaction)"
            )
            scenario.mutate(work)
            assert lake_state(work) == allowed[-1], (
                f"re-running after a crash at {point}#{occurrence} did not "
                "converge on the clean outcome"
            )


def test_commit_point_is_the_pointer_swap(tmp_path):
    """Points strictly before ``manifest.pointer`` roll back; the pointer
    swap and everything after roll forward."""
    commit_index = FAULT_POINTS.index("manifest.pointer")
    for index, point in enumerate(FAULT_POINTS):
        root = tmp_path / point
        _setup_csv(root)
        pre = lake_state(root)
        injector = CrashInjector(point)
        with fault_handler(injector):
            with pytest.raises(InjectedCrash):
                DataLakeStore(root).write_extract(KEY, small_frame(level=3.0), fmt="sgx")
        recovered = lake_state(root)
        if index < commit_index:
            assert recovered == pre, f"crash at {point} must roll back"
        else:
            assert recovered != pre, f"crash at {point} must roll forward"
            assert tuple(recovered[(KEY.region, KEY.week)]) == ("sgx",)


def test_write_protocol_hits_every_fault_point_in_order(tmp_path):
    recorder = CrashInjector(None)
    with fault_handler(recorder):
        DataLakeStore(tmp_path).write_extract(KEY, small_frame(), fmt="sgx")
    assert tuple(recorder.seen) == FAULT_POINTS


# --------------------------------------------------------------------- #
# Property test: random operation sequences with a random crash
# --------------------------------------------------------------------- #

_KEYS = [ExtractKey("r0", 1), ExtractKey("r0", 2), ExtractKey("r1", 1)]

_op = st.one_of(
    st.tuples(
        st.just("write"),
        st.sampled_from(range(len(_KEYS))),
        st.sampled_from(["csv", "sgx"]),
        st.integers(min_value=0, max_value=5),
    ),
    st.tuples(st.just("delete"), st.sampled_from(range(len(_KEYS)))),
)


def _apply(root: Path, op: tuple) -> None:
    lake = DataLakeStore(root)
    if op[0] == "write":
        _tag, key_index, fmt, level = op
        lake.write_extract(_KEYS[key_index], small_frame(level=float(level)), fmt=fmt)
    else:
        lake.delete_extract(_KEYS[op[1]])


@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(_op, min_size=1, max_size=5),
    crash_index=st.integers(min_value=0, max_value=4),
    point=st.sampled_from(FAULT_POINTS),
)
def test_random_sequence_crash_parity(ops, crash_index, point):
    """Crash one random op of a random sequence at a random fault point:
    the recovered lake equals the state before or after that op, and
    finishing the sequence converges with an uncrashed reference run."""
    crash_index = min(crash_index, len(ops) - 1)
    with tempfile.TemporaryDirectory() as tmp:
        ref, work = Path(tmp) / "ref", Path(tmp) / "work"
        prefix_states = [lake_state(ref)]
        for op in ops:
            _apply(ref, op)
            prefix_states.append(lake_state(ref))

        for op in ops[:crash_index]:
            _apply(work, op)
        injector = CrashInjector(point)
        try:
            with fault_handler(injector):
                _apply(work, ops[crash_index])
        except InjectedCrash:
            pass
        recovered = lake_state(work)
        if injector.fired:
            assert recovered in (
                prefix_states[crash_index],
                prefix_states[crash_index + 1],
            )
        else:
            # The op never reached that point (e.g. a delete of a missing
            # key commits nothing, so the publish fault points never
            # fire) and simply completed.
            assert recovered == prefix_states[crash_index + 1]

        # Retry the interrupted op and play out the rest of the tape.
        for op in ops[crash_index:]:
            _apply(work, op)
        assert lake_state(work) == prefix_states[-1]


# --------------------------------------------------------------------- #
# Pinned readers vs concurrent mutations
# --------------------------------------------------------------------- #


def test_pinned_reader_survives_concurrent_convert(tmp_path):
    """ISSUE acceptance: a reader pinned to generation N while the lake
    is converted (CSV -> .sgx, source deleted) keeps returning results
    identical to its pre-convert reads."""
    lake = DataLakeStore(tmp_path, write_format="csv")
    keys = [ExtractKey("r0", 1), ExtractKey("r0", 2)]
    for index, key in enumerate(keys):
        lake.write_extract(key, small_frame(level=float(index), prefix=f"w{index}-"))

    reader = DataLakeStore(tmp_path, pinned_generation=lake.current_generation())
    q = ExtractQuery(regions=("r0",))
    before = reader.query(q)
    before_bytes = {key: reader.read_extract_bytes(key) for key in keys}

    convert_lake(DataLakeStore(tmp_path), "sgx", delete_source=True)

    # The live lake moved on...
    live = DataLakeStore(tmp_path)
    assert live.current_generation() > reader.pinned_generation
    assert all(live.extract_formats(key) == ("sgx",) for key in keys)
    # ...but the pinned reader still serves generation N, byte for byte.
    assert reader.extract_formats(keys[0]) == ("csv",)
    assert {key: reader.read_extract_bytes(key) for key in keys} == before_bytes
    after = reader.query(q)
    assert after.rows == before.rows
    assert after.frame.content_hash() == before.frame.content_hash()


def test_scan_in_flight_is_isolated_from_writes(tmp_path):
    """A scan pins the generation current at its first element: a write
    landing mid-scan neither changes what the scan yields nor breaks it."""
    lake = DataLakeStore(tmp_path, write_format="sgx")
    keys = [ExtractKey("r0", 1), ExtractKey("r0", 2)]
    for index, key in enumerate(keys):
        lake.write_extract(key, small_frame(level=1.0, prefix=f"w{index}-"))

    stream = lake.scan(ExtractQuery(regions=("r0",)))
    first_key, _metadata, first_series = next(stream)
    assert first_key == keys[0]
    assert float(first_series.values[0]) == 1.0

    # Overwrite both extracts while the scan is in flight.
    writer = DataLakeStore(tmp_path)
    for index, key in enumerate(keys):
        writer.write_extract(key, small_frame(level=50.0, prefix=f"w{index}-"), fmt="sgx")

    rest = list(stream)
    assert [key for key, _m, _s in rest] == [keys[0], keys[1], keys[1]]
    assert all(float(series.values[0]) == 1.0 for _k, _m, series in rest)
    # A fresh query sees the new generation.
    fresh = lake.query(ExtractQuery(regions=("r0",)))
    assert float(next(iter(fresh.frame.items()))[2].values[0]) == 50.0


# --------------------------------------------------------------------- #
# Live seal transactions: the manifest protocol plus the WAL trim
# --------------------------------------------------------------------- #

LIVE_KEY = ExtractKey("r0", 0)
_LIVE_META = ServerMetadata(server_id="s0", region="r0")


def _live_setup(root: Path) -> None:
    """A day plus an hour of raw 1-minute rows, all fsync'd in the tail."""
    store = DataLakeStore(root)
    with LiveIngestor(store, interval_minutes=5, chunk_minutes=MINUTES_PER_DAY) as ing:
        ts = np.arange(0, MINUTES_PER_DAY + 60, dtype=np.int64)
        ing.ingest(LIVE_KEY, _LIVE_META, ts, np.sin(ts / 60.0) + 2.0)


def _live_seal(root: Path) -> None:
    # Deliberately no close(): an injected crash should leave the
    # process state exactly like a kill would.
    ingestor = LiveIngestor(
        DataLakeStore(root), interval_minutes=5, chunk_minutes=MINUTES_PER_DAY
    )
    ingestor.seal(LIVE_KEY, MINUTES_PER_DAY)


def _unified_view(root: Path) -> tuple[str, int, int]:
    """What any reader sees: committed segments plus the live tail."""
    result = DataLakeStore(root).query(ExtractQuery.for_key(LIVE_KEY))
    return (result.frame.content_hash(), result.rows, result.stats.tail_rows_scanned)


def test_seal_crash_at_every_fault_point_recovers_atomically(tmp_path):
    """Killing a seal anywhere -- the whole manifest protocol plus the
    post-commit WAL trim -- leaves committed state on a transaction
    boundary and never duplicates or loses a row: the unified
    (committed + tail) answer is identical at every crash site."""
    ref = tmp_path / "ref"
    _live_setup(ref)
    pre_committed = lake_state(ref)
    pre_unified = _unified_view(ref)
    _live_seal(ref)
    post_committed = lake_state(ref)
    post_unified = _unified_view(ref)
    assert pre_committed != post_committed
    # The seal moves rows between worlds without changing the answer
    # (the invariant the crash matrix below leans on) -- only the
    # tail-vs-committed split shifts.
    assert post_unified[:2] == pre_unified[:2]
    assert pre_unified[2] == MINUTES_PER_DAY + 60 and post_unified[2] == 60

    # Recording run: a seal must hit every manifest fault point plus its
    # own WAL-trim point, exactly once each.
    recorded = tmp_path / "recorded"
    _live_setup(recorded)
    recorder = CrashInjector(None)
    with fault_handler(recorder):
        _live_seal(recorded)
    counts = Counter(recorder.seen)
    assert set(counts) == set(LIVE_FAULT_POINTS)

    for point in LIVE_FAULT_POINTS:
        for occurrence in range(1, counts.get(point, 0) + 1):
            work = tmp_path / f"work-{point}-{occurrence}"
            _live_setup(work)
            injector = CrashInjector(point, occurrence=occurrence)
            with fault_handler(injector):
                with pytest.raises(InjectedCrash):
                    _live_seal(work)
            assert lake_state(work) in (pre_committed, post_committed), (
                f"seal crash at {point}#{occurrence} recovered committed "
                "state off a transaction boundary"
            )
            assert _unified_view(work)[:2] == pre_unified[:2], (
                f"seal crash at {point}#{occurrence} lost or duplicated "
                "rows in the unified view"
            )
            # Re-running the seal converges on the clean outcome.
            _live_seal(work)
            assert lake_state(work) == post_committed
            assert _unified_view(work) == post_unified


def test_seal_protocol_hits_manifest_points_then_wal_trim(tmp_path):
    _live_setup(tmp_path)
    recorder = CrashInjector(None)
    with fault_handler(recorder):
        _live_seal(tmp_path)
    assert tuple(recorder.seen) == LIVE_FAULT_POINTS


def test_crash_between_commit_and_trim_rolls_forward_once(tmp_path):
    """The seal's own window: commit landed, trim did not.  Replay must
    dedupe the sealed rows against the txlog watermark -- reopening and
    re-sealing is a no-op, and ingestion continues above the watermark."""
    _live_setup(tmp_path)
    injector = CrashInjector("live.wal.rewrite")
    with fault_handler(injector):
        with pytest.raises(InjectedCrash):
            _live_seal(tmp_path)

    store = DataLakeStore(tmp_path)
    assert store.manifest.current().generation == 1  # the seal committed
    with LiveIngestor(
        store, interval_minutes=5, chunk_minutes=MINUTES_PER_DAY
    ) as ingestor:
        # Replay deduped the sealed day; only the trailing hour is live.
        assert ingestor.pending_rows(LIVE_KEY) == 60
        assert ingestor.watermark(LIVE_KEY) == MINUTES_PER_DAY
        assert ingestor.seal(LIVE_KEY, MINUTES_PER_DAY) is None
        ts = np.arange(MINUTES_PER_DAY + 60, MINUTES_PER_DAY + 120, dtype=np.int64)
        ingestor.ingest(LIVE_KEY, _LIVE_META, ts, np.full(60, 1.0))
    result = store.query(ExtractQuery.for_key(LIVE_KEY))
    assert result.rows == (MINUTES_PER_DAY + 120) // 5
    assert result.stats.tail_rows_scanned == 120
