"""Unit tests for daily/weekly pattern detection (Definitions 5-6)."""

import numpy as np
import pytest

from repro.features.patterns import (
    conforms_on_day,
    day_over_day_bucket_ratio,
    has_daily_pattern,
    has_weekly_pattern,
    pattern_strength,
)
from repro.timeseries.series import LoadSeries

from tests.helpers import POINTS_PER_DAY, diurnal_series, weekly_profile_series


class TestDayOverDayRatio:
    def test_identical_days_score_one(self):
        series = diurnal_series(14, noise=0.0)
        assert day_over_day_bucket_ratio(series, 5, 1) == pytest.approx(1.0)

    def test_missing_reference_day_is_nan(self):
        series = diurnal_series(3, start_day=5)
        assert np.isnan(day_over_day_bucket_ratio(series, 5, 1))

    def test_rejects_non_positive_lag(self):
        with pytest.raises(ValueError):
            day_over_day_bucket_ratio(diurnal_series(3), 1, 0)

    def test_conforms_on_day(self):
        series = diurnal_series(10, noise=0.3, seed=2)
        assert conforms_on_day(series, 4, 1)


class TestDailyPattern:
    def test_repeating_diurnal_shape_has_daily_pattern(self):
        assert has_daily_pattern(diurnal_series(28, noise=0.5, seed=1))

    def test_weekly_profile_has_no_daily_pattern(self):
        # Weekday/weekend levels differ, so Friday does not predict Saturday.
        assert not has_daily_pattern(weekly_profile_series(28))

    def test_too_short_history_is_no_pattern(self):
        assert not has_daily_pattern(diurnal_series(4))

    def test_min_days_configurable(self):
        series = diurnal_series(5, noise=0.2)
        assert has_daily_pattern(series, min_days=3)


class TestWeeklyPattern:
    def test_weekly_profile_detected(self):
        assert has_weekly_pattern(weekly_profile_series(28))

    def test_daily_pattern_excluded_from_weekly(self):
        # A daily-patterned server also matches week-over-week, but the
        # definition assigns it to the daily class only.
        assert not has_weekly_pattern(diurnal_series(28, noise=0.5, seed=1))

    def test_random_walk_has_no_weekly_pattern(self):
        rng = np.random.default_rng(3)
        values = np.clip(40 + np.cumsum(rng.normal(0, 1.5, 28 * POINTS_PER_DAY)), 0, 100)
        series = LoadSeries.from_values(values)
        assert not has_weekly_pattern(series)

    def test_too_short_history(self):
        assert not has_weekly_pattern(weekly_profile_series(10))


class TestPatternStrength:
    def test_strength_of_perfect_daily_pattern(self):
        assert pattern_strength(diurnal_series(14, noise=0.0), 1) == pytest.approx(1.0)

    def test_strength_nan_without_reference_days(self):
        assert np.isnan(pattern_strength(diurnal_series(1), 7))

    def test_weekly_stronger_than_daily_for_weekly_profile(self):
        series = weekly_profile_series(28)
        assert pattern_strength(series, 7) > pattern_strength(series, 1)
