"""Tests for the repo-specific invariant linter (``repro.devtools.lint``).

Each rule gets at least one flagging (bad) and one passing (good) fixture;
fixtures are written under a ``repro/<package>/`` directory inside
``tmp_path`` so module-name derivation sees the same package layout as the
real tree.  The suite also covers pragma suppression semantics, the CLI
exit codes, and a self-lint asserting the live ``src`` tree is clean.
"""

from __future__ import annotations

import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.devtools.lint import (
    LAYERS,
    RULES,
    Finding,
    check_file,
    module_name,
    run_lint,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def write_fixture(tmp_path: Path, relpath: str, source: str) -> Path:
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def lint_snippet(tmp_path: Path, relpath: str, source: str) -> list[Finding]:
    return check_file(write_fixture(tmp_path, relpath, source))


def rules_of(findings: list[Finding]) -> set[str]:
    return {finding.rule for finding in findings}


# --------------------------------------------------------------------- #
# Rule: api-boundary
# --------------------------------------------------------------------- #


class TestApiBoundary:
    def test_scoring_endpoint_outside_serving_flags(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/scheduling/bad.py",
            """
            from repro.serving.endpoints import ScoringEndpoint

            endpoint = ScoringEndpoint("region-0")
            """,
        )
        assert "api-boundary" in rules_of(findings)

    def test_scoring_endpoint_inside_serving_passes(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/serving/good.py",
            """
            endpoint = ScoringEndpoint("region-0")
            """,
        )
        assert "api-boundary" not in rules_of(findings)

    def test_import_alone_is_not_flagged(self, tmp_path):
        # Only calls/constructions cross the boundary; re-exports and
        # type annotations are fine.
        findings = lint_snippet(
            tmp_path,
            "repro/core/reexport.py",
            """
            from repro.storage.columnar import frame_from_sgx_bytes

            __all__ = ["frame_from_sgx_bytes"]
            """,
        )
        assert "api-boundary" not in rules_of(findings)

    def test_raw_sgx_helper_call_outside_storage_flags(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/fleet_ops/bad.py",
            """
            def read(blob):
                return frame_from_sgx_bytes(blob)
            """,
        )
        assert "api-boundary" in rules_of(findings)

    def test_direct_sgx_open_outside_storage_flags(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/serving/bad_open.py",
            """
            def peek(root):
                with open(f"{root}/extract.sgx", "rb") as fh:
                    return fh.read()
            """,
        )
        assert "api-boundary" in rules_of(findings)

    def test_direct_sgx_open_inside_storage_passes(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/storage/good_open.py",
            """
            def read(path):
                with open(f"{path}.sgx", "rb") as fh:
                    return fh.read()
            """,
        )
        assert "api-boundary" not in rules_of(findings)


# --------------------------------------------------------------------- #
# Rule: import-layering
# --------------------------------------------------------------------- #


class TestImportLayering:
    def test_storage_importing_serving_flags(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/storage/bad.py",
            """
            from repro.serving.service import PredictionService
            """,
        )
        assert "import-layering" in rules_of(findings)

    def test_storage_importing_fleet_ops_flags(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/storage/bad2.py",
            """
            import repro.fleet_ops.orchestrator
            """,
        )
        assert "import-layering" in rules_of(findings)

    def test_fleet_ops_importing_storage_passes(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/fleet_ops/good.py",
            """
            from repro.storage.datalake import DataLakeStore
            from repro.timeseries.series import LoadSeries
            """,
        )
        assert "import-layering" not in rules_of(findings)

    def test_same_package_and_relative_imports_pass(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/storage/good.py",
            """
            from repro.storage.columnar import scan_sgx_bytes
            from . import datalake
            """,
        )
        assert "import-layering" not in rules_of(findings)

    def test_facade_import_flags(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/metrics/bad.py",
            """
            import repro
            """,
        )
        assert "import-layering" in rules_of(findings)

    def test_runtime_import_of_devtools_flags(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/storage/bad3.py",
            """
            from repro.devtools.lint import run_lint
            """,
        )
        assert "import-layering" in rules_of(findings)

    def test_core_importing_storage_live_flags(self, tmp_path):
        # storage.live sits a layer above plain storage: core may depend
        # on the lake, never on the streaming subsystem riding on it.
        findings = lint_snippet(
            tmp_path,
            "repro/core/bad_live.py",
            """
            from repro.storage.live import LiveIngestor
            """,
        )
        assert "import-layering" in rules_of(findings)

    def test_core_importing_plain_storage_passes(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/core/good_lake.py",
            """
            from repro.storage.datalake import DataLakeStore
            from repro.storage.manifest import ManifestTransaction
            """,
        )
        assert "import-layering" not in rules_of(findings)

    def test_serving_importing_storage_live_passes(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/serving/good_live.py",
            """
            from repro.storage.live import SealReport
            """,
        )
        assert "import-layering" not in rules_of(findings)

    def test_storage_internal_live_imports_are_exempt(self, tmp_path):
        # Within one top-level package the DAG does not apply: the lake
        # folds the tail in via a lazy import of its own subpackage.
        findings = lint_snippet(
            tmp_path,
            "repro/storage/datalake_like.py",
            """
            from repro.storage.live import LiveTailIndex
            """,
        )
        assert "import-layering" not in rules_of(findings)

    def test_layer_map_matches_real_packages(self):
        packages = {
            p.name
            for p in (REPO_ROOT / "src" / "repro").iterdir()
            if p.is_dir() and (p / "__init__.py").exists() and p.name != "devtools"
        }
        top_level = {key for key in LAYERS if "." not in key}
        assert packages == top_level
        # Dotted keys must name real subpackages of a declared package.
        for key in set(LAYERS) - top_level:
            assert key.split(".")[0] in top_level
            subdir = (REPO_ROOT / "src" / "repro").joinpath(*key.split("."))
            assert (subdir / "__init__.py").exists(), key


# --------------------------------------------------------------------- #
# Rule: lock-discipline
# --------------------------------------------------------------------- #


class TestLockDiscipline:
    def test_unguarded_write_flags(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/serving/bad.py",
            """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}

                def put(self, key, value):
                    self._entries[key] = value
            """,
        )
        assert "lock-discipline" in rules_of(findings)

    def test_guarded_write_passes(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/serving/good.py",
            """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}

                def put(self, key, value):
                    with self._lock:
                        self._entries[key] = value
            """,
        )
        assert "lock-discipline" not in rules_of(findings)

    def test_init_is_exempt_and_lockless_classes_ignored(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/serving/good2.py",
            """
            class Plain:
                def __init__(self):
                    self._entries = {}

                def put(self, key, value):
                    self._entries[key] = value
            """,
        )
        assert "lock-discipline" not in rules_of(findings)

    def test_rlock_and_augmented_writes_detected(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/serving/bad2.py",
            """
            import threading

            class Stats:
                def __init__(self):
                    self._stats_lock = threading.RLock()
                    self._count = 0

                def bump(self):
                    self._count += 1
            """,
        )
        assert "lock-discipline" in rules_of(findings)

    def test_wrong_lock_does_not_count_as_guarded(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/serving/bad3.py",
            """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}

                def put(self, key, value, other):
                    with other:
                        self._entries[key] = value
            """,
        )
        assert "lock-discipline" in rules_of(findings)


# --------------------------------------------------------------------- #
# Rule: format-invariants
# --------------------------------------------------------------------- #

COLUMNAR_FIXTURE = "repro/storage/columnar.py"


class TestFormatInvariants:
    def test_struct_without_size_constant_flags(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            COLUMNAR_FIXTURE,
            """
            import struct

            _RECORD = struct.Struct("<QqqI")
            """,
        )
        assert "format-invariants" in rules_of(findings)

    def test_struct_with_wrong_size_constant_flags(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            COLUMNAR_FIXTURE,
            """
            import struct

            _RECORD = struct.Struct("<QqqI")
            RECORD_ENTRY_SIZE = 27
            """,
        )
        assert "format-invariants" in rules_of(findings)

    def test_struct_with_matching_size_constant_passes(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            COLUMNAR_FIXTURE,
            """
            import struct

            _RECORD = struct.Struct("<QqqI")
            RECORD_ENTRY_SIZE = 28
            """,
        )
        assert "format-invariants" not in rules_of(findings)

    def test_inline_struct_pack_format_flags(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            COLUMNAR_FIXTURE,
            """
            import struct

            def pack(n):
                return struct.pack("<I", n)
            """,
        )
        assert "format-invariants" in rules_of(findings)

    def test_magic_literal_outside_columnar_flags(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/telemetry/bad.py",
            """
            MAGIC = b"SGXF"
            """,
        )
        assert "format-invariants" in rules_of(findings)

    def test_magic_literal_inside_columnar_passes(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            COLUMNAR_FIXTURE,
            """
            MAGIC = b"SGXF"
            """,
        )
        assert "format-invariants" not in rules_of(findings)


# --------------------------------------------------------------------- #
# Rule: frozen-dataclass
# --------------------------------------------------------------------- #


class TestFrozenDataclass:
    def test_setattr_outside_post_init_flags(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/storage/bad.py",
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Query:
                limit: int

                def widen(self):
                    object.__setattr__(self, "limit", self.limit + 1)
            """,
        )
        assert "frozen-dataclass" in rules_of(findings)

    def test_setattr_in_post_init_of_frozen_dataclass_passes(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/storage/good.py",
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Query:
                limit: int

                def __post_init__(self):
                    object.__setattr__(self, "limit", max(0, self.limit))
            """,
        )
        assert "frozen-dataclass" not in rules_of(findings)

    def test_setattr_in_post_init_of_unfrozen_class_flags(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/storage/bad2.py",
            """
            from dataclasses import dataclass

            @dataclass
            class Query:
                limit: int

                def __post_init__(self):
                    object.__setattr__(self, "limit", max(0, self.limit))
            """,
        )
        assert "frozen-dataclass" in rules_of(findings)

    def test_module_level_setattr_flags(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/metrics/bad.py",
            """
            class Thing:
                pass

            object.__setattr__(Thing(), "x", 1)
            """,
        )
        assert "frozen-dataclass" in rules_of(findings)


# --------------------------------------------------------------------- #
# Rule: broad-except
# --------------------------------------------------------------------- #


class TestBroadExcept:
    def test_swallowing_broad_except_in_storage_flags(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/storage/bad.py",
            """
            def load(path):
                try:
                    return path.read_text()
                except Exception:
                    pass
            """,
        )
        assert "broad-except" in rules_of(findings)

    def test_bare_except_in_serving_flags(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/serving/bad.py",
            """
            def load(fetch):
                try:
                    return fetch()
                except:
                    pass
            """,
        )
        assert "broad-except" in rules_of(findings)

    def test_recording_handler_passes(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/storage/good.py",
            """
            def load(path, stats):
                try:
                    return path.read_text()
                except Exception:
                    stats.failures += 1
                    return None
            """,
        )
        assert "broad-except" not in rules_of(findings)

    def test_narrow_except_passes(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/storage/good2.py",
            """
            def load(path):
                try:
                    return path.read_text()
                except OSError:
                    pass
            """,
        )
        assert "broad-except" not in rules_of(findings)

    def test_outside_scoped_packages_not_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/metrics/tolerated.py",
            """
            def load(fetch):
                try:
                    return fetch()
                except Exception:
                    pass
            """,
        )
        assert "broad-except" not in rules_of(findings)


# --------------------------------------------------------------------- #
# Rule: manifest-boundary
# --------------------------------------------------------------------- #


class TestManifestBoundary:
    def test_write_bytes_to_segment_path_flags(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/storage/bad_write.py",
            """
            def damage(root):
                (root / "r0" / "extract_r0_week0001.sgx").write_bytes(b"x")
            """,
        )
        assert "manifest-boundary" in rules_of(findings)

    def test_unlink_of_filename_helper_flags(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/fleet_ops/bad_unlink.py",
            """
            def drop(root, key):
                (root / key.region / key.filename("csv")).unlink()
            """,
        )
        assert "manifest-boundary" in rules_of(findings)

    def test_write_mode_open_of_extract_path_flags(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/serving/bad_open.py",
            """
            def scribble(lake, key):
                with open(lake.extract_path(key), "wb") as fh:
                    fh.write(b"x")
            """,
        )
        assert "manifest-boundary" in rules_of(findings)

    def test_write_mode_path_open_method_flags(self, tmp_path):
        # The method form puts the mode first: path.open("wb").
        findings = lint_snippet(
            tmp_path,
            "repro/serving/bad_method_open.py",
            """
            def scribble(lake, key):
                with lake.extract_path(key).open("wb") as fh:
                    fh.write(b"x")
            """,
        )
        assert "manifest-boundary" in rules_of(findings)

    def test_read_mode_path_open_method_passes(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/serving/good_method_open.py",
            """
            def peek(lake, key):
                with lake.extract_path(key).open("rb") as fh:
                    return fh.read()
            """,
        )
        assert "manifest-boundary" not in rules_of(findings)

    def test_read_mode_open_of_extract_path_passes(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/serving/good_open.py",
            """
            def peek(lake, key):
                with open(lake.extract_path(key), "rb") as fh:
                    return fh.read()
            """,
        )
        assert "manifest-boundary" not in rules_of(findings)

    def test_unrelated_write_passes(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/fleet_ops/good_write.py",
            """
            def report(root, text):
                (root / "report.txt").write_text(text)
            """,
        )
        assert "manifest-boundary" not in rules_of(findings)

    def test_manifest_subsystem_is_exempt(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/storage/manifest/writer.py",
            """
            def publish(root, name, payload):
                (root / "r0" / f"extract_r0_week0001-{name}.sgx").write_bytes(payload)
            """,
        )
        assert "manifest-boundary" not in rules_of(findings)

    def test_pragma_with_reason_suppresses(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/storage/suppressed_write.py",
            """
            def damage(root):
                # repro: allow[manifest-boundary] simulating out-of-band disk damage
                (root / "r0" / "extract_r0_week0001.sgx").write_bytes(b"x")
            """,
        )
        assert "manifest-boundary" not in rules_of(findings)


# --------------------------------------------------------------------- #
# Rule: live-boundary
# --------------------------------------------------------------------- #


class TestLiveBoundary:
    def test_open_of_tail_wal_literal_flags(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/fleet_ops/bad_tail.py",
            """
            def tamper(root):
                with open(f"{root}/_manifest/live/r0/week0000.tail.wal", "ab") as fh:
                    fh.write(b"x")
            """,
        )
        assert "live-boundary" in rules_of(findings)

    def test_write_bytes_via_wal_path_helper_flags(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/storage/bad_tail.py",
            """
            from repro.storage.live import wal_path

            def zap(root, region, week):
                wal_path(root, region, week).write_bytes(b"")
            """,
        )
        assert "live-boundary" in rules_of(findings)

    def test_unlink_under_live_dir_flags(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/serving/bad_tail.py",
            """
            from repro.storage.live import live_dir

            def drop(root, region, week):
                (live_dir(root, region) / f"week{week:04d}.tail.wal").unlink()
            """,
        )
        assert "live-boundary" in rules_of(findings)

    def test_live_subsystem_is_exempt(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/storage/live/wal_like.py",
            """
            def heal(path):
                path.with_suffix(".tail.wal.tmp").replace(path)
            """,
        )
        assert "live-boundary" not in rules_of(findings)

    def test_unrelated_io_passes(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/fleet_ops/good_tail.py",
            """
            def report(root, text):
                (root / "live-report.txt").write_text(text)
            """,
        )
        assert "live-boundary" not in rules_of(findings)

    def test_pragma_with_reason_suppresses(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/storage/suppressed_tail.py",
            """
            def torn(path):
                # repro: allow[live-boundary] crash test forges a torn WAL tail
                with open(f"{path}/week0000.tail.wal", "ab") as fh:
                    fh.write(b"partial")
            """,
        )
        assert "live-boundary" not in rules_of(findings)


# --------------------------------------------------------------------- #
# Pragma semantics
# --------------------------------------------------------------------- #


class TestPragmas:
    def test_reasoned_pragma_suppresses(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/storage/suppressed.py",
            """
            from repro.serving.service import PredictionService  # repro: allow[import-layering] fixture exercises suppression
            """,
        )
        assert rules_of(findings) == set()

    def test_pragma_without_reason_is_a_finding_and_does_not_suppress(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/storage/unreasoned.py",
            """
            from repro.serving.service import PredictionService  # repro: allow[import-layering]
            """,
        )
        assert rules_of(findings) == {"import-layering", "bad-pragma"}

    def test_pragma_with_unknown_rule_is_a_finding(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/storage/unknown.py",
            """
            x = 1  # repro: allow[no-such-rule] because reasons
            """,
        )
        assert rules_of(findings) == {"bad-pragma"}

    def test_pragma_for_wrong_rule_does_not_suppress(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/storage/wrong_rule.py",
            """
            from repro.serving.service import PredictionService  # repro: allow[broad-except] not the firing rule
            """,
        )
        assert "import-layering" in rules_of(findings)

    def test_standalone_pragma_covers_next_line(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/storage/standalone.py",
            """
            # repro: allow[import-layering] fixture exercises standalone pragmas
            from repro.serving.service import PredictionService
            """,
        )
        assert rules_of(findings) == set()

    def test_multi_rule_pragma(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/storage/multi.py",
            """
            from repro.serving.endpoints import ScoringEndpoint

            endpoint = ScoringEndpoint("r0")  # repro: allow[api-boundary, import-layering] fixture
            """,
        )
        # The call is suppressed; the import of serving on line 1 is not.
        assert rules_of(findings) == {"import-layering"}

    def test_unused_pragma_is_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/storage/unused.py",
            """
            x = 1  # repro: allow[broad-except] nothing to suppress here
            """,
        )
        assert rules_of(findings) == {"unused-pragma"}

    def test_pragma_like_text_in_strings_is_ignored(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/storage/stringly.py",
            '''
            DOC = """use # repro: allow[not-a-rule] to suppress"""
            ''',
        )
        assert rules_of(findings) == set()


# --------------------------------------------------------------------- #
# Engine, CLI and self-lint
# --------------------------------------------------------------------- #


class TestEngine:
    def test_module_name_derivation(self):
        assert module_name(Path("src/repro/storage/columnar.py")) == "repro.storage.columnar"
        assert module_name(Path("/x/y/repro/serving/__init__.py")) == "repro.serving"
        assert module_name(Path("scripts/standalone.py")) is None

    def test_parse_error_is_reported(self, tmp_path):
        findings = lint_snippet(tmp_path, "repro/storage/broken.py", "def f(:\n")
        assert rules_of(findings) == {"parse-error"}

    def test_finding_rendering_format(self, tmp_path):
        path = write_fixture(
            tmp_path, "repro/storage/bad.py", "import repro.serving.service\n"
        )
        findings = run_lint([path])
        assert len(findings) == 1
        rendered = findings[0].render()
        assert rendered.startswith(f"{findings[0].path}:1: import-layering ")

    def test_run_lint_walks_directories(self, tmp_path):
        write_fixture(tmp_path, "repro/storage/one.py", "import repro.serving.service\n")
        write_fixture(tmp_path, "repro/storage/two.py", "import repro.fleet_ops.cli\n")
        findings = run_lint([tmp_path])
        assert len(findings) == 2

    def test_every_rule_has_an_id(self):
        assert len(RULES) >= 6
        assert len(set(RULES)) == len(RULES)


def run_cli(args: list[str], cwd: Path) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.devtools.lint", *args],
        cwd=cwd,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )


class TestCli:
    def test_clean_file_exits_zero(self, tmp_path):
        path = write_fixture(tmp_path, "repro/storage/good.py", "x = 1\n")
        result = run_cli([str(path)], cwd=tmp_path)
        assert result.returncode == 0, result.stderr

    def test_bad_snippet_exits_nonzero_with_location(self, tmp_path):
        path = write_fixture(
            tmp_path,
            "repro/storage/bad.py",
            "from repro.serving.service import PredictionService\n",
        )
        result = run_cli([str(path)], cwd=tmp_path)
        assert result.returncode == 1
        assert "import-layering" in result.stdout
        assert ":1:" in result.stdout

    def test_each_rule_bad_fixture_exits_nonzero(self, tmp_path):
        bad_fixtures = {
            "api-boundary": ("repro/core/f1.py", "x = scan_sgx_bytes(b'')\n"),
            "import-layering": ("repro/storage/f2.py", "import repro.fleet_ops.cli\n"),
            "lock-discipline": (
                "repro/serving/f3.py",
                "import threading\n\n\nclass C:\n    def __init__(self):\n"
                "        self._lock = threading.Lock()\n\n    def poke(self):\n"
                "        self._n = 1\n",
            ),
            "format-invariants": ("repro/models/f4.py", 'M = b"SGXF"\n'),
            "frozen-dataclass": (
                "repro/metrics/f5.py",
                "object.__setattr__(object(), 'x', 1)\n",
            ),
            "broad-except": (
                "repro/serving/f6.py",
                "try:\n    pass\nexcept Exception:\n    pass\n",
            ),
        }
        for rule, (relpath, source) in bad_fixtures.items():
            path = write_fixture(tmp_path, relpath, source)
            result = run_cli([str(path)], cwd=tmp_path)
            assert result.returncode == 1, (rule, result.stdout, result.stderr)
            assert rule in result.stdout, (rule, result.stdout)

    def test_select_unknown_rule_exits_two(self, tmp_path):
        result = run_cli(["--select", "nonsense", str(tmp_path)], cwd=tmp_path)
        assert result.returncode == 2

    def test_missing_path_exits_two(self, tmp_path):
        result = run_cli(["does-not-exist"], cwd=tmp_path)
        assert result.returncode == 2

    def test_list_rules(self, tmp_path):
        result = run_cli(["--list-rules"], cwd=tmp_path)
        assert result.returncode == 0
        for rule in RULES:
            assert rule in result.stdout

    def test_select_runs_only_named_rules(self, tmp_path):
        path = write_fixture(
            tmp_path,
            "repro/storage/f7.py",
            "import repro.serving.service\ntry:\n    pass\nexcept Exception:\n    pass\n",
        )
        result = run_cli(["--select", "broad-except", str(path)], cwd=tmp_path)
        assert result.returncode == 1
        assert "broad-except" in result.stdout
        assert "import-layering" not in result.stdout


class TestSelfLint:
    def test_live_tree_is_clean(self):
        findings = run_lint([REPO_ROOT / "src"])
        assert findings == [], "\n".join(f.render() for f in findings)
