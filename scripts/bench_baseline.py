#!/usr/bin/env python
"""Compare a benchmark-ratio JSON against the committed baseline.

The benchmark smoke run writes the ratios its assertions gate on (bytes
saved by pushdown, pruning, aggregation) via::

    python -m pytest benchmarks -q -k "..." --bench-json BENCH_<sha>.json

This script compares such a file against the committed ``BENCH_seed.json``
and exits non-zero when any baseline ratio regressed by more than the
tolerance (default 30%) or disappeared from the run.  New ratios absent
from the baseline are reported but do not fail -- they start gating once
a refreshed baseline is committed.

Usage::

    python scripts/bench_baseline.py BENCH_<sha>.json [--baseline BENCH_seed.json]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parents[1] / "BENCH_seed.json"


def load_ratios(path: Path) -> dict[str, dict[str, float]]:
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        sys.exit(f"error: cannot read ratio file {path}: {exc}")
    ratios = payload.get("ratios")
    if not isinstance(ratios, dict):
        sys.exit(f"error: {path} has no 'ratios' mapping")
    return ratios


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", type=Path, help="ratio JSON from this run")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help="committed baseline to compare against (default: BENCH_seed.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional regression per ratio (default: 0.30)",
    )
    args = parser.parse_args(argv)

    baseline = load_ratios(args.baseline)
    current = load_ratios(args.current)

    failures: list[str] = []
    width = max((len(name) for name in {*baseline, *current}), default=4) + 2
    print(f"{'ratio'.ljust(width)}{'baseline':>10}{'current':>10}{'change':>9}  status")
    for name in sorted({*baseline, *current}):
        base = baseline.get(name)
        now = current.get(name)
        if now is None:
            failures.append(f"{name}: present in baseline but missing from this run")
            print(f"{name.ljust(width)}{base['value']:>10.2f}{'--':>10}{'--':>9}  MISSING")
            continue
        if base is None:
            print(f"{name.ljust(width)}{'--':>10}{now['value']:>10.2f}{'--':>9}  new (not gated)")
            continue
        change = now["value"] / base["value"] - 1.0
        ok = now["value"] >= base["value"] * (1.0 - args.tolerance)
        print(
            f"{name.ljust(width)}{base['value']:>10.2f}{now['value']:>10.2f}"
            f"{change:>+8.0%}  {'ok' if ok else 'REGRESSED'}"
        )
        if not ok:
            failures.append(
                f"{name}: {base['value']:.2f} -> {now['value']:.2f} "
                f"({change:+.0%}, allowed -{args.tolerance:.0%})"
            )

    if failures:
        print("\nbenchmark baseline regressions:", file=sys.stderr)
        for line in failures:
            print(f"  - {line}", file=sys.stderr)
        return 1
    print("\nall benchmark ratios within tolerance of the baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
