#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml: run the same gates CI runs,
# from a clean checkout, with no PYTHONPATH tweaks needed.
#
# Tools CI installs but a local environment may lack (ruff, mypy,
# pytest-timeout) are detected and skipped with a notice, so the script
# always exercises at least everything the local environment can.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== repo hygiene (no compiled artifacts committed) =="
if git ls-files | grep -E '__pycache__|\.py[cod]$' ; then
    echo "error: compiled Python artifacts are committed; run" >&2
    echo "  git rm -r --cached <paths above>" >&2
    exit 1
fi
echo "clean"

echo
echo "== lint (ruff critical-error gate) =="
if command -v ruff >/dev/null 2>&1; then
    ruff check .
elif python -m ruff --version >/dev/null 2>&1; then
    python -m ruff check .
else
    echo "ruff not installed locally; skipping (the CI lint job runs it)"
fi

echo
echo "== invariants (repo-specific AST linter) =="
PYTHONPATH=src python -m repro.devtools.lint src

echo
echo "== typecheck (mypy: storage incl. manifest + serving + fleet_ops + parallel) =="
if python -c "import mypy" >/dev/null 2>&1; then
    python -m mypy src/repro/storage src/repro/serving src/repro/fleet_ops src/repro/parallel
else
    echo "mypy not installed locally; skipping (the CI typecheck job runs it)"
fi

echo
echo "== test suite =="
python -m pytest tests -x -q

echo
echo "== benchmark smoke + baseline gate =="
timeout_flag=""
if python -c "import pytest_timeout" >/dev/null 2>&1; then
    timeout_flag="--timeout=300"
fi
bench_json="$(mktemp -t bench-XXXXXX.json)"
trap 'rm -f "${bench_json}"' EXIT
python -m pytest benchmarks tests/test_crash_recovery.py -q \
    -k "classification or fig12a or columnar or serving or query or aggregates or crash or live" \
    ${timeout_flag} --bench-json "${bench_json}"
python scripts/bench_baseline.py "${bench_json}"

echo
echo "All CI-equivalent checks passed."
