# Convenience targets mirroring .github/workflows/ci.yml.

.PHONY: ci hygiene lint invariants typecheck test bench-smoke bench-baseline fleet-demo

## Run every CI gate locally (hygiene + lint + typecheck + tests + bench baseline).
ci:
	bash scripts/ci.sh

## Fail if compiled Python artifacts are committed (also part of `ci`).
hygiene:
	@if git ls-files | grep -E '__pycache__|\.py[cod]$$'; then \
		echo "error: compiled Python artifacts are committed" >&2; exit 1; \
	else echo "clean"; fi

## Ruff critical-error gate (requires ruff; CI installs it) plus the
## repo-specific invariant linter (stdlib-only, always available).
lint: invariants
	ruff check .

## Repo-specific AST invariant linter (api-boundary, import-layering,
## lock-discipline, format-invariants, frozen-dataclass, broad-except,
## manifest-boundary).
invariants:
	PYTHONPATH=src python -m repro.devtools.lint src

## Mypy over the typed API surface, storage (with its manifest
## subsystem), serving, fleet_ops and parallel (requires mypy; CI
## installs it).
typecheck:
	python -m mypy src/repro/storage src/repro/serving src/repro/fleet_ops src/repro/parallel

## Full test suite.
test:
	python -m pytest -x -q

## Quick benchmark smoke: the jobs CI runs on every PR.
bench-smoke:
	python -m pytest benchmarks tests/test_crash_recovery.py -q -k "classification or fig12a or columnar or serving or query or aggregates or crash or live"

## Benchmark smoke + regression gate against the committed BENCH_seed.json.
bench-baseline:
	python -m pytest benchmarks tests/test_crash_recovery.py -q -k "classification or fig12a or columnar or serving or query or aggregates or crash or live" \
		--bench-json BENCH_current.json
	python scripts/bench_baseline.py BENCH_current.json

## Fleet orchestrator demo: cold + warm-cache run over a synthetic fleet.
fleet-demo:
	PYTHONPATH=src python -m repro.fleet_ops --servers 16,10,6 --weeks 2 \
		--cache-dir .fleet-cache --rerun
