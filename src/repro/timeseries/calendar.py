"""Calendar arithmetic on epoch-minute timestamps.

All timestamps in this reproduction are integers counting minutes since an
arbitrary epoch (minute zero is midnight on a Monday).  Using plain integer
minutes keeps the synthetic-telemetry substrate, the forecasting models and
the metric implementations free of timezone concerns while preserving the
structure the paper relies on: days, equivalent days of the week and weeks.
"""

from __future__ import annotations

MINUTES_PER_HOUR = 60
MINUTES_PER_DAY = 24 * MINUTES_PER_HOUR
MINUTES_PER_WEEK = 7 * MINUTES_PER_DAY

#: Open-range sentinels for half-open ``[start_minute, end_minute)`` time
#: ranges: every valid epoch-minute timestamp satisfies
#: ``MIN_MINUTE <= ts < MAX_MINUTE``, so "no lower bound" is ``MIN_MINUTE``
#: and "no upper bound" is ``MAX_MINUTE``.  The storage layer (zone-map
#: pruning, CSV slicing, extract queries) shares these instead of
#: sprinkling ``1 << 62`` literals around.
MIN_MINUTE = -(1 << 62)
MAX_MINUTE = 1 << 62

#: Default sampling interval for PostgreSQL/MySQL telemetry (Section 2.2).
DEFAULT_INTERVAL_MINUTES = 5

#: Sampling interval for SQL database telemetry (Appendix A).
SQL_INTERVAL_MINUTES = 15

DAY_NAMES = (
    "Monday",
    "Tuesday",
    "Wednesday",
    "Thursday",
    "Friday",
    "Saturday",
    "Sunday",
)


def day_index(timestamp: int) -> int:
    """Return the zero-based day number containing ``timestamp``."""
    return timestamp // MINUTES_PER_DAY


def week_index(timestamp: int) -> int:
    """Return the zero-based week number containing ``timestamp``."""
    return timestamp // MINUTES_PER_WEEK


def day_start(timestamp: int) -> int:
    """Return the first minute of the day containing ``timestamp``."""
    return day_index(timestamp) * MINUTES_PER_DAY


def week_start(timestamp: int) -> int:
    """Return the first minute of the week containing ``timestamp``."""
    return week_index(timestamp) * MINUTES_PER_WEEK


def next_day_start(timestamp: int) -> int:
    """Return the first minute of the day after the one containing ``timestamp``."""
    return day_start(timestamp) + MINUTES_PER_DAY


def previous_day_start(timestamp: int) -> int:
    """Return the first minute of the day before the one containing ``timestamp``."""
    return day_start(timestamp) - MINUTES_PER_DAY


def previous_equivalent_day_start(timestamp: int) -> int:
    """Return the first minute of the same weekday one week earlier.

    Definition 6 in the paper compares a server's load on day ``d`` against
    its load on the previous equivalent day of the week ``d - 7``.
    """
    return day_start(timestamp) - MINUTES_PER_WEEK


def minute_of_day(timestamp: int) -> int:
    """Return the minute offset of ``timestamp`` within its day (0..1439)."""
    return timestamp % MINUTES_PER_DAY


def minute_of_week(timestamp: int) -> int:
    """Return the minute offset of ``timestamp`` within its week."""
    return timestamp % MINUTES_PER_WEEK


def day_of_week(timestamp: int) -> int:
    """Return the zero-based weekday (0 = Monday) of ``timestamp``."""
    return day_index(timestamp) % 7


def day_name(timestamp: int) -> str:
    """Return the weekday name of ``timestamp`` (epoch minute 0 is a Monday)."""
    return DAY_NAMES[day_of_week(timestamp)]


def day_bounds(day: int) -> tuple[int, int]:
    """Return the ``[start, end)`` minute interval of zero-based day ``day``."""
    start = day * MINUTES_PER_DAY
    return start, start + MINUTES_PER_DAY


def week_bounds(week: int) -> tuple[int, int]:
    """Return the ``[start, end)`` minute interval of zero-based week ``week``."""
    start = week * MINUTES_PER_WEEK
    return start, start + MINUTES_PER_WEEK


def points_per_day(interval_minutes: int = DEFAULT_INTERVAL_MINUTES) -> int:
    """Return the number of samples per day at the given interval."""
    if interval_minutes <= 0:
        raise ValueError("interval_minutes must be positive")
    if MINUTES_PER_DAY % interval_minutes:
        raise ValueError(
            f"interval_minutes={interval_minutes} does not evenly divide a day"
        )
    return MINUTES_PER_DAY // interval_minutes


def points_per_week(interval_minutes: int = DEFAULT_INTERVAL_MINUTES) -> int:
    """Return the number of samples per week at the given interval."""
    return 7 * points_per_day(interval_minutes)


def align_down(timestamp: int, interval_minutes: int) -> int:
    """Round ``timestamp`` down to the sampling grid."""
    return (timestamp // interval_minutes) * interval_minutes


def align_up(timestamp: int, interval_minutes: int) -> int:
    """Round ``timestamp`` up to the sampling grid."""
    return -((-timestamp) // interval_minutes) * interval_minutes
