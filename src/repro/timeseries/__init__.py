"""Time series substrate used by every other Seagull component.

The paper's pipeline consumes per-server telemetry rows of the form
``(server_id, timestamp, avg user CPU %)`` sampled every five minutes
(PostgreSQL/MySQL) or every fifteen minutes (SQL databases, Appendix A).
This package provides the containers and calendar arithmetic that the
validation, feature-extraction, modelling and metric modules operate on:

* :class:`~repro.timeseries.series.LoadSeries` -- a single server's load
  trace (regular grid of epoch-minute timestamps plus float loads).
* :class:`~repro.timeseries.frame.LoadFrame` -- a fleet of traces keyed by
  server id, with per-server metadata such as the default backup window.
* :mod:`~repro.timeseries.calendar` -- day/week arithmetic (backup days,
  previous equivalent day, window enumeration).
* :mod:`~repro.timeseries.resample` -- aggregation of raw telemetry onto
  the regular five-minute grid.
"""

from repro.timeseries.calendar import (
    MINUTES_PER_DAY,
    MINUTES_PER_WEEK,
    day_index,
    day_start,
    minute_of_day,
    next_day_start,
    previous_day_start,
    previous_equivalent_day_start,
    week_index,
    week_start,
)
from repro.timeseries.frame import LoadFrame, ServerMetadata
from repro.timeseries.resample import downsample_mean, fill_gaps, regularize
from repro.timeseries.series import LoadSeries

__all__ = [
    "LoadSeries",
    "LoadFrame",
    "ServerMetadata",
    "MINUTES_PER_DAY",
    "MINUTES_PER_WEEK",
    "day_index",
    "day_start",
    "minute_of_day",
    "next_day_start",
    "previous_day_start",
    "previous_equivalent_day_start",
    "week_index",
    "week_start",
    "downsample_mean",
    "fill_gaps",
    "regularize",
]
