"""Regularisation and resampling of raw telemetry.

Raw production telemetry (simulated by :mod:`repro.telemetry.raw_store`)
arrives at minute granularity with gaps and out-of-order rows.  The load
extraction query (Section 2.2) aggregates it to the average user CPU
percentage per five minutes.  This module provides that aggregation plus
gap-filling, so the rest of the pipeline always sees a regular grid.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.timeseries.calendar import DEFAULT_INTERVAL_MINUTES, align_down
from repro.timeseries.series import LoadSeries


def regularize(
    timestamps: Iterable[int],
    values: Iterable[float],
    interval_minutes: int = DEFAULT_INTERVAL_MINUTES,
) -> LoadSeries:
    """Aggregate irregular raw rows onto a regular grid by bucket mean.

    Rows are bucketed into ``interval_minutes`` bins aligned to the epoch,
    each bin's value is the mean of the raw values in it, and empty bins
    between the first and last observed bins are left out (use
    :func:`fill_gaps` to impute them).
    """
    ts = np.asarray(list(timestamps) if not isinstance(timestamps, np.ndarray) else timestamps, dtype=np.int64)
    vs = np.asarray(list(values) if not isinstance(values, np.ndarray) else values, dtype=np.float64)
    if ts.shape != vs.shape:
        raise ValueError("timestamps and values must have the same length")
    if ts.size == 0:
        return LoadSeries.empty(interval_minutes)

    buckets = (ts // interval_minutes) * interval_minutes
    order = np.argsort(buckets, kind="stable")
    buckets = buckets[order]
    vs = vs[order]

    unique_buckets, start_idx = np.unique(buckets, return_index=True)
    sums = np.add.reduceat(vs, start_idx)
    counts = np.diff(np.append(start_idx, vs.shape[0]))
    means = sums / counts
    return LoadSeries(unique_buckets, means, interval_minutes, validate=False)


def fill_gaps(series: LoadSeries, fill_value: float | None = None) -> LoadSeries:
    """Return ``series`` with missing grid points filled in.

    When ``fill_value`` is ``None`` gaps are filled by linear interpolation
    between the neighbouring observed points; otherwise the constant is used.
    """
    if series.is_empty or len(series) == 1:
        return series.copy()
    interval = series.interval_minutes
    full_ts = np.arange(series.start, series.end + interval, interval, dtype=np.int64)
    if full_ts.shape[0] == len(series):
        return series.copy()
    if fill_value is None:
        full_vs = np.interp(full_ts, series.timestamps, series.values)
    else:
        full_vs = np.full(full_ts.shape[0], float(fill_value))
        idx = np.searchsorted(full_ts, series.timestamps)
        full_vs[idx] = series.values
    return LoadSeries(full_ts, full_vs, interval, validate=False)


def downsample_mean(series: LoadSeries, target_interval_minutes: int) -> LoadSeries:
    """Downsample a series to a coarser grid by averaging within each bucket.

    Used to turn 5-minute PostgreSQL/MySQL style traces into the 15-minute
    granularity of the SQL database use case (Appendix A).
    """
    if target_interval_minutes < series.interval_minutes:
        raise ValueError("target interval must be at least the source interval")
    if target_interval_minutes % series.interval_minutes:
        raise ValueError("target interval must be a multiple of the source interval")
    if target_interval_minutes == series.interval_minutes or series.is_empty:
        return series.copy() if target_interval_minutes == series.interval_minutes else LoadSeries.empty(target_interval_minutes)
    return regularize(series.timestamps, series.values, target_interval_minutes)


def coverage_fraction(series: LoadSeries, start: int, end: int) -> float:
    """Fraction of grid points present in ``[start, end)``.

    The data-validation module uses this to flag servers whose telemetry is
    too sparse to predict.
    """
    if end <= start:
        raise ValueError("end must be after start")
    interval = series.interval_minutes
    expected = (align_down(end - 1, interval) - align_down(start, interval)) // interval + 1
    observed = len(series.slice(start, end))
    if expected <= 0:
        return 0.0
    return observed / expected
