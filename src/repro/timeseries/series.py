"""Single-server load series.

A :class:`LoadSeries` holds one server's telemetry on a *regular* sampling
grid: integer epoch-minute timestamps spaced ``interval_minutes`` apart and
one float load value (average user CPU percentage) per timestamp.  All of
the Seagull metrics (bucket ratio, lowest-load window) and all forecasting
models operate on these series.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

import numpy as np

from repro.timeseries import calendar
from repro.timeseries.calendar import DEFAULT_INTERVAL_MINUTES, MINUTES_PER_DAY


class IrregularSeriesError(ValueError):
    """Raised when timestamps are not on a regular, strictly increasing grid."""


@dataclass(frozen=True)
class SeriesStats:
    """Summary statistics of a load series."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
        }


class LoadSeries:
    """A regularly sampled load trace for a single server.

    Parameters
    ----------
    timestamps:
        Strictly increasing epoch-minute timestamps on a regular grid.
    values:
        Load values (average user CPU percentage per interval), same length
        as ``timestamps``.
    interval_minutes:
        Sampling interval.  Defaults to the paper's 5-minute granularity.
    validate:
        When true (the default) the constructor checks grid regularity.
    """

    __slots__ = ("_timestamps", "_values", "_interval")

    def __init__(
        self,
        timestamps: Iterable[int],
        values: Iterable[float],
        interval_minutes: int = DEFAULT_INTERVAL_MINUTES,
        validate: bool = True,
    ) -> None:
        ts = np.asarray(list(timestamps) if not isinstance(timestamps, np.ndarray) else timestamps, dtype=np.int64)
        vs = np.asarray(list(values) if not isinstance(values, np.ndarray) else values, dtype=np.float64)
        if ts.ndim != 1 or vs.ndim != 1:
            raise IrregularSeriesError("timestamps and values must be one-dimensional")
        if ts.shape[0] != vs.shape[0]:
            raise IrregularSeriesError(
                f"timestamps ({ts.shape[0]}) and values ({vs.shape[0]}) differ in length"
            )
        if interval_minutes <= 0:
            raise ValueError("interval_minutes must be positive")
        if validate and ts.shape[0] > 1:
            deltas = np.diff(ts)
            if np.any(deltas <= 0):
                raise IrregularSeriesError("timestamps must be strictly increasing")
            if np.any(deltas != interval_minutes):
                raise IrregularSeriesError(
                    "timestamps must be spaced exactly interval_minutes apart; "
                    "use repro.timeseries.resample.regularize for raw telemetry"
                )
        self._timestamps = ts
        self._values = vs
        self._interval = int(interval_minutes)

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    @property
    def timestamps(self) -> np.ndarray:
        """Epoch-minute timestamps (read-only view)."""
        view = self._timestamps.view()
        view.flags.writeable = False
        return view

    @property
    def values(self) -> np.ndarray:
        """Load values (read-only view)."""
        view = self._values.view()
        view.flags.writeable = False
        return view

    @property
    def interval_minutes(self) -> int:
        """Sampling interval in minutes."""
        return self._interval

    def __len__(self) -> int:
        return int(self._timestamps.shape[0])

    def __iter__(self) -> Iterator[tuple[int, float]]:
        for ts, value in zip(self._timestamps.tolist(), self._values.tolist(), strict=True):
            yield int(ts), float(value)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LoadSeries):
            return NotImplemented
        return (
            self._interval == other._interval
            and np.array_equal(self._timestamps, other._timestamps)
            and np.array_equal(self._values, other._values)
        )

    def __repr__(self) -> str:
        if len(self) == 0:
            return f"LoadSeries(empty, interval={self._interval}m)"
        return (
            f"LoadSeries(n={len(self)}, interval={self._interval}m, "
            f"start={int(self._timestamps[0])}, end={int(self._timestamps[-1])})"
        )

    @property
    def is_empty(self) -> bool:
        return len(self) == 0

    @property
    def start(self) -> int:
        """First timestamp.  Raises on an empty series."""
        if self.is_empty:
            raise ValueError("empty series has no start")
        return int(self._timestamps[0])

    @property
    def end(self) -> int:
        """Last timestamp (inclusive).  Raises on an empty series."""
        if self.is_empty:
            raise ValueError("empty series has no end")
        return int(self._timestamps[-1])

    @property
    def span_minutes(self) -> int:
        """Number of minutes covered, counting each sample as one interval."""
        if self.is_empty:
            return 0
        return self.end - self.start + self._interval

    @property
    def span_days(self) -> float:
        """Covered span expressed in days."""
        return self.span_minutes / MINUTES_PER_DAY

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def empty(cls, interval_minutes: int = DEFAULT_INTERVAL_MINUTES) -> "LoadSeries":
        """Return an empty series with the given interval."""
        return cls(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64), interval_minutes)

    @classmethod
    def from_values(
        cls,
        values: Iterable[float],
        start: int = 0,
        interval_minutes: int = DEFAULT_INTERVAL_MINUTES,
    ) -> "LoadSeries":
        """Build a series from values only, generating the timestamp grid."""
        vs = np.asarray(list(values) if not isinstance(values, np.ndarray) else values, dtype=np.float64)
        ts = start + np.arange(vs.shape[0], dtype=np.int64) * interval_minutes
        return cls(ts, vs, interval_minutes, validate=False)

    def with_values(self, values: np.ndarray) -> "LoadSeries":
        """Return a copy of this series with the same grid but new values."""
        vs = np.asarray(values, dtype=np.float64)
        if vs.shape != self._values.shape:
            raise ValueError("replacement values must match the series length")
        return LoadSeries(self._timestamps.copy(), vs.copy(), self._interval, validate=False)

    def copy(self) -> "LoadSeries":
        """Return an independent copy."""
        return LoadSeries(
            self._timestamps.copy(), self._values.copy(), self._interval, validate=False
        )

    # ------------------------------------------------------------------ #
    # Slicing and alignment
    # ------------------------------------------------------------------ #

    def slice(self, start: int, end: int) -> "LoadSeries":
        """Return the sub-series with ``start <= timestamp < end``."""
        if end < start:
            raise ValueError("end must not be before start")
        lo = int(np.searchsorted(self._timestamps, start, side="left"))
        hi = int(np.searchsorted(self._timestamps, end, side="left"))
        return LoadSeries(
            self._timestamps[lo:hi].copy(),
            self._values[lo:hi].copy(),
            self._interval,
            validate=False,
        )

    def day(self, day: int) -> "LoadSeries":
        """Return the sub-series covering zero-based day ``day``."""
        start, end = calendar.day_bounds(day)
        return self.slice(start, end)

    def week(self, week: int) -> "LoadSeries":
        """Return the sub-series covering zero-based week ``week``."""
        start, end = calendar.week_bounds(week)
        return self.slice(start, end)

    def last_days(self, n_days: int) -> "LoadSeries":
        """Return the trailing ``n_days`` days ending at the series end."""
        if self.is_empty:
            return self.copy()
        end = self.end + self._interval
        return self.slice(end - n_days * MINUTES_PER_DAY, end)

    def shift(self, minutes: int) -> "LoadSeries":
        """Return a copy with all timestamps shifted by ``minutes``.

        Shifting forward by one day turns yesterday's observed load into
        the persistent forecast for today (Section 5.1).
        """
        return LoadSeries(
            self._timestamps + int(minutes),
            self._values.copy(),
            self._interval,
            validate=False,
        )

    def align_to(self, other: "LoadSeries") -> tuple[np.ndarray, np.ndarray]:
        """Return value arrays of ``self`` and ``other`` on their common grid.

        Only timestamps present in both series are kept.  The metric modules
        use this to compare predicted against true load point by point.
        """
        common, self_idx, other_idx = np.intersect1d(
            self._timestamps, other._timestamps, assume_unique=True, return_indices=True
        )
        del common
        return self._values[self_idx].copy(), other._values[other_idx].copy()

    def value_at(self, timestamp: int, default: float | None = None) -> float:
        """Return the load at ``timestamp``; ``default`` if absent."""
        idx = int(np.searchsorted(self._timestamps, timestamp, side="left"))
        if idx < len(self) and self._timestamps[idx] == timestamp:
            return float(self._values[idx])
        if default is None:
            raise KeyError(f"timestamp {timestamp} not present in series")
        return float(default)

    def days(self) -> list[int]:
        """Return the sorted list of zero-based day indices covered."""
        if self.is_empty:
            return []
        return sorted(set((self._timestamps // MINUTES_PER_DAY).tolist()))

    def has_complete_day(self, day: int) -> bool:
        """Return whether day ``day`` has a full complement of samples."""
        expected = calendar.points_per_day(self._interval)
        return len(self.day(day)) == expected

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #

    def mean(self) -> float:
        """Average load; ``nan`` for an empty series."""
        if self.is_empty:
            return float("nan")
        return float(np.mean(self._values))

    def std(self) -> float:
        """Load standard deviation; ``nan`` for an empty series."""
        if self.is_empty:
            return float("nan")
        return float(np.std(self._values))

    def minimum(self) -> float:
        if self.is_empty:
            return float("nan")
        return float(np.min(self._values))

    def maximum(self) -> float:
        if self.is_empty:
            return float("nan")
        return float(np.max(self._values))

    def stats(self) -> SeriesStats:
        """Return summary statistics for the series."""
        return SeriesStats(
            count=len(self),
            mean=self.mean(),
            std=self.std(),
            minimum=self.minimum(),
            maximum=self.maximum(),
        )

    def rolling_mean(self, window_points: int) -> np.ndarray:
        """Return the trailing rolling mean over ``window_points`` samples."""
        if window_points <= 0:
            raise ValueError("window_points must be positive")
        if self.is_empty:
            return np.empty(0, dtype=np.float64)
        kernel = np.ones(window_points) / window_points
        padded = np.concatenate([np.full(window_points - 1, self._values[0]), self._values])
        return np.convolve(padded, kernel, mode="valid")

    def window_average(self, start: int, duration_minutes: int) -> float:
        """Average load over ``[start, start + duration_minutes)``."""
        return self.slice(start, start + duration_minutes).mean()

    def clip(self, lower: float = 0.0, upper: float = 100.0) -> "LoadSeries":
        """Return a copy with values clipped to ``[lower, upper]``."""
        return self.with_values(np.clip(self._values, lower, upper))

    # ------------------------------------------------------------------ #
    # Combination
    # ------------------------------------------------------------------ #

    def concat(self, other: "LoadSeries") -> "LoadSeries":
        """Concatenate ``other`` after this series.

        The two series must share the sampling interval and ``other`` must
        begin after this series ends.
        """
        if other.is_empty:
            return self.copy()
        if self.is_empty:
            return other.copy()
        if self._interval != other._interval:
            raise IrregularSeriesError("cannot concat series with different intervals")
        if other.start <= self.end:
            raise IrregularSeriesError("series to concat must start after this one ends")
        return LoadSeries(
            np.concatenate([self._timestamps, other._timestamps]),
            np.concatenate([self._values, other._values]),
            self._interval,
            validate=False,
        )

    def to_rows(self, server_id: str) -> list[tuple[str, int, float]]:
        """Return ``(server_id, timestamp, value)`` rows for CSV export."""
        return [
            (server_id, int(ts), float(value))
            for ts, value in zip(self._timestamps.tolist(), self._values.tolist(), strict=True)
        ]
