"""Fleet-level container: many servers' load series plus per-server metadata.

A :class:`LoadFrame` is the in-memory representation of one weekly
per-region extract file (Section 2.2): for every server it holds the load
series and the default backup window.  The pipeline, the classification
analysis and the benchmark harness all consume and produce load frames.
"""

from __future__ import annotations

import hashlib
from collections.abc import Callable, Iterable, Iterator, Mapping
from dataclasses import dataclass, field, replace

import numpy as np

from repro.timeseries.calendar import DEFAULT_INTERVAL_MINUTES
from repro.timeseries.series import LoadSeries


@dataclass(frozen=True)
class ServerMetadata:
    """Static attributes of a server carried alongside its load series.

    Attributes
    ----------
    server_id:
        Unique identifier of the server.
    region:
        Azure-style region name the server lives in.
    engine:
        Database engine (``postgresql``, ``mysql`` or ``sql``).
    default_backup_start / default_backup_end:
        The backup window currently configured by the automated workflow,
        expressed as epoch minutes (the window the paper's scheduler may
        replace with the predicted lowest-load window).
    backup_duration_minutes:
        Expected duration of a full backup of this server.
    true_class:
        Ground-truth workload class assigned by the synthetic generator
        (``stable``, ``daily``, ``weekly``, ``unstable``, ``short_lived``).
        Empty for real data; used only to validate the classifier.
    """

    server_id: str
    region: str = "region-0"
    engine: str = "postgresql"
    default_backup_start: int = 0
    default_backup_end: int = 0
    backup_duration_minutes: int = 60
    true_class: str = ""

    def with_backup_window(self, start: int, end: int) -> "ServerMetadata":
        """Return a copy with a different default backup window."""
        return replace(self, default_backup_start=start, default_backup_end=end)


@dataclass
class _ServerRecord:
    metadata: ServerMetadata
    series: LoadSeries


class LoadFrame:
    """A keyed collection of per-server load series.

    The frame preserves insertion order, supports partitioning (the unit of
    parallelism used by the Dask-substitute executor) and round-trips to the
    CSV schema described in Section 5.3.1: ``server identifier, timestamp in
    minutes, average user CPU load percentage per five minutes, default
    backup start and end timestamps``.
    """

    def __init__(self, interval_minutes: int = DEFAULT_INTERVAL_MINUTES) -> None:
        self._records: dict[str, _ServerRecord] = {}
        self._interval = int(interval_minutes)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def add_server(
        self,
        metadata: ServerMetadata,
        series: LoadSeries,
        overwrite: bool = False,
    ) -> None:
        """Add a server's series and metadata to the frame."""
        if series.interval_minutes != self._interval:
            raise ValueError(
                f"series interval {series.interval_minutes} does not match frame "
                f"interval {self._interval}"
            )
        if metadata.server_id in self._records and not overwrite:
            raise KeyError(f"server {metadata.server_id!r} already present")
        self._records[metadata.server_id] = _ServerRecord(metadata, series)

    def remove_server(self, server_id: str) -> None:
        """Remove a server; raises ``KeyError`` if absent."""
        del self._records[server_id]

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #

    @property
    def interval_minutes(self) -> int:
        return self._interval

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, server_id: str) -> bool:
        return server_id in self._records

    def __iter__(self) -> Iterator[str]:
        return iter(self._records)

    def server_ids(self) -> list[str]:
        """Return server ids in insertion order."""
        return list(self._records)

    def series(self, server_id: str) -> LoadSeries:
        """Return the load series of ``server_id``."""
        return self._records[server_id].series

    def metadata(self, server_id: str) -> ServerMetadata:
        """Return the metadata of ``server_id``."""
        return self._records[server_id].metadata

    def items(self) -> Iterator[tuple[str, ServerMetadata, LoadSeries]]:
        """Yield ``(server_id, metadata, series)`` triples in order."""
        for server_id, record in self._records.items():
            yield server_id, record.metadata, record.series

    def total_points(self) -> int:
        """Total number of telemetry samples across all servers."""
        return sum(len(record.series) for record in self._records.values())

    def content_hash(self) -> str:
        """Hex sha256 digest of the frame's full content.

        Covers every server's metadata, timestamps and values plus the
        sampling interval, independent of insertion order.  Two frames with
        equal content hash are interchangeable as pipeline input, which is
        what makes the digest usable as an artifact-cache key.
        """
        digest = hashlib.sha256()
        digest.update(f"interval={self._interval}".encode())
        for server_id in sorted(self._records):
            record = self._records[server_id]
            metadata = record.metadata
            digest.update(
                "|".join(
                    (
                        metadata.server_id,
                        metadata.region,
                        metadata.engine,
                        str(metadata.default_backup_start),
                        str(metadata.default_backup_end),
                        str(metadata.backup_duration_minutes),
                        metadata.true_class,
                    )
                ).encode()
            )
            digest.update(np.ascontiguousarray(record.series.timestamps).tobytes())
            digest.update(np.ascontiguousarray(record.series.values).tobytes())
        return digest.hexdigest()

    def regions(self) -> list[str]:
        """Distinct regions present, in first-seen order."""
        seen: dict[str, None] = {}
        for record in self._records.values():
            seen.setdefault(record.metadata.region, None)
        return list(seen)

    # ------------------------------------------------------------------ #
    # Transformation
    # ------------------------------------------------------------------ #

    def filter(self, predicate: Callable[[ServerMetadata, LoadSeries], bool]) -> "LoadFrame":
        """Return a new frame containing servers for which ``predicate`` holds."""
        out = LoadFrame(self._interval)
        for _server_id, metadata, series in self.items():
            if predicate(metadata, series):
                out.add_server(metadata, series)
        return out

    def select(self, server_ids: Iterable[str]) -> "LoadFrame":
        """Return a new frame restricted to ``server_ids`` (order preserved)."""
        out = LoadFrame(self._interval)
        for server_id in server_ids:
            record = self._records[server_id]
            out.add_server(record.metadata, record.series)
        return out

    def slice_time(self, start: int, end: int) -> "LoadFrame":
        """Return a new frame with every series cut to ``[start, end)``."""
        out = LoadFrame(self._interval)
        for _server_id, metadata, series in self.items():
            out.add_server(metadata, series.slice(start, end))
        return out

    def map_series(self, fn: Callable[[str, LoadSeries], LoadSeries]) -> "LoadFrame":
        """Return a new frame with ``fn`` applied to every series."""
        out = LoadFrame(self._interval)
        for server_id, metadata, series in self.items():
            out.add_server(metadata, fn(server_id, series))
        return out

    def partition(self, n_partitions: int) -> list["LoadFrame"]:
        """Split the frame into up to ``n_partitions`` server-disjoint frames.

        This is the unit of parallelism: the parallel executor maps a
        function over partitions, mirroring the paper's per-server Dask
        partitioning (Section 5.3.1).
        """
        if n_partitions <= 0:
            raise ValueError("n_partitions must be positive")
        ids = self.server_ids()
        if not ids:
            return []
        n_partitions = min(n_partitions, len(ids))
        chunks = np.array_split(np.array(ids, dtype=object), n_partitions)
        return [self.select(chunk.tolist()) for chunk in chunks if chunk.size]

    def merge(self, other: "LoadFrame", overwrite: bool = False) -> "LoadFrame":
        """Return the union of two frames."""
        if other.interval_minutes != self._interval:
            raise ValueError("cannot merge frames with different intervals")
        out = LoadFrame(self._interval)
        for _server_id, metadata, series in self.items():
            out.add_server(metadata, series)
        for _server_id, metadata, series in other.items():
            out.add_server(metadata, series, overwrite=overwrite)
        return out

    # ------------------------------------------------------------------ #
    # CSV round trip
    # ------------------------------------------------------------------ #

    CSV_HEADER = (
        "server_id",
        "timestamp_minutes",
        "avg_cpu_percent",
        "default_backup_start",
        "default_backup_end",
        "region",
        "engine",
        "backup_duration_minutes",
        "true_class",
    )

    def to_rows(self) -> Iterator[tuple]:
        """Yield CSV rows in the schema of :attr:`CSV_HEADER`."""
        for server_id, metadata, series in self.items():
            for ts, value in series:
                yield (
                    server_id,
                    ts,
                    value,
                    metadata.default_backup_start,
                    metadata.default_backup_end,
                    metadata.region,
                    metadata.engine,
                    metadata.backup_duration_minutes,
                    metadata.true_class,
                )

    @classmethod
    def from_rows(
        cls,
        rows: Iterable[Mapping[str, str]],
        interval_minutes: int = DEFAULT_INTERVAL_MINUTES,
    ) -> "LoadFrame":
        """Build a frame from dict rows keyed by :attr:`CSV_HEADER` names."""
        per_server_ts: dict[str, list[int]] = {}
        per_server_vs: dict[str, list[float]] = {}
        per_server_meta: dict[str, ServerMetadata] = {}
        for row in rows:
            server_id = str(row["server_id"])
            per_server_ts.setdefault(server_id, []).append(int(row["timestamp_minutes"]))
            per_server_vs.setdefault(server_id, []).append(float(row["avg_cpu_percent"]))
            if server_id not in per_server_meta:
                per_server_meta[server_id] = ServerMetadata(
                    server_id=server_id,
                    region=str(row.get("region", "region-0")),
                    engine=str(row.get("engine", "postgresql")),
                    default_backup_start=int(row.get("default_backup_start", 0) or 0),
                    default_backup_end=int(row.get("default_backup_end", 0) or 0),
                    backup_duration_minutes=int(row.get("backup_duration_minutes", 60) or 60),
                    true_class=str(row.get("true_class", "") or ""),
                )
        frame = cls(interval_minutes)
        for server_id, meta in per_server_meta.items():
            ts = np.asarray(per_server_ts[server_id], dtype=np.int64)
            vs = np.asarray(per_server_vs[server_id], dtype=np.float64)
            order = np.argsort(ts, kind="stable")
            series = LoadSeries(ts[order], vs[order], interval_minutes, validate=False)
            frame.add_server(meta, series)
        return frame
