"""AST-based invariant linter for this repository.

Six PRs of growth left the codebase with conventions that were enforced
only by review.  This module turns them into machine-checked rules over
``ast``-parsed sources, reporting ``path:line: RULE-ID message`` and
exiting nonzero on any finding::

    python -m repro.devtools.lint src

Rules
-----
``api-boundary``
    Declared-internal symbols (:data:`INTERNAL_SYMBOLS`) may only be
    called or constructed inside their owning package -- e.g.
    ``ScoringEndpoint`` is an internal transport of :mod:`repro.serving`,
    and the raw ``.sgx`` helpers (``frame_from_sgx_bytes``,
    ``scan_sgx_bytes``, ``upgrade_sgx_bytes``) plus direct ``open()`` of
    ``*.sgx`` files belong to :mod:`repro.storage`; everything else must
    go through ``DataLakeStore.query()``.

``import-layering``
    Imports must follow the declared layer DAG (:data:`LAYERS`):
    ``timeseries`` < ``models``/``parallel``/``validation`` < ``metrics``
    < ``features``/``storage`` < ``core``/``telemetry`` < ``serving`` <
    ``scheduling``/``autoscale`` < ``fleet_ops``.  In particular
    ``storage`` may never import ``serving`` or ``fleet_ops``.  Dotted
    keys place sub-packages for *outside* importers (longest-prefix
    resolution): ``storage.live`` sits with ``core``/``telemetry``, so
    those may depend on the lake but not on the streaming subsystem;
    imports within one top-level package stay exempt.  The ``repro``
    top-level ``__init__`` is the public facade and is exempt;
    ``repro.devtools`` must stay stdlib-only and un-imported by runtime
    code.

``lock-discipline``
    In any class that owns a ``threading.Lock``/``RLock`` attribute,
    writes to ``self._*`` attributes outside a ``with self.<lock>:``
    block are flagged (``__init__`` is exempt) -- a heuristic race
    detector for the thread-shared LRU caches and endpoint statistics.

``format-invariants``
    Every ``struct.Struct`` in ``storage/columnar.py`` must sit beside a
    named ``*_SIZE``/``*_ENTRY_SIZE``/``*_BYTES`` constant equal to its
    ``struct.calcsize``, raw ``struct.pack``/``unpack`` calls with inline
    format strings are rejected there, and the ``.sgx`` magic literal may
    appear in no other module -- writer, reader and ``upgrade_sgx_bytes``
    must agree on the layout through those shared names.

``frozen-dataclass``
    ``object.__setattr__`` is permitted only inside the
    ``__post_init__`` of a ``@dataclass(frozen=True)`` class.

``broad-except``
    In :mod:`repro.storage` and :mod:`repro.serving`, a bare ``except:``
    or ``except Exception:`` whose body only swallows (``pass``/``...``/
    ``continue``) is rejected -- degradation paths must re-raise or
    record what they dropped.

``manifest-boundary``
    Lake payload files (the ``.sgx``/CSV extract segments) are owned by
    the transactional manifest (:mod:`repro.storage.manifest`): a direct
    ``write_bytes``/``write_text``/``unlink`` -- or ``open`` for writing
    -- whose expression resolves an extract path (an ``.sgx``/``.csv``
    filename literal, ``ExtractKey.filename(...)``,
    ``DataLakeStore.extract_path(...)``) outside that package is a
    finding; mutations must go through a manifest transaction so they
    stay crash-safe and atomic.

``live-boundary``
    The streaming-ingestion tail WAL (``_manifest/live/**/*.tail.wal``)
    is owned by :mod:`repro.storage.live`: any ``open``/``read_bytes``/
    ``write_bytes``/``unlink``/``replace`` whose expression resolves a
    tail-WAL path (a ``tail.wal`` literal, ``wal_path(...)``,
    ``live_dir(...)``) outside that package is a finding -- the
    CRC-framed append/replay/seal-trim protocol has exactly one home.

Suppression
-----------
A finding is suppressible only via an inline pragma carrying a reason::

    risky_line()  # repro: allow[RULE-ID] why this exception is sound

The pragma applies to its own line (or, when the comment stands alone,
to the next line).  A pragma without a reason or naming an unknown rule
is itself a finding (``bad-pragma``), and a pragma that suppresses
nothing is flagged ``unused-pragma`` -- every exception stays visible
and honest in the diff.

The module is deliberately stdlib-only so it can judge a tree whose
runtime packages do not import.
"""

from __future__ import annotations

import argparse
import ast
import io
import os
import re
import struct as struct_module
import sys
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

# --------------------------------------------------------------------- #
# Declared invariants (the machine-readable conventions)
# --------------------------------------------------------------------- #

#: Internal symbols and the package (or module) prefixes allowed to call
#: or construct them.  Everybody else goes through the public facades
#: (``PredictionService``, ``DataLakeStore.query``).
INTERNAL_SYMBOLS: dict[str, tuple[str, ...]] = {
    "ScoringEndpoint": ("repro.serving", "repro.core.endpoints"),
    "frame_from_sgx_bytes": ("repro.storage",),
    "scan_sgx_bytes": ("repro.storage",),
    "aggregate_sgx_bytes": ("repro.storage",),
    "upgrade_sgx_bytes": ("repro.storage",),
}

#: Calls that perform raw file I/O; combined with a ``.sgx`` literal in
#: their argument/receiver expression they bypass the lake's format
#: negotiation and belong to :mod:`repro.storage` alone.
_SGX_IO_CALLS = frozenset({"open", "read_bytes", "write_bytes", "read_text", "write_text"})

#: The declared layer of each runtime package under ``repro``.  A module
#: may only import packages at a *strictly lower* layer (or its own
#: top-level package -- internal structure is the package's business).
#: ``repro/__init__.py`` (the public facade) is exempt; ``devtools`` is
#: outside the runtime DAG entirely (stdlib-only, imported by nobody).
#:
#: Dotted keys place *sub*-packages for outside importers (resolved by
#: longest prefix): ``storage.manifest`` sits with ``storage``, but
#: ``storage.live`` sits a layer above it -- ``core``/``telemetry`` may
#: depend on the lake, never on the streaming subsystem riding on top.
LAYERS: dict[str, int] = {
    "timeseries": 0,
    "models": 1,
    "parallel": 1,
    "validation": 1,
    "metrics": 2,
    "features": 3,
    "storage": 3,
    "storage.manifest": 3,
    "storage.live": 4,
    "core": 4,
    "telemetry": 4,
    "serving": 5,
    "autoscale": 6,
    "scheduling": 6,
    "fleet_ops": 7,
}

#: Packages under the typed-error discipline (rule ``broad-except``).
BROAD_EXCEPT_PACKAGES: tuple[str, ...] = ("repro.storage", "repro.serving")

#: The module that owns the ``.sgx`` binary layout.
COLUMNAR_MODULE = "repro.storage.columnar"

#: Accepted suffixes for a struct's named size constant.
_SIZE_SUFFIXES = ("_SIZE", "_ENTRY_SIZE", "_HEADER_SIZE", "_BYTES")

_SGX_MAGIC = b"SGXF"  # repro: allow[format-invariants] the linter must know the magic it polices

RULES: tuple[str, ...] = (
    "api-boundary",
    "import-layering",
    "lock-discipline",
    "format-invariants",
    "frozen-dataclass",
    "broad-except",
    "manifest-boundary",
    "live-boundary",
)

#: Engine diagnostics (not suppressible, not selectable off).
META_RULES: tuple[str, ...] = ("bad-pragma", "unused-pragma", "parse-error")

RULE_DESCRIPTIONS: dict[str, str] = {
    "api-boundary": "internal symbols called/constructed outside their owning package",
    "import-layering": "import that violates the declared package layer DAG",
    "lock-discipline": "unguarded self._* write in a lock-owning class",
    "format-invariants": ".sgx struct/size-constant drift or magic literal outside columnar.py",
    "frozen-dataclass": "object.__setattr__ outside a frozen dataclass __post_init__",
    "broad-except": "bare/broad except swallowing in storage or serving",
    "manifest-boundary": "direct write/unlink of lake payload files outside repro.storage.manifest",
    "live-boundary": "direct I/O on a live tail WAL outside repro.storage.live",
    "bad-pragma": "malformed suppression pragma (unknown rule or missing reason)",
    "unused-pragma": "suppression pragma that suppresses nothing",
    "parse-error": "file does not parse",
}


@dataclass(frozen=True)
class Finding:
    """One rule violation at ``path:line``."""

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


@dataclass
class _Pragma:
    line: int
    rules: frozenset[str]
    reason: str
    standalone: bool
    used: bool = False


@dataclass
class _Context:
    path: Path
    display_path: str
    module: str | None
    tree: ast.Module
    _parents: dict[ast.AST, ast.AST] | None = field(default=None, repr=False)

    @property
    def parents(self) -> dict[ast.AST, ast.AST]:
        if self._parents is None:
            parents: dict[ast.AST, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            self._parents = parents
        return self._parents

    def ancestors(self, node: ast.AST):
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)


# --------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------- #


def module_name(path: Path) -> str | None:
    """Dotted module name of ``path``, anchored at its ``repro`` root.

    ``.../src/repro/storage/columnar.py`` -> ``repro.storage.columnar``;
    paths with no ``repro`` component (scratch fixtures) return ``None``
    and are treated as foreign to every package.
    """
    parts = list(path.with_suffix("").parts)
    if "repro" not in parts:
        return None
    index = len(parts) - 1 - parts[::-1].index("repro")
    mods = parts[index:]
    if mods[-1] == "__init__":
        mods = mods[:-1]
    return ".".join(mods)


def _within(module: str | None, prefixes: tuple[str, ...]) -> bool:
    if module is None:
        return False
    return any(module == p or module.startswith(p + ".") for p in prefixes)


def _call_name(func: ast.AST) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _self_underscore_target(node: ast.AST) -> str | None:
    """The ``_``-prefixed attribute a write targets, when rooted at ``self``.

    Peels subscript/attribute chains: ``self._entries[key]`` and
    ``self._stats.hits`` both resolve to the underlying ``self._x``.
    """
    current: ast.AST = node
    while isinstance(current, (ast.Subscript, ast.Attribute)):
        if (
            isinstance(current, ast.Attribute)
            and isinstance(current.value, ast.Name)
            and current.value.id == "self"
        ):
            return current.attr if current.attr.startswith("_") else None
        current = current.value
    return None


# --------------------------------------------------------------------- #
# Rule: api-boundary
# --------------------------------------------------------------------- #


def _mentions_sgx_literal(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str) and ".sgx" in sub.value:
            return True
    return False


def _rule_api_boundary(ctx: _Context):
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node.func)
        if name in INTERNAL_SYMBOLS and not _within(ctx.module, INTERNAL_SYMBOLS[name]):
            owners = ", ".join(INTERNAL_SYMBOLS[name])
            yield Finding(
                ctx.display_path,
                node.lineno,
                "api-boundary",
                f"{name!r} is internal to {owners}; route through the public "
                "serving/storage API instead",
            )
        elif (
            name in _SGX_IO_CALLS
            and not _within(ctx.module, ("repro.storage",))
            and _mentions_sgx_literal(node)
        ):
            yield Finding(
                ctx.display_path,
                node.lineno,
                "api-boundary",
                "direct I/O on a .sgx file outside repro.storage; go through "
                "DataLakeStore.query()/scan()",
            )


# --------------------------------------------------------------------- #
# Rule: import-layering
# --------------------------------------------------------------------- #


def _layer_key(module: str) -> str | None:
    """The :data:`LAYERS` key governing ``module`` (longest dotted prefix).

    ``repro.storage.live.wal`` resolves to ``storage.live``;
    ``repro.storage.datalake`` falls back to ``storage``.
    """
    parts = module.split(".")[1:]
    for end in range(len(parts), 0, -1):
        candidate = ".".join(parts[:end])
        if candidate in LAYERS:
            return candidate
    return None


def _rule_import_layering(ctx: _Context):
    module = ctx.module
    if module is None or module == "repro":
        # Foreign files have no layer; repro/__init__.py is the facade.
        return
    own_pkg = module.split(".")[1]
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            targets = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative import: same package by construction
            targets = [node.module]
        else:
            continue
        for target in targets:
            parts = target.split(".")
            if parts[0] != "repro":
                continue
            if len(parts) == 1:
                yield Finding(
                    ctx.display_path,
                    node.lineno,
                    "import-layering",
                    "import the specific subpackage, not the repro facade "
                    "(facade imports create layering cycles)",
                )
                continue
            target_pkg = parts[1]
            if target_pkg == own_pkg:
                continue
            if own_pkg == "devtools":
                yield Finding(
                    ctx.display_path,
                    node.lineno,
                    "import-layering",
                    "repro.devtools must stay stdlib-only so it can lint a broken tree",
                )
                continue
            if target_pkg == "devtools":
                yield Finding(
                    ctx.display_path,
                    node.lineno,
                    "import-layering",
                    "runtime code must not import repro.devtools (it is a dev tool)",
                )
                continue
            own_key = _layer_key(module)
            target_key = _layer_key(target)
            if target_key is None or own_key is None:
                unknown = target_pkg if target_key is None else own_pkg
                yield Finding(
                    ctx.display_path,
                    node.lineno,
                    "import-layering",
                    f"package {unknown!r} is not in the declared layer map "
                    "(add it to repro.devtools.lint.LAYERS)",
                )
            elif LAYERS[target_key] >= LAYERS[own_key]:
                yield Finding(
                    ctx.display_path,
                    node.lineno,
                    "import-layering",
                    f"{own_key!r} (layer {LAYERS[own_key]}) may not import "
                    f"{target_key!r} (layer {LAYERS[target_key]}); the declared DAG is "
                    "timeseries < models/parallel/validation < metrics < "
                    "features/storage(.manifest) < core/telemetry/storage.live < "
                    "serving < scheduling/autoscale < fleet_ops",
                )


# --------------------------------------------------------------------- #
# Rule: lock-discipline
# --------------------------------------------------------------------- #

_LOCK_FACTORIES = frozenset({"Lock", "RLock"})


def _is_lock_ctor(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and _call_name(node.func) in _LOCK_FACTORIES
        and not node.args
        and not node.keywords
    )


def _lock_attrs(cls: ast.ClassDef) -> frozenset[str]:
    attrs = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign) and _is_lock_ctor(node.value):
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    attrs.add(target.attr)
    return frozenset(attrs)


def _holds_lock(item: ast.withitem, locks: frozenset[str]) -> bool:
    expr = item.context_expr
    return (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and expr.attr in locks
    )


def _unguarded_writes(node: ast.AST, locks: frozenset[str], held: bool):
    """Yield ``(node, attr)`` for self._* writes reachable without the lock."""
    if isinstance(node, (ast.With, ast.AsyncWith)):
        held = held or any(_holds_lock(item, locks) for item in node.items)
    elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)) and not held:
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            attr = _self_underscore_target(target)
            if attr is not None:
                yield node, attr
    elif isinstance(node, ast.Delete) and not held:
        for target in node.targets:
            attr = _self_underscore_target(target)
            if attr is not None:
                yield node, attr
    for child in ast.iter_child_nodes(node):
        if isinstance(child, ast.ClassDef):
            continue  # nested classes own their own state
        yield from _unguarded_writes(child, locks, held)


_LOCK_EXEMPT_METHODS = frozenset({"__init__", "__new__", "__post_init__"})


def _rule_lock_discipline(ctx: _Context):
    for cls in ast.walk(ctx.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        locks = _lock_attrs(cls)
        if not locks:
            continue
        lock_list = "/".join(f"self.{name}" for name in sorted(locks))
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name in _LOCK_EXEMPT_METHODS:
                continue
            for stmt in item.body:
                for write, attr in _unguarded_writes(stmt, locks, held=False):
                    yield Finding(
                        ctx.display_path,
                        write.lineno,
                        "lock-discipline",
                        f"write to self.{attr} in {cls.name}.{item.name} outside "
                        f"`with {lock_list}:` -- {cls.name} shares state across "
                        "threads (heuristic)",
                    )


# --------------------------------------------------------------------- #
# Rule: format-invariants
# --------------------------------------------------------------------- #

_STRUCT_CALLS = frozenset(
    {"pack", "pack_into", "unpack", "unpack_from", "iter_unpack", "calcsize"}
)


def _const_eval(node: ast.AST, env: dict[str, int], structs: dict[str, int]) -> int | None:
    """Evaluate a size-constant expression: int literals, known names,
    ``<struct>.size`` and ``+``/``-``/``*`` over them."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    if isinstance(node, ast.Name):
        return env.get(node.id)
    if (
        isinstance(node, ast.Attribute)
        and node.attr == "size"
        and isinstance(node.value, ast.Name)
        and node.value.id in structs
    ):
        return structs[node.value.id]
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub, ast.Mult)):
        left = _const_eval(node.left, env, structs)
        right = _const_eval(node.right, env, structs)
        if left is None or right is None:
            return None
        if isinstance(node.op, ast.Add):
            return left + right
        if isinstance(node.op, ast.Sub):
            return left - right
        return left * right
    return None


def _is_struct_struct(node: ast.AST) -> str | None:
    """The literal format string of a ``struct.Struct("...")`` call."""
    if (
        isinstance(node, ast.Call)
        and _call_name(node.func) == "Struct"
        and len(node.args) == 1
        and isinstance(node.args[0], ast.Constant)
        and isinstance(node.args[0].value, str)
    ):
        return node.args[0].value
    return None


def _magic_literal(node: ast.AST) -> bool:
    if not isinstance(node, ast.Constant):
        return False
    if isinstance(node.value, bytes):
        return node.value[:4] == _SGX_MAGIC
    if isinstance(node.value, str):
        return node.value == _SGX_MAGIC.decode("ascii")
    return False


def _rule_format_invariants(ctx: _Context):
    if ctx.module != COLUMNAR_MODULE:
        for node in ast.walk(ctx.tree):
            if _magic_literal(node):
                yield Finding(
                    ctx.display_path,
                    node.lineno,
                    "format-invariants",
                    ".sgx magic literal outside storage/columnar.py -- the binary "
                    "layout has exactly one home",
                )
        return

    # Inside columnar.py: every struct gets a named, matching size constant.
    structs: dict[str, tuple[str, int]] = {}
    struct_sizes: dict[str, int] = {}
    env: dict[str, int] = {}
    for stmt in ctx.tree.body:
        if not (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
        ):
            continue
        name = stmt.targets[0].id
        fmt = _is_struct_struct(stmt.value)
        if fmt is not None:
            try:
                struct_sizes[name] = struct_module.calcsize(fmt)
            except struct_module.error:
                yield Finding(
                    ctx.display_path,
                    stmt.lineno,
                    "format-invariants",
                    f"struct {name} has an invalid format string {fmt!r}",
                )
                continue
            structs[name] = (fmt, stmt.lineno)
        else:
            value = _const_eval(stmt.value, env, struct_sizes)
            if value is not None:
                env[name] = value

    for name, (_fmt, lineno) in structs.items():
        size = struct_sizes[name]
        base = name.lstrip("_")
        candidates = [base + suffix for suffix in _SIZE_SUFFIXES]
        declared = [c for c in candidates if c in env]
        if not declared:
            yield Finding(
                ctx.display_path,
                lineno,
                "format-invariants",
                f"struct {name} ({size} bytes) has no named size constant; declare "
                f"one of {', '.join(candidates)} = {size} beside it",
            )
        elif all(env[c] != size for c in declared):
            got = ", ".join(f"{c}={env[c]}" for c in declared)
            yield Finding(
                ctx.display_path,
                lineno,
                "format-invariants",
                f"struct {name} is {size} bytes but its size constant says {got} -- "
                "writer/reader/upgrader would disagree on the layout",
            )

    for node in ast.walk(ctx.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "struct"
            and node.func.attr in _STRUCT_CALLS
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            yield Finding(
                ctx.display_path,
                node.lineno,
                "format-invariants",
                f"inline struct.{node.func.attr} format string; use a named "
                "module-level struct.Struct with a size constant",
            )


# --------------------------------------------------------------------- #
# Rule: frozen-dataclass
# --------------------------------------------------------------------- #


def _is_frozen_dataclass(cls: ast.ClassDef) -> bool:
    for dec in cls.decorator_list:
        if (
            isinstance(dec, ast.Call)
            and _call_name(dec.func) == "dataclass"
            and any(
                kw.arg == "frozen"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in dec.keywords
            )
        ):
            return True
    return False


def _rule_frozen_dataclass(ctx: _Context):
    for node in ast.walk(ctx.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "__setattr__"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "object"
        ):
            continue
        enclosing_fn = None
        enclosing_cls = None
        for ancestor in ctx.ancestors(node):
            if enclosing_fn is None and isinstance(
                ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                enclosing_fn = ancestor
            elif enclosing_fn is not None and isinstance(ancestor, ast.ClassDef):
                enclosing_cls = ancestor
                break
        allowed = (
            enclosing_fn is not None
            and enclosing_fn.name == "__post_init__"
            and enclosing_cls is not None
            and _is_frozen_dataclass(enclosing_cls)
        )
        if not allowed:
            yield Finding(
                ctx.display_path,
                node.lineno,
                "frozen-dataclass",
                "object.__setattr__ is allowed only inside __post_init__ of a "
                "frozen dataclass -- anywhere else it defeats immutability",
            )


# --------------------------------------------------------------------- #
# Rules: manifest-boundary, live-boundary (storage ownership boundaries)
# --------------------------------------------------------------------- #

#: The one package allowed to create, replace or unlink lake payload
#: files -- everybody else mutates a lake through a manifest transaction
#: (``DataLakeStore.write_extract*`` / ``delete_extract``), never by
#: touching the files.
MANIFEST_OWNER = "repro.storage.manifest"

#: Path methods that mutate a file in place.
_PAYLOAD_WRITE_CALLS = frozenset({"write_bytes", "write_text", "unlink"})

#: Calls that resolve a lake payload path; their presence in a mutation's
#: expression marks the target as lake-owned.
_PAYLOAD_PATH_CALLS = frozenset({"filename", "extract_path"})


def _mentions_payload_path(node: ast.AST) -> bool:
    """Whether ``node``'s expression tree involves a lake payload path:
    an extract filename literal (``.sgx``/``.csv``) or a call to the
    path-resolving helpers (``ExtractKey.filename``,
    ``DataLakeStore.extract_path``)."""
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Constant)
            and isinstance(sub.value, str)
            and (".sgx" in sub.value or ".csv" in sub.value)
        ):
            return True
        if isinstance(sub, ast.Call) and _call_name(sub.func) in _PAYLOAD_PATH_CALLS:
            return True
    return False


def _is_write_mode(node: ast.Call) -> bool:
    # The mode is the second positional of builtin open(path, mode) but
    # the first of the method form path.open(mode).
    index = 0 if isinstance(node.func, ast.Attribute) else 1
    candidates: list[ast.AST] = list(node.args[index : index + 1])
    candidates.extend(kw.value for kw in node.keywords if kw.arg == "mode")
    for expr in candidates:
        if (
            isinstance(expr, ast.Constant)
            and isinstance(expr.value, str)
            and any(flag in expr.value for flag in ("w", "a", "x", "+"))
        ):
            return True
    return False


#: The one package allowed to read or write the live ingestion WAL.
#: Everybody else observes the tail through ``DataLakeStore.query()``
#: (which folds it in via :class:`repro.storage.live.LiveTailIndex`).
LIVE_OWNER = "repro.storage.live"

#: File-I/O calls that, combined with a tail-WAL path expression,
#: bypass the CRC-framed append/replay protocol.
_TAIL_IO_CALLS = frozenset(
    {"open", "read_bytes", "write_bytes", "read_text", "write_text", "unlink", "replace"}
)

#: Calls that resolve a tail-WAL path; their presence in an I/O call's
#: expression marks the target as live-owned.
_TAIL_PATH_CALLS = frozenset({"wal_path", "live_dir"})


def _mentions_tail_wal(node: ast.AST) -> bool:
    """Whether ``node``'s expression tree involves the live tail WAL:
    a ``tail.wal`` filename literal or a call to the path-resolving
    helpers (``wal_path``, ``live_dir``)."""
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Constant)
            and isinstance(sub.value, str)
            and "tail.wal" in sub.value
        ):
            return True
        if isinstance(sub, ast.Call) and _call_name(sub.func) in _TAIL_PATH_CALLS:
            return True
    return False


def _rule_live_boundary(ctx: _Context):
    if _within(ctx.module, (LIVE_OWNER,)):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node.func)
        if name in _TAIL_IO_CALLS and _mentions_tail_wal(node):
            yield Finding(
                ctx.display_path,
                node.lineno,
                "live-boundary",
                f"direct {name}() on a live tail WAL outside {LIVE_OWNER}; the "
                "CRC-framed WAL protocol (append/replay/seal-trim) has exactly "
                "one home -- go through LiveIngestor or DataLakeStore.query()",
            )


def _rule_manifest_boundary(ctx: _Context):
    if _within(ctx.module, (MANIFEST_OWNER,)):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node.func)
        if name in _PAYLOAD_WRITE_CALLS and _mentions_payload_path(node):
            yield Finding(
                ctx.display_path,
                node.lineno,
                "manifest-boundary",
                f"direct {name}() of a lake payload file outside "
                f"{MANIFEST_OWNER}; mutate lakes through a manifest "
                "transaction (DataLakeStore.write_extract*/delete_extract)",
            )
        elif name == "open" and _is_write_mode(node) and _mentions_payload_path(node):
            yield Finding(
                ctx.display_path,
                node.lineno,
                "manifest-boundary",
                f"open() of a lake payload file for writing outside "
                f"{MANIFEST_OWNER}; mutate lakes through a manifest "
                "transaction (DataLakeStore.write_extract*/delete_extract)",
            )


# --------------------------------------------------------------------- #
# Rule: broad-except
# --------------------------------------------------------------------- #


def _is_broad_exception(expr: ast.AST | None) -> bool:
    if expr is None:
        return True  # bare except:
    if isinstance(expr, ast.Tuple):
        return any(_is_broad_exception(element) for element in expr.elts)
    return _call_name(expr) in ("Exception", "BaseException") or (
        isinstance(expr, ast.Name) and expr.id in ("Exception", "BaseException")
    )


def _only_swallows(body: list[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis
        ):
            continue
        return False
    return True


def _rule_broad_except(ctx: _Context):
    if not _within(ctx.module, BROAD_EXCEPT_PACKAGES):
        return
    for node in ast.walk(ctx.tree):
        if (
            isinstance(node, ast.ExceptHandler)
            and _is_broad_exception(node.type)
            and _only_swallows(node.body)
        ):
            caught = "bare except" if node.type is None else "except Exception"
            yield Finding(
                ctx.display_path,
                node.lineno,
                "broad-except",
                f"{caught} that only swallows -- degradation paths in storage/"
                "serving must re-raise or record what they dropped",
            )


_RULE_FUNCTIONS = {
    "api-boundary": _rule_api_boundary,
    "import-layering": _rule_import_layering,
    "lock-discipline": _rule_lock_discipline,
    "format-invariants": _rule_format_invariants,
    "frozen-dataclass": _rule_frozen_dataclass,
    "broad-except": _rule_broad_except,
    "manifest-boundary": _rule_manifest_boundary,
    "live-boundary": _rule_live_boundary,
}


# --------------------------------------------------------------------- #
# Pragmas
# --------------------------------------------------------------------- #

_PRAGMA_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]*)\]\s*(.*)$")


def _comment_tokens(source: str):
    """Yield ``(line, column, text)`` for every real comment in ``source``.

    Tokenizing (rather than regex over raw lines) keeps pragma-shaped text
    inside docstrings and string literals from being parsed as pragmas.
    """
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.start[1], token.string
    except (tokenize.TokenError, IndentationError):
        return


def _parse_pragmas(source: str, display_path: str):
    """Collect pragmas and the findings their malformations produce."""
    pragmas: list[_Pragma] = []
    bad: list[Finding] = []
    lines = source.splitlines()
    for number, column, comment in _comment_tokens(source):
        match = _PRAGMA_RE.search(comment)
        if match is None:
            continue
        names = [part.strip() for part in match.group(1).split(",") if part.strip()]
        reason = match.group(2).strip()
        unknown = [name for name in names if name not in RULES]
        if not names or unknown:
            bad.append(
                Finding(
                    display_path,
                    number,
                    "bad-pragma",
                    f"pragma names unknown rule(s) {unknown or '(none)'}; "
                    f"known rules: {', '.join(RULES)}",
                )
            )
            continue
        if not reason:
            bad.append(
                Finding(
                    display_path,
                    number,
                    "bad-pragma",
                    "pragma has no reason -- write `# repro: allow[rule] why` so the "
                    "exception is justified in the diff",
                )
            )
            continue
        standalone = lines[number - 1][:column].strip() == ""
        pragmas.append(_Pragma(number, frozenset(names), reason, standalone))
    return pragmas, bad


def _apply_pragmas(
    findings: list[Finding],
    pragmas: list[_Pragma],
    check_unused: bool,
    display_path: str,
) -> list[Finding]:
    by_line: dict[int, list[_Pragma]] = {}
    for pragma in pragmas:
        by_line.setdefault(pragma.line, []).append(pragma)
        if pragma.standalone:
            by_line.setdefault(pragma.line + 1, []).append(pragma)
    kept: list[Finding] = []
    for finding in findings:
        suppressed = False
        for pragma in by_line.get(finding.line, ()):
            if finding.rule in pragma.rules:
                pragma.used = True
                suppressed = True
        if not suppressed:
            kept.append(finding)
    if check_unused:
        for pragma in pragmas:
            if not pragma.used:
                kept.append(
                    Finding(
                        display_path,
                        pragma.line,
                        "unused-pragma",
                        f"pragma allow[{', '.join(sorted(pragma.rules))}] suppresses "
                        "nothing; remove it",
                    )
                )
    return kept


# --------------------------------------------------------------------- #
# Engine
# --------------------------------------------------------------------- #


def check_file(path: Path, select: frozenset[str] | None = None) -> list[Finding]:
    """Lint one file; returns its findings (suppressions applied)."""
    display = _display_path(path)
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError, ValueError) as exc:
        line = getattr(exc, "lineno", None) or 1
        return [Finding(display, line, "parse-error", str(exc))]
    ctx = _Context(path=path, display_path=display, module=module_name(path), tree=tree)
    selected = frozenset(RULES) if select is None else select
    findings: list[Finding] = []
    for rule in RULES:
        if rule in selected:
            findings.extend(_RULE_FUNCTIONS[rule](ctx))
    pragmas, bad = _parse_pragmas(source, display)
    # Unused-pragma detection only makes sense when every rule ran.
    findings = _apply_pragmas(findings, pragmas, selected == frozenset(RULES), display)
    findings.extend(bad)
    findings.sort(key=lambda f: (f.line, f.rule))
    return findings


def _display_path(path: Path) -> str:
    try:
        return os.path.relpath(path)
    except ValueError:
        return str(path)


def iter_python_files(paths: list[Path]):
    """Expand files/directories into the ``.py`` files to lint."""
    for path in paths:
        if path.is_dir():
            for file in sorted(path.rglob("*.py")):
                if "__pycache__" not in file.parts:
                    yield file
        else:
            yield path


def run_lint(paths: list[Path], select: frozenset[str] | None = None) -> list[Finding]:
    """Lint ``paths`` (files or trees); returns all findings, sorted."""
    findings: list[Finding] = []
    for file in iter_python_files(paths):
        findings.extend(check_file(file, select))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="Repo-specific AST invariant linter (see repro/devtools/lint.py).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rule ids and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES + META_RULES:
            print(f"{rule:20} {RULE_DESCRIPTIONS[rule]}")
        return 0

    select: frozenset[str] | None = None
    if args.select:
        names = frozenset(part.strip() for part in args.select.split(",") if part.strip())
        unknown = names - frozenset(RULES)
        if unknown:
            print(
                f"error: unknown rule(s) {', '.join(sorted(unknown))}; "
                f"known: {', '.join(RULES)}",
                file=sys.stderr,
            )
            return 2
        select = names

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"error: no such path(s): {', '.join(str(p) for p in missing)}",
            file=sys.stderr,
        )
        return 2

    findings = run_lint(paths, select)
    for finding in findings:
        print(finding.render())
    if findings:
        count = len(findings)
        print(
            f"{count} invariant violation{'s' if count != 1 else ''} "
            "(suppress only with `# repro: allow[rule] reason`)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
