"""Repo-specific developer tooling.

:mod:`repro.devtools.lint` is an AST-based invariant linter: it machine-
checks the conventions the codebase grew by review (API boundaries,
import layering, lock discipline, ``.sgx`` format invariants, frozen-
dataclass discipline, typed-error discipline) and fails CI when one is
violated -- the same way the bench-baseline job fails on a perf
regression.

The package is deliberately **stdlib-only** and imports nothing from the
rest of :mod:`repro`: the linter must be able to parse and judge a tree
whose runtime packages are broken, and must never itself create an
import-layering edge.  Run it as::

    python -m repro.devtools.lint src
"""

__all__ = ["Finding", "run_lint"]


def __getattr__(name):
    # Lazy re-export: an eager `from repro.devtools.lint import ...` here
    # would make `python -m repro.devtools.lint` execute the module twice
    # (runpy warns about exactly this).
    if name in __all__:
        from repro.devtools import lint

        return getattr(lint, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
