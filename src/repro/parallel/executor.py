"""Serial, threaded and multi-process partitioned execution.

The executor mirrors how the paper uses Dask: the input is partitioned per
server, a pure function is mapped over partitions, and the results are
concatenated.  The serial backend is the baseline the paper compares
against in Figure 12(b); the process backend is the Dask-equivalent
parallel path.
"""

from __future__ import annotations

import enum
import os
import time
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import TypeVar

T = TypeVar("T")
R = TypeVar("R")


class ExecutionBackend(enum.Enum):
    """How partitions are executed."""

    SERIAL = "serial"
    THREADS = "threads"
    PROCESSES = "processes"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class ExecutionReport:
    """Timing summary of one :meth:`PartitionedExecutor.map` call."""

    backend: ExecutionBackend
    n_partitions: int
    n_workers: int
    elapsed_seconds: float


class PartitionedExecutor:
    """Maps a function over partitions using the configured backend.

    Parameters
    ----------
    backend:
        ``SERIAL`` runs partitions in a plain loop, ``THREADS`` uses a
        thread pool (adequate for numpy-heavy work that releases the GIL),
        ``PROCESSES`` uses a process pool (the closest analogue of Dask's
        multi-worker scheduler; the mapped function and its arguments must
        be picklable).
    n_workers:
        Worker count for the parallel backends; defaults to the CPU count.
    """

    def __init__(
        self,
        backend: ExecutionBackend | str = ExecutionBackend.SERIAL,
        n_workers: int | None = None,
    ) -> None:
        if isinstance(backend, str):
            backend = ExecutionBackend(backend)
        self._backend = backend
        cpu_count = os.cpu_count() or 1
        self._n_workers = max(1, n_workers if n_workers is not None else cpu_count)
        self._last_report: ExecutionReport | None = None

    @property
    def backend(self) -> ExecutionBackend:
        return self._backend

    @property
    def n_workers(self) -> int:
        return self._n_workers

    @property
    def last_report(self) -> ExecutionReport | None:
        """Timing report of the most recent :meth:`map` call."""
        return self._last_report

    def map(self, fn: Callable[[T], R], partitions: Sequence[T]) -> list[R]:
        """Apply ``fn`` to every partition and return results in order."""
        start = time.perf_counter()
        if not partitions:
            results: list[R] = []
        elif self._backend is ExecutionBackend.SERIAL or len(partitions) == 1:
            results = [fn(partition) for partition in partitions]
        elif self._backend is ExecutionBackend.THREADS:
            with ThreadPoolExecutor(max_workers=self._n_workers) as pool:
                results = list(pool.map(fn, partitions))
        else:
            with ProcessPoolExecutor(max_workers=self._n_workers) as pool:
                results = list(pool.map(fn, partitions))
        elapsed = time.perf_counter() - start
        self._last_report = ExecutionReport(
            backend=self._backend,
            n_partitions=len(partitions),
            n_workers=self._n_workers if self._backend is not ExecutionBackend.SERIAL else 1,
            elapsed_seconds=elapsed,
        )
        return results

    def map_flat(self, fn: Callable[[T], Sequence[R]], partitions: Sequence[T]) -> list[R]:
        """Like :meth:`map` but concatenates per-partition result sequences."""
        nested = self.map(fn, partitions)
        flat: list[R] = []
        for chunk in nested:
            flat.extend(chunk)
        return flat

    @classmethod
    def serial(cls) -> "PartitionedExecutor":
        """Convenience constructor for the single-threaded baseline."""
        return cls(ExecutionBackend.SERIAL)

    @classmethod
    def parallel(cls, n_workers: int | None = None) -> "PartitionedExecutor":
        """Convenience constructor for the process-pool backend."""
        return cls(ExecutionBackend.PROCESSES, n_workers=n_workers)
