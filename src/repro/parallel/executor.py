"""Serial, threaded and multi-process partitioned execution.

The executor mirrors how the paper uses Dask: the input is partitioned per
server, a pure function is mapped over partitions, and the results are
concatenated.  The serial backend is the baseline the paper compares
against in Figure 12(b); the process backend is the Dask-equivalent
parallel path.

Worker pools are created lazily on first use and *reused* across ``map``
calls, so an executor shared by many pipeline runs (the fleet orchestrator
does exactly this) pays the pool start-up cost once instead of per call.
Executors are context managers; ``close()`` releases the pool.
"""

from __future__ import annotations

import enum
import os
import time
from collections.abc import Callable, Sequence
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from types import TracebackType
from typing import TypeVar

T = TypeVar("T")
R = TypeVar("R")


def default_worker_count() -> int:
    """Best available worker-count default for this host.

    Prefers the scheduling affinity (the CPUs this process may actually
    use, which can be fewer than the machine has in containers), falls back
    to ``os.cpu_count()``, and finally to 1 when the platform reports
    nothing at all (``os.cpu_count()`` may return ``None``).
    """
    try:
        affinity = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        affinity = 0
    if affinity > 0:
        return affinity
    return os.cpu_count() or 1


#: Cap on fleet-sharding workers: per-unit tasks ship only a config and a
#: lake root, so beyond this many workers pool start-up and task-dispatch
#: overhead outweigh the extra parallelism for realistic unit counts.
MAX_FLEET_WORKERS = 8


def recommended_fleet_workers(n_units: int, available: int | None = None) -> int:
    """Worker count for sharding ``n_units`` fleet work units.

    The heuristic the fleet orchestrator, CLI and benchmarks share (the
    ROADMAP open item asked for it to be explicit and tested): never more
    workers than units (surplus workers only add pool start-up cost),
    never more than the usable CPUs (``available`` defaults to
    :func:`default_worker_count`, which respects container affinity), and
    never more than :data:`MAX_FLEET_WORKERS`.  A result of 1 means
    parallel sharding cannot win on this host/workload -- callers gate
    parallel-speedup assertions on it.
    """
    if n_units < 1:
        return 1
    cores = available if available is not None else default_worker_count()
    return max(1, min(n_units, cores, MAX_FLEET_WORKERS))


class ExecutionBackend(enum.Enum):
    """How partitions are executed."""

    SERIAL = "serial"
    THREADS = "threads"
    PROCESSES = "processes"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class ExecutionReport:
    """Timing summary of one :meth:`PartitionedExecutor.map` call."""

    backend: ExecutionBackend
    n_partitions: int
    n_workers: int
    elapsed_seconds: float


class PartitionedExecutor:
    """Maps a function over partitions using the configured backend.

    Parameters
    ----------
    backend:
        ``SERIAL`` runs partitions in a plain loop, ``THREADS`` uses a
        thread pool (adequate for numpy-heavy work that releases the GIL),
        ``PROCESSES`` uses a process pool (the closest analogue of Dask's
        multi-worker scheduler; the mapped function and its arguments must
        be picklable).
    n_workers:
        Worker count for the parallel backends; defaults to the CPU count
        (affinity-aware, and 1 when the platform reports no CPU count).

    The parallel backends keep one worker pool alive across ``map`` calls.
    Use the executor as a context manager, or call :meth:`close`, to shut
    the pool down deterministically; an unclosed pool is reclaimed at
    interpreter exit.
    """

    def __init__(
        self,
        backend: ExecutionBackend | str = ExecutionBackend.SERIAL,
        n_workers: int | None = None,
    ) -> None:
        if isinstance(backend, str):
            backend = ExecutionBackend(backend)
        self._backend = backend
        self._n_workers = max(1, n_workers if n_workers is not None else default_worker_count())
        self._last_report: ExecutionReport | None = None
        self._pool: Executor | None = None
        self._closed = False

    @property
    def backend(self) -> ExecutionBackend:
        return self._backend

    @property
    def n_workers(self) -> int:
        return self._n_workers

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    @property
    def last_report(self) -> ExecutionReport | None:
        """Timing report of the most recent :meth:`map` call."""
        return self._last_report

    # ------------------------------------------------------------------ #
    # Pool lifecycle
    # ------------------------------------------------------------------ #

    def _ensure_pool(self) -> Executor:
        """Create the backend pool on first use; reuse it afterwards."""
        if self._pool is None:
            if self._backend is ExecutionBackend.THREADS:
                self._pool = ThreadPoolExecutor(max_workers=self._n_workers)
            else:
                self._pool = ProcessPoolExecutor(max_workers=self._n_workers)
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._closed = True

    def __enter__(self) -> "PartitionedExecutor":
        if self._closed:
            raise RuntimeError("executor is closed")
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Mapping
    # ------------------------------------------------------------------ #

    def map(self, fn: Callable[[T], R], partitions: Sequence[T]) -> list[R]:
        """Apply ``fn`` to every partition and return results in order."""
        if self._closed:
            raise RuntimeError("cannot map on a closed executor")
        start = time.perf_counter()
        if not partitions:
            results: list[R] = []
        else:
            run_serially = self._backend is ExecutionBackend.SERIAL or len(partitions) == 1
            results = (
                [fn(partition) for partition in partitions]
                if run_serially
                else list(self._ensure_pool().map(fn, partitions))
            )
        elapsed = time.perf_counter() - start
        self._last_report = ExecutionReport(
            backend=self._backend,
            n_partitions=len(partitions),
            n_workers=self._n_workers if self._backend is not ExecutionBackend.SERIAL else 1,
            elapsed_seconds=elapsed,
        )
        return results

    def map_flat(self, fn: Callable[[T], Sequence[R]], partitions: Sequence[T]) -> list[R]:
        """Like :meth:`map` but concatenates per-partition result sequences."""
        nested = self.map(fn, partitions)
        flat: list[R] = []
        for chunk in nested:
            flat.extend(chunk)
        return flat

    @classmethod
    def serial(cls) -> "PartitionedExecutor":
        """Convenience constructor for the single-threaded baseline."""
        return cls(ExecutionBackend.SERIAL)

    @classmethod
    def parallel(cls, n_workers: int | None = None) -> "PartitionedExecutor":
        """Convenience constructor for the process-pool backend."""
        return cls(ExecutionBackend.PROCESSES, n_workers=n_workers)
