"""Helpers for splitting work into balanced partitions."""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import TypeVar

T = TypeVar("T")
K = TypeVar("K")
V = TypeVar("V")


def chunk_evenly(n_items: int, n_chunks: int) -> list[tuple[int, int]]:
    """Return ``[start, end)`` index ranges splitting ``n_items`` into at most
    ``n_chunks`` contiguous, nearly equal chunks.

    The first ``n_items % n_chunks`` chunks get one extra item, matching the
    behaviour of ``numpy.array_split``.
    """
    if n_chunks <= 0:
        raise ValueError("n_chunks must be positive")
    if n_items < 0:
        raise ValueError("n_items must be non-negative")
    n_chunks = min(n_chunks, n_items) if n_items else 0
    ranges: list[tuple[int, int]] = []
    start = 0
    for index in range(n_chunks):
        size = n_items // n_chunks + (1 if index < n_items % n_chunks else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


def partition_list(items: Sequence[T], n_partitions: int) -> list[list[T]]:
    """Split a sequence into at most ``n_partitions`` balanced lists."""
    return [list(items[start:end]) for start, end in chunk_evenly(len(items), n_partitions)]


def partition_dict(mapping: Mapping[K, V], n_partitions: int) -> list[dict[K, V]]:
    """Split a mapping into at most ``n_partitions`` balanced sub-mappings.

    Iteration order of the input mapping is preserved within and across
    partitions, so results recombine deterministically.
    """
    keys = list(mapping)
    partitions = partition_list(keys, n_partitions)
    return [{key: mapping[key] for key in part} for part in partitions]
