"""Partitioned parallel execution (the reproduction's Dask substitute).

The paper partitions input data per server and processes servers in
parallel with Dask to keep per-region pipeline runs within an acceptable
computational delay (Sections 2.1, 5.3.1 and 6.1).  This package provides
the same capability with the standard library: a
:class:`~repro.parallel.executor.PartitionedExecutor` that maps a function
over partitions either serially, with a thread pool or with a process pool.
"""

from repro.parallel.executor import ExecutionBackend, PartitionedExecutor
from repro.parallel.partition import chunk_evenly, partition_dict, partition_list

__all__ = [
    "ExecutionBackend",
    "PartitionedExecutor",
    "chunk_evenly",
    "partition_list",
    "partition_dict",
]
