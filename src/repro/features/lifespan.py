"""Server lifespan features (Definition 3).

A server is *long-lived* when it has existed for more than three weeks;
otherwise it is *short-lived* and excluded from prediction, because it has
not accumulated enough history to decide whether it is predictable.
"""

from __future__ import annotations

from repro.timeseries.calendar import MINUTES_PER_DAY
from repro.timeseries.series import LoadSeries

#: Definition 3: more than three weeks of existence makes a server long-lived.
DEFAULT_LIFESPAN_THRESHOLD_DAYS = 21


def lifespan_days(series: LoadSeries) -> float:
    """Observed lifespan of a server in days (span of its telemetry)."""
    if series.is_empty:
        return 0.0
    return series.span_minutes / MINUTES_PER_DAY


def is_long_lived(
    series: LoadSeries,
    threshold_days: int = DEFAULT_LIFESPAN_THRESHOLD_DAYS,
) -> bool:
    """Definition 3: the server existed for more than ``threshold_days`` days."""
    return lifespan_days(series) > threshold_days


def observed_day_range(series: LoadSeries) -> tuple[int, int]:
    """Return the first and last zero-based day indices with telemetry.

    Returns ``(-1, -1)`` for an empty series.
    """
    days = series.days()
    if not days:
        return -1, -1
    return days[0], days[-1]
