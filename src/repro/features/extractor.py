"""Feature Extraction Module (Section 2.2).

Produces a per-server feature record combining lifespan, load statistics,
stability, pattern strengths and the assigned class.  Downstream, the model
selection logic uses the class (persistent forecast for stable/pattern
servers, ML models for pattern-free servers, Section 5.2) and the impact
analysis uses the busy/capacity flags (Figure 13).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.features.classification import ServerClassLabel, classify_server
from repro.features.lifespan import lifespan_days
from repro.features.patterns import pattern_strength
from repro.features.stability import stability_bucket_ratio
from repro.metrics.bucket_ratio import (
    DEFAULT_ACCURACY_THRESHOLD,
    DEFAULT_ERROR_BOUND,
    ErrorBound,
)
from repro.timeseries.frame import LoadFrame, ServerMetadata
from repro.timeseries.series import LoadSeries

#: Load percentage above which a server counts as "busy" (Section 6.2).
BUSY_LOAD_THRESHOLD = 60.0

#: Load percentage treated as "reaching capacity" for Figure 13(b).
CAPACITY_THRESHOLD = 99.0


@dataclass(frozen=True)
class ServerFeatures:
    """One server's extracted features."""

    server_id: str
    region: str
    engine: str
    lifespan_days: float
    mean_load: float
    std_load: float
    max_load: float
    stability_ratio: float
    daily_pattern_strength: float
    weekly_pattern_strength: float
    label: ServerClassLabel
    is_busy: bool
    reaches_capacity: bool
    backup_duration_minutes: int

    def as_dict(self) -> dict[str, object]:
        return {
            "server_id": self.server_id,
            "region": self.region,
            "engine": self.engine,
            "lifespan_days": self.lifespan_days,
            "mean_load": self.mean_load,
            "std_load": self.std_load,
            "max_load": self.max_load,
            "stability_ratio": self.stability_ratio,
            "daily_pattern_strength": self.daily_pattern_strength,
            "weekly_pattern_strength": self.weekly_pattern_strength,
            "label": self.label.value,
            "is_busy": self.is_busy,
            "reaches_capacity": self.reaches_capacity,
            "backup_duration_minutes": self.backup_duration_minutes,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "ServerFeatures":
        """Inverse of :meth:`as_dict` (used by the artifact cache)."""
        return cls(
            server_id=str(payload["server_id"]),
            region=str(payload["region"]),
            engine=str(payload["engine"]),
            lifespan_days=float(payload["lifespan_days"]),
            mean_load=float(payload["mean_load"]),
            std_load=float(payload["std_load"]),
            max_load=float(payload["max_load"]),
            stability_ratio=float(payload["stability_ratio"]),
            daily_pattern_strength=float(payload["daily_pattern_strength"]),
            weekly_pattern_strength=float(payload["weekly_pattern_strength"]),
            label=ServerClassLabel(payload["label"]),
            is_busy=bool(payload["is_busy"]),
            reaches_capacity=bool(payload["reaches_capacity"]),
            backup_duration_minutes=int(payload["backup_duration_minutes"]),
        )


class FeatureExtractionModule:
    """Extracts :class:`ServerFeatures` for every server of a frame."""

    def __init__(
        self,
        bound: ErrorBound = DEFAULT_ERROR_BOUND,
        accuracy_threshold: float = DEFAULT_ACCURACY_THRESHOLD,
        busy_threshold: float = BUSY_LOAD_THRESHOLD,
        capacity_threshold: float = CAPACITY_THRESHOLD,
    ) -> None:
        self._bound = bound
        self._threshold = accuracy_threshold
        self._busy_threshold = busy_threshold
        self._capacity_threshold = capacity_threshold

    def extract_server(self, metadata: ServerMetadata, series: LoadSeries) -> ServerFeatures:
        """Extract features for one server."""
        label = classify_server(series, self._bound, self._threshold)
        max_load = series.maximum() if not series.is_empty else 0.0
        return ServerFeatures(
            server_id=metadata.server_id,
            region=metadata.region,
            engine=metadata.engine,
            lifespan_days=lifespan_days(series),
            mean_load=series.mean() if not series.is_empty else 0.0,
            std_load=series.std() if not series.is_empty else 0.0,
            max_load=max_load,
            stability_ratio=stability_bucket_ratio(series, self._bound),
            daily_pattern_strength=pattern_strength(series, 1, self._bound),
            weekly_pattern_strength=pattern_strength(series, 7, self._bound),
            label=label,
            is_busy=max_load > self._busy_threshold,
            reaches_capacity=max_load >= self._capacity_threshold,
            backup_duration_minutes=metadata.backup_duration_minutes,
        )

    def extract_frame(self, frame: LoadFrame) -> dict[str, ServerFeatures]:
        """Extract features for every server of ``frame``."""
        return {
            server_id: self.extract_server(metadata, series)
            for server_id, metadata, series in frame.items()
        }

    def capacity_histogram(
        self, features: dict[str, ServerFeatures], bin_edges: tuple[float, ...] = (20, 40, 60, 80, 99, 100.1)
    ) -> dict[str, float]:
        """Percentage of servers per maximal CPU load bucket (Figure 13(b))."""
        if not features:
            return {}
        counts = [0] * len(bin_edges)
        for feature in features.values():
            placed = False
            for index, edge in enumerate(bin_edges):
                if feature.max_load < edge:
                    counts[index] += 1
                    placed = True
                    break
            if not placed:
                counts[-1] += 1
        labels = []
        previous = 0.0
        for edge in bin_edges:
            labels.append(f"{previous:g}-{min(edge, 100):g}%")
            previous = edge
        total = len(features)
        return {label: 100.0 * count / total for label, count in zip(labels, counts, strict=True)}
