"""Feature extraction and server classification (Sections 2.2 and 3.2).

* :mod:`~repro.features.lifespan` -- short-lived vs. long-lived servers
  (Definition 3).
* :mod:`~repro.features.stability` -- stable servers (Definition 4).
* :mod:`~repro.features.patterns` -- daily and weekly patterns
  (Definitions 5 and 6).
* :mod:`~repro.features.classification` -- the full classifier behind
  Figure 3, assigning every server to exactly one class.
* :mod:`~repro.features.extractor` -- the pipeline's Feature Extraction
  Module, producing a feature record per server.
"""

from repro.features.classification import (
    ClassificationResult,
    ServerClassLabel,
    classify_frame,
    classify_server,
)
from repro.features.extractor import FeatureExtractionModule, ServerFeatures
from repro.features.lifespan import DEFAULT_LIFESPAN_THRESHOLD_DAYS, is_long_lived, lifespan_days
from repro.features.patterns import has_daily_pattern, has_weekly_pattern
from repro.features.stability import is_stable

__all__ = [
    "lifespan_days",
    "is_long_lived",
    "DEFAULT_LIFESPAN_THRESHOLD_DAYS",
    "is_stable",
    "has_daily_pattern",
    "has_weekly_pattern",
    "ServerClassLabel",
    "ClassificationResult",
    "classify_server",
    "classify_frame",
    "FeatureExtractionModule",
    "ServerFeatures",
]
