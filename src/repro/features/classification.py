"""Server classification (Section 3.2, Figure 3).

Every server is assigned to exactly one class:

* ``short_lived`` -- existed for at most three weeks (Definition 3),
* ``stable`` -- long-lived and accurately predicted by its average load
  (Definition 4),
* ``daily`` -- long-lived, unstable, follows a daily pattern (Definition 5),
* ``weekly`` -- long-lived, unstable, follows a weekly pattern
  (Definition 6),
* ``no_pattern`` -- long-lived, unstable, no recognisable pattern.

The paper reports 42.1% short-lived, 53.5% stable, 0.2% with a pattern and
4.2% without; :func:`classify_frame` produces the equivalent breakdown for
a synthetic fleet.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable
from dataclasses import dataclass

from repro.features.lifespan import DEFAULT_LIFESPAN_THRESHOLD_DAYS, is_long_lived, lifespan_days
from repro.features.patterns import has_daily_pattern, has_weekly_pattern
from repro.features.stability import is_stable
from repro.metrics.bucket_ratio import (
    DEFAULT_ACCURACY_THRESHOLD,
    DEFAULT_ERROR_BOUND,
    ErrorBound,
)
from repro.timeseries.frame import LoadFrame
from repro.timeseries.series import LoadSeries


class ServerClassLabel(enum.Enum):
    """Classes a server can be assigned to by the classifier."""

    SHORT_LIVED = "short_lived"
    STABLE = "stable"
    DAILY = "daily"
    WEEKLY = "weekly"
    NO_PATTERN = "no_pattern"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Classes that Section 3.2 considers "expected to be predictable".
PREDICTABLE_LABELS = frozenset(
    {ServerClassLabel.STABLE, ServerClassLabel.DAILY, ServerClassLabel.WEEKLY}
)


@dataclass(frozen=True)
class ClassificationResult:
    """Breakdown of a fleet into classes (the Figure 3 percentages)."""

    labels: dict[str, ServerClassLabel]

    def count(self, label: ServerClassLabel) -> int:
        return sum(1 for assigned in self.labels.values() if assigned is label)

    def percentage(self, label: ServerClassLabel) -> float:
        if not self.labels:
            return float("nan")
        return 100.0 * self.count(label) / len(self.labels)

    def percentages(self) -> dict[str, float]:
        """Return the Figure 3 breakdown keyed by class name."""
        return {label.value: self.percentage(label) for label in ServerClassLabel}

    def servers_with(self, label: ServerClassLabel) -> list[str]:
        return [server_id for server_id, assigned in self.labels.items() if assigned is label]

    def predictable_percentage(self) -> float:
        """Percentage of servers expected to be predictable (stable or pattern)."""
        if not self.labels:
            return float("nan")
        predictable = sum(
            1 for assigned in self.labels.values() if assigned in PREDICTABLE_LABELS
        )
        return 100.0 * predictable / len(self.labels)

    def as_dict(self) -> dict[str, object]:
        return {
            "percentages": self.percentages(),
            "predictable_percentage": self.predictable_percentage(),
            "n_servers": len(self.labels),
        }


def classify_server(
    series: LoadSeries,
    bound: ErrorBound = DEFAULT_ERROR_BOUND,
    threshold: float = DEFAULT_ACCURACY_THRESHOLD,
    lifespan_threshold_days: int = DEFAULT_LIFESPAN_THRESHOLD_DAYS,
) -> ServerClassLabel:
    """Assign one server to its class following Section 3.2's decision order."""
    if not is_long_lived(series, lifespan_threshold_days):
        return ServerClassLabel.SHORT_LIVED
    if is_stable(series, bound, threshold):
        return ServerClassLabel.STABLE
    if has_daily_pattern(series, bound, threshold):
        return ServerClassLabel.DAILY
    if has_weekly_pattern(series, bound, threshold):
        return ServerClassLabel.WEEKLY
    return ServerClassLabel.NO_PATTERN


def classify_frame(
    frame: LoadFrame,
    bound: ErrorBound = DEFAULT_ERROR_BOUND,
    threshold: float = DEFAULT_ACCURACY_THRESHOLD,
    lifespan_threshold_days: int = DEFAULT_LIFESPAN_THRESHOLD_DAYS,
    server_ids: Iterable[str] | None = None,
) -> ClassificationResult:
    """Classify every server of a frame (or a subset of it)."""
    ids = list(server_ids) if server_ids is not None else frame.server_ids()
    labels = {
        server_id: classify_server(
            frame.series(server_id), bound, threshold, lifespan_threshold_days
        )
        for server_id in ids
    }
    return ClassificationResult(labels=labels)
