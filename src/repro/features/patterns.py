"""Daily and weekly activity patterns (Definitions 5 and 6).

A server has a *daily* pattern on day ``d`` when its load on ``d`` is
accurately predicted by its load on day ``d - 1``; it has a daily pattern
over an interval when every day in the interval conforms.  A *weekly*
pattern is defined the same way against day ``d - 7``, and only applies to
servers that do not already have a daily pattern.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.bucket_ratio import (
    DEFAULT_ACCURACY_THRESHOLD,
    DEFAULT_ERROR_BOUND,
    ErrorBound,
    bucket_ratio,
)
from repro.timeseries.calendar import MINUTES_PER_DAY, MINUTES_PER_WEEK
from repro.timeseries.series import LoadSeries


def day_over_day_bucket_ratio(
    series: LoadSeries,
    day: int,
    lag_days: int,
    bound: ErrorBound = DEFAULT_ERROR_BOUND,
) -> float:
    """Bucket ratio of day ``day`` predicted by day ``day - lag_days``.

    The reference day's load is shifted forward so the two days align on
    the same timestamps, exactly as persistent forecast would predict.
    Returns ``nan`` when either day lacks samples.
    """
    if lag_days <= 0:
        raise ValueError("lag_days must be positive")
    target = series.day(day)
    reference = series.day(day - lag_days)
    if target.is_empty or reference.is_empty:
        return float("nan")
    prediction = reference.shift(lag_days * MINUTES_PER_DAY)
    return bucket_ratio(prediction, target, bound)


def conforms_on_day(
    series: LoadSeries,
    day: int,
    lag_days: int,
    bound: ErrorBound = DEFAULT_ERROR_BOUND,
    threshold: float = DEFAULT_ACCURACY_THRESHOLD,
) -> bool:
    """Whether day ``day`` is accurately predicted by day ``day - lag_days``."""
    ratio = day_over_day_bucket_ratio(series, day, lag_days, bound)
    if np.isnan(ratio):
        return False
    return ratio >= threshold


def _evaluable_days(series: LoadSeries, lag_days: int) -> list[int]:
    """Days that have both their own samples and a reference day available."""
    days = set(series.days())
    return sorted(day for day in days if (day - lag_days) in days)


def has_daily_pattern(
    series: LoadSeries,
    bound: ErrorBound = DEFAULT_ERROR_BOUND,
    threshold: float = DEFAULT_ACCURACY_THRESHOLD,
    min_days: int = 6,
) -> bool:
    """Definition 5 over the whole series: every evaluable day is predicted
    by its previous day.

    ``min_days`` guards against declaring a pattern from one or two lucky
    day pairs.
    """
    days = _evaluable_days(series, 1)
    if len(days) < min_days:
        return False
    return all(conforms_on_day(series, day, 1, bound, threshold) for day in days)


def has_weekly_pattern(
    series: LoadSeries,
    bound: ErrorBound = DEFAULT_ERROR_BOUND,
    threshold: float = DEFAULT_ACCURACY_THRESHOLD,
    min_days: int = 6,
) -> bool:
    """Definition 6 over the whole series: the server does not have a daily
    pattern, and every evaluable day is predicted by the same weekday one
    week earlier.
    """
    if has_daily_pattern(series, bound, threshold, min_days):
        return False
    days = _evaluable_days(series, 7)
    if len(days) < min_days:
        return False
    return all(conforms_on_day(series, day, 7, bound, threshold) for day in days)


def pattern_strength(
    series: LoadSeries,
    lag_days: int,
    bound: ErrorBound = DEFAULT_ERROR_BOUND,
) -> float:
    """Average day-over-day bucket ratio at the given lag.

    A softer, continuous companion to the boolean pattern predicates, used
    as a model-selection feature and in the ablation benchmarks.
    """
    days = _evaluable_days(series, lag_days)
    if not days:
        return float("nan")
    ratios = [day_over_day_bucket_ratio(series, day, lag_days, bound) for day in days]
    ratios = [ratio for ratio in ratios if not np.isnan(ratio)]
    if not ratios:
        return float("nan")
    return float(np.mean(ratios))
