"""Stable servers (Definition 4) and stable databases (Definition 10).

A long-lived server is *stable* during a time interval when its load is
accurately predicted (bucket ratio >= 90% within the +10/-5 bound) by its
*average* load over that interval.  Appendix A uses a different rule for
SQL databases: a database is stable when its variation does not exceed one
standard deviation over the last three days.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.bucket_ratio import (
    DEFAULT_ACCURACY_THRESHOLD,
    DEFAULT_ERROR_BOUND,
    ErrorBound,
    bucket_ratio,
)
from repro.timeseries.calendar import MINUTES_PER_DAY
from repro.timeseries.series import LoadSeries


def stability_bucket_ratio(
    series: LoadSeries,
    bound: ErrorBound = DEFAULT_ERROR_BOUND,
) -> float:
    """Bucket ratio of the constant-mean prediction against the series."""
    if series.is_empty:
        return float("nan")
    mean_prediction = np.full(len(series), series.mean())
    return bucket_ratio(mean_prediction, series.values, bound)


def is_stable(
    series: LoadSeries,
    bound: ErrorBound = DEFAULT_ERROR_BOUND,
    threshold: float = DEFAULT_ACCURACY_THRESHOLD,
) -> bool:
    """Definition 4: the interval average accurately predicts the load."""
    ratio = stability_bucket_ratio(series, bound)
    if np.isnan(ratio):
        return False
    return ratio >= threshold


def is_stable_database(
    series: LoadSeries,
    evaluation_days: int = 3,
    n_std: float = 1.0,
) -> bool:
    """Definition 10 (Appendix A): variation over the last ``evaluation_days``
    days does not exceed ``n_std`` standard deviations of the full series.

    The variation of the recent window is measured as the maximum absolute
    deviation of recent samples from the overall series mean.
    """
    if series.is_empty:
        return False
    recent = series.last_days(evaluation_days)
    if recent.is_empty:
        return False
    overall_std = series.std()
    if overall_std == 0.0:
        return True
    deviation = np.max(np.abs(recent.values - series.mean()))
    return bool(deviation <= n_std * overall_std)
