"""Synthetic telemetry substrate.

The paper's experiments run on proprietary Azure production telemetry:
average user CPU percentage per five minutes for tens of thousands of
PostgreSQL and MySQL servers, per region, over several weeks.  This package
replaces that data source with a calibrated synthetic generator:

* :mod:`~repro.telemetry.fleet` -- fleet and region specifications with the
  workload-class mix reported in the paper's Figure 3 (and the SQL-database
  mix of Appendix A).
* :mod:`~repro.telemetry.generator` -- per-class trace generators (stable,
  daily, weekly, unstable, short-lived) and the fleet-level
  :class:`WorkloadGenerator` that produces :class:`~repro.timeseries.frame.LoadFrame`
  objects.
* :mod:`~repro.telemetry.raw_store` -- a simulated raw telemetry store with
  minute-granularity rows, jitter, duplicates and gaps.
* :mod:`~repro.telemetry.extraction` -- the recurring load-extraction query
  that aggregates raw telemetry to the five-minute grid and writes weekly
  per-region extracts to the data lake (Section 2.2).
"""

from repro.telemetry.fleet import (
    FLEET_CLASS_MIX,
    SQL_STABLE_FRACTION,
    FleetSpec,
    RegionSpec,
    ServerClass,
    default_fleet_spec,
    extract_spec,
    sql_database_fleet_spec,
)
from repro.telemetry.generator import WorkloadGenerator
from repro.telemetry.extraction import LoadExtractionQuery
from repro.telemetry.raw_store import RawTelemetryStore

__all__ = [
    "ServerClass",
    "RegionSpec",
    "FleetSpec",
    "FLEET_CLASS_MIX",
    "SQL_STABLE_FRACTION",
    "default_fleet_spec",
    "extract_spec",
    "sql_database_fleet_spec",
    "WorkloadGenerator",
    "RawTelemetryStore",
    "LoadExtractionQuery",
]
