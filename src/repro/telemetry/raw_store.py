"""Simulated raw production telemetry store.

In production the load-extraction query runs against petabyte-scale raw
telemetry (Section 6.1).  Here the raw store holds per-minute rows
``(server_id, timestamp, cpu_percent)`` with the messiness real telemetry
has -- duplicated rows, missing minutes and out-of-order arrival -- so that
the extraction query has real work to do (bucketing, deduplication and
aggregation to the five-minute grid).
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.timeseries.frame import LoadFrame, ServerMetadata
from repro.timeseries.series import LoadSeries


class RawTelemetryStore:
    """Holds raw minute-granularity telemetry rows per server and region."""

    def __init__(self) -> None:
        self._rows: dict[str, dict[str, tuple[np.ndarray, np.ndarray]]] = {}
        self._metadata: dict[str, ServerMetadata] = {}

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #

    def ingest_rows(
        self,
        region: str,
        server_id: str,
        timestamps: np.ndarray,
        values: np.ndarray,
        metadata: ServerMetadata | None = None,
    ) -> None:
        """Append raw rows for a server (rows may be unordered or duplicated)."""
        ts = np.asarray(timestamps, dtype=np.int64)
        vs = np.asarray(values, dtype=np.float64)
        if ts.shape != vs.shape:
            raise ValueError("timestamps and values must have the same length")
        region_rows = self._rows.setdefault(region, {})
        if server_id in region_rows:
            old_ts, old_vs = region_rows[server_id]
            ts = np.concatenate([old_ts, ts])
            vs = np.concatenate([old_vs, vs])
        region_rows[server_id] = (ts, vs)
        if metadata is not None:
            self._metadata[server_id] = metadata

    def ingest_frame(
        self,
        frame: LoadFrame,
        noise_rng: np.random.Generator | None = None,
        drop_fraction: float = 0.01,
        duplicate_fraction: float = 0.005,
    ) -> None:
        """Explode a clean frame into messy raw minute-granularity rows.

        Each five-minute sample is expanded into per-minute rows with small
        jitter; a fraction of rows is dropped and another fraction
        duplicated, simulating at-least-once telemetry delivery.
        """
        rng = noise_rng if noise_rng is not None else np.random.default_rng(1234)
        interval = frame.interval_minutes
        for server_id, metadata, series in frame.items():
            if series.is_empty:
                self.ingest_rows(
                    metadata.region,
                    server_id,
                    np.empty(0, dtype=np.int64),
                    np.empty(0, dtype=np.float64),
                    metadata,
                )
                continue
            base_ts = np.repeat(series.timestamps, interval)
            offsets = np.tile(np.arange(interval, dtype=np.int64), len(series))
            raw_ts = base_ts + offsets
            raw_vs = np.repeat(series.values, interval) + rng.normal(0.0, 0.5, raw_ts.shape[0])
            raw_vs = np.clip(raw_vs, 0.0, 100.0)

            keep = rng.uniform(size=raw_ts.shape[0]) >= drop_fraction
            raw_ts, raw_vs = raw_ts[keep], raw_vs[keep]

            n_dup = int(duplicate_fraction * raw_ts.shape[0])
            if n_dup > 0:
                dup_idx = rng.integers(0, raw_ts.shape[0], n_dup)
                raw_ts = np.concatenate([raw_ts, raw_ts[dup_idx]])
                raw_vs = np.concatenate([raw_vs, raw_vs[dup_idx]])

            shuffle = rng.permutation(raw_ts.shape[0])
            self.ingest_rows(metadata.region, server_id, raw_ts[shuffle], raw_vs[shuffle], metadata)

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #

    def regions(self) -> list[str]:
        """Regions with at least one ingested server."""
        return sorted(self._rows)

    def servers_in_region(self, region: str) -> list[str]:
        """Server ids with raw rows in ``region``."""
        return sorted(self._rows.get(region, {}))

    def metadata(self, server_id: str) -> ServerMetadata:
        """Metadata recorded for ``server_id`` (default metadata if unknown)."""
        return self._metadata.get(server_id, ServerMetadata(server_id=server_id))

    def raw_rows(self, region: str, server_id: str) -> tuple[np.ndarray, np.ndarray]:
        """Return raw ``(timestamps, values)`` for a server."""
        try:
            ts, vs = self._rows[region][server_id]
        except KeyError as exc:
            raise KeyError(f"no raw telemetry for {server_id!r} in {region!r}") from exc
        return ts.copy(), vs.copy()

    def iter_region(self, region: str) -> Iterator[tuple[str, np.ndarray, np.ndarray]]:
        """Yield ``(server_id, timestamps, values)`` for every server in a region."""
        for server_id in self.servers_in_region(region):
            ts, vs = self._rows[region][server_id]
            yield server_id, ts.copy(), vs.copy()

    def row_count(self, region: str | None = None) -> int:
        """Total number of raw rows, optionally restricted to one region."""
        regions = [region] if region is not None else list(self._rows)
        total = 0
        for name in regions:
            for ts, _ in self._rows.get(name, {}).values():
                total += ts.shape[0]
        return total
