"""Fleet and region specifications for the synthetic telemetry generator.

Figure 3 of the paper classifies a sample of several tens of thousands of
PostgreSQL/MySQL servers into: 42.1% short-lived, 53.5% long-lived stable,
0.2% long-lived with a daily or weekly pattern, and 4.2% long-lived without
any pattern.  The default fleet specification reproduces that mix so that
the classification experiment (and everything downstream of it) sees the
same population structure the paper saw.

Appendix A reports that 19.36% of sampled SQL databases are stable under
the standard-deviation rule; :func:`sql_database_fleet_spec` encodes that
second population.
"""

from __future__ import annotations

import enum
import zlib
from dataclasses import dataclass, field, replace


class ServerClass(enum.Enum):
    """Ground-truth workload classes used by the synthetic generator."""

    STABLE = "stable"
    DAILY = "daily"
    WEEKLY = "weekly"
    UNSTABLE = "unstable"
    SHORT_LIVED = "short_lived"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Class mix calibrated to Figure 3 of the paper.
FLEET_CLASS_MIX: dict[ServerClass, float] = {
    ServerClass.SHORT_LIVED: 0.421,
    ServerClass.STABLE: 0.535,
    ServerClass.DAILY: 0.001,
    ServerClass.WEEKLY: 0.001,
    ServerClass.UNSTABLE: 0.042,
}

#: Fraction of SQL databases that are stable under the Appendix A rule.
SQL_STABLE_FRACTION = 0.1936

#: Fraction of servers whose weekly maximum reaches CPU capacity
#: (Figure 13(b): only 3.7% of servers reach capacity).
CAPACITY_REACHING_FRACTION = 0.037

#: Fraction of servers considered "busy" (load over 60% of capacity),
#: used by the Figure 13(a) impact analysis.
BUSY_FRACTION = 0.12


@dataclass(frozen=True)
class RegionSpec:
    """One Azure-style region: a name and a number of servers.

    The paper's per-region extract sizes range from hundreds of kilobytes to
    a few gigabytes; in this reproduction region size is expressed directly
    as a server count, which is what drives extract size and pipeline
    runtime.
    """

    name: str
    n_servers: int

    def __post_init__(self) -> None:
        if self.n_servers < 0:
            raise ValueError("n_servers must be non-negative")
        if not self.name:
            raise ValueError("region name must be non-empty")


@dataclass(frozen=True)
class FleetSpec:
    """A full synthetic fleet: regions, class mix and trace parameters."""

    regions: tuple[RegionSpec, ...]
    class_mix: dict[ServerClass, float] = field(default_factory=lambda: dict(FLEET_CLASS_MIX))
    weeks: int = 4
    interval_minutes: int = 5
    engine_mix: dict[str, float] = field(
        default_factory=lambda: {"postgresql": 0.6, "mysql": 0.4}
    )
    #: Fraction of servers whose weekly max load reaches capacity (Fig. 13(b)).
    capacity_reaching_fraction: float = CAPACITY_REACHING_FRACTION
    #: Fraction of busy servers (load above 60% of capacity).
    busy_fraction: float = BUSY_FRACTION
    seed: int = 7

    def __post_init__(self) -> None:
        total = sum(self.class_mix.values())
        if not 0.999 <= total <= 1.001:
            raise ValueError(f"class mix must sum to 1.0, got {total:.4f}")
        if self.weeks < 1:
            raise ValueError("a fleet must cover at least one week")
        if self.interval_minutes <= 0:
            raise ValueError("interval_minutes must be positive")

    @property
    def total_servers(self) -> int:
        return sum(region.n_servers for region in self.regions)

    def region(self, name: str) -> RegionSpec:
        for region in self.regions:
            if region.name == name:
                return region
        raise KeyError(f"region {name!r} not in fleet spec")

    def region_names(self) -> list[str]:
        return [region.name for region in self.regions]


def default_fleet_spec(
    servers_per_region: tuple[int, ...] = (400, 200, 100, 50),
    weeks: int = 4,
    seed: int = 7,
) -> FleetSpec:
    """Return the default four-region fleet used across tests and benchmarks.

    The paper runs its model comparison on four regions of different sizes
    (Section 5.3.1); region sizes here are scaled down so the benchmarks run
    on a laptop while preserving the size ordering.
    """
    regions = tuple(
        RegionSpec(name=f"region-{index}", n_servers=count)
        for index, count in enumerate(servers_per_region)
    )
    return FleetSpec(regions=regions, weeks=weeks, seed=seed)


def extract_spec(spec: FleetSpec, region: str, week: int) -> FleetSpec:
    """Spec snapshot behind one ``(region, week)`` extract.

    The fleet orchestrator processes many weekly extracts per region; each
    extract is an independent telemetry snapshot, so its generator seed is
    derived deterministically from the fleet seed, the region and the week.
    Re-generating the same ``(region, week)`` yields byte-identical content
    (which is what makes extract content hashes usable as cache keys),
    while different regions or weeks get uncorrelated traces.
    """
    if week < 0:
        raise ValueError("week must be non-negative")
    salt = zlib.crc32(f"{region}|w{week}".encode())
    return replace(spec, seed=(spec.seed * 1_000_003 + salt) % 2**31)


def sql_database_fleet_spec(
    n_databases: int = 500,
    weeks: int = 4,
    seed: int = 17,
) -> FleetSpec:
    """Return the Appendix A SQL-database fleet (15-minute granularity).

    The class mix is tuned so roughly 19.36% of databases come out stable
    under the standard-deviation rule of Definition 10; the rest are
    dominated by pattern-free and daily-pattern traces, which better matches
    single SQL databases than the server mix of Figure 3.
    """
    class_mix = {
        ServerClass.STABLE: 0.20,
        ServerClass.DAILY: 0.25,
        ServerClass.WEEKLY: 0.10,
        ServerClass.UNSTABLE: 0.35,
        ServerClass.SHORT_LIVED: 0.10,
    }
    regions = (RegionSpec(name="sql-region-0", n_servers=n_databases),)
    return FleetSpec(
        regions=regions,
        class_mix=class_mix,
        weeks=weeks,
        interval_minutes=15,
        engine_mix={"sql": 1.0},
        seed=seed,
    )
