"""Load Extraction Module (Section 2.2).

A recurring query that reads raw production telemetry, aggregates it to the
average user CPU percentage per five minutes and writes one extract per
``(region, week)`` to the data lake.  Servers are due for full backup at
least once a week, so the query runs once a week per region.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.datalake import DataLakeStore, ExtractKey
from repro.storage.query import ExtractQuery
from repro.telemetry.raw_store import RawTelemetryStore
from repro.timeseries.calendar import DEFAULT_INTERVAL_MINUTES, MINUTES_PER_WEEK
from repro.timeseries.frame import LoadFrame
from repro.timeseries.resample import regularize


class ExtractionVerificationError(RuntimeError):
    """Raised when a freshly written extract does not read back intact."""


@dataclass(frozen=True)
class ExtractionReport:
    """Summary of one extraction run, surfaced on the monitoring dashboard."""

    key: ExtractKey
    servers: int
    raw_rows: int
    extracted_points: int
    extract_format: str = "csv"
    extract_bytes: int = 0
    #: Whether the stored copy was read back and checked after the write.
    verified: bool = False

    def as_dict(self) -> dict[str, object]:
        return {
            "region": self.key.region,
            "week": self.key.week,
            "servers": self.servers,
            "raw_rows": self.raw_rows,
            "extracted_points": self.extracted_points,
            "extract_format": self.extract_format,
            "extract_bytes": self.extract_bytes,
            "verified": self.verified,
        }


class LoadExtractionQuery:
    """Aggregates raw telemetry into weekly per-region extracts.

    Parameters
    ----------
    raw_store:
        The raw telemetry source.
    data_lake:
        Destination store for the weekly extracts.
    interval_minutes:
        Target aggregation granularity (five minutes by default).
    """

    def __init__(
        self,
        raw_store: RawTelemetryStore,
        data_lake: DataLakeStore,
        interval_minutes: int = DEFAULT_INTERVAL_MINUTES,
    ) -> None:
        self._raw = raw_store
        self._lake = data_lake
        self._interval = interval_minutes

    def extract_week(self, region: str, week: int, verify: bool = False) -> ExtractionReport:
        """Run the weekly extraction for one region and persist the extract.

        Raw rows falling inside week ``week`` are bucketed onto the regular
        grid by mean; servers with no rows in the week are omitted (they are
        either retired or not yet created).

        With ``verify`` the stored copy is immediately read back through
        the lake's query surface with a *timestamps-only column
        projection* -- the cheapest structural read the format offers
        (values buffers are neither decoded nor checksummed on ``.sgx``)
        -- and its server/row counts are checked against what was
        extracted; a mismatch raises
        :class:`ExtractionVerificationError`.
        """
        week_start = week * MINUTES_PER_WEEK
        week_end = week_start + MINUTES_PER_WEEK

        frame = LoadFrame(self._interval)
        raw_rows = 0
        for server_id, timestamps, values in self._raw.iter_region(region):
            mask = (timestamps >= week_start) & (timestamps < week_end)
            if not mask.any():
                continue
            raw_rows += int(mask.sum())
            series = regularize(timestamps[mask], values[mask], self._interval)
            frame.add_server(self._raw.metadata(server_id), series)

        key = ExtractKey(region=region, week=week)
        self._lake.write_extract(key, frame)
        if verify:
            check = self._lake.query(
                ExtractQuery.for_key(
                    key, interval_minutes=self._interval, columns=("timestamps",)
                )
            )
            if (
                check.stats.extracts_scanned != 1
                or len(check.frame) != len(frame)
                or check.frame.total_points() != frame.total_points()
            ):
                raise ExtractionVerificationError(
                    f"extract for {key} did not read back intact: stored "
                    f"{len(check.frame)} server(s) / {check.frame.total_points()} "
                    f"row(s), extracted {len(frame)} / {frame.total_points()}"
                )
        return ExtractionReport(
            key=key,
            servers=len(frame),
            raw_rows=raw_rows,
            extracted_points=frame.total_points(),
            extract_format=self._lake.write_format,
            extract_bytes=self._lake.extract_size_bytes(key),
            verified=verify,
        )

    def extract_weeks(
        self, region: str, weeks: range, verify: bool = False
    ) -> list[ExtractionReport]:
        """Run the extraction for several consecutive weeks of one region."""
        return [self.extract_week(region, week, verify=verify) for week in weeks]

    def extract_all_regions(self, week: int, verify: bool = False) -> list[ExtractionReport]:
        """Run the weekly extraction for every region with raw telemetry.

        The paper notes Load Extraction runs outside the per-region pipeline
        for all regions at once (Section 6.1).
        """
        return [
            self.extract_week(region, week, verify=verify)
            for region in self._raw.regions()
        ]
