"""Unified prediction-serving API (Section 2.2's production story).

Trained per-server models are deployed *into* a
:class:`~repro.serving.service.PredictionService`; every prediction
consumer -- the pipeline's inference stage, the backup-scheduling runner,
the autoscale predictor, the fleet orchestrator -- addresses that one
surface with typed :class:`~repro.serving.api.PredictionRequest` objects
and gets typed responses back.  Version routing follows the model
registry's ACTIVE record (so fallback-on-regression re-routes serving
automatically), batches fan out over a partitioned executor, and an LRU
cache answers repeated horizon queries without re-running models.
"""

from repro.serving.api import (
    BatchPredictionResponse,
    NoActiveVersionError,
    PredictionRequest,
    PredictionResponse,
    ServingError,
    ServingStats,
    VersionMismatchError,
)
from repro.serving.cache import PredictionCache, PredictionCacheStats, prediction_cache_key
from repro.serving.live_bridge import LiveServingBridge, LiveServingEvent
from repro.serving.service import PredictionService, history_fingerprint

__all__ = [
    "BatchPredictionResponse",
    "LiveServingBridge",
    "LiveServingEvent",
    "NoActiveVersionError",
    "PredictionCache",
    "PredictionCacheStats",
    "PredictionRequest",
    "PredictionResponse",
    "PredictionService",
    "ServingError",
    "ServingStats",
    "VersionMismatchError",
    "history_fingerprint",
    "prediction_cache_key",
]
