"""Drift-triggered incremental serving: the live data plane's control loop.

:class:`LiveServingBridge` closes the loop between streaming ingestion and
the serving plane with no human in between.  Every time the live ingestor
seals a tail window into the lake
(:class:`~repro.storage.live.SealReport`), the bridge:

1. reads the freshly committed window back through the ordinary query
   surface and summarises its load distribution
   (:class:`~repro.core.drift.WindowSummary`);
2. hands the summary to a
   :class:`~repro.core.drift.LoadWindowDriftDetector` -- window-over-window
   mean/dispersion/population shifts, available the moment the seal
   commits, no pipeline run required;
3. on a drift verdict (or on the region's first sealed window, which
   bootstraps serving) retrains per-server forecasters on the region's
   committed history and deploys them through
   :meth:`~repro.serving.service.PredictionService.deploy` -- the model
   registry promotes the new version to ACTIVE, so
   ``PredictionService.health()`` follows the data plane automatically.

The bridge is deliberately synchronous and unprivileged: it only uses the
public query/deploy surfaces, so it can run inside the collector process
(the ``python -m repro.fleet_ops live`` simulation does exactly that) or
beside it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.registry import ModelRecord
from repro.models.base import Forecaster, ForecastError
from repro.models.registry import create_forecaster
from repro.serving.service import PredictionService
from repro.storage.datalake import DataLakeStore
from repro.storage.live import SealReport
from repro.storage.query import ExtractQuery

if TYPE_CHECKING:
    # Imported lazily at runtime: repro.core.drift sits in the middle of
    # the core package's import of the pipeline, which imports serving --
    # a module-level import here would close that cycle.
    from repro.core.drift import (
        LoadWindowDriftDetector,
        WindowDriftReport,
        WindowSummary,
    )

__all__ = ["LiveServingBridge", "LiveServingEvent"]


@dataclass(frozen=True)
class LiveServingEvent:
    """What the bridge did with one sealed window."""

    region: str
    week: int
    window_start: int
    window_end: int
    summary: WindowSummary
    #: The detector's verdict (``None`` for a region's first window).
    verdict: WindowDriftReport | None
    #: ``"bootstrap"`` (first window deployed initial models),
    #: ``"retrain"`` (drift verdict promoted a new version) or ``"none"``.
    action: str
    #: Active model version after this event (``None``: nothing deployed,
    #: e.g. the window had too little history to fit any forecaster).
    active_version: int | None

    @property
    def deployed(self) -> bool:
        return self.action in ("bootstrap", "retrain")


class LiveServingBridge:
    """Feeds sealed live windows to drift detection and model promotion.

    Parameters
    ----------
    store:
        The lake the ingestor seals into; windows and training history
        are read back through its public query surface.
    service:
        The serving plane to deploy into.
    model_name:
        Forecaster family to (re)train (a
        :func:`repro.models.registry.create_forecaster` name).
    detector:
        The window-drift detector; a default-threshold
        :class:`~repro.core.drift.LoadWindowDriftDetector` when omitted.
    principal:
        Principal used for every lake read.
    """

    def __init__(
        self,
        store: DataLakeStore,
        service: PredictionService,
        *,
        model_name: str = "persistent_previous_day",
        detector: LoadWindowDriftDetector | None = None,
        principal: str | None = None,
    ) -> None:
        from repro.core.drift import LoadWindowDriftDetector

        self._store = store
        self._service = service
        self._model_name = model_name
        self._detector = detector if detector is not None else LoadWindowDriftDetector()
        self._principal = principal
        self._bootstrapped: set[str] = set()
        self._events: list[LiveServingEvent] = []

    @property
    def events(self) -> list[LiveServingEvent]:
        """Every event the bridge produced, oldest first."""
        return list(self._events)

    def on_sealed(self, report: SealReport) -> LiveServingEvent:
        """React to one committed seal: summarise, detect, maybe promote."""
        from repro.core.drift import WindowSummary

        window = self._store.query(
            ExtractQuery(
                regions=(report.region,),
                weeks=(report.week,),
                start_minute=report.window_start,
                end_minute=report.sealed_through,
            ),
            principal=self._principal,
        ).frame
        summary = WindowSummary.from_frame(
            report.region, window, report.window_start, report.sealed_through
        )
        verdict = self._detector.observe(summary)
        action = "none"
        if report.region not in self._bootstrapped:
            action = "bootstrap" if self._retrain(report) else "none"
        elif verdict is not None and verdict.drifted:
            action = "retrain" if self._retrain(report) else "none"
        active = self._service.registry.active(report.region)
        event = LiveServingEvent(
            region=report.region,
            week=report.week,
            window_start=report.window_start,
            window_end=report.sealed_through,
            summary=summary,
            verdict=verdict,
            action=action,
            active_version=active.version if active is not None else None,
        )
        self._events.append(event)
        return event

    def _retrain(self, report: SealReport) -> ModelRecord | None:
        """Fit fresh forecasters on the region's committed history and
        deploy them; ``None`` when no server has enough history yet."""
        history = self._store.query(
            ExtractQuery(regions=(report.region,), end_minute=report.sealed_through),
            principal=self._principal,
        ).frame
        forecasters: dict[str, Forecaster] = {}
        for server_id, _metadata, series in history.items():
            try:
                forecasters[server_id] = create_forecaster(self._model_name).fit(series)
            except ForecastError:
                continue  # not enough history for this server yet
        if not forecasters:
            return None
        record = self._service.deploy(
            region=report.region,
            model_name=self._model_name,
            trained_week=report.week,
            forecasters=forecasters,
            notes=f"live retrain through minute {report.sealed_through}",
        )
        self._bootstrapped.add(report.region)
        return record
