"""The unified prediction-serving façade.

:class:`PredictionService` is the one serving surface of the repo: trained
per-server models are deployed *into* it (one
:class:`~repro.core.endpoints.ScoringEndpoint` per deployed version, an
internal transport detail), requests are routed through the
:class:`~repro.core.registry.ModelRegistry` to the region's ACTIVE version
-- which means routing automatically honours fallback-on-regression -- and
every answer passes through an LRU prediction cache keyed on
``(region, server, version, horizon, history fingerprint)``.

Batches fan out across servers via a
:class:`~repro.parallel.executor.PartitionedExecutor` (serial by default;
a thread-pool executor shards the miss set).  The service aggregates
request statistics, endpoint health and cache counters per region for the
dashboard.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections.abc import Iterable, Mapping

from repro.core.dashboard import Dashboard
from repro.core.endpoints import BatchScoringResult, ScoringEndpoint
from repro.core.registry import ModelRecord, ModelRegistry, ModelStatus
from repro.models.base import Forecaster
from repro.models.cached import PrecomputedForecaster
from repro.models.registry import UnknownModelError, canonical_name
from repro.parallel.executor import ExecutionBackend, PartitionedExecutor
from repro.parallel.partition import partition_list
from repro.serving.api import (
    BatchPredictionResponse,
    NoActiveVersionError,
    PredictionRequest,
    PredictionResponse,
    ServingError,
    ServingStats,
    VersionMismatchError,
)
from repro.serving.cache import PredictionCache, prediction_cache_key
from repro.timeseries.series import LoadSeries


def history_fingerprint(forecaster: Forecaster) -> str:
    """Hex digest of the data a fitted forecaster would answer from.

    Part of the prediction-cache key: retraining on different history (or
    replaying a different precomputed series) must produce a different
    fingerprint, so the cache can never serve a prediction computed from
    data the deployed model no longer represents.
    """
    if isinstance(forecaster, PrecomputedForecaster):
        series: LoadSeries | None = forecaster.prediction
    else:
        series = forecaster.history
    if series is None or series.is_empty:
        return "unfitted"
    digest = hashlib.sha256()
    digest.update(f"{series.interval_minutes}:".encode())
    digest.update(series.timestamps.tobytes())
    digest.update(series.values.tobytes())
    return digest.hexdigest()[:32]


class PredictionService:
    """Routes prediction requests to deployed model versions.

    Parameters
    ----------
    registry:
        Version tracker shared with whatever deploys models (the pipeline
        passes its own, so registry fallback immediately re-routes
        serving).  A fresh registry is created when omitted.
    cache:
        Prediction LRU cache; ``cache_capacity`` sizes a default one.
    executor:
        Fan-out executor for :meth:`predict_batch`.  Serial and thread
        backends are supported; the process backend is rejected because
        endpoint statistics and the cache live in this process.
    dashboard:
        When given, :meth:`publish_health` records serving-health events
        onto it.
    """

    def __init__(
        self,
        registry: ModelRegistry | None = None,
        cache: PredictionCache | None = None,
        cache_capacity: int = 4096,
        executor: PartitionedExecutor | None = None,
        dashboard: Dashboard | None = None,
    ) -> None:
        if executor is not None and executor.backend is ExecutionBackend.PROCESSES:
            raise ValueError(
                "PredictionService fan-out needs shared endpoint/cache state; "
                "use the serial or threads backend"
            )
        self._registry = registry if registry is not None else ModelRegistry()
        self._cache = cache if cache is not None else PredictionCache(cache_capacity)
        self._executor = executor
        self._dashboard = dashboard
        self._endpoints: dict[tuple[str, int], ScoringEndpoint] = {}
        self._fingerprints: dict[tuple[str, int], dict[str, str]] = {}
        self._stats: dict[str, ServingStats] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Deployment
    # ------------------------------------------------------------------ #

    @property
    def registry(self) -> ModelRegistry:
        return self._registry

    @property
    def cache(self) -> PredictionCache:
        return self._cache

    def deploy(
        self,
        region: str,
        model_name: str,
        trained_week: int,
        forecasters: Mapping[str, Forecaster],
        notes: str = "",
    ) -> ModelRecord:
        """Register a new version for ``region`` and serve it.

        The registry makes the new version ACTIVE (retiring the previous
        one as the fallback candidate); the fitted forecasters go behind a
        fresh internal scoring endpoint.  Earlier versions keep their
        endpoints, so a later :meth:`ModelRegistry.fallback` re-routes
        serving without redeployment.
        """
        record = self._registry.deploy(
            region=region, model_name=model_name, trained_week=trained_week, notes=notes
        )
        self._attach(record, forecasters)
        return record

    def deploy_precomputed(
        self,
        region: str,
        predictions: Mapping[str, LoadSeries],
        model_name: str = "precomputed",
        trained_week: int = 0,
        notes: str = "",
    ) -> ModelRecord:
        """Deploy already-computed prediction series behind the service.

        Convenience for replay/test scenarios: each series is wrapped in a
        :class:`~repro.models.cached.PrecomputedForecaster`.
        """
        forecasters = {
            server_id: PrecomputedForecaster(series, model_name)
            for server_id, series in predictions.items()
        }
        return self.deploy(region, model_name, trained_week, forecasters, notes=notes)

    def _attach(self, record: ModelRecord, forecasters: Mapping[str, Forecaster]) -> None:
        key = (record.region, record.version)
        endpoint = ScoringEndpoint(
            region=record.region,
            model_name=record.model_name,
            version=record.version,
            forecasters=forecasters,
        )
        fingerprints = {
            server_id: history_fingerprint(forecaster)
            for server_id, forecaster in forecasters.items()
        }
        with self._lock:
            self._endpoints[key] = endpoint
            self._fingerprints[key] = fingerprints

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #

    def resolve(
        self, region: str, model: str | None = None, version: int | None = None
    ) -> ModelRecord:
        """Resolve a request's pins to the model version that will serve it.

        No pins: the region's ACTIVE version (post-fallback).  A version
        pin must name a deployed, non-FAILED version; a model pin must
        match the resolved version's model (aliases accepted).
        """
        if version is not None:
            record = next(
                (r for r in self._registry.versions(region) if r.version == version), None
            )
            if record is None:
                raise VersionMismatchError(
                    f"region {region!r} has no deployed version {version}"
                )
            if record.status is ModelStatus.FAILED:
                raise VersionMismatchError(
                    f"version {version} in region {region!r} is marked failed"
                )
        else:
            record = self._registry.active(region)
            if record is None:
                raise NoActiveVersionError(
                    f"region {region!r} has no active model version to serve from"
                )
        if model is not None and not self._model_matches(model, record.model_name):
            raise VersionMismatchError(
                f"version {record.version} in region {region!r} serves "
                f"{record.model_name!r}, not {model!r}"
            )
        return record

    @staticmethod
    def _model_matches(requested: str, deployed: str) -> bool:
        try:
            return canonical_name(requested) == canonical_name(deployed)
        except UnknownModelError:
            return requested == deployed

    def _endpoint_for(self, record: ModelRecord) -> ScoringEndpoint:
        endpoint = self._endpoints.get((record.region, record.version))
        if endpoint is None:
            raise ServingError(
                f"version {record.version} in region {record.region!r} was registered "
                "without being deployed into the serving layer"
            )
        return endpoint

    def servers(self, region: str, version: int | None = None) -> list[str]:
        """Server ids servable by a region's (active or pinned) version."""
        return self._endpoint_for(self.resolve(region, version=version)).servers()

    def regions(self) -> list[str]:
        """Regions with at least one deployed version."""
        return self._registry.regions()

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #

    def predict(self, request: PredictionRequest) -> PredictionResponse:
        """Serve one prediction request."""
        started = time.perf_counter()
        record = self.resolve(request.region, model=request.model, version=request.version)
        endpoint = self._endpoint_for(record)
        stats = self._region_stats(request.region)
        stats.requests += 1
        key = self._cache_key(record, request.server_id, request.n_points)

        series: LoadSeries | None = None
        cache_hit = False
        if request.use_cache:
            series = self._cache.get(key)
            cache_hit = series is not None
        if series is None:
            try:
                series = endpoint.predict(request.server_id, request.n_points)
            except Exception as exc:
                stats.failures += 1
                raise ServingError(
                    f"prediction for {request.server_id!r} via {request.region} "
                    f"v{record.version} failed: {exc}"
                ) from exc
            if request.use_cache:
                self._cache.put(key, series)
        latency = time.perf_counter() - started
        stats.served += 1
        stats.cache_hits += 1 if cache_hit else 0
        stats.latency_seconds += latency
        stats.by_version[record.version] = stats.by_version.get(record.version, 0) + 1
        return PredictionResponse(
            request=request,
            series=series,
            served_by_model=record.model_name,
            served_by_version=record.version,
            latency_seconds=latency,
            cache_hit=cache_hit,
        )

    def predict_batch(
        self,
        region: str,
        n_points: int,
        server_ids: Iterable[str] | None = None,
        model: str | None = None,
        version: int | None = None,
        use_cache: bool = True,
    ) -> BatchPredictionResponse:
        """Fan one horizon query across a region's servers.

        ``server_ids`` defaults to every server the serving version can
        score.  The version is resolved once for the whole batch; cache
        hits are answered inline and only the miss set is fanned across
        the executor.  Per-server failures are isolated into ``failed``.
        """
        started = time.perf_counter()
        record = self.resolve(region, model=model, version=version)
        endpoint = self._endpoint_for(record)
        servers = list(server_ids) if server_ids is not None else endpoint.servers()
        stats = self._region_stats(region)
        stats.requests += len(servers)
        stats.batches += 1

        responses: list[PredictionResponse] = []
        misses: list[str] = []
        for server_id in servers:
            series = (
                self._cache.get(self._cache_key(record, server_id, n_points))
                if use_cache
                else None
            )
            if series is None:
                misses.append(server_id)
                continue
            responses.append(
                self._response(
                    record, server_id, n_points, series, cache_hit=True, latency=0.0,
                    use_cache=use_cache,
                )
            )

        skipped: list[str] = []
        failed: list[tuple[str, str]] = []
        chunks = self._partition(misses)
        for scored, elapsed in self._score_chunks(endpoint, chunks, n_points):
            skipped.extend(scored.skipped)
            failed.extend(sorted(scored.failed.items()))
            share = elapsed / max(1, len(scored.predictions))
            for server_id, series in scored.predictions.items():
                if use_cache:
                    self._cache.put(self._cache_key(record, server_id, n_points), series)
                responses.append(
                    self._response(
                        record, server_id, n_points, series, cache_hit=False,
                        latency=share, use_cache=use_cache,
                    )
                )

        latency = time.perf_counter() - started
        stats.served += len(responses)
        stats.skipped += len(skipped)
        stats.failures += len(failed)
        stats.cache_hits += sum(1 for r in responses if r.cache_hit)
        stats.latency_seconds += latency
        stats.by_version[record.version] = (
            stats.by_version.get(record.version, 0) + len(responses)
        )
        order = {server_id: index for index, server_id in enumerate(servers)}
        responses.sort(key=lambda r: order[r.server_id])
        return BatchPredictionResponse(
            region=region,
            served_by_model=record.model_name,
            served_by_version=record.version,
            responses=tuple(responses),
            skipped=tuple(skipped),
            failed=tuple(failed),
            latency_seconds=latency,
            n_partitions=max(1, len(chunks)),
        )

    def _partition(self, server_ids: list[str]) -> list[list[str]]:
        if not server_ids:
            return []
        if self._executor is None or self._executor.backend is ExecutionBackend.SERIAL:
            return [server_ids]
        return partition_list(server_ids, self._executor.n_workers)

    def _score_chunks(
        self, endpoint: ScoringEndpoint, chunks: list[list[str]], n_points: int
    ) -> list[tuple[BatchScoringResult, float]]:
        def score(chunk: list[str]) -> tuple[BatchScoringResult, float]:
            chunk_started = time.perf_counter()
            scored = endpoint.predict_many(chunk, n_points)
            return scored, time.perf_counter() - chunk_started

        if self._executor is None or len(chunks) <= 1:
            return [score(chunk) for chunk in chunks]
        return self._executor.map(score, chunks)

    def _response(
        self,
        record: ModelRecord,
        server_id: str,
        n_points: int,
        series: LoadSeries,
        cache_hit: bool,
        latency: float,
        use_cache: bool,
    ) -> PredictionResponse:
        request = PredictionRequest(
            region=record.region,
            server_id=server_id,
            n_points=n_points,
            use_cache=use_cache,
        )
        return PredictionResponse(
            request=request,
            series=series,
            served_by_model=record.model_name,
            served_by_version=record.version,
            latency_seconds=latency,
            cache_hit=cache_hit,
        )

    def _cache_key(
        self, record: ModelRecord, server_id: str, n_points: int
    ) -> tuple[str, str, int, int, str]:
        fingerprints = self._fingerprints.get((record.region, record.version), {})
        return prediction_cache_key(
            record.region,
            server_id,
            record.version,
            n_points,
            fingerprints.get(server_id, "unknown"),
        )

    def _region_stats(self, region: str) -> ServingStats:
        with self._lock:
            return self._stats.setdefault(region, ServingStats())

    # ------------------------------------------------------------------ #
    # Health
    # ------------------------------------------------------------------ #

    def health(self, region: str | None = None) -> dict[str, object]:
        """Serving health: routing state, endpoint stats, cache counters.

        With ``region``, one region's summary (including whether routing
        has flipped to a fallback version); without, a fleet-wide view
        keyed by region plus the shared cache stats.
        """
        if region is not None:
            return self._region_health(region)
        return {
            "regions": {r: self._region_health(r) for r in self.regions()},
            "cache": self._cache.stats.as_dict(),
        }

    def _region_health(self, region: str) -> dict[str, object]:
        versions = self._registry.versions(region)
        active = self._registry.active(region)
        latest = versions[-1].version if versions else None
        endpoint_stats = {
            "requests": 0,
            "failures": 0,
            "n_servers": 0,
        }
        for record in versions:
            endpoint = self._endpoints.get((region, record.version))
            if endpoint is None:
                continue
            endpoint_stats["requests"] += endpoint.request_count
            endpoint_stats["failures"] += endpoint.failure_count
            if active is not None and record.version == active.version:
                endpoint_stats["n_servers"] = len(endpoint.servers())
        stats = self._stats.get(region, ServingStats())
        return {
            "region": region,
            "active_version": active.version if active is not None else None,
            "active_model": active.model_name if active is not None else None,
            "n_versions": len(versions),
            "fell_back": active is not None and latest is not None
            and active.version != latest,
            "failed_versions": [
                r.version for r in versions if r.status is ModelStatus.FAILED
            ],
            "endpoint": endpoint_stats,
            "stats": stats.as_dict(),
            "cache": self._cache.stats.as_dict(),
        }

    def publish_health(self, run_id: str = "serving") -> None:
        """Record one serving-health event per region onto the dashboard."""
        if self._dashboard is None:
            return
        for region in self.regions():
            self._dashboard.record(run_id, region, "serving_health", self._region_health(region))
