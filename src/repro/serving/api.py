"""Typed request/response surface of the prediction-serving API.

Production Seagull (Section 2.2) serves predictions from versioned
per-region scoring endpoints.  Consumers address the serving layer with a
:class:`PredictionRequest` -- region, server, horizon, optional model /
version pins -- and get back a :class:`PredictionResponse` that says not
just *what* was predicted but *how* it was served: which model version
answered, how long it took and whether the prediction came from the LRU
cache.  Batch fan-outs return a :class:`BatchPredictionResponse` that
additionally names the servers that were skipped (no deployed model) or
failed (model raised), so partial success is always visible to the caller.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.timeseries.series import LoadSeries


class ServingError(RuntimeError):
    """Base class for prediction-serving failures."""


class NoActiveVersionError(ServingError):
    """Raised when a region has no deployed model version to serve from."""


class VersionMismatchError(ServingError):
    """Raised when a request pins a version/model that is not deployed."""


@dataclass(frozen=True)
class PredictionRequest:
    """One prediction query against the serving API.

    Parameters
    ----------
    region:
        Region whose deployed model should answer.
    server_id:
        Server (or database) the prediction is for.
    n_points:
        Number of horizon points to predict.
    model:
        Optional model-name pin; the serving version must have been trained
        with this model or the request fails with
        :class:`VersionMismatchError`.
    version:
        Optional version pin; ``None`` routes to the region's ACTIVE
        version (which follows fallback-on-regression).
    use_cache:
        Whether the prediction cache may serve (and store) this request.
    """

    region: str
    server_id: str
    n_points: int
    model: str | None = None
    version: int | None = None
    use_cache: bool = True

    def __post_init__(self) -> None:
        if not self.region:
            raise ValueError("region must be non-empty")
        if not self.server_id:
            raise ValueError("server_id must be non-empty")
        if self.n_points <= 0:
            raise ValueError("n_points must be positive")
        if self.version is not None and self.version < 1:
            raise ValueError("version pins start at 1")


@dataclass(frozen=True)
class PredictionResponse:
    """One served prediction plus its serving metadata."""

    request: PredictionRequest
    series: LoadSeries
    served_by_model: str
    served_by_version: int
    latency_seconds: float
    cache_hit: bool

    @property
    def region(self) -> str:
        return self.request.region

    @property
    def server_id(self) -> str:
        return self.request.server_id

    def as_dict(self) -> dict[str, object]:
        """Serving metadata (without the series payload) for dashboards."""
        return {
            "region": self.region,
            "server_id": self.server_id,
            "n_points": self.request.n_points,
            "served_by_model": self.served_by_model,
            "served_by_version": self.served_by_version,
            "latency_seconds": self.latency_seconds,
            "cache_hit": self.cache_hit,
        }


@dataclass(frozen=True)
class BatchPredictionResponse:
    """Outcome of fanning one request batch across a region's servers.

    Per-server failure isolation is structural: ``responses`` holds the
    successes, ``skipped`` the servers the serving version has no model
    for, and ``failed`` maps servers whose model raised to the error
    message.  A batch therefore never aborts halfway.
    """

    region: str
    served_by_model: str
    served_by_version: int
    responses: tuple[PredictionResponse, ...]
    skipped: tuple[str, ...] = ()
    failed: tuple[tuple[str, str], ...] = ()
    latency_seconds: float = 0.0
    n_partitions: int = 1

    def predictions(self) -> dict[str, LoadSeries]:
        """The served series keyed by server id."""
        return {response.server_id: response.series for response in self.responses}

    @property
    def n_served(self) -> int:
        return len(self.responses)

    @property
    def cache_hits(self) -> int:
        """How many responses were served from the prediction cache."""
        return sum(1 for response in self.responses if response.cache_hit)

    @property
    def failed_ids(self) -> tuple[str, ...]:
        return tuple(server_id for server_id, _ in self.failed)

    def as_dict(self) -> dict[str, object]:
        return {
            "region": self.region,
            "served_by_model": self.served_by_model,
            "served_by_version": self.served_by_version,
            "n_served": self.n_served,
            "n_skipped": len(self.skipped),
            "n_failed": len(self.failed),
            "cache_hits": self.cache_hits,
            "latency_seconds": self.latency_seconds,
            "n_partitions": self.n_partitions,
        }


@dataclass
class ServingStats:
    """Aggregate request statistics the service keeps per region."""

    requests: int = 0
    served: int = 0
    skipped: int = 0
    failures: int = 0
    cache_hits: int = 0
    batches: int = 0
    latency_seconds: float = 0.0
    by_version: dict[int, int] = field(default_factory=dict)

    def as_dict(self) -> dict[str, object]:
        return {
            "requests": self.requests,
            "served": self.served,
            "skipped": self.skipped,
            "failures": self.failures,
            "cache_hits": self.cache_hits,
            "batches": self.batches,
            "latency_seconds": self.latency_seconds,
            "by_version": dict(sorted(self.by_version.items())),
        }
