"""LRU prediction cache.

The backup scheduler and the autoscale predictor ask the serving layer for
overlapping horizon windows every day; re-running a model for a question it
already answered is wasted inference.  The cache keys on everything that
determines a prediction's value -- ``(region, server, version, horizon,
history fingerprint)`` -- so a redeployment (new version) or retraining on
new data (new fingerprint) can never serve a stale series, while repeated
queries against an unchanged deployment are answered without touching the
model.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.timeseries.series import LoadSeries

#: Cache key: (region, server_id, version, n_points, history_fingerprint).
CacheKey = tuple[str, str, int, int, str]


def prediction_cache_key(
    region: str,
    server_id: str,
    version: int,
    n_points: int,
    history_fingerprint: str,
) -> CacheKey:
    """Build the canonical cache key for one prediction."""
    return (region, server_id, version, n_points, history_fingerprint)


@dataclass(frozen=True)
class PredictionCacheStats:
    """Counters exposed on the serving health surface."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "capacity": self.capacity,
            "hit_rate": self.hit_rate,
        }


class PredictionCache:
    """Bounded, thread-safe LRU cache of served prediction series.

    Thread safety matters because :class:`~repro.serving.service.
    PredictionService` can fan batches out over a thread-pool executor;
    all bookkeeping happens under one lock (the cached payloads are
    immutable :class:`~repro.timeseries.series.LoadSeries`, so sharing
    them across threads is safe).
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self._capacity = capacity
        self._entries: OrderedDict[CacheKey, LoadSeries] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: CacheKey) -> LoadSeries | None:
        """Return the cached series for ``key``, refreshing its recency."""
        with self._lock:
            series = self._entries.get(key)
            if series is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return series

    def put(self, key: CacheKey, series: LoadSeries) -> None:
        """Store ``series`` under ``key``, evicting the LRU entry if full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = series
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    @property
    def stats(self) -> PredictionCacheStats:
        with self._lock:
            return PredictionCacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self._capacity,
            )
