"""Incident management (Section 2.2).

The pipeline "continually re-evaluates accuracy of predictions, falls back
to previously known good models and triggers alerts as appropriate".  The
incident manager collects those alerts: missing or invalid input data,
errors in any pipeline step, failed model deployments and accuracy
regressions.
"""

from __future__ import annotations

import enum
import itertools
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field


class IncidentSeverity(enum.Enum):
    """Severity levels for raised incidents."""

    INFO = "info"
    WARNING = "warning"
    CRITICAL = "critical"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Incident:
    """One raised incident."""

    incident_id: int
    severity: IncidentSeverity
    source: str
    message: str
    region: str = ""
    acknowledged: bool = False

    def as_dict(self) -> dict[str, object]:
        return {
            "incident_id": self.incident_id,
            "severity": self.severity.value,
            "source": self.source,
            "message": self.message,
            "region": self.region,
            "acknowledged": self.acknowledged,
        }


class IncidentManager:
    """Collects incidents and notifies registered handlers.

    Handlers model the paging/alerting hooks of the production system; a
    handler is any callable taking the :class:`Incident`.
    """

    def __init__(self) -> None:
        self._incidents: list[Incident] = []
        self._handlers: list[Callable[[Incident], None]] = []
        self._counter = itertools.count(1)

    def add_handler(self, handler: Callable[[Incident], None]) -> None:
        """Register a notification handler invoked on every new incident."""
        self._handlers.append(handler)

    def raise_incident(
        self,
        severity: IncidentSeverity,
        source: str,
        message: str,
        region: str = "",
    ) -> Incident:
        """Record a new incident and notify handlers."""
        incident = Incident(
            incident_id=next(self._counter),
            severity=severity,
            source=source,
            message=message,
            region=region,
        )
        self._incidents.append(incident)
        for handler in self._handlers:
            handler(incident)
        return incident

    def acknowledge(self, incident_id: int) -> None:
        """Mark an incident as acknowledged by an operator."""
        for index, incident in enumerate(self._incidents):
            if incident.incident_id == incident_id:
                self._incidents[index] = Incident(
                    incident_id=incident.incident_id,
                    severity=incident.severity,
                    source=incident.source,
                    message=incident.message,
                    region=incident.region,
                    acknowledged=True,
                )
                return
        raise KeyError(f"no incident with id {incident_id}")

    def incidents(
        self,
        severity: IncidentSeverity | None = None,
        region: str | None = None,
        unacknowledged_only: bool = False,
    ) -> list[Incident]:
        """Return incidents matching the filters, oldest first."""
        result: Iterable[Incident] = self._incidents
        if severity is not None:
            result = (i for i in result if i.severity is severity)
        if region is not None:
            result = (i for i in result if i.region == region)
        if unacknowledged_only:
            result = (i for i in result if not i.acknowledged)
        return list(result)

    def has_critical(self) -> bool:
        """Whether any unacknowledged critical incident is outstanding."""
        return any(
            i.severity is IncidentSeverity.CRITICAL and not i.acknowledged
            for i in self._incidents
        )

    def clear(self) -> None:
        """Drop all incidents (used between test scenarios)."""
        self._incidents.clear()
