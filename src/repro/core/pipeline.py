"""The Seagull pipeline (Figure 1's use-case-agnostic offline components).

One run of the pipeline processes one weekly extract of one region:

1. **Data ingestion** -- read the extract (from the data lake or a frame).
2. **Data validation** -- schema/bound anomaly detection; invalid extracts
   raise a critical incident and abort the run.
3. **Feature extraction** -- per-server features and classification.
4. **Model training** -- fit the configured forecaster per server on the
   training window preceding each prediction day.
5. **Model deployment** -- register the new model version and expose it
   behind a scoring endpoint.
6. **Inference** -- predict the load of each server's upcoming backup day,
   plus the backup days of the preceding ``history_weeks`` weeks used for
   predictability.
7. **Accuracy evaluation** -- evaluate the historical predictions with the
   lowest-load-window and bucket-ratio metrics, optionally in parallel per
   server, and derive predictability verdicts (Definition 9).

Component runtimes are recorded per run, which is exactly the data behind
Figure 12(a).
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field

from repro.core.config import PipelineConfig
from repro.core.dashboard import Dashboard
from repro.core.endpoints import ScoringEndpoint
from repro.core.incidents import IncidentManager, IncidentSeverity
from repro.core.registry import DeploymentError, ModelRecord, ModelRegistry
from repro.features.classification import ClassificationResult, ServerClassLabel, classify_frame
from repro.features.extractor import FeatureExtractionModule, ServerFeatures
from repro.metrics.evaluation import (
    AccuracyEvaluationModule,
    EvaluationSummary,
    ServerDayEvaluation,
)
from repro.metrics.predictable import PredictabilityVerdict
from repro.models.base import ForecastError, Forecaster
from repro.models.registry import create_forecaster
from repro.parallel.executor import PartitionedExecutor
from repro.storage.datalake import DataLakeStore, ExtractKey
from repro.storage.documentdb import DocumentStore
from repro.timeseries.calendar import MINUTES_PER_DAY, day_index, points_per_day
from repro.timeseries.frame import LoadFrame
from repro.timeseries.series import LoadSeries
from repro.validation.validator import DataValidationModule, ValidationReport

#: Names and canonical order of the timed pipeline components (Figure 12(a)).
PIPELINE_COMPONENTS = (
    "data_ingestion",
    "data_validation",
    "feature_extraction",
    "model_training",
    "model_deployment",
    "inference",
    "accuracy_evaluation",
)


@dataclass
class PipelineRunResult:
    """Everything one pipeline run produced."""

    run_id: str
    region: str
    week: int
    config: PipelineConfig
    succeeded: bool = False
    abort_reason: str = ""
    validation: ValidationReport | None = None
    classification: ClassificationResult | None = None
    features: dict[str, ServerFeatures] = field(default_factory=dict)
    predictions: dict[str, LoadSeries] = field(default_factory=dict)
    backup_days: dict[str, int] = field(default_factory=dict)
    evaluations: list[ServerDayEvaluation] = field(default_factory=list)
    summary: EvaluationSummary | None = None
    predictability: dict[str, PredictabilityVerdict] = field(default_factory=dict)
    model_record: ModelRecord | None = None
    endpoint: ScoringEndpoint | None = None
    timings: dict[str, float] = field(default_factory=dict)
    fell_back: bool = False

    def timing(self, component: str) -> float:
        """Runtime of one component in seconds (0.0 if it did not run)."""
        return self.timings.get(component, 0.0)

    def total_runtime(self) -> float:
        """Total runtime across all timed components."""
        return sum(self.timings.values())

    def as_dict(self) -> dict[str, object]:
        return {
            "run_id": self.run_id,
            "region": self.region,
            "week": self.week,
            "succeeded": self.succeeded,
            "abort_reason": self.abort_reason,
            "timings": dict(self.timings),
            "summary": self.summary.as_dict() if self.summary is not None else None,
            "n_predictions": len(self.predictions),
            "n_predictable": sum(1 for v in self.predictability.values() if v.predictable),
            "fell_back": self.fell_back,
        }


class SeagullPipeline:
    """Orchestrates one region-week run of the Seagull offline components."""

    _run_counter = itertools.count(1)

    def __init__(
        self,
        config: PipelineConfig | None = None,
        data_lake: DataLakeStore | None = None,
        document_store: DocumentStore | None = None,
        model_registry: ModelRegistry | None = None,
        incident_manager: IncidentManager | None = None,
        dashboard: Dashboard | None = None,
    ) -> None:
        self._config = config if config is not None else PipelineConfig()
        self._lake = data_lake
        self._store = document_store
        self._registry = (
            model_registry
            if model_registry is not None
            else ModelRegistry(document_store, self._config.models_container)
        )
        self._incidents = incident_manager if incident_manager is not None else IncidentManager()
        self._dashboard = dashboard if dashboard is not None else Dashboard()
        # Data properties are deduced per region (Section 2.4): region sizes
        # and load distributions differ, so each region gets its own
        # validation module bootstrapped from its first extract.
        self._validators: dict[str, DataValidationModule] = {}
        self._feature_extractor = FeatureExtractionModule(
            bound=self._config.error_bound,
            accuracy_threshold=self._config.accuracy_threshold,
        )
        executor = PartitionedExecutor(self._config.executor_backend, self._config.n_workers)
        self._evaluator = AccuracyEvaluationModule(
            bound=self._config.error_bound,
            accuracy_threshold=self._config.accuracy_threshold,
            executor=executor,
        )
        if self._store is not None:
            self._store.create_container(self._config.results_container)

    # ------------------------------------------------------------------ #
    # Public accessors
    # ------------------------------------------------------------------ #

    @property
    def config(self) -> PipelineConfig:
        return self._config

    @property
    def registry(self) -> ModelRegistry:
        return self._registry

    @property
    def incidents(self) -> IncidentManager:
        return self._incidents

    @property
    def dashboard(self) -> Dashboard:
        return self._dashboard

    # ------------------------------------------------------------------ #
    # Entry points
    # ------------------------------------------------------------------ #

    def run_from_lake(self, region: str, week: int) -> PipelineRunResult:
        """Ingest the region/week extract from the data lake and run."""
        run_id = self._next_run_id(region, week)
        result = PipelineRunResult(run_id=run_id, region=region, week=week, config=self._config)
        if self._lake is None:
            raise DeploymentError("pipeline was constructed without a data lake")
        started = time.perf_counter()
        try:
            frame = self._lake.read_extract(
                ExtractKey(region=region, week=week), self._config.interval_minutes
            )
        except KeyError:
            self._incidents.raise_incident(
                IncidentSeverity.CRITICAL,
                source="data_ingestion",
                message=f"missing input extract for {region} week {week}",
                region=region,
            )
            result.abort_reason = "missing input data"
            result.timings["data_ingestion"] = time.perf_counter() - started
            self._emit_summary(result)
            return result
        result.timings["data_ingestion"] = time.perf_counter() - started
        return self._run_internal(frame, result)

    def run(self, frame: LoadFrame, region: str, week: int) -> PipelineRunResult:
        """Run the pipeline on an already-ingested frame."""
        run_id = self._next_run_id(region, week)
        result = PipelineRunResult(run_id=run_id, region=region, week=week, config=self._config)
        started = time.perf_counter()
        # Ingestion cost for a pre-loaded frame is counting its rows, which
        # mirrors the cheap manifest check production ingestion performs.
        _ = frame.total_points()
        result.timings["data_ingestion"] = time.perf_counter() - started
        return self._run_internal(frame, result)

    # ------------------------------------------------------------------ #
    # Orchestration
    # ------------------------------------------------------------------ #

    def _run_internal(self, frame: LoadFrame, result: PipelineRunResult) -> PipelineRunResult:
        region = result.region
        config = self._config

        # -------------------- Data validation -------------------------- #
        started = time.perf_counter()
        validator = self._validators.setdefault(region, DataValidationModule())
        validation = validator.validate(frame)
        result.timings["data_validation"] = time.perf_counter() - started
        result.validation = validation
        if not validation.passed:
            self._incidents.raise_incident(
                IncidentSeverity.CRITICAL,
                source="data_validation",
                message=f"{len(validation.errors)} validation errors in {region}",
                region=region,
            )
            result.abort_reason = "invalid input data"
            self._emit_summary(result)
            return result

        # -------------------- Feature extraction ----------------------- #
        started = time.perf_counter()
        result.features = self._feature_extractor.extract_frame(frame)
        result.classification = ClassificationResult(
            labels={server_id: features.label for server_id, features in result.features.items()}
        )
        result.timings["feature_extraction"] = time.perf_counter() - started

        # -------------------- Training and inference ------------------- #
        points_day = points_per_day(config.interval_minutes)
        training_minutes = config.training_days * MINUTES_PER_DAY
        min_history_minutes = config.min_history_days * MINUTES_PER_DAY

        training_seconds = 0.0
        inference_seconds = 0.0
        deployed_forecasters: dict[str, Forecaster] = {}
        eval_predictions: dict[str, LoadSeries] = {}
        eval_days: dict[str, list[int]] = {}

        for server_id, metadata, series in frame.items():
            label = result.features[server_id].label
            if label is ServerClassLabel.SHORT_LIVED or series.is_empty:
                continue
            backup_day = day_index(metadata.default_backup_start)
            result.backup_days[server_id] = backup_day

            # Days whose predictions feed the predictability check: the same
            # weekday in each of the preceding history_weeks weeks.
            history_days = [
                backup_day - 7 * offset for offset in range(1, config.history_weeks + 1)
            ]
            server_days: list[int] = []
            combined_prediction: LoadSeries | None = None
            for day in sorted(history_days) + [backup_day]:
                day_start = day * MINUTES_PER_DAY
                history = series.slice(day_start - training_minutes, day_start)
                if history.is_empty or history.span_minutes < min_history_minutes:
                    continue
                forecaster = create_forecaster(config.model_name)
                try:
                    train_started = time.perf_counter()
                    forecaster.fit(history)
                    training_seconds += time.perf_counter() - train_started

                    infer_started = time.perf_counter()
                    prediction = forecaster.predict(points_day * config.horizon_days)
                    inference_seconds += time.perf_counter() - infer_started
                except ForecastError:
                    continue
                if day == backup_day:
                    deployed_forecasters[server_id] = forecaster
                    result.predictions[server_id] = prediction
                else:
                    server_days.append(day)
                if combined_prediction is None:
                    combined_prediction = prediction
                else:
                    combined_prediction = combined_prediction.concat(prediction)
            if combined_prediction is not None and server_days:
                eval_predictions[server_id] = combined_prediction
                eval_days[server_id] = server_days

        result.timings["model_training"] = training_seconds
        result.timings["inference"] = inference_seconds

        # -------------------- Model deployment ------------------------- #
        started = time.perf_counter()
        record = self._registry.deploy(
            region=region,
            model_name=config.model_name,
            trained_week=result.week,
            notes=f"run {result.run_id}",
        )
        endpoint = ScoringEndpoint(
            region=region,
            model_name=config.model_name,
            version=record.version,
            forecasters=deployed_forecasters,
        )
        result.model_record = record
        result.endpoint = endpoint
        result.timings["model_deployment"] = time.perf_counter() - started

        # -------------------- Accuracy evaluation ---------------------- #
        started = time.perf_counter()
        result.evaluations = self._evaluator.evaluate(frame, eval_predictions, eval_days)
        result.summary = self._evaluator.summarize(
            result.evaluations, required_days=config.history_weeks
        )
        result.predictability = self._evaluator.predictability(
            frame, eval_predictions, eval_days, required_days=config.history_weeks
        )
        result.timings["accuracy_evaluation"] = time.perf_counter() - started

        # -------------------- Accuracy tracking and fallback ----------- #
        accuracy = result.summary.pct_windows_correct if result.summary else float("nan")
        try:
            result.model_record = self._registry.record_accuracy(region, record.version, accuracy)
        except DeploymentError:
            pass
        if (
            config.fallback_on_regression
            and accuracy == accuracy  # not NaN
            and accuracy < config.fallback_threshold_pct
        ):
            try:
                fallback_record = self._registry.fallback(region)
                result.fell_back = True
                result.model_record = fallback_record
                self._incidents.raise_incident(
                    IncidentSeverity.WARNING,
                    source="accuracy_evaluation",
                    message=(
                        f"accuracy {accuracy:.1f}% below threshold "
                        f"{config.fallback_threshold_pct:.1f}%, fell back to "
                        f"version {fallback_record.version}"
                    ),
                    region=region,
                )
            except DeploymentError:
                self._incidents.raise_incident(
                    IncidentSeverity.WARNING,
                    source="accuracy_evaluation",
                    message=(
                        f"accuracy {accuracy:.1f}% below threshold but no known-good "
                        "prior version exists"
                    ),
                    region=region,
                )

        result.succeeded = True
        self._persist(result)
        self._emit_summary(result)
        return result

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #

    def _next_run_id(self, region: str, week: int) -> str:
        return f"run-{next(self._run_counter):05d}-{region}-w{week}"

    def _persist(self, result: PipelineRunResult) -> None:
        if self._store is None:
            return
        self._store.upsert(self._config.results_container, result.run_id, result.as_dict())

    def _emit_summary(self, result: PipelineRunResult) -> None:
        for component, seconds in result.timings.items():
            self._dashboard.record(
                result.run_id,
                result.region,
                "component_timing",
                {"component": component, "seconds": seconds},
            )
        self._dashboard.record(result.run_id, result.region, "run_summary", result.as_dict())
