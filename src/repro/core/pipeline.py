"""The Seagull pipeline (Figure 1's use-case-agnostic offline components).

One run of the pipeline processes one weekly extract of one region:

1. **Data ingestion** -- read the extract (from the data lake or a frame).
2. **Data validation** -- schema/bound anomaly detection; invalid extracts
   raise a critical incident and abort the run.
3. **Feature extraction** -- per-server features and classification.
4. **Model training** -- fit the configured forecaster per server on the
   training window preceding each prediction day.
5. **Model deployment** -- register the new model version and expose it
   behind a scoring endpoint.
6. **Inference** -- predict the load of each server's upcoming backup day,
   plus the backup days of the preceding ``history_weeks`` weeks used for
   predictability.
7. **Accuracy evaluation** -- evaluate the historical predictions with the
   lowest-load-window and bucket-ratio metrics, optionally in parallel per
   server, and derive predictability verdicts (Definition 9).

Component runtimes are recorded per run, which is exactly the data behind
Figure 12(a).

The heavy stages (feature extraction, model training + inference, accuracy
evaluation) have stable inputs and outputs and can be served from an
:class:`~repro.storage.artifacts.ArtifactStore`: when the extract content
hash and the relevant configuration are unchanged since a previous run,
the stage output is decoded from the cache instead of recomputed.  Cache
decisions are recorded per stage in ``PipelineRunResult.cache_events``.
"""

from __future__ import annotations

import contextlib
import itertools
import time
from dataclasses import dataclass, field

from repro.core import stage_cache
from repro.core.config import PipelineConfig
from repro.core.dashboard import Dashboard
from repro.core.incidents import IncidentManager, IncidentSeverity
from repro.core.registry import DeploymentError, ModelRecord, ModelRegistry
from repro.features.classification import ClassificationResult, ServerClassLabel, classify_frame
from repro.features.extractor import FeatureExtractionModule, ServerFeatures
from repro.metrics.evaluation import (
    AccuracyEvaluationModule,
    EvaluationSummary,
    ServerDayEvaluation,
)
from repro.metrics.predictable import PredictabilityVerdict
from repro.models.base import ForecastError, Forecaster
from repro.models.cached import PrecomputedForecaster
from repro.models.registry import create_forecaster
from repro.parallel.executor import PartitionedExecutor
from repro.serving.api import BatchPredictionResponse  # repro: allow[import-layering] the pipeline deploys into serving by design (PR 4); serving never imports pipeline
from repro.serving.service import PredictionService  # repro: allow[import-layering] the pipeline deploys into serving by design (PR 4); serving never imports pipeline
from repro.storage.artifacts import ArtifactStore, artifact_key
from repro.storage.datalake import DataLakeStore, ExtractKey
from repro.storage.query import ExtractQuery
from repro.storage.documentdb import DocumentStore
from repro.timeseries.calendar import MINUTES_PER_DAY, day_index, points_per_day
from repro.timeseries.frame import LoadFrame
from repro.timeseries.series import LoadSeries
from repro.validation.validator import DataValidationModule, ValidationReport

#: Names and canonical order of the timed pipeline components (Figure 12(a)).
PIPELINE_COMPONENTS = (
    "data_ingestion",
    "data_validation",
    "feature_extraction",
    "model_training",
    "model_deployment",
    "inference",
    "accuracy_evaluation",
)


@dataclass
class PipelineRunResult:
    """Everything one pipeline run produced."""

    run_id: str
    region: str
    week: int
    config: PipelineConfig
    succeeded: bool = False
    abort_reason: str = ""
    validation: ValidationReport | None = None
    classification: ClassificationResult | None = None
    features: dict[str, ServerFeatures] = field(default_factory=dict)
    predictions: dict[str, LoadSeries] = field(default_factory=dict)
    backup_days: dict[str, int] = field(default_factory=dict)
    evaluations: list[ServerDayEvaluation] = field(default_factory=list)
    summary: EvaluationSummary | None = None
    predictability: dict[str, PredictabilityVerdict] = field(default_factory=dict)
    model_record: ModelRecord | None = None
    #: Serving metadata of the inference batch (cache hits, latency,
    #: skipped/failed servers); ``None`` when nothing was deployed.
    serving: BatchPredictionResponse | None = None
    timings: dict[str, float] = field(default_factory=dict)
    fell_back: bool = False
    #: Per-stage artifact-cache decisions: ``"hit"`` or ``"miss"``; empty
    #: when the pipeline runs without an artifact cache.
    cache_events: dict[str, str] = field(default_factory=dict)

    def timing(self, component: str) -> float:
        """Runtime of one component in seconds (0.0 if it did not run)."""
        return self.timings.get(component, 0.0)

    def total_runtime(self) -> float:
        """Total runtime across all timed components."""
        return sum(self.timings.values())

    def as_dict(self) -> dict[str, object]:
        return {
            "run_id": self.run_id,
            "region": self.region,
            "week": self.week,
            "succeeded": self.succeeded,
            "abort_reason": self.abort_reason,
            "timings": dict(self.timings),
            "summary": self.summary.as_dict() if self.summary is not None else None,
            "n_predictions": len(self.predictions),
            "n_predictable": sum(1 for v in self.predictability.values() if v.predictable),
            "fell_back": self.fell_back,
            "cache_events": dict(self.cache_events),
            "serving": self.serving.as_dict() if self.serving is not None else None,
        }


@dataclass
class _DeployableModels:
    """Output of the training stage handed to deployment and evaluation."""

    forecasters: dict[str, Forecaster]
    eval_predictions: dict[str, LoadSeries]
    eval_days: dict[str, list[int]]
    #: Seconds spent on history-day inference during training (the
    #: backup-day horizon is served through the serving layer afterwards).
    inference_seconds: float = 0.0
    #: Artifact-cache key to store the stage output under once the served
    #: backup-day predictions are known; ``None`` on a cache hit or when
    #: caching is off.
    cache_key: str | None = None


class SeagullPipeline:
    """Orchestrates one region-week run of the Seagull offline components."""

    _run_counter = itertools.count(1)

    def __init__(
        self,
        config: PipelineConfig | None = None,
        data_lake: DataLakeStore | None = None,
        document_store: DocumentStore | None = None,
        model_registry: ModelRegistry | None = None,
        incident_manager: IncidentManager | None = None,
        dashboard: Dashboard | None = None,
        artifact_cache: ArtifactStore | None = None,
        executor: PartitionedExecutor | None = None,
        serving: PredictionService | None = None,
    ) -> None:
        self._config = config if config is not None else PipelineConfig()
        self._lake = data_lake
        self._store = document_store
        self._incidents = incident_manager if incident_manager is not None else IncidentManager()
        self._dashboard = dashboard if dashboard is not None else Dashboard()
        # The pipeline deploys fitted models *into* the serving layer and
        # serves its own backup-day inference through it.  An injected
        # service must share one registry with the pipeline, otherwise
        # accuracy tracking and fallback would diverge from routing.
        if serving is not None:
            if model_registry is not None and serving.registry is not model_registry:
                raise ValueError(
                    "serving and model_registry must share the same ModelRegistry"
                )
            if document_store is not None and serving.registry.store is None:
                # Refuse loudly: silently adopting the service's in-memory
                # registry would stop persisting model records to the
                # document store this pipeline was explicitly given.
                raise ValueError(
                    "pipeline has a document store but the injected serving's "
                    "registry does not persist records; construct the "
                    "PredictionService with ModelRegistry(document_store, ...)"
                )
            self._registry = serving.registry
            self._serving = serving
        else:
            self._registry = (
                model_registry
                if model_registry is not None
                else ModelRegistry(document_store, self._config.models_container)
            )
            self._serving = PredictionService(
                registry=self._registry, dashboard=self._dashboard
            )
        self._artifacts = artifact_cache
        # Data properties are deduced per region (Section 2.4): region sizes
        # and load distributions differ, so each region gets its own
        # validation module bootstrapped from its first extract.
        self._validators: dict[str, DataValidationModule] = {}
        self._feature_extractor = FeatureExtractionModule(
            bound=self._config.error_bound,
            accuracy_threshold=self._config.accuracy_threshold,
        )
        # An injected executor is shared with (and owned by) the caller --
        # the fleet orchestrator reuses one worker pool across many runs
        # instead of paying pool start-up per pipeline.
        self._owns_executor = executor is None
        if executor is None:
            executor = PartitionedExecutor(self._config.executor_backend, self._config.n_workers)
        self._executor = executor
        self._evaluator = AccuracyEvaluationModule(
            bound=self._config.error_bound,
            accuracy_threshold=self._config.accuracy_threshold,
            executor=executor,
        )
        if self._store is not None:
            self._store.create_container(self._config.results_container)

    # ------------------------------------------------------------------ #
    # Public accessors
    # ------------------------------------------------------------------ #

    @property
    def config(self) -> PipelineConfig:
        return self._config

    @property
    def registry(self) -> ModelRegistry:
        return self._registry

    @property
    def serving(self) -> PredictionService:
        """The serving layer this pipeline deploys into."""
        return self._serving

    @property
    def incidents(self) -> IncidentManager:
        return self._incidents

    @property
    def dashboard(self) -> Dashboard:
        return self._dashboard

    @property
    def artifact_cache(self) -> ArtifactStore | None:
        return self._artifacts

    def close(self) -> None:
        """Release the evaluation worker pool if this pipeline created it.

        Injected executors belong to the caller and are left running.
        Serial pipelines (the default) never create a pool, so closing is
        only required for long-lived processes that construct many
        pipelines with parallel backends.
        """
        if self._owns_executor:
            self._executor.close()

    def __enter__(self) -> "SeagullPipeline":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Entry points
    # ------------------------------------------------------------------ #

    def run_from_lake(self, region: str, week: int) -> PipelineRunResult:
        """Ingest the region/week extract from the data lake and run.

        Ingestion goes through the lake's declarative query surface: one
        :class:`~repro.storage.query.ExtractQuery` pinned to the
        ``(region, week)`` partition.  A query matching no stored extract
        (``stats.extracts_scanned == 0``) aborts the run with the
        missing-input incident, exactly as the old keyed read did.
        """
        run_id = self._next_run_id(region, week)
        result = PipelineRunResult(run_id=run_id, region=region, week=week, config=self._config)
        if self._lake is None:
            raise DeploymentError("pipeline was constructed without a data lake")
        started = time.perf_counter()
        query = ExtractQuery.for_key(
            ExtractKey(region=region, week=week),
            interval_minutes=self._config.interval_minutes,
        )
        answer = self._lake.query(query)
        if answer.stats.extracts_scanned == 0:
            self._incidents.raise_incident(
                IncidentSeverity.CRITICAL,
                source="data_ingestion",
                message=f"missing input extract for {region} week {week}",
                region=region,
            )
            result.abort_reason = "missing input data"
            result.timings["data_ingestion"] = time.perf_counter() - started
            self._emit_summary(result)
            return result
        result.timings["data_ingestion"] = time.perf_counter() - started
        return self._run_internal(answer.frame, result)

    def run(self, frame: LoadFrame, region: str, week: int) -> PipelineRunResult:
        """Run the pipeline on an already-ingested frame."""
        run_id = self._next_run_id(region, week)
        result = PipelineRunResult(run_id=run_id, region=region, week=week, config=self._config)
        started = time.perf_counter()
        # Ingestion cost for a pre-loaded frame is counting its rows, which
        # mirrors the cheap manifest check production ingestion performs.
        _ = frame.total_points()
        result.timings["data_ingestion"] = time.perf_counter() - started
        return self._run_internal(frame, result)

    # ------------------------------------------------------------------ #
    # Orchestration
    # ------------------------------------------------------------------ #

    def _run_internal(self, frame: LoadFrame, result: PipelineRunResult) -> PipelineRunResult:
        if not self._stage_validation(frame, result):
            self._emit_summary(result)
            return result
        # One content hash per run keys every cacheable stage; it is only
        # computed when a cache is attached (hashing is cheap relative to
        # any stage, but not free).
        content_hash = frame.content_hash() if self._artifacts is not None else ""
        self._stage_features(frame, result, content_hash)
        deployed = self._stage_train(frame, result, content_hash)
        self._stage_deploy(result, deployed.forecasters)
        self._stage_inference(result, deployed)
        self._stage_evaluate(frame, result, content_hash, deployed)
        self._stage_track_accuracy(result)

        result.succeeded = True
        self._persist(result)
        self._emit_summary(result)
        return result

    # ------------------------------------------------------------------ #
    # Stages
    # ------------------------------------------------------------------ #

    def _stage_validation(self, frame: LoadFrame, result: PipelineRunResult) -> bool:
        """Validate the frame; returns whether the run may proceed."""
        region = result.region
        started = time.perf_counter()
        validator = self._validators.setdefault(region, DataValidationModule())
        validation = validator.validate(frame)
        result.timings["data_validation"] = time.perf_counter() - started
        result.validation = validation
        if not validation.passed:
            self._incidents.raise_incident(
                IncidentSeverity.CRITICAL,
                source="data_validation",
                message=f"{len(validation.errors)} validation errors in {region}",
                region=region,
            )
            result.abort_reason = "invalid input data"
            return False
        return True

    def _cache_lookup(
        self,
        stage: str,
        content_hash: str,
        params: dict[str, object],
        result: PipelineRunResult,
    ) -> tuple[str | None, dict[str, object] | None]:
        """Consult the artifact cache for one stage; records the event."""
        if self._artifacts is None:
            return None, None
        key = artifact_key(stage, content_hash, params)
        payload = self._artifacts.get(key)
        result.cache_events[stage] = "hit" if payload is not None else "miss"
        return key, payload

    def _cache_store(self, key: str | None, payload: dict[str, object]) -> None:
        if self._artifacts is not None and key is not None:
            self._artifacts.put(key, payload)

    def _stage_features(
        self, frame: LoadFrame, result: PipelineRunResult, content_hash: str
    ) -> None:
        """Feature extraction, served from the artifact cache when possible."""
        started = time.perf_counter()
        key, payload = self._cache_lookup(
            stage_cache.STAGE_FEATURES,
            content_hash,
            stage_cache.features_params(self._config),
            result,
        )
        features: dict[str, ServerFeatures] | None = None
        if payload is not None:
            try:
                features = stage_cache.decode_features(payload)
            except Exception:
                result.cache_events[stage_cache.STAGE_FEATURES] = "miss"
                features = None
        if features is None:
            features = self._feature_extractor.extract_frame(frame)
            if key is not None:
                self._cache_store(key, stage_cache.encode_features(features))
        result.features = features
        result.classification = ClassificationResult(
            labels={server_id: f.label for server_id, f in features.items()}
        )
        result.timings["feature_extraction"] = time.perf_counter() - started

    def _stage_train(
        self, frame: LoadFrame, result: PipelineRunResult, content_hash: str
    ) -> "_DeployableModels":
        """Per-server model fitting plus history-day inference.

        The backup-day horizon itself is *not* predicted here: the fitted
        forecasters are deployed into the serving layer and the pipeline
        asks :class:`~repro.serving.service.PredictionService` for them in
        :meth:`_stage_inference`, like every other consumer.  On a cache
        hit the fitted models are not re-created; the cached backup-day
        predictions are wrapped in
        :class:`~repro.models.cached.PrecomputedForecaster` instances so
        the deployed version serves identical values.
        """
        config = self._config
        started = time.perf_counter()
        key, payload = self._cache_lookup(
            stage_cache.STAGE_TRAIN_INFER,
            content_hash,
            stage_cache.train_infer_params(config),
            result,
        )
        if payload is not None:
            try:
                backup_days, predictions, eval_predictions, eval_days = (
                    stage_cache.decode_train_infer(payload)
                )
                result.backup_days = backup_days
                forecasters: dict[str, Forecaster] = {
                    server_id: PrecomputedForecaster(prediction, config.model_name)
                    for server_id, prediction in predictions.items()
                }
                result.timings["model_training"] = time.perf_counter() - started
                return _DeployableModels(forecasters, eval_predictions, eval_days)
            except Exception:
                result.cache_events[stage_cache.STAGE_TRAIN_INFER] = "miss"

        points_day = points_per_day(config.interval_minutes)
        training_minutes = config.training_days * MINUTES_PER_DAY
        min_history_minutes = config.min_history_days * MINUTES_PER_DAY

        training_seconds = 0.0
        inference_seconds = 0.0
        deployed_forecasters: dict[str, Forecaster] = {}
        eval_predictions: dict[str, LoadSeries] = {}
        eval_days: dict[str, list[int]] = {}

        for server_id, metadata, series in frame.items():
            label = result.features[server_id].label
            if label is ServerClassLabel.SHORT_LIVED or series.is_empty:
                continue
            backup_day = day_index(metadata.default_backup_start)
            result.backup_days[server_id] = backup_day

            # Days whose predictions feed the predictability check: the same
            # weekday in each of the preceding history_weeks weeks.
            history_days = [
                backup_day - 7 * offset for offset in range(1, config.history_weeks + 1)
            ]
            server_days: list[int] = []
            combined_prediction: LoadSeries | None = None
            for day in sorted(history_days) + [backup_day]:
                day_start = day * MINUTES_PER_DAY
                history = series.slice(day_start - training_minutes, day_start)
                if history.is_empty or history.span_minutes < min_history_minutes:
                    continue
                forecaster = create_forecaster(config.model_name)
                try:
                    train_started = time.perf_counter()
                    forecaster.fit(history)
                    training_seconds += time.perf_counter() - train_started
                except ForecastError:
                    continue
                if day == backup_day:
                    deployed_forecasters[server_id] = forecaster
                    continue
                try:
                    infer_started = time.perf_counter()
                    prediction = forecaster.predict(points_day * config.horizon_days)
                    inference_seconds += time.perf_counter() - infer_started
                except ForecastError:
                    continue
                server_days.append(day)
                combined_prediction = (
                    prediction
                    if combined_prediction is None
                    else combined_prediction.concat(prediction)
                )
            if combined_prediction is not None and server_days:
                eval_predictions[server_id] = combined_prediction
                eval_days[server_id] = server_days

        result.timings["model_training"] = training_seconds
        return _DeployableModels(
            deployed_forecasters,
            eval_predictions,
            eval_days,
            inference_seconds=inference_seconds,
            cache_key=key,
        )

    def _stage_deploy(
        self, result: PipelineRunResult, forecasters: dict[str, Forecaster]
    ) -> None:
        """Deploy the fitted models into the serving layer as a new version."""
        config = self._config
        started = time.perf_counter()
        result.model_record = self._serving.deploy(
            region=result.region,
            model_name=config.model_name,
            trained_week=result.week,
            forecasters=forecasters,
            notes=f"run {result.run_id}",
        )
        result.timings["model_deployment"] = time.perf_counter() - started

    def _stage_inference(
        self, result: PipelineRunResult, deployed: "_DeployableModels"
    ) -> None:
        """Serve the backup-day horizon through the prediction service.

        The pipeline consumes its own deployment exactly like the backup
        scheduler or the autoscale predictor would: one batched request
        against the region's active version.  Completing the stage also
        persists the train/infer artifact-cache entry (it needs the served
        predictions).
        """
        config = self._config
        started = time.perf_counter()
        if deployed.forecasters:
            batch = self._serving.predict_batch(
                region=result.region,
                n_points=points_per_day(config.interval_minutes) * config.horizon_days,
                server_ids=sorted(deployed.forecasters),
            )
            result.serving = batch
            result.predictions = batch.predictions()
        result.timings["inference"] = deployed.inference_seconds + (
            time.perf_counter() - started
        )
        if deployed.cache_key is not None:
            self._cache_store(
                deployed.cache_key,
                stage_cache.encode_train_infer(
                    result.backup_days,
                    result.predictions,
                    deployed.eval_predictions,
                    deployed.eval_days,
                ),
            )

    def _stage_evaluate(
        self,
        frame: LoadFrame,
        result: PipelineRunResult,
        content_hash: str,
        deployed: "_DeployableModels",
    ) -> None:
        """Historical accuracy evaluation and predictability verdicts."""
        config = self._config
        started = time.perf_counter()
        key, payload = self._cache_lookup(
            stage_cache.STAGE_EVALUATION,
            content_hash,
            stage_cache.evaluation_params(config),
            result,
        )
        if payload is not None:
            try:
                evaluations, summary, predictability = stage_cache.decode_evaluation(payload)
                result.evaluations = evaluations
                result.summary = summary
                result.predictability = predictability
                result.timings["accuracy_evaluation"] = time.perf_counter() - started
                return
            except Exception:
                result.cache_events[stage_cache.STAGE_EVALUATION] = "miss"
        result.evaluations = self._evaluator.evaluate(
            frame, deployed.eval_predictions, deployed.eval_days
        )
        result.summary = self._evaluator.summarize(
            result.evaluations, required_days=config.history_weeks
        )
        result.predictability = self._evaluator.predictability(
            frame, deployed.eval_predictions, deployed.eval_days,
            required_days=config.history_weeks,
        )
        result.timings["accuracy_evaluation"] = time.perf_counter() - started
        if key is not None:
            self._cache_store(
                key,
                stage_cache.encode_evaluation(
                    result.evaluations, result.summary, result.predictability
                ),
            )

    def _stage_track_accuracy(self, result: PipelineRunResult) -> None:
        """Record evaluated accuracy; fall back on regression (Section 2.2)."""
        config = self._config
        region = result.region
        record = result.model_record
        accuracy = result.summary.pct_windows_correct if result.summary else float("nan")
        if record is not None:
            with contextlib.suppress(DeploymentError):
                result.model_record = self._registry.record_accuracy(
                    region, record.version, accuracy
                )
        if (
            config.fallback_on_regression
            and accuracy == accuracy  # not NaN
            and accuracy < config.fallback_threshold_pct
        ):
            try:
                fallback_record = self._registry.fallback(region)
                result.fell_back = True
                result.model_record = fallback_record
                self._incidents.raise_incident(
                    IncidentSeverity.WARNING,
                    source="accuracy_evaluation",
                    message=(
                        f"accuracy {accuracy:.1f}% below threshold "
                        f"{config.fallback_threshold_pct:.1f}%, fell back to "
                        f"version {fallback_record.version}"
                    ),
                    region=region,
                )
            except DeploymentError:
                self._incidents.raise_incident(
                    IncidentSeverity.WARNING,
                    source="accuracy_evaluation",
                    message=(
                        f"accuracy {accuracy:.1f}% below threshold but no known-good "
                        "prior version exists"
                    ),
                    region=region,
                )

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #

    def _next_run_id(self, region: str, week: int) -> str:
        return f"run-{next(self._run_counter):05d}-{region}-w{week}"

    def _persist(self, result: PipelineRunResult) -> None:
        if self._store is None:
            return
        self._store.upsert(self._config.results_container, result.run_id, result.as_dict())

    def _emit_summary(self, result: PipelineRunResult) -> None:
        for component, seconds in result.timings.items():
            self._dashboard.record(
                result.run_id,
                result.region,
                "component_timing",
                {"component": component, "seconds": seconds},
            )
        self._dashboard.record(result.run_id, result.region, "run_summary", result.as_dict())
        if result.model_record is not None:
            self._dashboard.record(
                result.run_id,
                result.region,
                "serving_health",
                self._serving.health(result.region),
            )
