"""Application-Insights-style dashboard (Section 2.2).

Provides a summarised view of pipeline runs for real-time monitoring:
per-run component timings, validation outcomes, accuracy summaries and any
incidents raised, queryable per region and renderable as a text summary.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field


@dataclass(frozen=True)
class DashboardEvent:
    """One telemetry event emitted by a pipeline run."""

    run_id: str
    region: str
    kind: str
    payload: dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> dict[str, object]:
        return {
            "run_id": self.run_id,
            "region": self.region,
            "kind": self.kind,
            "payload": dict(self.payload),
        }


class Dashboard:
    """Collects :class:`DashboardEvent` records and summarises them."""

    def __init__(self) -> None:
        self._events: list[DashboardEvent] = []

    def record(self, run_id: str, region: str, kind: str, payload: Mapping[str, object]) -> DashboardEvent:
        """Record one event."""
        event = DashboardEvent(run_id=run_id, region=region, kind=kind, payload=dict(payload))
        self._events.append(event)
        return event

    def events(self, region: str | None = None, kind: str | None = None) -> list[DashboardEvent]:
        """Return recorded events, optionally filtered."""
        result = self._events
        if region is not None:
            result = [e for e in result if e.region == region]
        if kind is not None:
            result = [e for e in result if e.kind == kind]
        return list(result)

    def runs(self, region: str | None = None) -> list[str]:
        """Distinct run ids, oldest first."""
        seen: dict[str, None] = {}
        for event in self.events(region=region):
            seen.setdefault(event.run_id, None)
        return list(seen)

    def latest_summary(self, region: str) -> dict[str, object] | None:
        """The most recent run-summary payload for a region, if any."""
        summaries = self.events(region=region, kind="run_summary")
        if not summaries:
            return None
        return dict(summaries[-1].payload)

    def render_text(self, region: str | None = None) -> str:
        """Render a plain-text view of recent runs (for CLI examples)."""
        lines = ["Seagull pipeline dashboard", "=" * 30]
        for run_id in self.runs(region=region):
            run_events = [e for e in self._events if e.run_id == run_id]
            region_name = run_events[0].region if run_events else "?"
            lines.append(f"run {run_id} ({region_name})")
            for event in run_events:
                if event.kind == "component_timing":
                    component = event.payload.get("component", "?")
                    seconds = event.payload.get("seconds", float("nan"))
                    lines.append(f"  - {component}: {seconds:.3f}s")
                elif event.kind == "run_summary":
                    for key, value in sorted(event.payload.items()):
                        lines.append(f"  * {key}: {value}")
        return "\n".join(lines)
