"""Seagull core: the use-case-agnostic pipeline and its supporting services.

This package is the reproduction of Figure 1's use-case-agnostic offline
components:

* :mod:`~repro.core.config` -- pipeline configuration (region, model,
  error bound, horizon, executor backend).
* :mod:`~repro.core.pipeline` -- the AML-pipeline equivalent: data
  ingestion, validation, feature extraction, model training, deployment,
  inference and accuracy evaluation, with per-component timing.
* :mod:`~repro.core.registry` -- model deployment and version tracking,
  including fallback to the last known-good model.
* :mod:`~repro.core.endpoints` -- the "REST endpoint" abstraction that
  serves predictions for a deployed model version (an internal transport
  of :mod:`repro.serving`; consumers address the serving API instead).
* :mod:`~repro.core.scheduler` -- the recurring pipeline scheduler (one run
  per region per week).
* :mod:`~repro.core.incidents` -- incident management (alerts raised on
  validation failures, model regressions, run errors).
* :mod:`~repro.core.dashboard` -- the Application-Insights-style dashboard
  summarising pipeline runs.
"""

from repro.core.config import PipelineConfig
from repro.core.dashboard import Dashboard, DashboardEvent
from repro.core.drift import (
    DriftDetector,
    DriftReport,
    DriftThresholds,
    LoadWindowDriftDetector,
    WindowDriftReport,
    WindowDriftThresholds,
    WindowSummary,
)
from repro.core.endpoints import BatchScoringResult, ScoringEndpoint
from repro.core.incidents import Incident, IncidentManager, IncidentSeverity
from repro.core.pipeline import PipelineRunResult, SeagullPipeline
from repro.core.registry import ModelRecord, ModelRegistry, ModelStatus
from repro.core.scheduler import PipelineScheduler, ScheduledRun

__all__ = [
    "PipelineConfig",
    "SeagullPipeline",
    "PipelineRunResult",
    "ModelRegistry",
    "ModelRecord",
    "ModelStatus",
    "ScoringEndpoint",
    "BatchScoringResult",
    "PipelineScheduler",
    "ScheduledRun",
    "IncidentManager",
    "Incident",
    "IncidentSeverity",
    "Dashboard",
    "DashboardEvent",
    "DriftDetector",
    "DriftReport",
    "DriftThresholds",
    "LoadWindowDriftDetector",
    "WindowDriftReport",
    "WindowDriftThresholds",
    "WindowSummary",
]
