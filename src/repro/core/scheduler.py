"""Pipeline scheduler (Section 2.2).

Servers are due for full backup at least once a week, so the AML pipeline
is scheduled to run once a week per region.  The scheduler keeps a simple
simulated clock expressed in weeks, remembers which (region, week) pairs
have already run, and drives the pipeline for all regions that are due.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

from repro.core.pipeline import PipelineRunResult, SeagullPipeline


@dataclass(frozen=True)
class ScheduledRun:
    """One pipeline execution performed by the scheduler."""

    region: str
    week: int
    result: PipelineRunResult


class PipelineScheduler:
    """Runs the pipeline once per region per week.

    The scheduler is deliberately synchronous and deterministic: advancing
    the clock by one week triggers one run per registered region, which is
    all the reproduction (and the tests) need to exercise the recurring
    behaviour described in the paper.
    """

    def __init__(self, pipeline: SeagullPipeline, regions: Iterable[str]) -> None:
        self._pipeline = pipeline
        self._regions = list(dict.fromkeys(regions))
        if not self._regions:
            raise ValueError("the scheduler needs at least one region")
        self._completed: dict[tuple[str, int], ScheduledRun] = {}
        self._current_week = 0

    @property
    def current_week(self) -> int:
        return self._current_week

    @property
    def regions(self) -> list[str]:
        return list(self._regions)

    def completed_runs(self) -> list[ScheduledRun]:
        """All runs performed so far, in execution order."""
        return list(self._completed.values())

    def has_run(self, region: str, week: int) -> bool:
        return (region, week) in self._completed

    def run_week(self, week: int | None = None) -> list[ScheduledRun]:
        """Run every region that has not yet run for ``week``.

        When ``week`` is omitted the scheduler's current week is used.
        """
        week = self._current_week if week is None else week
        runs: list[ScheduledRun] = []
        for region in self._regions:
            if self.has_run(region, week):
                continue
            result = self._pipeline.run_from_lake(region, week)
            run = ScheduledRun(region=region, week=week, result=result)
            self._completed[(region, week)] = run
            runs.append(run)
        return runs

    def advance_week(self) -> list[ScheduledRun]:
        """Run the current week's due pipelines, then move the clock forward."""
        runs = self.run_week(self._current_week)
        self._current_week += 1
        return runs
