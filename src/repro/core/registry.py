"""Model deployment and version tracking (Section 2.2).

Every pipeline run deploys a model version per region.  The registry tracks
all versions, knows which one is active, records the evaluated accuracy of
each version and supports falling back to the previously known-good version
when a new deployment regresses -- the behaviour summarised in the abstract
as "fallback to previously known good models".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.storage.documentdb import DocumentStore


class ModelStatus(enum.Enum):
    """Lifecycle states of a deployed model version."""

    ACTIVE = "active"
    RETIRED = "retired"
    FAILED = "failed"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class DeploymentError(RuntimeError):
    """Raised when a deployment or fallback cannot be performed."""


@dataclass(frozen=True)
class ModelRecord:
    """One deployed model version for one region."""

    region: str
    version: int
    model_name: str
    trained_week: int
    status: ModelStatus = ModelStatus.ACTIVE
    accuracy_pct: float = float("nan")
    notes: str = ""

    @property
    def key(self) -> str:
        return f"{self.region}:v{self.version}"

    def as_dict(self) -> dict[str, object]:
        return {
            "region": self.region,
            "version": self.version,
            "model_name": self.model_name,
            "trained_week": self.trained_week,
            "status": self.status.value,
            "accuracy_pct": self.accuracy_pct,
            "notes": self.notes,
        }


class ModelRegistry:
    """Tracks deployed model versions per region."""

    def __init__(self, store: DocumentStore | None = None, container: str = "seagull_models") -> None:
        self._records: dict[str, list[ModelRecord]] = {}
        self._store = store
        self._container = container
        if self._store is not None:
            self._store.create_container(container)

    @property
    def store(self) -> DocumentStore | None:
        """The document store records are persisted to (``None`` = in-memory)."""
        return self._store

    # ------------------------------------------------------------------ #

    def deploy(
        self,
        region: str,
        model_name: str,
        trained_week: int,
        notes: str = "",
    ) -> ModelRecord:
        """Register a new model version for a region and make it active.

        The previously active version (if any) is retired but kept as the
        fallback candidate.
        """
        versions = self._records.setdefault(region, [])
        next_version = len(versions) + 1
        for index, record in enumerate(versions):
            if record.status is ModelStatus.ACTIVE:
                versions[index] = replace(record, status=ModelStatus.RETIRED)
        record = ModelRecord(
            region=region,
            version=next_version,
            model_name=model_name,
            trained_week=trained_week,
            status=ModelStatus.ACTIVE,
            notes=notes,
        )
        versions.append(record)
        self._persist(record)
        return record

    def record_accuracy(self, region: str, version: int, accuracy_pct: float) -> ModelRecord:
        """Attach an evaluated accuracy to a deployed version."""
        versions = self._records.get(region, [])
        for index, record in enumerate(versions):
            if record.version == version:
                updated = replace(record, accuracy_pct=accuracy_pct)
                versions[index] = updated
                self._persist(updated)
                return updated
        raise DeploymentError(f"no version {version} deployed in region {region!r}")

    def mark_failed(self, region: str, version: int, notes: str = "") -> ModelRecord:
        """Mark a version as failed (e.g. deployment error or regression)."""
        versions = self._records.get(region, [])
        for index, record in enumerate(versions):
            if record.version == version:
                updated = replace(record, status=ModelStatus.FAILED, notes=notes or record.notes)
                versions[index] = updated
                self._persist(updated)
                return updated
        raise DeploymentError(f"no version {version} deployed in region {region!r}")

    def fallback(self, region: str) -> ModelRecord:
        """Fall back to the most recent known-good (non-failed) prior version.

        The currently active version is marked failed; the chosen prior
        version becomes active again.
        """
        versions = self._records.get(region, [])
        if not versions:
            raise DeploymentError(f"no deployments recorded for region {region!r}")
        active_index = next(
            (i for i, r in enumerate(versions) if r.status is ModelStatus.ACTIVE), None
        )
        candidates = [
            (i, r)
            for i, r in enumerate(versions)
            if r.status is ModelStatus.RETIRED and (active_index is None or i < active_index)
        ]
        if not candidates:
            raise DeploymentError(f"no known-good prior version to fall back to in {region!r}")
        if active_index is not None:
            versions[active_index] = replace(
                versions[active_index], status=ModelStatus.FAILED, notes="regression fallback"
            )
            self._persist(versions[active_index])
        index, record = candidates[-1]
        restored = replace(record, status=ModelStatus.ACTIVE, notes="restored by fallback")
        versions[index] = restored
        self._persist(restored)
        return restored

    # ------------------------------------------------------------------ #

    def active(self, region: str) -> ModelRecord | None:
        """The currently active version for a region, if any."""
        for record in reversed(self._records.get(region, [])):
            if record.status is ModelStatus.ACTIVE:
                return record
        return None

    def versions(self, region: str) -> list[ModelRecord]:
        """All versions deployed for a region, oldest first."""
        return list(self._records.get(region, []))

    def regions(self) -> list[str]:
        """Regions with at least one deployment."""
        return sorted(self._records)

    # ------------------------------------------------------------------ #

    def _persist(self, record: ModelRecord) -> None:
        if self._store is None:
            return
        self._store.upsert(self._container, record.key, record.as_dict())
