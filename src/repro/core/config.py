"""Pipeline configuration.

Section 2.4 distinguishes three levels of reuse: components that need no
changes, components that only need parameter updates, and components that
need major adjustments.  :class:`PipelineConfig` gathers the "parameter
update" knobs in one place so a new scenario can be onboarded by
constructing a different configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.metrics.bucket_ratio import (
    DEFAULT_ACCURACY_THRESHOLD,
    DEFAULT_ERROR_BOUND,
    ErrorBound,
)
from repro.metrics.predictable import DEFAULT_HISTORY_WEEKS
from repro.parallel.executor import ExecutionBackend
from repro.timeseries.calendar import DEFAULT_INTERVAL_MINUTES


@dataclass(frozen=True)
class PipelineConfig:
    """All tunables of one Seagull pipeline deployment.

    Attributes
    ----------
    use_case:
        Free-form scenario name ("backup_scheduling", "auto_scale", ...).
    model_name:
        Registry name of the forecaster to train and deploy.
    interval_minutes:
        Telemetry granularity (5 for PostgreSQL/MySQL, 15 for SQL DBs).
    training_days:
        Days of history used to fit the model before each prediction day
        (the paper trains on one week, Section 5.3.1).
    horizon_days:
        How many days ahead the deployed endpoint predicts (one backup day
        by default).
    history_weeks:
        Weeks of correct predictions required before a server is treated as
        predictable (Definition 9).
    error_bound / accuracy_threshold:
        The bucket-ratio parameters (Definitions 1 and 2).
    min_history_days:
        Servers with less history than this are not scored (the paper
        requires at least three days prior to the backup day).
    executor_backend / n_workers:
        How the accuracy evaluation is parallelised (Figure 12(b)).
    fallback_on_regression:
        Whether a deployment whose evaluated accuracy regresses below
        ``fallback_threshold_pct`` triggers a fallback to the previous
        known-good model version.
    """

    use_case: str = "backup_scheduling"
    model_name: str = "persistent_previous_day"
    interval_minutes: int = DEFAULT_INTERVAL_MINUTES
    training_days: int = 7
    horizon_days: int = 1
    history_weeks: int = DEFAULT_HISTORY_WEEKS
    error_bound: ErrorBound = DEFAULT_ERROR_BOUND
    accuracy_threshold: float = DEFAULT_ACCURACY_THRESHOLD
    min_history_days: int = 3
    executor_backend: ExecutionBackend = ExecutionBackend.SERIAL
    n_workers: int | None = None
    fallback_on_regression: bool = True
    fallback_threshold_pct: float = 80.0
    results_container: str = "seagull_results"
    models_container: str = "seagull_models"
    schedules_container: str = "seagull_schedules"

    def __post_init__(self) -> None:
        if self.training_days < 1:
            raise ValueError("training_days must be at least 1")
        if self.horizon_days < 1:
            raise ValueError("horizon_days must be at least 1")
        if self.history_weeks < 1:
            raise ValueError("history_weeks must be at least 1")
        if not 0.0 < self.accuracy_threshold <= 1.0:
            raise ValueError("accuracy_threshold must be in (0, 1]")
        if self.min_history_days < 1:
            raise ValueError("min_history_days must be at least 1")

    def with_model(self, model_name: str) -> "PipelineConfig":
        """Return a copy configured for a different forecaster."""
        return replace(self, model_name=model_name)

    def with_executor(
        self, backend: ExecutionBackend | str, n_workers: int | None = None
    ) -> "PipelineConfig":
        """Return a copy with a different parallel-execution backend."""
        if isinstance(backend, str):
            backend = ExecutionBackend(backend)
        return replace(self, executor_backend=backend, n_workers=n_workers)

    def as_dict(self) -> dict[str, object]:
        return {
            "use_case": self.use_case,
            "model_name": self.model_name,
            "interval_minutes": self.interval_minutes,
            "training_days": self.training_days,
            "horizon_days": self.horizon_days,
            "history_weeks": self.history_weeks,
            "over_tolerance": self.error_bound.over_tolerance,
            "under_tolerance": self.error_bound.under_tolerance,
            "accuracy_threshold": self.accuracy_threshold,
            "min_history_days": self.min_history_days,
            "executor_backend": self.executor_backend.value,
            "n_workers": self.n_workers,
            "fallback_on_regression": self.fallback_on_regression,
            "fallback_threshold_pct": self.fallback_threshold_pct,
        }


#: Configuration used for the Appendix A auto-scale scenario: coarser
#: telemetry, a 24-hour horizon and standard error metrics downstream.
AUTOSCALE_CONFIG = PipelineConfig(
    use_case="auto_scale",
    interval_minutes=15,
    horizon_days=1,
)
