"""Scoring endpoints (Section 2.2).

The production pipeline deploys each trained model behind a REST endpoint
and performs inference against it.  :class:`ScoringEndpoint` reproduces
that boundary in-process: it owns the fitted per-server forecasters of one
model version and serves per-server predictions, keeping simple request
statistics the dashboard can display.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

from repro.models.base import Forecaster
from repro.timeseries.series import LoadSeries


class EndpointError(RuntimeError):
    """Raised when a prediction is requested for an unknown server."""


@dataclass(frozen=True)
class BatchScoringResult:
    """Outcome of one :meth:`ScoringEndpoint.predict_many` call.

    Per-server failures never abort the batch: ``predictions`` holds the
    successes, ``skipped`` the servers this version has no model for, and
    ``failed`` maps servers whose forecaster raised to the error message.
    """

    predictions: dict[str, LoadSeries] = field(default_factory=dict)
    skipped: tuple[str, ...] = ()
    failed: dict[str, str] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        """Whether every requested server was actually scored."""
        return not self.skipped and not self.failed


class ScoringEndpoint:
    """Serves predictions from the fitted forecasters of one model version."""

    def __init__(
        self,
        region: str,
        model_name: str,
        version: int,
        forecasters: Mapping[str, Forecaster],
    ) -> None:
        self._region = region
        self._model_name = model_name
        self._version = version
        self._forecasters = dict(forecasters)
        self._requests = 0
        self._failures = 0
        # The serving layer fans predict_many chunks across a thread pool;
        # counter increments are read-modify-writes and need the lock.
        self._stats_lock = threading.Lock()

    # ------------------------------------------------------------------ #

    @property
    def region(self) -> str:
        return self._region

    @property
    def model_name(self) -> str:
        return self._model_name

    @property
    def version(self) -> int:
        return self._version

    @property
    def request_count(self) -> int:
        """Number of prediction requests served (successful or not)."""
        return self._requests

    @property
    def failure_count(self) -> int:
        """Number of prediction requests that failed."""
        return self._failures

    def servers(self) -> list[str]:
        """Server ids this endpoint can score."""
        return sorted(self._forecasters)

    def can_score(self, server_id: str) -> bool:
        return server_id in self._forecasters

    # ------------------------------------------------------------------ #

    def predict(self, server_id: str, n_points: int) -> LoadSeries:
        """Predict ``n_points`` of load for ``server_id``.

        Raises :class:`EndpointError` when the server has no fitted model
        (short-lived servers and servers that failed training are not
        deployed).
        """
        with self._stats_lock:
            self._requests += 1
        forecaster = self._forecasters.get(server_id)
        if forecaster is None:
            with self._stats_lock:
                self._failures += 1
            raise EndpointError(
                f"endpoint {self._region} v{self._version} has no model for {server_id!r}"
            )
        try:
            return forecaster.predict(n_points)
        except Exception:
            with self._stats_lock:
                self._failures += 1
            raise

    def predict_many(self, server_ids: Iterable[str], n_points: int) -> BatchScoringResult:
        """Predict for several servers with per-server failure isolation.

        Servers without a deployed model land in ``skipped`` (they were
        never scorable, so they count neither as requests nor failures);
        a forecaster exception mid-batch is recorded in ``failed`` and the
        remaining servers are still scored.  Accepts any iterable of
        server ids.
        """
        predictions: dict[str, LoadSeries] = {}
        skipped: list[str] = []
        failed: dict[str, str] = {}
        for server_id in server_ids:
            forecaster = self._forecasters.get(server_id)
            if forecaster is None:
                skipped.append(server_id)
                continue
            with self._stats_lock:
                self._requests += 1
            try:
                predictions[server_id] = forecaster.predict(n_points)
            except Exception as exc:
                with self._stats_lock:
                    self._failures += 1
                failed[server_id] = f"{type(exc).__name__}: {exc}"
        return BatchScoringResult(
            predictions=predictions, skipped=tuple(skipped), failed=failed
        )

    def health(self) -> dict[str, object]:
        """Health summary shown on the dashboard."""
        return {
            "region": self._region,
            "model_name": self._model_name,
            "version": self._version,
            "n_servers": len(self._forecasters),
            "requests": self._requests,
            "failures": self._failures,
        }
