"""Scoring endpoints (Section 2.2).

The production pipeline deploys each trained model behind a REST endpoint
and performs inference against it.  :class:`ScoringEndpoint` reproduces
that boundary in-process: it owns the fitted per-server forecasters of one
model version and serves per-server predictions, keeping simple request
statistics the dashboard can display.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.models.base import Forecaster
from repro.timeseries.series import LoadSeries


class EndpointError(RuntimeError):
    """Raised when a prediction is requested for an unknown server."""


class ScoringEndpoint:
    """Serves predictions from the fitted forecasters of one model version."""

    def __init__(
        self,
        region: str,
        model_name: str,
        version: int,
        forecasters: Mapping[str, Forecaster],
    ) -> None:
        self._region = region
        self._model_name = model_name
        self._version = version
        self._forecasters = dict(forecasters)
        self._requests = 0
        self._failures = 0

    # ------------------------------------------------------------------ #

    @property
    def region(self) -> str:
        return self._region

    @property
    def model_name(self) -> str:
        return self._model_name

    @property
    def version(self) -> int:
        return self._version

    @property
    def request_count(self) -> int:
        """Number of prediction requests served (successful or not)."""
        return self._requests

    @property
    def failure_count(self) -> int:
        """Number of prediction requests that failed."""
        return self._failures

    def servers(self) -> list[str]:
        """Server ids this endpoint can score."""
        return sorted(self._forecasters)

    def can_score(self, server_id: str) -> bool:
        return server_id in self._forecasters

    # ------------------------------------------------------------------ #

    def predict(self, server_id: str, n_points: int) -> LoadSeries:
        """Predict ``n_points`` of load for ``server_id``.

        Raises :class:`EndpointError` when the server has no fitted model
        (short-lived servers and servers that failed training are not
        deployed).
        """
        self._requests += 1
        forecaster = self._forecasters.get(server_id)
        if forecaster is None:
            self._failures += 1
            raise EndpointError(
                f"endpoint {self._region} v{self._version} has no model for {server_id!r}"
            )
        try:
            return forecaster.predict(n_points)
        except Exception:
            self._failures += 1
            raise

    def predict_many(self, server_ids: list[str], n_points: int) -> dict[str, LoadSeries]:
        """Predict for several servers, skipping the ones that cannot be scored."""
        predictions: dict[str, LoadSeries] = {}
        for server_id in server_ids:
            if not self.can_score(server_id):
                continue
            predictions[server_id] = self.predict(server_id, n_points)
        return predictions

    def health(self) -> dict[str, object]:
        """Health summary shown on the dashboard."""
        return {
            "region": self._region,
            "model_name": self._model_name,
            "version": self._version,
            "n_servers": len(self._forecasters),
            "requests": self._requests,
            "failures": self._failures,
        }
