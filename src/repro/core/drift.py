"""Usage-pattern drift detection.

Section 2.1 motivates the infrastructure's modularity with the observation
that "usage patterns may change over time.  This observation justifies the
need for a robust infrastructure that automatically detects these changes,
notifies about them, and allows to easily replace the model."  This module
implements that detector: it compares the accuracy summaries of consecutive
pipeline runs per region and raises incidents when the fleet's behaviour
shifts (accuracy drop, predictable-share drop, class-mix shift).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.incidents import IncidentManager, IncidentSeverity
from repro.core.pipeline import PipelineRunResult
from repro.features.classification import ServerClassLabel


@dataclass(frozen=True)
class DriftThresholds:
    """How much week-over-week movement counts as drift."""

    max_accuracy_drop_pct: float = 5.0
    max_predictable_drop_pct: float = 10.0
    max_class_shift_pct: float = 15.0


@dataclass(frozen=True)
class DriftReport:
    """Outcome of comparing one run against the previous run of its region."""

    region: str
    accuracy_drop_pct: float
    predictable_drop_pct: float
    class_shift_pct: float
    drifted: bool
    details: tuple[str, ...] = ()

    def as_dict(self) -> dict[str, object]:
        return {
            "region": self.region,
            "accuracy_drop_pct": self.accuracy_drop_pct,
            "predictable_drop_pct": self.predictable_drop_pct,
            "class_shift_pct": self.class_shift_pct,
            "drifted": self.drifted,
            "details": list(self.details),
        }


class DriftDetector:
    """Compares consecutive pipeline runs per region and flags drift."""

    def __init__(
        self,
        thresholds: DriftThresholds | None = None,
        incidents: IncidentManager | None = None,
    ) -> None:
        self._thresholds = thresholds if thresholds is not None else DriftThresholds()
        self._incidents = incidents
        self._previous: dict[str, PipelineRunResult] = {}

    def observe(self, result: PipelineRunResult) -> DriftReport | None:
        """Record a run; returns a report once a previous run exists.

        Unsuccessful runs are ignored (they already raise their own
        incidents) and do not overwrite the last good baseline.
        """
        if not result.succeeded or result.summary is None:
            return None
        previous = self._previous.get(result.region)
        self._previous[result.region] = result
        if previous is None or previous.summary is None:
            return None
        report = self._compare(previous, result)
        if report.drifted and self._incidents is not None:
            self._incidents.raise_incident(
                IncidentSeverity.WARNING,
                source="drift_detection",
                message="; ".join(report.details) or "usage pattern drift detected",
                region=result.region,
            )
        return report

    # ------------------------------------------------------------------ #

    def _compare(
        self, previous: PipelineRunResult, current: PipelineRunResult
    ) -> DriftReport:
        assert previous.summary is not None and current.summary is not None
        thresholds = self._thresholds
        details: list[str] = []

        accuracy_drop = (
            previous.summary.pct_windows_correct - current.summary.pct_windows_correct
        )
        if accuracy_drop > thresholds.max_accuracy_drop_pct:
            details.append(
                f"window-selection accuracy dropped {accuracy_drop:.1f} points"
            )

        predictable_drop = (
            previous.summary.pct_predictable_servers
            - current.summary.pct_predictable_servers
        )
        if predictable_drop > thresholds.max_predictable_drop_pct:
            details.append(
                f"predictable-server share dropped {predictable_drop:.1f} points"
            )

        class_shift = self._class_shift(previous, current)
        if class_shift > thresholds.max_class_shift_pct:
            details.append(f"class mix shifted by {class_shift:.1f} points")

        return DriftReport(
            region=current.region,
            accuracy_drop_pct=accuracy_drop,
            predictable_drop_pct=predictable_drop,
            class_shift_pct=class_shift,
            drifted=bool(details),
            details=tuple(details),
        )

    @staticmethod
    def _class_shift(previous: PipelineRunResult, current: PipelineRunResult) -> float:
        """Total variation distance (in percentage points) between class mixes."""
        if previous.classification is None or current.classification is None:
            return 0.0
        shift = 0.0
        for label in ServerClassLabel:
            before = previous.classification.percentage(label)
            after = current.classification.percentage(label)
            if before != before or after != after:  # NaN guard for empty runs
                continue
            shift += abs(after - before)
        return shift / 2.0
