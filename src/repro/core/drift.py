"""Usage-pattern drift detection.

Section 2.1 motivates the infrastructure's modularity with the observation
that "usage patterns may change over time.  This observation justifies the
need for a robust infrastructure that automatically detects these changes,
notifies about them, and allows to easily replace the model."  This module
implements that detector: it compares the accuracy summaries of consecutive
pipeline runs per region and raises incidents when the fleet's behaviour
shifts (accuracy drop, predictable-share drop, class-mix shift).

The live data plane gets its own, lower-level detector:
:class:`LoadWindowDriftDetector` compares the raw load *distribution* of
consecutive sealed tail windows (mean and dispersion shift, servers
appearing/disappearing) without waiting for a full pipeline run -- it is
what the live serving bridge consults right after every seal to decide
whether the models serving a region still describe its traffic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.incidents import IncidentManager, IncidentSeverity
from repro.core.pipeline import PipelineRunResult
from repro.features.classification import ServerClassLabel
from repro.timeseries.frame import LoadFrame


@dataclass(frozen=True)
class DriftThresholds:
    """How much week-over-week movement counts as drift."""

    max_accuracy_drop_pct: float = 5.0
    max_predictable_drop_pct: float = 10.0
    max_class_shift_pct: float = 15.0


@dataclass(frozen=True)
class DriftReport:
    """Outcome of comparing one run against the previous run of its region."""

    region: str
    accuracy_drop_pct: float
    predictable_drop_pct: float
    class_shift_pct: float
    drifted: bool
    details: tuple[str, ...] = ()

    def as_dict(self) -> dict[str, object]:
        return {
            "region": self.region,
            "accuracy_drop_pct": self.accuracy_drop_pct,
            "predictable_drop_pct": self.predictable_drop_pct,
            "class_shift_pct": self.class_shift_pct,
            "drifted": self.drifted,
            "details": list(self.details),
        }


class DriftDetector:
    """Compares consecutive pipeline runs per region and flags drift."""

    def __init__(
        self,
        thresholds: DriftThresholds | None = None,
        incidents: IncidentManager | None = None,
    ) -> None:
        self._thresholds = thresholds if thresholds is not None else DriftThresholds()
        self._incidents = incidents
        self._previous: dict[str, PipelineRunResult] = {}

    def observe(self, result: PipelineRunResult) -> DriftReport | None:
        """Record a run; returns a report once a previous run exists.

        Unsuccessful runs are ignored (they already raise their own
        incidents) and do not overwrite the last good baseline.
        """
        if not result.succeeded or result.summary is None:
            return None
        previous = self._previous.get(result.region)
        self._previous[result.region] = result
        if previous is None or previous.summary is None:
            return None
        report = self._compare(previous, result)
        if report.drifted and self._incidents is not None:
            self._incidents.raise_incident(
                IncidentSeverity.WARNING,
                source="drift_detection",
                message="; ".join(report.details) or "usage pattern drift detected",
                region=result.region,
            )
        return report

    # ------------------------------------------------------------------ #

    def _compare(
        self, previous: PipelineRunResult, current: PipelineRunResult
    ) -> DriftReport:
        assert previous.summary is not None and current.summary is not None
        thresholds = self._thresholds
        details: list[str] = []

        accuracy_drop = (
            previous.summary.pct_windows_correct - current.summary.pct_windows_correct
        )
        if accuracy_drop > thresholds.max_accuracy_drop_pct:
            details.append(
                f"window-selection accuracy dropped {accuracy_drop:.1f} points"
            )

        predictable_drop = (
            previous.summary.pct_predictable_servers
            - current.summary.pct_predictable_servers
        )
        if predictable_drop > thresholds.max_predictable_drop_pct:
            details.append(
                f"predictable-server share dropped {predictable_drop:.1f} points"
            )

        class_shift = self._class_shift(previous, current)
        if class_shift > thresholds.max_class_shift_pct:
            details.append(f"class mix shifted by {class_shift:.1f} points")

        return DriftReport(
            region=current.region,
            accuracy_drop_pct=accuracy_drop,
            predictable_drop_pct=predictable_drop,
            class_shift_pct=class_shift,
            drifted=bool(details),
            details=tuple(details),
        )

    @staticmethod
    def _class_shift(previous: PipelineRunResult, current: PipelineRunResult) -> float:
        """Total variation distance (in percentage points) between class mixes."""
        if previous.classification is None or current.classification is None:
            return 0.0
        shift = 0.0
        for label in ServerClassLabel:
            before = previous.classification.percentage(label)
            after = current.classification.percentage(label)
            if before != before or after != after:  # NaN guard for empty runs
                continue
            shift += abs(after - before)
        return shift / 2.0


# ---------------------------------------------------------------------- #
# Live-window drift (the streaming data plane's detector)
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class WindowSummary:
    """Distribution summary of one sealed live window's load samples."""

    region: str
    window_start: int
    window_end: int
    n_servers: int
    n_rows: int
    mean_load: float
    std_load: float

    @classmethod
    def from_frame(
        cls, region: str, frame: LoadFrame, window_start: int, window_end: int
    ) -> "WindowSummary":
        """Summarise the (already windowed) ``frame``'s load distribution."""
        parts = [
            series.values[np.isfinite(series.values)]
            for _server_id, _metadata, series in frame.items()
        ]
        values = (
            np.concatenate(parts) if parts else np.empty(0, dtype=np.float64)
        )
        return cls(
            region=region,
            window_start=window_start,
            window_end=window_end,
            n_servers=len(frame),
            n_rows=int(values.size),
            mean_load=float(values.mean()) if values.size else math.nan,
            std_load=float(values.std()) if values.size else math.nan,
        )


@dataclass(frozen=True)
class WindowDriftThresholds:
    """How much window-over-window distribution movement counts as drift."""

    #: Relative shift of the mean load, in percent of the previous mean.
    max_mean_shift_pct: float = 25.0
    #: Relative shift of the load dispersion (standard deviation).
    max_std_shift_pct: float = 50.0
    #: Share of the server population appearing or disappearing.
    max_population_shift_pct: float = 30.0


@dataclass(frozen=True)
class WindowDriftReport:
    """Outcome of comparing one sealed window against its predecessor."""

    region: str
    window_start: int
    window_end: int
    mean_shift_pct: float
    std_shift_pct: float
    population_shift_pct: float
    drifted: bool
    details: tuple[str, ...] = ()

    def as_dict(self) -> dict[str, object]:
        return {
            "region": self.region,
            "window_start": self.window_start,
            "window_end": self.window_end,
            "mean_shift_pct": self.mean_shift_pct,
            "std_shift_pct": self.std_shift_pct,
            "population_shift_pct": self.population_shift_pct,
            "drifted": self.drifted,
            "details": list(self.details),
        }


def _relative_shift_pct(before: float, after: float) -> float:
    """``|after - before|`` as a percentage of ``before`` (NaN-safe)."""
    if math.isnan(before) or math.isnan(after):
        return 0.0
    if before == 0.0:
        return 0.0 if after == 0.0 else math.inf
    return abs(after - before) / abs(before) * 100.0


class LoadWindowDriftDetector:
    """Compares consecutive sealed live windows per region and flags drift.

    The streaming counterpart of :class:`DriftDetector`: it needs only
    the sealed window's load distribution (no labels, no pipeline run),
    so a verdict is available the moment a seal commits.  Empty windows
    are ignored and never overwrite the last populated baseline.
    """

    def __init__(
        self,
        thresholds: WindowDriftThresholds | None = None,
        incidents: IncidentManager | None = None,
    ) -> None:
        self._thresholds = (
            thresholds if thresholds is not None else WindowDriftThresholds()
        )
        self._incidents = incidents
        self._previous: dict[str, WindowSummary] = {}

    def observe(self, summary: WindowSummary) -> WindowDriftReport | None:
        """Record a sealed window; returns a report once a baseline exists."""
        if summary.n_rows == 0:
            return None
        previous = self._previous.get(summary.region)
        self._previous[summary.region] = summary
        if previous is None:
            return None
        report = self._compare(previous, summary)
        if report.drifted and self._incidents is not None:
            self._incidents.raise_incident(
                IncidentSeverity.WARNING,
                source="live_window_drift",
                message="; ".join(report.details) or "live load distribution drifted",
                region=summary.region,
            )
        return report

    def _compare(
        self, previous: WindowSummary, current: WindowSummary
    ) -> WindowDriftReport:
        thresholds = self._thresholds
        details: list[str] = []

        mean_shift = _relative_shift_pct(previous.mean_load, current.mean_load)
        if mean_shift > thresholds.max_mean_shift_pct:
            details.append(
                f"mean load shifted {mean_shift:.1f}% "
                f"({previous.mean_load:.2f} -> {current.mean_load:.2f})"
            )

        std_shift = _relative_shift_pct(previous.std_load, current.std_load)
        if std_shift > thresholds.max_std_shift_pct:
            details.append(
                f"load dispersion shifted {std_shift:.1f}% "
                f"({previous.std_load:.2f} -> {current.std_load:.2f})"
            )

        population = 0.0
        if previous.n_servers:
            population = (
                abs(current.n_servers - previous.n_servers) / previous.n_servers * 100.0
            )
        if population > thresholds.max_population_shift_pct:
            details.append(
                f"server population shifted {population:.1f}% "
                f"({previous.n_servers} -> {current.n_servers})"
            )

        return WindowDriftReport(
            region=current.region,
            window_start=current.window_start,
            window_end=current.window_end,
            mean_shift_pct=mean_shift,
            std_shift_pct=std_shift,
            population_shift_pct=population,
            drifted=bool(details),
            details=tuple(details),
        )
