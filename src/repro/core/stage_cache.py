"""Encoding/decoding of pipeline stage outputs for the artifact cache.

The Seagull pipeline is factored into stages with stable, serializable
inputs and outputs (the "partially constrained log" view of a run: each
stage's output is durable, resumable state rather than a throwaway
in-memory value).  This module defines, per cacheable stage, which
configuration parameters feed its cache key and how its output round-trips
through JSON.

Stages and their keys:

* ``features``   -- frame content hash + error bound + accuracy threshold.
* ``train_infer`` -- frame content hash + model name + training window
  parameters.
* ``evaluation`` -- frame content hash + model/window parameters + metric
  parameters (its inputs are the frame and the train/infer output, and the
  latter is a deterministic function of the former under the same key
  material).
"""

from __future__ import annotations

from typing import Any

from repro.core.config import PipelineConfig
from repro.features.extractor import ServerFeatures
from repro.metrics.evaluation import EvaluationSummary, ServerDayEvaluation
from repro.metrics.predictable import PredictabilityVerdict
from repro.timeseries.series import LoadSeries

#: Stage names used in cache keys and in ``PipelineRunResult.cache_events``.
STAGE_FEATURES = "features"
STAGE_TRAIN_INFER = "train_infer"
STAGE_EVALUATION = "evaluation"

#: Fleet-orchestrator whole-unit outcome (see ``repro.fleet_ops``).
STAGE_UNIT_OUTCOME = "unit_outcome"


# --------------------------------------------------------------------- #
# Cache-key parameter fingerprints
# --------------------------------------------------------------------- #


def features_params(config: PipelineConfig) -> dict[str, Any]:
    """Configuration the feature-extraction output depends on."""
    return {
        "interval_minutes": config.interval_minutes,
        "over_tolerance": config.error_bound.over_tolerance,
        "under_tolerance": config.error_bound.under_tolerance,
        "accuracy_threshold": config.accuracy_threshold,
    }


def train_infer_params(config: PipelineConfig) -> dict[str, Any]:
    """Configuration the training/inference output depends on.

    Includes the feature parameters because the trained-server set is
    derived from the per-server classification labels.
    """
    return {
        **features_params(config),
        "model_name": config.model_name,
        "training_days": config.training_days,
        "horizon_days": config.horizon_days,
        "history_weeks": config.history_weeks,
        "min_history_days": config.min_history_days,
    }


def evaluation_params(config: PipelineConfig) -> dict[str, Any]:
    """Configuration the accuracy-evaluation output depends on."""
    return train_infer_params(config)


# --------------------------------------------------------------------- #
# Series round trip
# --------------------------------------------------------------------- #


def series_payload(series: LoadSeries) -> dict[str, Any]:
    """JSON-serializable form of a series (explicit timestamps: predictions
    for weekly-spaced history days concatenate into gappy grids)."""
    return {
        "timestamps": series.timestamps.tolist(),
        "values": series.values.tolist(),
        "interval": series.interval_minutes,
    }


def series_from_payload(payload: dict[str, Any]) -> LoadSeries:
    return LoadSeries(
        payload["timestamps"],
        payload["values"],
        int(payload["interval"]),
        validate=False,
    )


# --------------------------------------------------------------------- #
# Stage payload codecs
# --------------------------------------------------------------------- #


def encode_features(features: dict[str, ServerFeatures]) -> dict[str, Any]:
    return {"features": {sid: f.as_dict() for sid, f in features.items()}}


def decode_features(payload: dict[str, Any]) -> dict[str, ServerFeatures]:
    return {
        sid: ServerFeatures.from_dict(body) for sid, body in payload["features"].items()
    }


def encode_train_infer(
    backup_days: dict[str, int],
    predictions: dict[str, LoadSeries],
    eval_predictions: dict[str, LoadSeries],
    eval_days: dict[str, list[int]],
) -> dict[str, Any]:
    return {
        "backup_days": dict(backup_days),
        "predictions": {sid: series_payload(s) for sid, s in predictions.items()},
        "eval_predictions": {sid: series_payload(s) for sid, s in eval_predictions.items()},
        "eval_days": {sid: list(days) for sid, days in eval_days.items()},
    }


def decode_train_infer(
    payload: dict[str, Any],
) -> tuple[dict[str, int], dict[str, LoadSeries], dict[str, LoadSeries], dict[str, list[int]]]:
    backup_days = {sid: int(day) for sid, day in payload["backup_days"].items()}
    predictions = {
        sid: series_from_payload(body) for sid, body in payload["predictions"].items()
    }
    eval_predictions = {
        sid: series_from_payload(body) for sid, body in payload["eval_predictions"].items()
    }
    eval_days = {
        sid: [int(day) for day in days] for sid, days in payload["eval_days"].items()
    }
    return backup_days, predictions, eval_predictions, eval_days


def encode_evaluation(
    evaluations: list[ServerDayEvaluation],
    summary: EvaluationSummary | None,
    predictability: dict[str, PredictabilityVerdict],
) -> dict[str, Any]:
    return {
        "evaluations": [evaluation.as_dict() for evaluation in evaluations],
        "summary": summary.as_dict() if summary is not None else None,
        "predictability": {sid: verdict.as_dict() for sid, verdict in predictability.items()},
    }


def decode_evaluation(
    payload: dict[str, Any],
) -> tuple[
    list[ServerDayEvaluation],
    EvaluationSummary | None,
    dict[str, PredictabilityVerdict],
]:
    evaluations = [ServerDayEvaluation.from_dict(body) for body in payload["evaluations"]]
    summary_body = payload["summary"]
    summary = EvaluationSummary.from_dict(summary_body) if summary_body is not None else None
    predictability = {
        sid: PredictabilityVerdict.from_dict(body)
        for sid, body in payload["predictability"].items()
    }
    return evaluations, summary, predictability
