"""Binary columnar extract format (``.sgx``).

CSV parsing dominates cold-run ingestion: every value is re-tokenised and
re-converted on every read.  The ``.sgx`` format stores a weekly extract
the way the pipeline consumes it -- per-server columns of raw
little-endian ``int64`` timestamps and ``float64`` CPU values -- so a read
is a :func:`numpy.frombuffer` over the file bytes instead of a row loop.

Format v4 layout (all integers little-endian)::

    header   magic "SGXF" | version u16 | flags u16 | interval u32
             | n_servers u32 | n_dict u32 | file_length u64
             | structure_crc u32 | header_crc u32
    dict     n_dict strings (u16 length + UTF-8 bytes); region / engine /
             true-class values are stored once and referenced by index
    servers  one record per server:
               server_id (u16 length + UTF-8 bytes)
               region_idx u32 | engine_idx u32 | true_class_idx u32
               backup_start i64 | backup_end i64 | backup_duration u32
               n_chunks u32
               n_chunks x (n_points u64 | min_ts i64 | max_ts i64
                           | ts_crc u32 | vs_crc u32
                           | vs_sum f64 | vs_min f64 | vs_max f64
                           | vs_sum_sq f64)
               n_chunks payloads, each:
                 timestamps  n_points x i64
                 values      n_points x f64

The writer splits each server's series at absolute ``chunk_minutes``
boundaries (default: one chunk per day), so every chunk carries its own
**zone map** (``min_ts``/``max_ts``) and one CRC *per column buffer*.  A
time-range read (:func:`frame_from_sgx_bytes` with ``start_minute``/
``end_minute``) skips non-overlapping chunks without touching -- or
checksum-verifying -- their payload bytes, then merges a server's
surviving chunks back into one series: pruning works *within* a server,
so a 1-day read of a 7-day extract verifies ~1/7 of the payload.  Two
further pushdowns ride the same structure (:func:`scan_sgx_bytes`):

* **server filtering** -- an allow-list or metadata predicate is decided
  from the (structure-verified) record header alone, so a filtered-out
  server's chunks are never read, decoded or checksummed;
* **column projection** -- per-column CRCs (the v3 change) let a
  timestamps-only read skip decoding *and* checksumming every values
  buffer; unprojected values surface as NaN ("not loaded", never 0.0);
* **aggregation pushdown** -- the v4 change: each chunk-table entry also
  carries pre-aggregates of its values buffer (sum / min / max /
  sum-of-squares; count and the time bounds were already there), so
  :func:`aggregate_sgx_bytes` answers count/sum/min/max/mean/variance
  reductions for any chunk lying fully inside the requested time range
  *without reading its payload at all* -- only partial-overlap chunks are
  decoded, and the two sources merge exactly (pairwise moments, see
  :mod:`repro.storage.aggregate`).

Format v3 (per-column CRCs, no pre-aggregates), v2 (one joint payload
CRC per chunk) and v1 (one chunk per server, header and payload inline)
remain fully readable; on v1/v2, column projection still skips the
decode but must checksum the whole payload -- the joint CRC cannot vouch
for one column alone -- and on anything below v4 value reductions fall
back to decoding (a count-only aggregate is still answered from chunk
headers, which every version carries).

Zone maps are only trustworthy for sorted data: the writer refuses
non-strictly-increasing timestamps (they would round-trip with a wrong
zone map and be silently mis-pruned), and three checksums cover
everything that *is* ingested: ``header_crc`` over the fixed header,
``structure_crc`` over the dictionary and every server/chunk header (so
tampered zone maps, metadata fields or dictionary strings cannot be
silently loaded -- pruning and filtering decisions are only trusted once
the structure verifies), and the per-chunk column CRCs over the buffers
actually read.  Any damage (bad magic, truncation, checksum mismatch,
out-of-range dictionary index, out-of-order chunks) raises the typed
:class:`ColumnarFormatError` so callers can degrade to a CSV fallback.
"""

from __future__ import annotations

import struct
import zlib
from collections.abc import Callable, Collection, Iterable, Iterator
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.timeseries.calendar import MAX_MINUTE, MIN_MINUTE, MINUTES_PER_DAY
from repro.timeseries.frame import LoadFrame, ServerMetadata
from repro.timeseries.series import LoadSeries

MAGIC = b"SGXF"
#: Version the writer emits.
VERSION = 4
#: Versions the reader accepts.
SUPPORTED_VERSIONS = (1, 2, 3, 4)

#: Per-point column buffers of the format, in stored order.  A column
#: projection is a subset of these; ``timestamps`` is the series index
#: and can never be projected away.
COLUMNS = ("timestamps", "values")

#: Default writer chunking policy: one chunk per day, so zone maps prune
#: day-granular time-range reads within a server.  Pass ``0`` for a
#: single whole-series chunk.
DEFAULT_CHUNK_MINUTES = MINUTES_PER_DAY

#: magic 4s | version u16 | flags u16 | interval u32 | n_servers u32
#: | n_dict u32 | file_length u64 | structure_crc u32 -- followed by a
#: u32 CRC of these bytes.  ``structure_crc`` covers the dictionary
#: section plus every server record header and chunk-header table
#: (everything between the header and the payloads), so zone maps and
#: metadata are tamper-evident even though pruned payloads are never
#: read.
_FILE_HEADER = struct.Struct("<4sHHIIIQI")
FILE_HEADER_SIZE = 32
_HEADER_CRC = struct.Struct("<I")
HEADER_CRC_SIZE = 4
HEADER_BYTES = FILE_HEADER_SIZE + HEADER_CRC_SIZE  # 36

#: v2/v3 per-server fixed fields: region_idx | engine_idx | true_class_idx
#: | backup_start | backup_end | backup_duration | n_chunks
_SERVER_FIXED = struct.Struct("<IIIqqII")
SERVER_FIXED_ENTRY_SIZE = 36
#: v2 per-chunk header: n_points | min_ts | max_ts | payload_crc
_CHUNK_HEADER_V2 = struct.Struct("<QqqI")
CHUNK_HEADER_V2_ENTRY_SIZE = 28
#: v3 per-chunk header: n_points | min_ts | max_ts | ts_crc | vs_crc --
#: one CRC per column buffer, so a projected read can verify only the
#: buffers it actually ingests.
_CHUNK_HEADER_V3 = struct.Struct("<QqqII")
CHUNK_HEADER_V3_ENTRY_SIZE = 32
#: v4 per-chunk header: the v3 fields plus pre-aggregates of the values
#: buffer (sum | min | max | sum-of-squares), so aggregate queries can
#: answer fully covered chunks without reading their payload.  Covered by
#: the structure CRC like every other chunk-header field.
_CHUNK_HEADER_V4 = struct.Struct("<QqqIIdddd")
CHUNK_HEADER_V4_ENTRY_SIZE = 64
#: v1 per-server chunk: region_idx | engine_idx | true_class_idx
#: | backup_start | backup_end | backup_duration | n_points | min_ts
#: | max_ts | payload_crc
_CHUNK_FIXED_V1 = struct.Struct("<IIIqqIQqqI")
CHUNK_FIXED_V1_ENTRY_SIZE = 60
_STRING_LEN = struct.Struct("<H")
STRING_LEN_SIZE = 2

#: Sentinel zone map of an empty chunk: min > max can match no range.
_EMPTY_MIN_TS = 0
_EMPTY_MAX_TS = -1

#: Bytes per sample across the two column buffers (i64 + f64).
_POINT_BYTES = 16


class ColumnarFormatError(ValueError):
    """Raised when bytes are not a readable ``.sgx`` extract.

    Covers structural damage (bad magic, unsupported version, truncation)
    and content damage (header or chunk checksum mismatches).  It is a
    ``ValueError`` so ingestion error handling that already catches parse
    failures keeps working.
    """


@dataclass
class SgxReadStats:
    """Observability counters filled in by one ``.sgx`` read.

    ``payload_bytes_verified`` is the number of payload bytes actually
    CRC-checked and ingested; a zone-map-pruned, server-filtered or
    column-projected read verifies strictly fewer bytes than a full read
    of the same file.  A filtered-out server's chunks count as both seen
    and pruned; ``columns_skipped`` counts column buffers whose decode
    (and, from format v3, whose checksum) a projection skipped.

    Aggregate walks (:func:`aggregate_sgx_bytes`) additionally count
    ``chunks_answered_from_stats`` -- chunks whose reductions came from
    the stored chunk-table pre-aggregates -- and ``bytes_decoded_avoided``,
    the payload bytes of those chunks, which were never read, decoded or
    checksummed (their statistics are vouched for by the structure CRC).
    """

    chunks_seen: int = 0
    chunks_pruned: int = 0
    servers_seen: int = 0
    servers_skipped: int = 0
    columns_skipped: int = 0
    chunks_answered_from_stats: int = 0
    bytes_decoded_avoided: int = 0
    payload_bytes_total: int = 0
    payload_bytes_verified: int = 0


# --------------------------------------------------------------------- #
# Writing
# --------------------------------------------------------------------- #


def _packed_string(text: str, what: str) -> bytes:
    encoded = text.encode("utf-8")
    if len(encoded) > 0xFFFF:
        raise ColumnarFormatError(f"{what} {text[:32]!r}... exceeds 65535 encoded bytes")
    return _STRING_LEN.pack(len(encoded)) + encoded


def _split_at_boundaries(
    timestamps: np.ndarray, values: np.ndarray, chunk_minutes: int
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Split sorted column arrays at absolute ``chunk_minutes`` boundaries.

    Returns only non-empty pieces (a gap spanning whole chunk periods
    produces no empty interior chunks).  ``chunk_minutes=0`` keeps the
    series whole.
    """
    n = int(timestamps.shape[0])
    if n == 0 or chunk_minutes == 0:
        return [(timestamps, values)]
    first = int(timestamps[0]) // chunk_minutes
    last = int(timestamps[-1]) // chunk_minutes
    if first == last:
        return [(timestamps, values)]
    boundaries = np.arange(first + 1, last + 1, dtype=np.int64) * chunk_minutes
    splits = np.searchsorted(timestamps, boundaries, side="left").tolist()
    pieces: list[tuple[np.ndarray, np.ndarray]] = []
    prev = 0
    for split in [*splits, n]:
        if split > prev:
            pieces.append((timestamps[prev:split], values[prev:split]))
        prev = split
    return pieces


def frame_to_sgx_bytes(frame: LoadFrame, chunk_minutes: int = DEFAULT_CHUNK_MINUTES) -> bytes:
    """Serialise ``frame`` into ``.sgx`` (format v4) bytes.

    ``chunk_minutes`` is the chunking policy: each server's series is
    split at absolute multiples of it (default: day boundaries) into
    chunks that each carry their own zone map and payload CRC, which is
    what lets time-range reads prune *within* a server.  ``0`` writes a
    single whole-series chunk per server.

    Zone maps assume sorted data, so a series whose timestamps are not
    strictly increasing (possible via ``LoadSeries(..., validate=False)``)
    is rejected with :class:`ColumnarFormatError` naming the server --
    writing it would produce a wrong zone map and silently mis-pruned or
    mis-sliced reads.
    """
    if chunk_minutes < 0:
        raise ValueError("chunk_minutes must be a non-negative number of minutes")
    dictionary: dict[str, int] = {}

    def intern(text: str) -> int:
        return dictionary.setdefault(text, len(dictionary))

    records: list[tuple[bytes, list[bytes]]] = []  # (record header, payloads)
    for server_id, metadata, series in frame.items():
        timestamps = np.ascontiguousarray(series.timestamps, dtype="<i8")
        values = np.ascontiguousarray(series.values, dtype="<f8")
        if timestamps.shape[0] > 1 and bool(np.any(np.diff(timestamps) <= 0)):
            raise ColumnarFormatError(
                f"cannot write .sgx extract: timestamps of server {server_id!r} "
                "are not strictly increasing -- the zone map would be wrong and "
                "time-range reads silently corrupted; sort the series first"
            )
        pieces = _split_at_boundaries(timestamps, values, chunk_minutes)
        chunk_table = bytearray()
        payloads: list[bytes] = []
        for chunk_ts, chunk_vs in pieces:
            n_points = int(chunk_ts.shape[0])
            ts_bytes = chunk_ts.tobytes()
            vs_bytes = chunk_vs.tobytes()
            if n_points:
                min_ts, max_ts = int(chunk_ts[0]), int(chunk_ts[-1])
                vs_sum = float(chunk_vs.sum())
                vs_min = float(chunk_vs.min())
                vs_max = float(chunk_vs.max())
                vs_sum_sq = float(np.dot(chunk_vs, chunk_vs))
            else:
                min_ts, max_ts = _EMPTY_MIN_TS, _EMPTY_MAX_TS
                vs_sum = vs_min = vs_max = vs_sum_sq = 0.0
            chunk_table += _CHUNK_HEADER_V4.pack(
                n_points,
                min_ts,
                max_ts,
                zlib.crc32(ts_bytes),
                zlib.crc32(vs_bytes),
                vs_sum,
                vs_min,
                vs_max,
                vs_sum_sq,
            )
            payloads.append(ts_bytes + vs_bytes)
        record_header = (
            _packed_string(server_id, "server id")
            + _SERVER_FIXED.pack(
                intern(metadata.region),
                intern(metadata.engine),
                intern(metadata.true_class),
                metadata.default_backup_start,
                metadata.default_backup_end,
                metadata.backup_duration_minutes,
                len(payloads),
            )
            + bytes(chunk_table)
        )
        records.append((record_header, payloads))

    dict_section = bytearray()
    for text in dictionary:  # insertion order == index order
        dict_section += _packed_string(text, "dictionary string")

    structure_crc = zlib.crc32(bytes(dict_section))
    for record_header, _payloads in records:
        structure_crc = zlib.crc32(record_header, structure_crc)

    body_parts = [bytes(dict_section)]
    for record_header, payloads in records:
        body_parts.append(record_header)
        body_parts.extend(payloads)
    body = b"".join(body_parts)
    header = _FILE_HEADER.pack(
        MAGIC,
        VERSION,
        0,
        frame.interval_minutes,
        len(frame),
        len(dictionary),
        HEADER_BYTES + len(body),
        structure_crc,
    )
    return header + _HEADER_CRC.pack(zlib.crc32(header)) + body


def write_frame_sgx(
    frame: LoadFrame, path: str | Path, chunk_minutes: int = DEFAULT_CHUNK_MINUTES
) -> int:
    """Write ``frame`` to ``path`` as ``.sgx``; returns data rows written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(frame_to_sgx_bytes(frame, chunk_minutes=chunk_minutes))
    return frame.total_points()


# --------------------------------------------------------------------- #
# Reading
# --------------------------------------------------------------------- #


def _as_view(data) -> memoryview:
    """A flat byte view over ``data`` without copying the buffer."""
    view = data if isinstance(data, memoryview) else memoryview(data)
    if view.ndim != 1 or view.format != "B":
        view = view.cast("B")
    return view


def _read_string(view: memoryview, offset: int, what: str) -> tuple[str, int]:
    end = offset + _STRING_LEN.size
    if end > view.nbytes:
        raise ColumnarFormatError(f"truncated .sgx extract: {what} length at byte {offset}")
    (length,) = _STRING_LEN.unpack_from(view, offset)
    if end + length > view.nbytes:
        raise ColumnarFormatError(f"truncated .sgx extract: {what} bytes at byte {end}")
    try:
        text = bytes(view[end : end + length]).decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ColumnarFormatError(f"garbled .sgx extract: {what} is not UTF-8") from exc
    return text, end + length


def _parse_header(view: memoryview) -> tuple[int, int, int, int, int]:
    """Validate the header; returns
    ``(version, interval, n_servers, n_dict, structure_crc)``."""
    if view.nbytes < HEADER_BYTES:
        raise ColumnarFormatError(
            f"truncated .sgx extract: {view.nbytes} bytes, header needs {HEADER_BYTES}"
        )
    (
        magic,
        version,
        _flags,
        interval,
        n_servers,
        n_dict,
        file_length,
        structure_crc,
    ) = _FILE_HEADER.unpack_from(view, 0)
    if magic != MAGIC:
        raise ColumnarFormatError(f"not an .sgx extract (magic {magic!r})")
    (header_crc,) = _HEADER_CRC.unpack_from(view, _FILE_HEADER.size)
    if zlib.crc32(view[: _FILE_HEADER.size]) != header_crc:
        raise ColumnarFormatError("garbled .sgx extract: header checksum mismatch")
    if version not in SUPPORTED_VERSIONS:
        supported = ", ".join(str(v) for v in SUPPORTED_VERSIONS)
        raise ColumnarFormatError(
            f"unsupported .sgx version {version} (this reader supports {supported})"
        )
    if file_length != view.nbytes:
        raise ColumnarFormatError(
            f"truncated .sgx extract: header declares {file_length} bytes, got {view.nbytes}"
        )
    return version, interval, n_servers, n_dict, structure_crc


def sgx_version(data) -> int:
    """Format version of ``data``, validated against the header CRC.

    Cheap (header bytes only); the lake converter uses it to decide
    whether a stored ``.sgx`` copy needs an in-place v1 -> v2 upgrade.
    """
    return _parse_header(_as_view(data))[0]


def _dict_lookup(dictionary: list[str], index: int, what: str) -> str:
    if index >= len(dictionary):
        raise ColumnarFormatError(
            f"garbled .sgx extract: {what} dictionary index {index} out of range"
        )
    return dictionary[index]


def _parse_structure(view: memoryview):
    """Validate header + dictionary; return
    ``(version, interval, dictionary, records)``.

    ``records`` is a generator of ``(server_id, meta_fields, chunks)``
    per server, where ``meta_fields`` is ``(region_idx, engine_idx,
    true_class_idx, backup_start, backup_end, backup_duration)`` and
    ``chunks`` is a list of ``(n_points, min_ts, max_ts, ts_crc, vs_crc,
    payload_offset, vstats)`` entries -- for v1/v2 chunks ``ts_crc``
    holds the single joint payload CRC and ``vs_crc`` is ``None``;
    ``vstats`` is the v4 pre-aggregate tuple ``(sum, min, max, sum_sq)``
    of the values buffer, or ``None`` below v4.  It
    bounds-checks every record, and on exhaustion verifies that the
    records exactly fill the file and that the accumulated structure CRC
    matches the header -- the single walk both the reader and the
    inspector use, so the two can never diverge on the layout.  Format
    v1 records (one inline chunk per server) surface through the same
    shape.
    """
    version, interval, n_servers, n_dict, structure_crc = _parse_header(view)
    total = view.nbytes
    offset = HEADER_BYTES
    dictionary: list[str] = []
    for _ in range(n_dict):
        text, offset = _read_string(view, offset, "dictionary string")
        dictionary.append(text)
    dict_end = offset

    def records():
        position = dict_end
        seen_crc = zlib.crc32(view[HEADER_BYTES:dict_end])
        for _ in range(n_servers):
            record_start = position
            server_id, position = _read_string(view, record_start, "server id")
            if version == 1:
                if position + _CHUNK_FIXED_V1.size > total:
                    raise ColumnarFormatError(
                        f"truncated .sgx extract: chunk header of {server_id!r} "
                        f"at byte {position}"
                    )
                fields = _CHUNK_FIXED_V1.unpack_from(view, position)
                payload_offset = position + _CHUNK_FIXED_V1.size
                seen_crc = zlib.crc32(view[record_start:payload_offset], seen_crc)
                n_points = fields[6]
                chunks = [(n_points, fields[7], fields[8], fields[9], None, payload_offset, None)]
                position = payload_offset + n_points * _POINT_BYTES
                if position > total:
                    raise ColumnarFormatError(
                        f"truncated .sgx extract: payload of {server_id!r} "
                        f"at byte {payload_offset}"
                    )
            else:
                if position + _SERVER_FIXED.size > total:
                    raise ColumnarFormatError(
                        f"truncated .sgx extract: server record of {server_id!r} "
                        f"at byte {position}"
                    )
                fields = _SERVER_FIXED.unpack_from(view, position)
                n_chunks = fields[6]
                chunk_struct = (
                    _CHUNK_HEADER_V4
                    if version >= 4
                    else _CHUNK_HEADER_V3 if version == 3 else _CHUNK_HEADER_V2
                )
                table_offset = position + _SERVER_FIXED.size
                table_end = table_offset + n_chunks * chunk_struct.size
                if table_end > total:
                    raise ColumnarFormatError(
                        f"truncated .sgx extract: chunk table of {server_id!r} "
                        f"at byte {table_offset}"
                    )
                seen_crc = zlib.crc32(view[record_start:table_end], seen_crc)
                chunks = []
                payload_offset = table_end
                for index in range(n_chunks):
                    entry = chunk_struct.unpack_from(
                        view, table_offset + index * chunk_struct.size
                    )
                    vstats = None
                    if version >= 4:
                        n_points, min_ts, max_ts, ts_crc, vs_crc = entry[:5]
                        vstats = entry[5:9]
                    elif version == 3:
                        n_points, min_ts, max_ts, ts_crc, vs_crc = entry
                    else:
                        n_points, min_ts, max_ts, ts_crc = entry
                        vs_crc = None
                    chunks.append(
                        (n_points, min_ts, max_ts, ts_crc, vs_crc, payload_offset, vstats)
                    )
                    payload_offset += n_points * _POINT_BYTES
                position = payload_offset
                if position > total:
                    raise ColumnarFormatError(
                        f"truncated .sgx extract: payloads of {server_id!r} "
                        f"at byte {table_end}"
                    )
            yield server_id, fields[:6], chunks
        if position != total:
            raise ColumnarFormatError(
                f"garbled .sgx extract: {total - position} trailing bytes after last chunk"
            )
        if seen_crc != structure_crc:
            # Covers the dictionary, zone maps and every server's metadata
            # fields -- tampered structure must not be silently ingested,
            # nor allowed to mis-prune a time-range read.
            raise ColumnarFormatError("garbled .sgx extract: structure checksum mismatch")

    return version, interval, dictionary, records()


def normalize_columns(columns: Iterable[str] | str | None) -> bool:
    """Validate a column projection; returns whether ``values`` is wanted.

    ``None`` means "every column".  ``timestamps`` is the series index
    (it defines alignment, slicing and the zone maps), so a projection
    that drops it is rejected.
    """
    if columns is None:
        return True
    cols = (columns,) if isinstance(columns, str) else tuple(columns)
    unknown = [column for column in cols if column not in COLUMNS]
    if unknown:
        raise ValueError(f"unknown column(s) {unknown!r}; expected a subset of {COLUMNS}")
    if "timestamps" not in cols:
        raise ValueError(
            "column projection must include 'timestamps' -- it is the series index"
        )
    return "values" in cols


def scan_sgx_bytes(
    data,
    interval_minutes: int | None = None,
    start_minute: int | None = None,
    end_minute: int | None = None,
    *,
    servers: Collection[str] | None = None,
    predicate: Callable[[ServerMetadata], bool] | None = None,
    columns: Iterable[str] | None = None,
    stats: SgxReadStats | None = None,
) -> Iterator[tuple[ServerMetadata, LoadSeries]]:
    """Lazily yield ``(metadata, series)`` per server, with pushdown.

    This is the streaming core every ``.sgx`` read goes through.  The
    header, dictionary and every record/chunk header are walked -- and
    the structure CRC verified -- *before* the first yield, so pruning
    and filtering decisions are never made from an unverified layout,
    even when a consumer stops early.  Payloads, by contrast, are only
    read as the generator is consumed: abandoning the scan after k
    servers never touches the remaining servers' bytes.

    Three pushdowns avoid work at the byte level:

    * ``start_minute``/``end_minute`` -- zone-map chunk pruning exactly
      as in :func:`frame_from_sgx_bytes`; servers with no samples in
      range are omitted.
    * ``servers`` (an id allow-list) and ``predicate`` (a metadata
      predicate, e.g. an engine filter) -- a server failing either is
      skipped from its record header alone; its chunk payloads are never
      read, decoded or checksummed.
    * ``columns`` -- a projection over :data:`COLUMNS`.  Excluding
      ``values`` skips decoding every values buffer, and (v3 files) its
      checksum too; the yielded series carry NaN values, marking "not
      loaded".  v1/v2 files have one joint CRC per chunk, so there the
      whole payload is still checksummed before the timestamps are
      trusted.

    ``data`` may be ``bytes``, ``bytearray`` or a ``memoryview``; non-
    ``bytes`` buffers are read through a view, never copied wholesale.
    ``stats``, when given, is filled incrementally as the scan advances.
    """
    want_values = normalize_columns(columns)
    view = _as_view(data)
    version, interval, dictionary, records = _parse_structure(view)
    if interval_minutes is None:
        interval_minutes = interval
    # Full structure walk (headers only -- payloads untouched) up front:
    # raises on truncation, bounds violations and structure-CRC mismatch
    # before anything is yielded.
    record_list = list(records)

    pruning = start_minute is not None or end_minute is not None
    range_lo = start_minute if start_minute is not None else MIN_MINUTE
    range_hi = end_minute if end_minute is not None else MAX_MINUTE
    allow = frozenset(servers) if servers is not None else None
    # bytes objects are immutable, so full reads can hand out zero-copy
    # frombuffer views; mutable buffers must be copied chunk-by-chunk
    # (still never the whole file) or the frame would alias caller state.
    zero_copy = isinstance(data, bytes)

    seen_ids: set[str] = set()
    for server_id, meta_fields, chunks in record_list:
        if server_id in seen_ids:
            raise ColumnarFormatError(
                f"garbled .sgx extract: duplicate chunk for server {server_id!r}"
            )
        seen_ids.add(server_id)
        (
            region_idx,
            engine_idx,
            true_class_idx,
            backup_start,
            backup_end,
            backup_duration,
        ) = meta_fields
        metadata = ServerMetadata(
            server_id=server_id,
            region=_dict_lookup(dictionary, region_idx, "region"),
            engine=_dict_lookup(dictionary, engine_idx, "engine"),
            default_backup_start=backup_start,
            default_backup_end=backup_end,
            backup_duration_minutes=backup_duration,
            true_class=_dict_lookup(dictionary, true_class_idx, "true class"),
        )
        if stats is not None:
            stats.servers_seen += 1
        if (allow is not None and server_id not in allow) or (
            predicate is not None and not predicate(metadata)
        ):
            # Server filtered out from its (structure-verified) header:
            # every chunk payload stays unread and unverified.
            if stats is not None:
                stats.servers_skipped += 1
                stats.chunks_seen += len(chunks)
                stats.chunks_pruned += len(chunks)
                stats.payload_bytes_total += sum(c[0] for c in chunks) * _POINT_BYTES
            continue
        kept_ts: list[np.ndarray] = []
        kept_vs: list[np.ndarray] = []
        for n_points, min_ts, max_ts, ts_crc, vs_crc, payload_offset, _vstats in chunks:
            payload_bytes = n_points * _POINT_BYTES
            if stats is not None:
                stats.chunks_seen += 1
                stats.payload_bytes_total += payload_bytes
            if pruning and (n_points == 0 or max_ts < range_lo or min_ts >= range_hi):
                # Zone-map pruned: payload untouched, checksum unverified.
                if stats is not None:
                    stats.chunks_pruned += 1
                continue
            ts_bytes = 8 * n_points
            if vs_crc is None:
                # v1/v2: one joint CRC over both column buffers, so even a
                # timestamps-only projection must checksum the payload.
                if zlib.crc32(view[payload_offset : payload_offset + payload_bytes]) != ts_crc:
                    raise ColumnarFormatError(
                        f"garbled .sgx extract: chunk checksum mismatch for {server_id!r}"
                    )
                verified = payload_bytes
            else:
                if zlib.crc32(view[payload_offset : payload_offset + ts_bytes]) != ts_crc:
                    raise ColumnarFormatError(
                        f"garbled .sgx extract: chunk checksum mismatch for {server_id!r}"
                    )
                verified = ts_bytes
                if want_values:
                    if (
                        zlib.crc32(view[payload_offset + ts_bytes : payload_offset + payload_bytes])
                        != vs_crc
                    ):
                        raise ColumnarFormatError(
                            f"garbled .sgx extract: chunk checksum mismatch for {server_id!r}"
                        )
                    verified = payload_bytes
            if stats is not None:
                stats.payload_bytes_verified += verified
                if not want_values:
                    stats.columns_skipped += 1
            timestamps = np.frombuffer(view, dtype="<i8", count=n_points, offset=payload_offset)
            values = (
                np.frombuffer(view, dtype="<f8", count=n_points, offset=payload_offset + ts_bytes)
                if want_values
                else None
            )
            if pruning:
                if min_ts < range_lo or max_ts >= range_hi:
                    lo = int(np.searchsorted(timestamps, range_lo, side="left"))
                    hi = int(np.searchsorted(timestamps, range_hi, side="left"))
                    if lo == hi:
                        continue
                    timestamps = timestamps[lo:hi]
                    if values is not None:
                        values = values[lo:hi]
                # A partial read keeps a small fraction of the file;
                # copying the kept slices releases the file buffer
                # (frombuffer views would pin it for the frame's
                # lifetime).  Full reads of immutable bytes stay
                # zero-copy -- there the frame spans the buffer anyway.
                timestamps = timestamps.copy()
                if values is not None:
                    values = values.copy()
            elif not zero_copy:
                timestamps = timestamps.copy()
                if values is not None:
                    values = values.copy()
            if values is None:
                # Unprojected values surface as NaN -- "not loaded", never
                # a fabricated 0.0 load.
                values = np.full(timestamps.shape[0], np.nan, dtype="<f8")
            if n_points:
                kept_ts.append(timestamps)
                kept_vs.append(values)
        if not kept_ts:
            if pruning:
                continue  # no samples in range: server omitted
            timestamps = np.empty(0, dtype="<i8")
            values = np.empty(0, dtype="<f8")
        elif len(kept_ts) == 1:
            timestamps, values = kept_ts[0], kept_vs[0]
        else:
            for prev, nxt in zip(kept_ts, kept_ts[1:], strict=False):
                if int(nxt[0]) <= int(prev[-1]):
                    raise ColumnarFormatError(
                        f"garbled .sgx extract: out-of-order chunks for server {server_id!r}"
                    )
            timestamps = np.concatenate(kept_ts)
            values = np.concatenate(kept_vs)
        yield metadata, LoadSeries(timestamps, values, interval_minutes, validate=False)


def frame_from_sgx_bytes(
    data,
    interval_minutes: int | None = None,
    start_minute: int | None = None,
    end_minute: int | None = None,
    stats: SgxReadStats | None = None,
    *,
    servers: Collection[str] | None = None,
    predicate: Callable[[ServerMetadata], bool] | None = None,
    columns: Iterable[str] | None = None,
) -> LoadFrame:
    """Deserialise ``.sgx`` bytes into a :class:`LoadFrame`.

    ``interval_minutes`` defaults to the interval recorded in the header.
    When ``start_minute``/``end_minute`` bound a half-open time range,
    chunks whose zone map falls outside it are skipped without reading or
    verifying their payload -- per-day chunking makes that pruning
    effective *within* a server -- and overlapping chunks are cut to the
    range; servers with no samples in range are omitted from the result.
    A server's surviving chunks are merged back into one series.

    ``servers``/``predicate``/``columns`` push server filtering and
    column projection down to the byte level -- see
    :func:`scan_sgx_bytes`, which this wraps.

    ``data`` may be ``bytes``, ``bytearray`` or a ``memoryview``; non-
    ``bytes`` buffers are read through a view, never copied wholesale --
    a pruned read materialises only the slices it keeps.  ``stats``, when
    given, is filled with chunk/byte counters for observability.
    """
    if interval_minutes is None:
        interval_minutes = _parse_header(_as_view(data))[1]
    frame = LoadFrame(interval_minutes)
    for metadata, series in scan_sgx_bytes(
        data,
        interval_minutes,
        start_minute,
        end_minute,
        servers=servers,
        predicate=predicate,
        columns=columns,
        stats=stats,
    ):
        frame.add_server(metadata, series)
    return frame


def read_frame_sgx(
    path: str | Path,
    interval_minutes: int | None = None,
    start_minute: int | None = None,
    end_minute: int | None = None,
    stats: SgxReadStats | None = None,
) -> LoadFrame:
    """Read an ``.sgx`` extract from ``path``."""
    return frame_from_sgx_bytes(
        Path(path).read_bytes(), interval_minutes, start_minute, end_minute, stats=stats
    )


# --------------------------------------------------------------------- #
# Aggregation
# --------------------------------------------------------------------- #


def aggregate_sgx_bytes(
    data,
    accumulator,
    start_minute: int | None = None,
    end_minute: int | None = None,
    *,
    servers: Collection[str] | None = None,
    predicate: Callable[[ServerMetadata], bool] | None = None,
    stats: SgxReadStats | None = None,
) -> None:
    """Fold ``.sgx`` bytes into an :class:`~repro.storage.aggregate.AggregateAccumulator`.

    The decode-free read path: the structure walk is verified exactly as
    in :func:`scan_sgx_bytes`, then each surviving chunk is answered from
    its chunk-table statistics whenever that is exact -- the chunk lies
    fully inside the time range, does not straddle a day boundary when
    grouping by day, and carries the statistics the reductions need (v4
    value pre-aggregates, or just ``n_points`` for count-only
    aggregates, which every version stores).  Only partial-overlap
    chunks (and stat-less chunks of pre-v4 files) are decoded, CRC-
    verified and folded sample-by-sample; the pairwise merge inside the
    accumulator makes mixing the two sources exact.

    Chunks answered from statistics never have their payload read or
    checksummed -- their integrity rests on the structure CRC, which
    covers every chunk-table field.  ``stats`` counts them in
    ``chunks_answered_from_stats``/``bytes_decoded_avoided``.
    """
    view = _as_view(data)
    version, _interval, dictionary, records = _parse_structure(view)
    record_list = list(records)

    pruning = start_minute is not None or end_minute is not None
    range_lo = start_minute if start_minute is not None else MIN_MINUTE
    range_hi = end_minute if end_minute is not None else MAX_MINUTE
    allow = frozenset(servers) if servers is not None else None
    values_needed = accumulator.values_needed
    by_day = accumulator.by_day

    seen_ids: set[str] = set()
    for server_id, meta_fields, chunks in record_list:
        if server_id in seen_ids:
            raise ColumnarFormatError(
                f"garbled .sgx extract: duplicate chunk for server {server_id!r}"
            )
        seen_ids.add(server_id)
        (
            region_idx,
            engine_idx,
            true_class_idx,
            backup_start,
            backup_end,
            backup_duration,
        ) = meta_fields
        metadata = ServerMetadata(
            server_id=server_id,
            region=_dict_lookup(dictionary, region_idx, "region"),
            engine=_dict_lookup(dictionary, engine_idx, "engine"),
            default_backup_start=backup_start,
            default_backup_end=backup_end,
            backup_duration_minutes=backup_duration,
            true_class=_dict_lookup(dictionary, true_class_idx, "true class"),
        )
        if stats is not None:
            stats.servers_seen += 1
        if (allow is not None and server_id not in allow) or (
            predicate is not None and not predicate(metadata)
        ):
            if stats is not None:
                stats.servers_skipped += 1
                stats.chunks_seen += len(chunks)
                stats.chunks_pruned += len(chunks)
                stats.payload_bytes_total += sum(c[0] for c in chunks) * _POINT_BYTES
            continue
        for n_points, min_ts, max_ts, ts_crc, vs_crc, payload_offset, vstats in chunks:
            payload_bytes = n_points * _POINT_BYTES
            if stats is not None:
                stats.chunks_seen += 1
                stats.payload_bytes_total += payload_bytes
            if pruning and (n_points == 0 or max_ts < range_lo or min_ts >= range_hi):
                if stats is not None:
                    stats.chunks_pruned += 1
                continue
            fully_inside = not pruning or (min_ts >= range_lo and max_ts < range_hi)
            day_compatible = not by_day or (
                min_ts // MINUTES_PER_DAY == max_ts // MINUTES_PER_DAY
            )
            stats_available = not values_needed or vstats is not None
            if fully_inside and day_compatible and stats_available:
                # Answered from the chunk table alone: the payload stays
                # unread; the statistics are vouched for by the already-
                # verified structure CRC.
                accumulator.fold_chunk_stats(
                    server_id,
                    min_ts // MINUTES_PER_DAY,
                    n_points,
                    *(vstats if vstats is not None else (0.0, 0.0, 0.0, 0.0)),
                )
                if stats is not None:
                    stats.chunks_answered_from_stats += 1
                    stats.bytes_decoded_avoided += payload_bytes
                continue
            # Decode path: partial overlap, day-straddling chunk, or a
            # pre-v4 chunk without value statistics.
            ts_bytes = 8 * n_points
            if vs_crc is None:
                if zlib.crc32(view[payload_offset : payload_offset + payload_bytes]) != ts_crc:
                    raise ColumnarFormatError(
                        f"garbled .sgx extract: chunk checksum mismatch for {server_id!r}"
                    )
                verified = payload_bytes
            else:
                if zlib.crc32(view[payload_offset : payload_offset + ts_bytes]) != ts_crc:
                    raise ColumnarFormatError(
                        f"garbled .sgx extract: chunk checksum mismatch for {server_id!r}"
                    )
                verified = ts_bytes
                if values_needed:
                    if (
                        zlib.crc32(view[payload_offset + ts_bytes : payload_offset + payload_bytes])
                        != vs_crc
                    ):
                        raise ColumnarFormatError(
                            f"garbled .sgx extract: chunk checksum mismatch for {server_id!r}"
                        )
                    verified = payload_bytes
            if stats is not None:
                stats.payload_bytes_verified += verified
                if not values_needed:
                    stats.columns_skipped += 1
            timestamps = np.frombuffer(view, dtype="<i8", count=n_points, offset=payload_offset)
            values = (
                np.frombuffer(view, dtype="<f8", count=n_points, offset=payload_offset + ts_bytes)
                if values_needed
                else None
            )
            if pruning and (min_ts < range_lo or max_ts >= range_hi):
                lo = int(np.searchsorted(timestamps, range_lo, side="left"))
                hi = int(np.searchsorted(timestamps, range_hi, side="left"))
                if lo == hi:
                    continue
                timestamps = timestamps[lo:hi]
                if values is not None:
                    values = values[lo:hi]
            accumulator.fold_columns(server_id, timestamps, values)


def upgrade_sgx_bytes(data) -> bytes:
    """Re-encode older-version ``.sgx`` bytes as format v4, preserving
    every chunk boundary byte-for-byte.

    Payload bytes are copied verbatim and each chunk keeps its exact
    point span and zone map -- only the chunk-table entries (which gain
    per-column CRCs below v3 and the v4 value pre-aggregates) and the
    file header are rewritten.  The source's stored checksums are
    verified while the values are read, so a damaged file cannot be
    laundered into a fresh-looking v4 copy.  Already-v4 input is
    returned unchanged.
    """
    view = _as_view(data)
    version, interval, dictionary, records = _parse_structure(view)
    if version == VERSION:
        return bytes(view)

    record_blobs: list[tuple[bytes, list[bytes]]] = []
    for server_id, meta_fields, chunks in records:
        chunk_table = bytearray()
        payloads: list[bytes] = []
        for n_points, min_ts, max_ts, ts_crc, vs_crc, payload_offset, _vstats in chunks:
            ts_end = payload_offset + 8 * n_points
            payload_end = payload_offset + n_points * _POINT_BYTES
            ts_buf = bytes(view[payload_offset:ts_end])
            vs_buf = bytes(view[ts_end:payload_end])
            if vs_crc is None:
                if zlib.crc32(ts_buf + vs_buf) != ts_crc:
                    raise ColumnarFormatError(
                        f"garbled .sgx extract: chunk checksum mismatch for {server_id!r}"
                    )
                new_ts_crc = zlib.crc32(ts_buf)
                new_vs_crc = zlib.crc32(vs_buf)
            else:
                if zlib.crc32(ts_buf) != ts_crc or zlib.crc32(vs_buf) != vs_crc:
                    raise ColumnarFormatError(
                        f"garbled .sgx extract: chunk checksum mismatch for {server_id!r}"
                    )
                new_ts_crc, new_vs_crc = ts_crc, vs_crc
            if n_points:
                values = np.frombuffer(vs_buf, dtype="<f8")
                vs_sum = float(values.sum())
                vs_min = float(values.min())
                vs_max = float(values.max())
                vs_sum_sq = float(np.dot(values, values))
            else:
                vs_sum = vs_min = vs_max = vs_sum_sq = 0.0
            chunk_table += _CHUNK_HEADER_V4.pack(
                n_points,
                min_ts,
                max_ts,
                new_ts_crc,
                new_vs_crc,
                vs_sum,
                vs_min,
                vs_max,
                vs_sum_sq,
            )
            payloads.append(ts_buf + vs_buf)
        record_header = (
            _packed_string(server_id, "server id")
            + _SERVER_FIXED.pack(*meta_fields, len(payloads))
            + bytes(chunk_table)
        )
        record_blobs.append((record_header, payloads))

    dict_section = b"".join(_packed_string(text, "dictionary string") for text in dictionary)
    structure_crc = zlib.crc32(dict_section)
    for record_header, _payloads in record_blobs:
        structure_crc = zlib.crc32(record_header, structure_crc)
    body_parts = [dict_section]
    for record_header, payloads in record_blobs:
        body_parts.append(record_header)
        body_parts.extend(payloads)
    body = b"".join(body_parts)
    header = _FILE_HEADER.pack(
        MAGIC,
        VERSION,
        0,
        interval,
        len(record_blobs),
        len(dictionary),
        HEADER_BYTES + len(body),
        structure_crc,
    )
    return header + _HEADER_CRC.pack(zlib.crc32(header)) + body


# --------------------------------------------------------------------- #
# Inspection
# --------------------------------------------------------------------- #


def sgx_summary(data) -> dict[str, object]:
    """Describe ``.sgx`` bytes without verifying payload checksums.

    Returns header fields plus one zone-map entry per chunk (each tagged
    with its server id -- a v2 server contributes one entry per day
    chunk) -- the inspection hook for tests and debugging (cheap:
    payloads are skipped, not read).
    """
    view = _as_view(data)
    version, interval, dictionary, record_iter = _parse_structure(view)
    chunks: list[dict[str, object]] = []
    n_servers = 0
    total_points = 0
    for server_id, _meta_fields, chunk_list in record_iter:
        n_servers += 1
        for n_points, min_ts, max_ts, _ts_crc, _vs_crc, _payload_offset, vstats in chunk_list:
            total_points += n_points
            entry: dict[str, object] = {
                "server_id": server_id,
                "n_points": n_points,
                "min_ts": min_ts,
                "max_ts": max_ts,
            }
            if vstats is not None:
                entry["vs_sum"], entry["vs_min"], entry["vs_max"], entry["vs_sum_sq"] = vstats
            chunks.append(entry)
    return {
        "version": version,
        "interval_minutes": interval,
        "n_servers": n_servers,
        "n_dictionary_strings": len(dictionary),
        "n_points": total_points,
        "n_chunks": len(chunks),
        "n_bytes": view.nbytes,
        "chunks": chunks,
    }
