"""Binary columnar extract format (``.sgx``).

CSV parsing dominates cold-run ingestion: every value is re-tokenised and
re-converted on every read.  The ``.sgx`` format stores a weekly extract
the way the pipeline consumes it -- per-server columns of raw
little-endian ``int64`` timestamps and ``float64`` CPU values -- so a read
is a :func:`numpy.frombuffer` over the file bytes instead of a row loop.

Layout (all integers little-endian)::

    header   magic "SGXF" | version u16 | flags u16 | interval u32
             | n_servers u32 | n_dict u32 | file_length u64
             | structure_crc u32 | header_crc u32
    dict     n_dict strings (u16 length + UTF-8 bytes); region / engine /
             true-class values are stored once and referenced by index
    chunks   one per server:
               server_id (u16 length + UTF-8 bytes)
               region_idx u32 | engine_idx u32 | true_class_idx u32
               backup_start i64 | backup_end i64 | backup_duration u32
               n_points u64 | min_ts i64 | max_ts i64 | payload_crc u32
               timestamps  n_points x i64
               values      n_points x f64

Every chunk carries a **zone map** (``min_ts``/``max_ts``): a time-range
read (:func:`frame_from_sgx_bytes` with ``start_minute``/``end_minute``)
skips non-overlapping chunks without touching -- or checksum-verifying --
their payload bytes.  Three checksums cover everything that *is*
ingested: ``header_crc`` over the fixed header, ``structure_crc`` over
the dictionary and every chunk header (so tampered zone maps, metadata
fields or dictionary strings cannot be silently loaded -- pruning
decisions are only trusted once the structure verifies), and a per-chunk
``payload_crc`` over the column buffers actually read.  Any damage (bad
magic, truncation, checksum mismatch, out-of-range dictionary index)
raises the typed :class:`ColumnarFormatError` so callers can degrade to
a CSV fallback.
"""

from __future__ import annotations

import struct
import zlib
from pathlib import Path

import numpy as np

from repro.timeseries.frame import LoadFrame, ServerMetadata
from repro.timeseries.series import LoadSeries

MAGIC = b"SGXF"
VERSION = 1

#: magic 4s | version u16 | flags u16 | interval u32 | n_servers u32
#: | n_dict u32 | file_length u64 | structure_crc u32 -- followed by a
#: u32 CRC of these bytes.  ``structure_crc`` covers the dictionary
#: section plus every chunk header (everything between the header and the
#: payloads), so zone maps and metadata are tamper-evident even though
#: pruned payloads are never read.
_HEADER = struct.Struct("<4sHHIIIQI")
_HEADER_CRC = struct.Struct("<I")
HEADER_BYTES = _HEADER.size + _HEADER_CRC.size  # 36

#: region_idx | engine_idx | true_class_idx | backup_start | backup_end
#: | backup_duration | n_points | min_ts | max_ts | payload_crc
_CHUNK_FIXED = struct.Struct("<IIIqqIQqqI")
_STRING_LEN = struct.Struct("<H")

#: Sentinel zone map of an empty chunk: min > max can match no range.
_EMPTY_MIN_TS = 0
_EMPTY_MAX_TS = -1


class ColumnarFormatError(ValueError):
    """Raised when bytes are not a readable ``.sgx`` extract.

    Covers structural damage (bad magic, unsupported version, truncation)
    and content damage (header or chunk checksum mismatches).  It is a
    ``ValueError`` so ingestion error handling that already catches parse
    failures keeps working.
    """


# --------------------------------------------------------------------- #
# Writing
# --------------------------------------------------------------------- #


def _packed_string(text: str, what: str) -> bytes:
    encoded = text.encode("utf-8")
    if len(encoded) > 0xFFFF:
        raise ColumnarFormatError(f"{what} {text[:32]!r}... exceeds 65535 encoded bytes")
    return _STRING_LEN.pack(len(encoded)) + encoded


def frame_to_sgx_bytes(frame: LoadFrame) -> bytes:
    """Serialise ``frame`` into ``.sgx`` bytes."""
    dictionary: dict[str, int] = {}

    def intern(text: str) -> int:
        return dictionary.setdefault(text, len(dictionary))

    chunk_blobs: list[tuple[bytes, bytes]] = []  # (chunk header, payload)
    for server_id, metadata, series in frame.items():
        timestamps = np.ascontiguousarray(series.timestamps, dtype="<i8")
        values = np.ascontiguousarray(series.values, dtype="<f8")
        payload = timestamps.tobytes() + values.tobytes()
        n_points = int(timestamps.shape[0])
        if n_points:
            min_ts, max_ts = int(timestamps[0]), int(timestamps[-1])
        else:
            min_ts, max_ts = _EMPTY_MIN_TS, _EMPTY_MAX_TS
        chunk_header = _packed_string(server_id, "server id") + _CHUNK_FIXED.pack(
            intern(metadata.region),
            intern(metadata.engine),
            intern(metadata.true_class),
            metadata.default_backup_start,
            metadata.default_backup_end,
            metadata.backup_duration_minutes,
            n_points,
            min_ts,
            max_ts,
            zlib.crc32(payload),
        )
        chunk_blobs.append((chunk_header, payload))

    dict_section = bytearray()
    for text in dictionary:  # insertion order == index order
        dict_section += _packed_string(text, "dictionary string")

    structure_crc = zlib.crc32(bytes(dict_section))
    for chunk_header, _payload in chunk_blobs:
        structure_crc = zlib.crc32(chunk_header, structure_crc)

    body = bytes(dict_section) + b"".join(
        chunk_header + payload for chunk_header, payload in chunk_blobs
    )
    header = _HEADER.pack(
        MAGIC,
        VERSION,
        0,
        frame.interval_minutes,
        len(frame),
        len(dictionary),
        HEADER_BYTES + len(body),
        structure_crc,
    )
    return header + _HEADER_CRC.pack(zlib.crc32(header)) + body


def write_frame_sgx(frame: LoadFrame, path: str | Path) -> int:
    """Write ``frame`` to ``path`` as ``.sgx``; returns data rows written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(frame_to_sgx_bytes(frame))
    return frame.total_points()


# --------------------------------------------------------------------- #
# Reading
# --------------------------------------------------------------------- #


def _read_string(data: bytes, offset: int, what: str) -> tuple[str, int]:
    end = offset + _STRING_LEN.size
    if end > len(data):
        raise ColumnarFormatError(f"truncated .sgx extract: {what} length at byte {offset}")
    (length,) = _STRING_LEN.unpack_from(data, offset)
    if end + length > len(data):
        raise ColumnarFormatError(f"truncated .sgx extract: {what} bytes at byte {end}")
    try:
        text = data[end : end + length].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ColumnarFormatError(f"garbled .sgx extract: {what} is not UTF-8") from exc
    return text, end + length


def _parse_header(data: bytes) -> tuple[int, int, int, int]:
    """Validate the header; returns ``(interval, n_servers, n_dict, structure_crc)``."""
    if len(data) < HEADER_BYTES:
        raise ColumnarFormatError(
            f"truncated .sgx extract: {len(data)} bytes, header needs {HEADER_BYTES}"
        )
    (
        magic,
        version,
        _flags,
        interval,
        n_servers,
        n_dict,
        file_length,
        structure_crc,
    ) = _HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise ColumnarFormatError(f"not an .sgx extract (magic {magic!r})")
    (header_crc,) = _HEADER_CRC.unpack_from(data, _HEADER.size)
    if zlib.crc32(data[: _HEADER.size]) != header_crc:
        raise ColumnarFormatError("garbled .sgx extract: header checksum mismatch")
    if version != VERSION:
        raise ColumnarFormatError(
            f"unsupported .sgx version {version} (this reader supports {VERSION})"
        )
    if file_length != len(data):
        raise ColumnarFormatError(
            f"truncated .sgx extract: header declares {file_length} bytes, got {len(data)}"
        )
    return interval, n_servers, n_dict, structure_crc


def _dict_lookup(dictionary: list[str], index: int, what: str) -> str:
    if index >= len(dictionary):
        raise ColumnarFormatError(
            f"garbled .sgx extract: {what} dictionary index {index} out of range"
        )
    return dictionary[index]


def _parse_structure(data: bytes):
    """Validate header + dictionary; return ``(interval, dictionary, chunks)``.

    ``chunks`` is a generator of ``(server_id, fields, payload_offset)``
    per chunk (``fields`` is the raw :data:`_CHUNK_FIXED` tuple).  It
    bounds-checks every chunk, and on exhaustion verifies that the chunks
    exactly fill the file and that the accumulated structure CRC matches
    the header -- the single walk both the reader and the inspector use,
    so the two can never diverge on the layout.
    """
    interval, n_servers, n_dict, structure_crc = _parse_header(data)
    offset = HEADER_BYTES
    dictionary: list[str] = []
    for _ in range(n_dict):
        text, offset = _read_string(data, offset, "dictionary string")
        dictionary.append(text)
    view = memoryview(data)
    dict_end = offset

    def chunks():
        position = dict_end
        seen_crc = zlib.crc32(view[HEADER_BYTES:dict_end])
        for _ in range(n_servers):
            chunk_start = position
            server_id, position = _read_string(data, chunk_start, "server id")
            if position + _CHUNK_FIXED.size > len(data):
                raise ColumnarFormatError(
                    f"truncated .sgx extract: chunk header of {server_id!r} at byte {position}"
                )
            fields = _CHUNK_FIXED.unpack_from(data, position)
            payload_offset = position + _CHUNK_FIXED.size
            seen_crc = zlib.crc32(view[chunk_start:payload_offset], seen_crc)
            n_points = fields[6]
            position = payload_offset + n_points * 16
            if position > len(data):
                raise ColumnarFormatError(
                    f"truncated .sgx extract: payload of {server_id!r} at byte {payload_offset}"
                )
            yield server_id, fields, payload_offset
        if position != len(data):
            raise ColumnarFormatError(
                f"garbled .sgx extract: {len(data) - position} trailing bytes after last chunk"
            )
        if seen_crc != structure_crc:
            # Covers the dictionary, zone maps and every chunk's metadata
            # fields -- tampered structure must not be silently ingested,
            # nor allowed to mis-prune a time-range read.
            raise ColumnarFormatError("garbled .sgx extract: structure checksum mismatch")

    return interval, dictionary, chunks()


def frame_from_sgx_bytes(
    data: bytes,
    interval_minutes: int | None = None,
    start_minute: int | None = None,
    end_minute: int | None = None,
) -> LoadFrame:
    """Deserialise ``.sgx`` bytes into a :class:`LoadFrame`.

    ``interval_minutes`` defaults to the interval recorded in the header.
    When ``start_minute``/``end_minute`` bound a half-open time range,
    chunks whose zone map falls outside it are skipped without reading or
    verifying their payload, and overlapping chunks are cut to the range;
    servers with no samples in range are omitted from the result.
    """
    data = bytes(data) if isinstance(data, (bytearray, memoryview)) else data
    interval, dictionary, chunks = _parse_structure(data)
    if interval_minutes is None:
        interval_minutes = interval

    pruning = start_minute is not None or end_minute is not None
    range_lo = start_minute if start_minute is not None else -(1 << 62)
    range_hi = end_minute if end_minute is not None else (1 << 62)

    frame = LoadFrame(interval_minutes)
    view = memoryview(data)
    for server_id, fields, payload_offset in chunks:
        (
            region_idx,
            engine_idx,
            true_class_idx,
            backup_start,
            backup_end,
            backup_duration,
            n_points,
            min_ts,
            max_ts,
            payload_crc,
        ) = fields
        payload_bytes = n_points * 16

        if pruning and (n_points == 0 or max_ts < range_lo or min_ts >= range_hi):
            continue  # zone-map pruned: payload untouched, checksum unverified

        if zlib.crc32(view[payload_offset : payload_offset + payload_bytes]) != payload_crc:
            raise ColumnarFormatError(
                f"garbled .sgx extract: chunk checksum mismatch for {server_id!r}"
            )
        timestamps = np.frombuffer(data, dtype="<i8", count=n_points, offset=payload_offset)
        values = np.frombuffer(
            data, dtype="<f8", count=n_points, offset=payload_offset + 8 * n_points
        )
        if pruning:
            if min_ts < range_lo or max_ts >= range_hi:
                lo = int(np.searchsorted(timestamps, range_lo, side="left"))
                hi = int(np.searchsorted(timestamps, range_hi, side="left"))
                if lo == hi:
                    continue
                timestamps = timestamps[lo:hi]
                values = values[lo:hi]
            # A partial read keeps a small fraction of the file; copying
            # the kept slices releases the full file buffer (frombuffer
            # views would pin it for the frame's lifetime).  Full reads
            # stay zero-copy -- there the frame spans the buffer anyway.
            timestamps = timestamps.copy()
            values = values.copy()
        if server_id in frame:
            raise ColumnarFormatError(
                f"garbled .sgx extract: duplicate chunk for server {server_id!r}"
            )
        metadata = ServerMetadata(
            server_id=server_id,
            region=_dict_lookup(dictionary, region_idx, "region"),
            engine=_dict_lookup(dictionary, engine_idx, "engine"),
            default_backup_start=backup_start,
            default_backup_end=backup_end,
            backup_duration_minutes=backup_duration,
            true_class=_dict_lookup(dictionary, true_class_idx, "true class"),
        )
        frame.add_server(
            metadata, LoadSeries(timestamps, values, interval_minutes, validate=False)
        )
    return frame


def read_frame_sgx(
    path: str | Path,
    interval_minutes: int | None = None,
    start_minute: int | None = None,
    end_minute: int | None = None,
) -> LoadFrame:
    """Read an ``.sgx`` extract from ``path``."""
    return frame_from_sgx_bytes(
        Path(path).read_bytes(), interval_minutes, start_minute, end_minute
    )


# --------------------------------------------------------------------- #
# Inspection
# --------------------------------------------------------------------- #


def sgx_summary(data: bytes) -> dict[str, object]:
    """Describe ``.sgx`` bytes without verifying payload checksums.

    Returns header fields plus one zone-map entry per chunk -- the
    inspection hook for tests and debugging (cheap: payloads are skipped,
    not read).
    """
    data = bytes(data) if isinstance(data, (bytearray, memoryview)) else data
    interval, dictionary, chunk_iter = _parse_structure(data)
    chunks: list[dict[str, object]] = []
    total_points = 0
    for server_id, fields, _payload_offset in chunk_iter:
        n_points, min_ts, max_ts = fields[6], fields[7], fields[8]
        total_points += n_points
        chunks.append(
            {"server_id": server_id, "n_points": n_points, "min_ts": min_ts, "max_ts": max_ts}
        )
    return {
        "version": VERSION,
        "interval_minutes": interval,
        "n_servers": len(chunks),
        "n_dictionary_strings": len(dictionary),
        "n_points": total_points,
        "n_bytes": len(data),
        "chunks": chunks,
    }
