"""Append-only intent/commit log for lake manifest transactions.

The write-ahead half of the manifest's recoverability story (the design
follows the partially-constrained-log idea of Zhou et al.: constrain only
the orderings recovery needs, let everything else race).  Every record is
one JSON object per line, appended with ``flush + fsync`` before the
transaction takes its next durable step, so after a crash the log always
says how far the writer got:

``intent``
    A transaction started on top of generation ``generation_from``.
``staged``
    The transaction published one content-addressed segment file
    (``reused`` marks a file that already existed -- identical payload
    bytes hash to the same name -- and therefore must survive rollback).
``commit``
    The transaction's generation pointer swap completed; the new
    generation is durable and visible.
``abort``
    The transaction rolled itself back (writer-side failure with the
    writer still alive).
``recovered``
    Appended by crash recovery when it resolves a dangling ``intent``:
    ``action="commit"`` when the pointer swap had already happened
    (the transaction *did* commit; only its commit record was lost) and
    ``action="abort"`` when recovery rolled the leftovers back.

A torn line (the crash happened mid-append) is expected and skipped by
:meth:`TransactionLog.records`; every complete record was fsync'd and is
trusted.  :meth:`TransactionLog.append` repairs a torn tail by starting
a fresh line, so records appended after the crash -- recovery's
``recovered`` resolution in particular -- stay parsable instead of being
glued onto the torn fragment.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["PendingTransaction", "TransactionLog"]


@dataclass
class PendingTransaction:
    """A dangling ``intent`` record with no ``commit``/``abort`` resolution."""

    txid: str
    generation_from: int
    op: str
    #: ``(relpath, reused)`` for every segment the transaction durably
    #: staged before the crash, in staging order.
    staged: list[tuple[str, bool]] = field(default_factory=list)


class TransactionLog:
    """One lake's append-only transaction log (``_manifest/txlog.jsonl``)."""

    def __init__(self, path: Path) -> None:
        self._path = path

    @property
    def path(self) -> Path:
        return self._path

    def append(self, record: dict[str, object]) -> None:
        """Durably append one record: the call returns only after the
        line (and the records before it) survive a crash."""
        self._path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True).encode("utf-8") + b"\n"
        with self._path.open("a+b") as handle:
            handle.seek(0, os.SEEK_END)
            if handle.tell() > 0:
                handle.seek(-1, os.SEEK_END)
                if handle.read(1) != b"\n":
                    # A crash tore the previous append mid-line.  Start a
                    # fresh line so this record stays parsable; the torn
                    # fragment becomes its own line, skipped by records().
                    handle.write(b"\n")
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())

    def records(self) -> list[dict[str, object]]:
        """Every complete record, oldest first (torn lines are skipped)."""
        try:
            text = self._path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return []
        records: list[dict[str, object]] = []
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                # A torn append: the crash hit mid-write, so the record
                # was never acknowledged and it is as if it never
                # happened.  append() repaired the tail with a newline,
                # so every record after the fragment sits on its own
                # parsable line -- skip the fragment, keep reading.
                continue
            if isinstance(record, dict):
                records.append(record)
        return records

    def pending(self) -> PendingTransaction | None:
        """The dangling transaction recovery must resolve, if any.

        Transactions run under an exclusive writer lock, so at most one
        ``intent`` can be unresolved at a time -- the last one.
        """
        pending: PendingTransaction | None = None
        for record in self.records():
            kind = record.get("type")
            if kind == "intent":
                pending = PendingTransaction(
                    txid=str(record.get("txid", "")),
                    generation_from=int(record.get("generation_from", 0)),  # type: ignore[arg-type]
                    op=str(record.get("op", "")),
                )
            elif pending is not None and record.get("txid") == pending.txid:
                if kind == "staged":
                    pending.staged.append(
                        (str(record.get("relpath", "")), bool(record.get("reused", False)))
                    )
                elif kind in ("commit", "abort", "recovered"):
                    pending = None
        return pending
