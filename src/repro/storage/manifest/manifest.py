"""Generation-numbered lake manifest: atomic, crash-safe lake mutations.

A manifested lake keeps its truth in ``<root>/_manifest/``::

    _manifest/
        MANIFEST.json      # tiny pointer: {"generation": N, "txid", "file"}
        gen-00000000.json  # immutable snapshot of generation 0
        gen-00000001.json  # ... one file per committed generation
        txlog.jsonl        # append-only intent/commit log (txlog.py)
        LOCK               # advisory flock taken by writers

Payload bytes live in immutable, content-addressed **segment files**
(``<region>/extract_<region>_week<NNNN>-<sha12>.<fmt>``); a generation
file is just the list of segments that make up the lake at that point in
time.  Mutations never touch published files: a transaction stages new
segments under temp names, fsyncs them into place, writes generation
``N+1``'s snapshot file, and finally publishes it by atomically swapping
``MANIFEST.json`` via ``os.replace`` -- the one instant the transaction
commits.  The transaction log brackets those steps so crash recovery can
always tell "not yet committed, roll the leftovers back" from "committed,
only the commit record is missing".

Readers load a snapshot once and keep it: every file a snapshot
references is immutable and survives until an explicit
:meth:`LakeManifest.collect_garbage`, so a reader (or out-of-process
fleet worker) pinned to generation ``N`` is untouched by concurrent
writes and conversions.  Deletes are therefore *logical* -- they drop
manifest entries and retire the files -- and ``collect_garbage`` is the
only code that unlinks published payload files.

Lakes that predate the manifest are adopted lazily: until the first
mutation, generation 0 is inferred from the directory layout
(``<region>/extract_<region>_week<NNNN>.<fmt>``) and nothing is written;
the first transaction materialises that inferred snapshot as
``gen-00000000.json`` and builds generation 1 on top of it, keeping the
legacy files as the entries they already were.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass, field
from pathlib import Path
from types import TracebackType

from repro.storage.manifest.faults import fault_point
from repro.storage.manifest.txlog import TransactionLog
from repro.storage.query import EXTRACT_FORMATS

try:  # pragma: no cover - POSIX everywhere we run; the fallback documents intent
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

__all__ = [
    "FAULT_POINTS",
    "GcReport",
    "LIVE_DIR_NAME",
    "LakeManifest",
    "LakeManifestError",
    "ManifestSnapshot",
    "ManifestTransaction",
    "SegmentEntry",
]

MANIFEST_DIR_NAME = "_manifest"
POINTER_NAME = "MANIFEST.json"
TXLOG_NAME = "txlog.jsonl"
LOCK_NAME = "LOCK"
#: Subdirectory of ``_manifest`` owned by :mod:`repro.storage.live`:
#: active tail WALs (``live/<region>/week<NNNN>.tail.wal``).  Those files
#: hold *unsealed* ingested rows -- data that exists nowhere else -- so
#: neither the orphan sweep nor :meth:`LakeManifest.collect_garbage` may
#: ever reclaim anything under it.  Both walks below are structurally
#: safe (non-recursive ``_manifest`` globs; region walks skip
#: ``_manifest`` entirely) and additionally skip directories outright;
#: live-tail hygiene (crashed rewrite temps, fully-sealed WALs) is the
#: ingestor's job on open, never gc's.
LIVE_DIR_NAME = "live"

#: Every crash-injectable step of a transaction, in protocol order.  The
#: pointer swap at ``manifest.pointer`` is the commit point: a crash at
#: any earlier point recovers to the *pre*-transaction generation, a
#: crash there or later recovers to the *post*-transaction generation.
FAULT_POINTS: tuple[str, ...] = (
    "txlog.intent",
    "segment.tmp",
    "segment.final",
    "txlog.staged",
    "manifest.generation",
    "manifest.pointer",
    "txlog.commit",
)

_FMT_ALTERNATION = "|".join(re.escape(fmt) for fmt in EXTRACT_FORMATS)

#: Content-addressed segment file names: the legacy stem plus 12 hex
#: digits of the payload's sha256.  The week digits being followed by
#: ``-<hash>`` is what keeps these files invisible to the legacy
#: directory inference (which requires the stem to *end* in digits).
_SEGMENT_RE = re.compile(
    r"extract_(?P<region>.+)_week(?P<week>\d{4,})-(?P<sha>[0-9a-f]{12})"
    rf"\.(?P<fmt>{_FMT_ALTERNATION})$"
)

#: Legacy (pre-manifest) extract file names, exactly as
#: ``ExtractKey.filename`` produces them.
_LEGACY_RE = re.compile(
    rf"extract_(?P<region>.+)_week(?P<week>\d{{4,}})\.(?P<fmt>{_FMT_ALTERNATION})$"
)


class LakeManifestError(RuntimeError):
    """Raised for manifest protocol violations (missing generations,
    writes against a pinned snapshot, corrupt manifest files)."""


def _gen_filename(generation: int) -> str:
    return f"gen-{generation:08d}.json"


def _fsync_dir(path: Path) -> None:
    """fsync a directory so a just-renamed entry survives a crash."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _write_file_durably(path: Path, payload: bytes) -> None:
    with path.open("wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())


@dataclass(frozen=True)
class SegmentEntry:
    """One immutable payload file of one generation."""

    region: str
    week: int
    fmt: str
    #: Path relative to the lake root (``<region>/<filename>``).
    relpath: str
    size: int
    #: Hex sha256 of the payload bytes; ``None`` for legacy files adopted
    #: without hashing (fingerprints then hash the file on demand).
    sha256: str | None = None

    def as_dict(self) -> dict[str, object]:
        return {
            "region": self.region,
            "week": self.week,
            "fmt": self.fmt,
            "relpath": self.relpath,
            "size": self.size,
            "sha256": self.sha256,
        }

    @staticmethod
    def from_dict(raw: dict[str, object]) -> "SegmentEntry":
        return SegmentEntry(
            region=str(raw["region"]),
            week=int(raw["week"]),  # type: ignore[arg-type]
            fmt=str(raw["fmt"]),
            relpath=str(raw["relpath"]),
            size=int(raw["size"]),  # type: ignore[arg-type]
            sha256=None if raw.get("sha256") is None else str(raw["sha256"]),
        )


@dataclass(frozen=True)
class ManifestSnapshot:
    """One committed generation: an immutable view of the whole lake.

    Pure data -- a snapshot stays valid however far the live lake moves
    on, as long as no :meth:`LakeManifest.collect_garbage` retires the
    files it references.
    """

    generation: int
    txid: str | None
    segments: tuple[SegmentEntry, ...]
    _index: dict[tuple[str, int, str], SegmentEntry] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        index = {(e.region, e.week, e.fmt): e for e in self.segments}
        object.__setattr__(self, "_index", index)

    def entry(self, region: str, week: int, fmt: str) -> SegmentEntry | None:
        return self._index.get((region, week, fmt))

    def formats(self, region: str, week: int) -> tuple[str, ...]:
        """Stored formats for ``(region, week)`` in read-preference order."""
        return tuple(
            fmt for fmt in EXTRACT_FORMATS if (region, week, fmt) in self._index
        )

    def keys(self) -> list[tuple[str, int]]:
        """Sorted distinct ``(region, week)`` pairs with at least one segment."""
        return sorted({(e.region, e.week) for e in self.segments})

    def relpaths(self) -> frozenset[str]:
        return frozenset(entry.relpath for entry in self.segments)

    def as_dict(self) -> dict[str, object]:
        ordered = sorted(self.segments, key=lambda e: (e.region, e.week, e.fmt))
        return {
            "generation": self.generation,
            "txid": self.txid,
            "segments": [entry.as_dict() for entry in ordered],
        }


@dataclass
class GcReport:
    """What one :meth:`LakeManifest.collect_garbage` pass reclaimed."""

    segments_removed: int = 0
    generations_removed: int = 0
    tmp_removed: int = 0
    bytes_freed: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "segments_removed": self.segments_removed,
            "generations_removed": self.generations_removed,
            "tmp_removed": self.tmp_removed,
            "bytes_freed": self.bytes_freed,
        }


class _WriterLock:
    """Advisory exclusive lock on ``_manifest/LOCK``.

    ``flock`` is released by the kernel when the holding process dies,
    which is the property the crash model relies on; in-process the
    simulated-crash path closes the descriptor, which releases the lock
    the same way.  On platforms without :mod:`fcntl` the lock degrades to
    a no-op (single-writer discipline is then the caller's problem).
    """

    def __init__(self, path: Path) -> None:
        self._path = path
        self._fd: int | None = None

    def acquire(self, blocking: bool = True) -> bool:
        self._path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(self._path, os.O_RDWR | os.O_CREAT, 0o644)
        if fcntl is not None:
            flags = fcntl.LOCK_EX | (0 if blocking else fcntl.LOCK_NB)
            try:
                fcntl.flock(fd, flags)
            except OSError:
                os.close(fd)
                return False
        self._fd = fd
        return True

    def release(self) -> None:
        if self._fd is not None:
            os.close(self._fd)  # closing drops the flock, like process death
            self._fd = None


class LakeManifest:
    """The manifest of one on-disk lake rooted at ``root``."""

    def __init__(self, root: str | Path) -> None:
        self._root = Path(root)
        self._dir = self._root / MANIFEST_DIR_NAME
        self._log = TransactionLog(self._dir / TXLOG_NAME)
        self._snapshots: dict[int, ManifestSnapshot] = {}
        self._recovered = False
        self._txn_counter = 0

    # ------------------------------------------------------------------ #
    # Paths and basic state
    # ------------------------------------------------------------------ #

    @property
    def root(self) -> Path:
        return self._root

    @property
    def directory(self) -> Path:
        return self._dir

    @property
    def pointer_path(self) -> Path:
        return self._dir / POINTER_NAME

    @property
    def log(self) -> TransactionLog:
        return self._log

    def exists(self) -> bool:
        """Whether the lake has been adopted (a committed pointer exists)."""
        return self.pointer_path.exists()

    def _read_pointer(self) -> dict[str, object] | None:
        try:
            raw = self.pointer_path.read_bytes()
        except FileNotFoundError:
            return None
        try:
            pointer = json.loads(raw)
        except ValueError as exc:
            # The pointer is written atomically; a corrupt one means
            # something other than this module scribbled on it.
            raise LakeManifestError(f"corrupt manifest pointer {self.pointer_path}: {exc}") from exc
        if not isinstance(pointer, dict) or "generation" not in pointer:
            raise LakeManifestError(f"malformed manifest pointer {self.pointer_path}")
        return pointer

    # ------------------------------------------------------------------ #
    # Snapshots
    # ------------------------------------------------------------------ #

    def current(self) -> ManifestSnapshot:
        """The last *committed* generation (after crash recovery, if due)."""
        self.ensure_recovered()
        return self._load_current()

    def _load_current(self) -> ManifestSnapshot:
        pointer = self._read_pointer()
        if pointer is None:
            return self._infer_legacy()
        return self._load_generation(int(pointer["generation"]))  # type: ignore[arg-type]

    def snapshot_at(self, generation: int) -> ManifestSnapshot:
        """Load one committed generation by number (for pinned readers).

        Raises :class:`LakeManifestError` for generations that were never
        committed, are newer than the committed pointer, or whose
        snapshot file has been garbage-collected.
        """
        pointer = self._read_pointer()
        if pointer is None:
            if generation == 0:
                return self._infer_legacy()
            raise LakeManifestError(
                f"lake at {self._root} has no manifest; only generation 0 exists"
            )
        committed = int(pointer["generation"])  # type: ignore[arg-type]
        if generation > committed:
            raise LakeManifestError(
                f"generation {generation} is not committed (lake is at {committed})"
            )
        return self._load_generation(generation)

    def _load_generation(self, generation: int) -> ManifestSnapshot:
        cached = self._snapshots.get(generation)
        if cached is not None:
            return cached
        path = self._dir / _gen_filename(generation)
        try:
            raw = json.loads(path.read_bytes())
        except FileNotFoundError:
            raise LakeManifestError(
                f"generation {generation} of {self._root} is gone "
                "(garbage-collected or never committed)"
            ) from None
        except ValueError as exc:
            raise LakeManifestError(f"corrupt manifest generation file {path}: {exc}") from exc
        snapshot = ManifestSnapshot(
            generation=int(raw["generation"]),
            txid=raw.get("txid"),
            segments=tuple(SegmentEntry.from_dict(entry) for entry in raw["segments"]),
        )
        self._snapshots[generation] = snapshot
        return snapshot

    def _infer_legacy(self) -> ManifestSnapshot:
        """Generation 0 of a pre-manifest lake, inferred from the layout.

        Only files named exactly ``extract_<region>_week<NNNN>.<fmt>``
        under their own region directory count; content-addressed
        segments, temp files and foreign files are ignored.
        """
        entries: list[SegmentEntry] = []
        if self._root.is_dir():
            for region_dir in sorted(self._root.iterdir()):
                if not region_dir.is_dir() or region_dir.name == MANIFEST_DIR_NAME:
                    continue
                for path in sorted(region_dir.iterdir()):
                    match = _LEGACY_RE.fullmatch(path.name)
                    if (
                        match is None
                        or match.group("region") != region_dir.name
                        or match.group("fmt") not in EXTRACT_FORMATS
                    ):
                        continue
                    entries.append(
                        SegmentEntry(
                            region=region_dir.name,
                            week=int(match.group("week")),
                            fmt=match.group("fmt"),
                            relpath=f"{region_dir.name}/{path.name}",
                            size=path.stat().st_size,
                            sha256=None,
                        )
                    )
        return ManifestSnapshot(generation=0, txid=None, segments=tuple(entries))

    # ------------------------------------------------------------------ #
    # Recovery
    # ------------------------------------------------------------------ #

    def ensure_recovered(self) -> None:
        """Run crash recovery once per handle (cheap when there is nothing
        to do).  Skipped entirely when another live writer holds the lock
        -- a dangling intent then belongs to *it*, not to a crash."""
        if self._recovered:
            return
        self._recovered = True
        if not self._dir.is_dir():
            return  # pure legacy lake: nothing to replay
        lock = _WriterLock(self._dir / LOCK_NAME)
        if not lock.acquire(blocking=False):
            return
        try:
            self._recover_locked(sweep=True)
        finally:
            lock.release()

    def _recover_locked(self, sweep: bool) -> None:
        """Replay the log and (with ``sweep``) remove crash leftovers.
        Caller holds the lock; transaction begin resolves dangling
        intents but skips the directory sweep (it is the open-time and
        gc-time job)."""
        pending = self._log.pending()
        pointer = self._read_pointer()
        if pending is not None:
            target = pending.generation_from + 1
            committed = pointer is not None and (
                int(pointer["generation"]) == target  # type: ignore[arg-type]
                and pointer.get("txid") == pending.txid
            )
            if committed:
                # The pointer swap happened; only the commit record was
                # lost to the crash.  The transaction is durable.
                self._log.append(
                    {
                        "type": "recovered",
                        "txid": pending.txid,
                        "action": "commit",
                        "generation": target,
                    }
                )
            else:
                # Not committed: the old pointer still rules.  Remove
                # everything the transaction durably staged (files whose
                # identical bytes predate the transaction are kept) and
                # its generation file, then mark the intent resolved.
                for relpath, reused in pending.staged:
                    if not reused:
                        (self._root / relpath).unlink(missing_ok=True)
                (self._dir / _gen_filename(target)).unlink(missing_ok=True)
                self._log.append(
                    {"type": "recovered", "txid": pending.txid, "action": "abort"}
                )
            pointer = self._read_pointer()
        if sweep:
            self._sweep_orphans(pointer)

    def _sweep_orphans(self, pointer: dict[str, object] | None) -> None:
        """Delete temp files and unreferenced content-addressed segments.

        A crash between publishing a segment file and logging its
        ``staged`` record leaves a final-named file no log record points
        at.  Such orphans are exactly the content-addressed files no
        retained generation references -- legacy-named and foreign files
        are never touched here.
        """
        if pointer is None:
            # No committed manifest: every gen file is staged garbage.
            for path in self._dir.glob("gen-*.json"):
                path.unlink(missing_ok=True)
        referenced: set[str] = set()
        for gen_path in self._dir.glob("gen-*.json"):
            try:
                raw = json.loads(gen_path.read_bytes())
                for entry in raw.get("segments", ()):
                    referenced.add(str(entry["relpath"]))
            except (ValueError, KeyError, TypeError):
                continue
        for path in self._dir.glob("*.tmp-*"):
            # Non-recursive on purpose: _manifest/live/ (active tail WALs
            # and their rewrite temps) belongs to repro.storage.live.
            if path.is_dir():
                continue
            path.unlink(missing_ok=True)
        for region_dir in self._root.iterdir():
            if not region_dir.is_dir() or region_dir.name == MANIFEST_DIR_NAME:
                continue
            for path in region_dir.iterdir():
                if ".tmp-" in path.name:
                    path.unlink(missing_ok=True)
                    continue
                match = _SEGMENT_RE.fullmatch(path.name)
                if match is None or match.group("region") != region_dir.name:
                    continue
                if f"{region_dir.name}/{path.name}" not in referenced:
                    path.unlink(missing_ok=True)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def transaction(self, op: str) -> "ManifestTransaction":
        """Begin one atomic mutation (usable as a context manager)."""
        return ManifestTransaction(self, op)

    def _next_txid(self, generation: int) -> str:
        self._txn_counter += 1
        token = os.urandom(4).hex()
        return f"tx{generation:08d}-{os.getpid():x}-{self._txn_counter:x}-{token}"

    # ------------------------------------------------------------------ #
    # Garbage collection
    # ------------------------------------------------------------------ #

    def collect_garbage(self) -> GcReport:
        """Physically reclaim everything the *current* generation does not
        reference: retired segment files, superseded legacy copies, old
        generation snapshots and stray temp files.

        This is the one operation that invalidates pinned readers of
        older generations -- run it when none are live.  A lake that was
        never adopted only has temp files to sweep.
        """
        self.ensure_recovered()
        report = GcReport()
        if not self._dir.is_dir():
            return report
        lock = _WriterLock(self._dir / LOCK_NAME)
        lock.acquire(blocking=True)
        try:
            # Resolve any dangling intent first (rolled-back segment files
            # then count as gc'd garbage below, not as live segments).
            self._recover_locked(sweep=False)
            pointer = self._read_pointer()
            referenced: frozenset[str] | None = None
            if pointer is None:
                # Never adopted: any generation file is staging garbage
                # from a rolled-back first transaction.
                for gen_path in self._dir.glob("gen-*.json"):
                    report.generations_removed += 1
                    gen_path.unlink(missing_ok=True)
            else:
                current = self._load_current()
                referenced = current.relpaths()
                keep = _gen_filename(current.generation)
                for gen_path in self._dir.glob("gen-*.json"):
                    if gen_path.name != keep:
                        report.generations_removed += 1
                        report.bytes_freed += gen_path.stat().st_size
                        gen_path.unlink()
                self._snapshots = {current.generation: current}
            for path in self._dir.glob("*.tmp-*"):
                # Non-recursive on purpose: never descend into
                # _manifest/live/ -- unsealed tail rows live there and
                # exist nowhere else (see LIVE_DIR_NAME).
                if path.is_dir():
                    continue
                report.tmp_removed += 1
                path.unlink(missing_ok=True)
            for region_dir in self._root.iterdir():
                if not region_dir.is_dir() or region_dir.name == MANIFEST_DIR_NAME:
                    continue
                for path in region_dir.iterdir():
                    if ".tmp-" in path.name:
                        report.tmp_removed += 1
                        path.unlink(missing_ok=True)
                        continue
                    relpath = f"{region_dir.name}/{path.name}"
                    if referenced is not None and relpath in referenced:
                        continue
                    match = _SEGMENT_RE.fullmatch(path.name)
                    if referenced is not None and match is None:
                        # Adopted lake: retired legacy copies are garbage
                        # too, once no longer referenced.
                        match = _LEGACY_RE.fullmatch(path.name)
                    if match is None or match.group("region") != region_dir.name:
                        continue
                    report.segments_removed += 1
                    report.bytes_freed += path.stat().st_size
                    path.unlink()
        finally:
            lock.release()
        return report


class ManifestTransaction:
    """One atomic lake mutation: stage segments, drop entries, publish.

    The protocol (each step durable before the next, each step a named
    fault point)::

        intent appended            -> txlog.intent
        per staged segment:
            temp bytes fsynced     -> segment.tmp
            os.replace to final    -> segment.final
            staged record appended -> txlog.staged
        gen N+1 file published     -> manifest.generation
        MANIFEST.json swapped      -> manifest.pointer   (the commit point)
        commit record appended     -> txlog.commit

    Used as a context manager it commits on clean exit and rolls back on
    failure.  A writer-side :class:`Exception` aborts cleanly (staged
    files removed, ``abort`` logged); an
    :class:`~repro.storage.manifest.faults.InjectedCrash` (or any other
    ``BaseException``) releases the lock and nothing else -- exactly the
    state a killed process leaves for recovery to mop up.
    """

    def __init__(self, manifest: LakeManifest, op: str) -> None:
        self._manifest = manifest
        self._op = op
        self._lock = _WriterLock(manifest.directory / LOCK_NAME)
        self._base: ManifestSnapshot | None = None
        self._txid = ""
        self._staged: dict[tuple[str, int, str], SegmentEntry] = {}
        self._created: list[tuple[str, bool]] = []
        self._dropped: set[tuple[str, int, str]] = set()
        self._published = False
        self._done = False

    @property
    def txid(self) -> str:
        return self._txid

    @property
    def base(self) -> ManifestSnapshot:
        assert self._base is not None, "transaction not entered"
        return self._base

    def __enter__(self) -> "ManifestTransaction":
        manifest = self._manifest
        self._lock.acquire(blocking=True)
        try:
            sweep = not manifest._recovered  # this handle recovers right here
            manifest._recovered = True
            manifest._recover_locked(sweep=sweep)
            self._base = manifest._load_current()
            self._txid = manifest._next_txid(self._base.generation + 1)
            manifest.log.append(
                {
                    "type": "intent",
                    "txid": self._txid,
                    "generation_from": self._base.generation,
                    "op": self._op,
                }
            )
            fault_point("txlog.intent")
        except BaseException:
            self._lock.release()
            raise
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        try:
            if exc is None:
                if not self._done:
                    self.commit()
            elif isinstance(exc, Exception) and not self._published:
                self._abort(repr(exc))
            # else: simulated (or real) catastrophic exit -- leave every
            # file exactly as it is; recovery owns the mess.  A published
            # pointer with a lost commit record is resolved the same way.
        finally:
            self._lock.release()

    # -- staging ------------------------------------------------------- #

    def stage(self, region: str, week: int, fmt: str, payload: bytes) -> SegmentEntry:
        """Durably stage ``payload`` as the segment for ``(region, week,
        fmt)`` in the generation being built.

        The file lands under its final content-addressed name before the
        commit point, which is safe precisely because nothing references
        it until the pointer swap.  Identical payload bytes hash to an
        already-present name (``reused``): the payload is still staged --
        the atomic replace installs bit-identical content, self-healing
        any out-of-band damage to the existing copy -- but rollback then
        knows the name predates this transaction and must survive.
        """
        assert self._base is not None, "transaction not entered"
        sha = hashlib.sha256(payload).hexdigest()
        filename = f"extract_{region}_week{week:04d}-{sha[:12]}.{fmt}"
        relpath = f"{region}/{filename}"
        final = self._manifest.root / relpath
        final.parent.mkdir(parents=True, exist_ok=True)
        reused = final.exists()
        tmp = final.with_name(f"{final.name}.tmp-{self._txid}")
        _write_file_durably(tmp, payload)
        fault_point("segment.tmp")
        os.replace(tmp, final)
        _fsync_dir(final.parent)
        fault_point("segment.final")
        self._manifest.log.append(
            {"type": "staged", "txid": self._txid, "relpath": relpath, "reused": reused}
        )
        fault_point("txlog.staged")
        entry = SegmentEntry(
            region=region, week=week, fmt=fmt, relpath=relpath, size=len(payload), sha256=sha
        )
        key = (region, week, fmt)
        self._staged[key] = entry
        self._created.append((relpath, reused))
        self._dropped.discard(key)
        return entry

    def drop(self, region: str, week: int, fmt: str) -> None:
        """Drop ``(region, week, fmt)`` from the generation being built.

        Logical only: the retired file stays on disk for pinned readers
        until :meth:`LakeManifest.collect_garbage`.
        """
        key = (region, week, fmt)
        self._dropped.add(key)
        self._staged.pop(key, None)

    # -- commit / abort ------------------------------------------------ #

    def commit(self) -> ManifestSnapshot:
        """Publish the new generation; returns its snapshot.

        A transaction that staged nothing and dropped nothing that
        exists is a no-op: it resolves its intent with an ``abort``
        record instead of publishing an identical generation, and the
        committed snapshot stays exactly where it was.
        """
        assert self._base is not None, "transaction not entered"
        if self._done:
            raise LakeManifestError("transaction already committed or aborted")
        self._done = True
        manifest = self._manifest
        if not self._staged and not any(
            self._base.entry(*key) is not None for key in self._dropped
        ):
            manifest.log.append(
                {"type": "abort", "txid": self._txid, "reason": "empty transaction"}
            )
            return self._base
        entries = {
            (e.region, e.week, e.fmt): e
            for e in self._base.segments
            if (e.region, e.week, e.fmt) not in self._dropped
        }
        entries.update(self._staged)
        generation = self._base.generation + 1
        if not manifest.exists():
            # Adoption: materialise the inferred legacy snapshot so
            # pinned readers of generation 0 resolve from a file even
            # after the pointer appears.
            self._publish_file(
                manifest.directory / _gen_filename(self._base.generation),
                json.dumps(self._base.as_dict(), sort_keys=True).encode("utf-8"),
            )
        snapshot = ManifestSnapshot(
            generation=generation, txid=self._txid, segments=tuple(entries.values())
        )
        self._publish_file(
            manifest.directory / _gen_filename(generation),
            json.dumps(snapshot.as_dict(), sort_keys=True).encode("utf-8"),
        )
        fault_point("manifest.generation")
        pointer = {
            "generation": generation,
            "txid": self._txid,
            "file": _gen_filename(generation),
        }
        self._publish_file(
            manifest.pointer_path, json.dumps(pointer, sort_keys=True).encode("utf-8")
        )
        self._published = True
        fault_point("manifest.pointer")
        manifest.log.append(
            {"type": "commit", "txid": self._txid, "generation": generation}
        )
        fault_point("txlog.commit")
        manifest._snapshots[generation] = snapshot
        return snapshot

    def _publish_file(self, path: Path, payload: bytes) -> None:
        """Atomically publish ``payload`` at ``path`` (tmp, fsync,
        ``os.replace``, directory fsync)."""
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp-{self._txid}")
        _write_file_durably(tmp, payload)
        os.replace(tmp, path)
        _fsync_dir(path.parent)

    def _abort(self, reason: str) -> None:
        """Roll back a writer-side failure while the writer is alive."""
        if self._done:
            return
        self._done = True
        manifest = self._manifest
        for relpath, reused in self._created:
            if not reused:
                (manifest.root / relpath).unlink(missing_ok=True)
        assert self._base is not None
        for tmp_dir in (manifest.directory, *{
            (manifest.root / relpath).parent for relpath, _ in self._created
        }):
            for path in tmp_dir.glob(f"*.tmp-{self._txid}"):
                path.unlink(missing_ok=True)
        (manifest.directory / _gen_filename(self._base.generation + 1)).unlink(
            missing_ok=True
        )
        manifest.log.append({"type": "abort", "txid": self._txid, "reason": reason})
