"""Crash-injection hooks for the manifest's transaction protocol.

Every durability-relevant step of a manifest transaction calls
:func:`fault_point` with a stable name (see
:data:`~repro.storage.manifest.manifest.FAULT_POINTS`).  In production no
handler is installed and the call is a no-op costing one attribute load.
The crash-injection test harness installs a handler that raises
:class:`InjectedCrash` at a chosen point, simulating ``kill -9`` of the
writer process mid-transaction.

:class:`InjectedCrash` deliberately derives from :class:`BaseException`,
not :class:`Exception`: a real crash runs **no** ``except Exception``
cleanup, so the transaction code must not be able to "catch" a simulated
one either.  The only in-process concession to reality is that the
writer's advisory file lock is released (the kernel would do exactly that
when the process died).
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from contextlib import contextmanager

__all__ = ["InjectedCrash", "fault_handler", "fault_point", "install_fault_handler"]


class InjectedCrash(BaseException):
    """A simulated ``kill -9`` at a named fault point.

    A ``BaseException`` so that no ``except Exception`` recovery path in
    the transaction machinery can observe it -- exactly like a real
    process death, the only thing left behind is the on-disk state.
    """

    def __init__(self, point: str) -> None:
        super().__init__(point)
        self.point = point


_handler: Callable[[str], None] | None = None


def fault_point(name: str) -> None:
    """Declare a crash-injectable step; no-op unless a handler is installed."""
    handler = _handler
    if handler is not None:
        handler(name)


def install_fault_handler(handler: Callable[[str], None] | None) -> None:
    """Install (or with ``None`` remove) the process-wide fault handler."""
    global _handler
    _handler = handler


@contextmanager
def fault_handler(handler: Callable[[str], None]) -> Iterator[None]:
    """Scope ``handler`` as the fault handler for a ``with`` block."""
    previous = _handler
    install_fault_handler(handler)
    try:
        yield
    finally:
        install_fault_handler(previous)
