"""Transactional lake manifest: crash-safe, generation-numbered mutations.

The subsystem behind :class:`~repro.storage.datalake.DataLakeStore`'s
durability story (see :mod:`repro.storage.manifest.manifest` for the
on-disk layout and protocol):

* :class:`LakeManifest` -- one lake's generation-numbered manifest:
  ``current()`` / ``snapshot_at()`` for readers, ``transaction()`` for
  writers, ``collect_garbage()`` for explicit physical reclaim.
* :class:`ManifestSnapshot` / :class:`SegmentEntry` -- an immutable view
  of one committed generation and its content-addressed payload files.
* :mod:`~repro.storage.manifest.txlog` -- the append-only intent/commit
  log recovery replays.
* :mod:`~repro.storage.manifest.faults` -- the crash-injection hooks
  (:func:`fault_point`, :class:`InjectedCrash`) the test harness uses to
  kill writers at every step of the protocol.
"""

from repro.storage.manifest.faults import (
    InjectedCrash,
    fault_handler,
    fault_point,
    install_fault_handler,
)
from repro.storage.manifest.manifest import (
    FAULT_POINTS,
    LIVE_DIR_NAME,
    MANIFEST_DIR_NAME,
    GcReport,
    LakeManifest,
    LakeManifestError,
    ManifestSnapshot,
    ManifestTransaction,
    SegmentEntry,
)
from repro.storage.manifest.txlog import PendingTransaction, TransactionLog

__all__ = [
    "FAULT_POINTS",
    "LIVE_DIR_NAME",
    "MANIFEST_DIR_NAME",
    "GcReport",
    "InjectedCrash",
    "LakeManifest",
    "LakeManifestError",
    "ManifestSnapshot",
    "ManifestTransaction",
    "PendingTransaction",
    "SegmentEntry",
    "TransactionLog",
    "fault_handler",
    "fault_point",
    "install_fault_handler",
]
