"""Content-addressed artifact cache for pipeline stage outputs.

The fleet orchestrator re-runs the Seagull pipeline over many (region,
week) extracts on every scheduling cycle, but most extracts do not change
between cycles.  The artifact store persists the expensive stage outputs
(extracted features, fitted-model predictions, accuracy evaluations, whole
unit outcomes) keyed by a *content hash* of the stage inputs, so a re-run
on identical input skips the computation entirely.

Keys are ``sha256(stage || input content hash || canonical parameter
JSON)``: any change to the extract content or to a parameter that feeds
the stage produces a different key, i.e. cache invalidation is structural
rather than time-based.  Entries carry a checksum over their payload;
entries that fail to decode or whose checksum mismatches (partial writes,
bit rot, manual edits) are treated as misses, evicted and recomputed --
the cache can never poison a run.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Mapping
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.storage.documentdb import DocumentStore

#: Default container name artifacts live in inside the document store.
ARTIFACTS_CONTAINER = "seagull_artifacts"

#: Version of the cache entry envelope; bump to invalidate all entries.
_ENVELOPE_VERSION = 1


def canonical_json(payload: Any) -> str:
    """Serialize ``payload`` deterministically (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)


def content_digest(data: bytes | str) -> str:
    """Hex sha256 digest of raw content."""
    if isinstance(data, str):
        data = data.encode("utf-8")
    return hashlib.sha256(data).hexdigest()


def artifact_key(stage: str, input_hash: str, params: Mapping[str, Any]) -> str:
    """Build the cache key for one stage invocation.

    ``input_hash`` is the content hash of the stage's data input (for
    pipeline stages, :meth:`repro.timeseries.frame.LoadFrame.content_hash`;
    for unit outcomes, the raw extract fingerprint) and ``params`` are the
    configuration values the stage's output depends on.
    """
    material = canonical_json(
        {"stage": stage, "input": input_hash, "params": dict(params), "v": _ENVELOPE_VERSION}
    )
    return f"{stage}-{content_digest(material)}"


@dataclass
class ArtifactCacheStats:
    """Hit/miss counters of one :class:`ArtifactStore`."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    corrupt_entries: int = 0
    failed_evictions: int = 0
    hits_by_stage: dict[str, int] = field(default_factory=dict)
    misses_by_stage: dict[str, int] = field(default_factory=dict)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never used)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "corrupt_entries": self.corrupt_entries,
            "failed_evictions": self.failed_evictions,
            "hit_rate": self.hit_rate,
            "hits_by_stage": dict(self.hits_by_stage),
            "misses_by_stage": dict(self.misses_by_stage),
        }


class ArtifactStore:
    """Keyed artifact cache backed by a :class:`DocumentStore`.

    Parameters
    ----------
    store:
        Backing document store; in-memory by default, file-persisted when
        the store was opened with a path (which is what makes warm re-runs
        across processes possible).
    container:
        Container name to keep artifacts in.
    """

    def __init__(
        self,
        store: DocumentStore | None = None,
        container: str = ARTIFACTS_CONTAINER,
    ) -> None:
        self._store = store if store is not None else DocumentStore()
        self._container = container
        self._store.create_container(container)
        self._stats = ArtifactCacheStats()

    @classmethod
    def at(cls, path: str | Path, container: str = ARTIFACTS_CONTAINER) -> "ArtifactStore":
        """Open a file-persisted artifact store at ``path``.

        An unreadable backing file (truncated write, manual edit) is moved
        aside and the store starts empty: a corrupt cache means
        recomputation, never a crash.
        """
        path = Path(path)
        try:
            return cls(DocumentStore(path), container)
        except (ValueError, OSError, KeyError, TypeError):
            quarantined = path.with_suffix(path.suffix + ".corrupt")
            try:
                path.replace(quarantined)
            except OSError:
                path.unlink(missing_ok=True)
            return cls(DocumentStore(path), container)

    @property
    def stats(self) -> ArtifactCacheStats:
        return self._stats

    # ------------------------------------------------------------------ #
    # Lookup / insert
    # ------------------------------------------------------------------ #

    @staticmethod
    def _stage_of(key: str) -> str:
        return key.rsplit("-", 1)[0]

    def get(self, key: str) -> dict[str, Any] | None:
        """Return the cached payload for ``key``, or ``None`` on a miss.

        Undecodable or checksum-mismatching entries count as misses (and
        are evicted) so a corrupt cache degrades to recomputation instead
        of crashing or silently returning bad data.
        """
        stage = self._stage_of(key)
        try:
            document = self._store.try_get(self._container, key)
        except Exception:
            document = None
        if document is None:
            self._miss(stage)
            return None
        payload = self._decode(document.body)
        if payload is None:
            self._stats.corrupt_entries += 1
            try:
                self._store.delete(self._container, key)
            except Exception:
                # The entry stays corrupt on disk; record that eviction
                # failed so the degradation is observable in stats.
                self._stats.failed_evictions += 1
            self._miss(stage)
            return None
        self._stats.hits += 1
        self._stats.hits_by_stage[stage] = self._stats.hits_by_stage.get(stage, 0) + 1
        return payload

    def put(self, key: str, payload: Mapping[str, Any]) -> None:
        """Store ``payload`` under ``key`` with an integrity checksum."""
        body = {
            "v": _ENVELOPE_VERSION,
            "checksum": content_digest(canonical_json(dict(payload))),
            "payload": dict(payload),
        }
        self._store.upsert(self._container, key, body)
        self._stats.puts += 1

    def invalidate(self, key: str) -> bool:
        """Drop one entry; returns whether it existed."""
        return self._store.delete(self._container, key)

    def clear(self) -> None:
        """Drop every cached artifact (stats are kept)."""
        self._store.drop_container(self._container)
        self._store.create_container(self._container)

    def __len__(self) -> int:
        return self._store.count(self._container)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _miss(self, stage: str) -> None:
        self._stats.misses += 1
        self._stats.misses_by_stage[stage] = self._stats.misses_by_stage.get(stage, 0) + 1

    @staticmethod
    def _decode(body: Mapping[str, Any]) -> dict[str, Any] | None:
        try:
            if int(body["v"]) != _ENVELOPE_VERSION:
                return None
            payload = body["payload"]
            checksum = body["checksum"]
            if not isinstance(payload, Mapping):
                return None
            payload = dict(payload)
            if content_digest(canonical_json(payload)) != checksum:
                return None
            return payload
        except Exception:
            return None
