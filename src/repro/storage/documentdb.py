"""Keyed JSON document store standing in for Cosmos DB.

The Seagull pipeline stores prediction results, accuracy evaluations, model
records and scheduling decisions in Cosmos DB (Section 2.2).  This module
provides a small document database with named containers, upserts, point
reads, predicate queries and optional file persistence -- the subset of
Cosmos DB behaviour the pipeline actually depends on.
"""

from __future__ import annotations

import json
from collections.abc import Callable, Iterator, Mapping
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any


class ContainerNotFoundError(KeyError):
    """Raised when an operation references a container that was never created."""


class DocumentNotFoundError(KeyError):
    """Raised on a point read of a document id that does not exist."""


class DocumentConflictError(ValueError):
    """Raised when inserting a document whose id already exists (without upsert)."""


@dataclass(frozen=True)
class Document:
    """A stored document: an id, a body and a monotonically increasing version."""

    id: str
    body: Mapping[str, Any]
    version: int = 1

    def as_dict(self) -> dict[str, Any]:
        return {"id": self.id, "version": self.version, "body": dict(self.body)}


@dataclass
class _Container:
    name: str
    documents: dict[str, Document] = field(default_factory=dict)


class DocumentStore:
    """An in-process document database with optional JSON-file persistence."""

    def __init__(self, path: str | Path | None = None) -> None:
        self._containers: dict[str, _Container] = {}
        self._path = Path(path) if path is not None else None
        if self._path is not None and self._path.exists():
            self._load()

    # ------------------------------------------------------------------ #
    # Container management
    # ------------------------------------------------------------------ #

    def create_container(self, name: str, exist_ok: bool = True) -> None:
        """Create a named container."""
        if name in self._containers:
            if exist_ok:
                return
            raise DocumentConflictError(f"container {name!r} already exists")
        self._containers[name] = _Container(name)
        self._persist()

    def list_containers(self) -> list[str]:
        """Return the names of all containers."""
        return sorted(self._containers)

    def drop_container(self, name: str) -> None:
        """Remove a container and all of its documents."""
        self._containers.pop(name, None)
        self._persist()

    def _container(self, name: str) -> _Container:
        try:
            return self._containers[name]
        except KeyError as exc:
            raise ContainerNotFoundError(f"container {name!r} does not exist") from exc

    # ------------------------------------------------------------------ #
    # Document operations
    # ------------------------------------------------------------------ #

    def insert(self, container: str, doc_id: str, body: Mapping[str, Any]) -> Document:
        """Insert a new document; fails if the id already exists."""
        cont = self._container(container)
        if doc_id in cont.documents:
            raise DocumentConflictError(
                f"document {doc_id!r} already exists in container {container!r}"
            )
        document = Document(id=doc_id, body=dict(body), version=1)
        cont.documents[doc_id] = document
        self._persist()
        return document

    def upsert(self, container: str, doc_id: str, body: Mapping[str, Any]) -> Document:
        """Insert or replace a document, bumping its version on replace."""
        cont = self._container(container)
        existing = cont.documents.get(doc_id)
        version = 1 if existing is None else existing.version + 1
        document = Document(id=doc_id, body=dict(body), version=version)
        cont.documents[doc_id] = document
        self._persist()
        return document

    def get(self, container: str, doc_id: str) -> Document:
        """Point-read a document; raises :class:`DocumentNotFoundError`."""
        cont = self._container(container)
        try:
            return cont.documents[doc_id]
        except KeyError as exc:
            raise DocumentNotFoundError(
                f"document {doc_id!r} not found in container {container!r}"
            ) from exc

    def try_get(self, container: str, doc_id: str) -> Document | None:
        """Point-read returning ``None`` instead of raising when absent."""
        cont = self._container(container)
        return cont.documents.get(doc_id)

    def delete(self, container: str, doc_id: str) -> bool:
        """Delete a document; returns whether it existed."""
        cont = self._container(container)
        existed = cont.documents.pop(doc_id, None) is not None
        self._persist()
        return existed

    def query(
        self,
        container: str,
        predicate: Callable[[Mapping[str, Any]], bool] | None = None,
    ) -> Iterator[Document]:
        """Yield documents whose body satisfies ``predicate`` (all when ``None``)."""
        cont = self._container(container)
        for document in cont.documents.values():
            if predicate is None or predicate(document.body):
                yield document

    def count(self, container: str) -> int:
        """Number of documents in a container."""
        return len(self._container(container).documents)

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def _persist(self) -> None:
        if self._path is None:
            return
        payload = {
            name: {doc_id: doc.as_dict() for doc_id, doc in cont.documents.items()}
            for name, cont in self._containers.items()
        }
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._path.write_text(json.dumps(payload, indent=2, sort_keys=True, default=str))

    def _load(self) -> None:
        assert self._path is not None
        payload = json.loads(self._path.read_text())
        for name, docs in payload.items():
            container = _Container(name)
            for doc_id, doc in docs.items():
                container.documents[doc_id] = Document(
                    id=doc["id"], body=doc["body"], version=int(doc["version"])
                )
            self._containers[name] = container
