"""Partitioned extract store standing in for Azure Data Lake Store.

The load-extraction query writes one CSV file per ``(region, week)``; the
AML pipeline later picks up the extract for the region it is scheduled on
(Section 2.2).  :class:`DataLakeStore` reproduces that contract on the local
filesystem (or purely in memory for tests) with listing, existence checks
and simple access control mirroring the "location of input data in ADLS and
access rights to this data" knobs called out in Section 2.4.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path

from repro.storage import csv_io
from repro.timeseries.calendar import DEFAULT_INTERVAL_MINUTES
from repro.timeseries.frame import LoadFrame


class ExtractNotFoundError(KeyError):
    """Raised when an extract for a requested (region, week) does not exist."""


class AccessDeniedError(PermissionError):
    """Raised when the caller's principal is not granted access to the store."""


@dataclass(frozen=True, order=True)
class ExtractKey:
    """Identifies one weekly per-region extract."""

    region: str
    week: int

    def filename(self) -> str:
        return f"extract_{self.region}_week{self.week:04d}.csv"


class DataLakeStore:
    """Weekly per-region CSV extract store.

    Parameters
    ----------
    root:
        Directory to persist extracts under.  When ``None`` the store keeps
        extracts purely in memory, which is what the unit tests and most
        benchmarks use.
    granted_principals:
        Optional allow-list of principal names.  When set, every read/write
        must pass a ``principal`` that is in the list.
    """

    def __init__(
        self,
        root: str | Path | None = None,
        granted_principals: set[str] | None = None,
    ) -> None:
        self._root = Path(root) if root is not None else None
        if self._root is not None:
            self._root.mkdir(parents=True, exist_ok=True)
        self._memory: dict[ExtractKey, str] = {}
        self._granted = set(granted_principals) if granted_principals is not None else None

    # ------------------------------------------------------------------ #

    @property
    def root(self) -> Path | None:
        """Filesystem root of the store (``None`` for in-memory stores)."""
        return self._root

    def _check_access(self, principal: str | None) -> None:
        if self._granted is None:
            return
        if principal is None or principal not in self._granted:
            raise AccessDeniedError(
                f"principal {principal!r} is not granted access to this data lake"
            )

    def _path_for(self, key: ExtractKey) -> Path:
        assert self._root is not None
        return self._root / key.region / key.filename()

    # ------------------------------------------------------------------ #

    def write_extract(
        self,
        key: ExtractKey,
        frame: LoadFrame,
        principal: str | None = None,
    ) -> int:
        """Persist ``frame`` as the extract for ``key``; returns rows written."""
        self._check_access(principal)
        if self._root is None:
            text = csv_io.frame_to_csv_text(frame)
            self._memory[key] = text
            return max(0, text.count("\n") - 1)
        return csv_io.write_frame_csv(frame, self._path_for(key))

    def read_extract(
        self,
        key: ExtractKey,
        interval_minutes: int = DEFAULT_INTERVAL_MINUTES,
        principal: str | None = None,
    ) -> LoadFrame:
        """Load the extract for ``key``; raises :class:`ExtractNotFoundError`."""
        self._check_access(principal)
        if self._root is None:
            try:
                text = self._memory[key]
            except KeyError as exc:
                raise ExtractNotFoundError(f"no extract for {key}") from exc
            return csv_io.frame_from_csv_text(text, interval_minutes)
        path = self._path_for(key)
        if not path.exists():
            raise ExtractNotFoundError(f"no extract for {key}")
        return csv_io.read_frame_csv(path, interval_minutes)

    def read_extract_text(self, key: ExtractKey, principal: str | None = None) -> str:
        """Return the raw CSV text of the extract for ``key``."""
        self._check_access(principal)
        if self._root is None:
            try:
                return self._memory[key]
            except KeyError as exc:
                raise ExtractNotFoundError(f"no extract for {key}") from exc
        path = self._path_for(key)
        if not path.exists():
            raise ExtractNotFoundError(f"no extract for {key}")
        return path.read_text()

    def extract_fingerprint(self, key: ExtractKey) -> str:
        """Hex sha256 digest of the raw extract bytes.

        Hashing the stored bytes is much cheaper than parsing the extract,
        which lets the fleet orchestrator decide "unchanged since last
        run?" without paying the ingestion cost.
        """
        digest = hashlib.sha256()
        if self._root is None:
            try:
                digest.update(self._memory[key].encode("utf-8"))
            except KeyError as exc:
                raise ExtractNotFoundError(f"no extract for {key}") from exc
            return digest.hexdigest()
        path = self._path_for(key)
        if not path.exists():
            raise ExtractNotFoundError(f"no extract for {key}")
        with path.open("rb") as handle:
            for chunk in iter(lambda: handle.read(1 << 20), b""):
                digest.update(chunk)
        return digest.hexdigest()

    def has_extract(self, key: ExtractKey) -> bool:
        """Return whether an extract exists for ``key``."""
        if self._root is None:
            return key in self._memory
        return self._path_for(key).exists()

    def list_extracts(self, region: str | None = None) -> list[ExtractKey]:
        """List available extract keys, optionally restricted to a region."""
        if self._root is None:
            keys = sorted(self._memory)
        else:
            keys = []
            for path in sorted(self._root.glob("*/extract_*_week*.csv")):
                stem = path.stem  # extract_<region>_week<NNNN>
                middle = stem[len("extract_"):]
                region_part, _, week_part = middle.rpartition("_week")
                keys.append(ExtractKey(region=region_part, week=int(week_part)))
        if region is not None:
            keys = [key for key in keys if key.region == region]
        return keys

    def extract_size_bytes(self, key: ExtractKey) -> int:
        """Approximate size of the stored extract in bytes.

        Region extract size is the scalability axis of Figure 12; the
        benchmark harness reports it alongside runtimes.
        """
        if self._root is None:
            try:
                return len(self._memory[key].encode("utf-8"))
            except KeyError as exc:
                raise ExtractNotFoundError(f"no extract for {key}") from exc
        path = self._path_for(key)
        if not path.exists():
            raise ExtractNotFoundError(f"no extract for {key}")
        return path.stat().st_size

    def delete_extract(self, key: ExtractKey, principal: str | None = None) -> None:
        """Remove the extract for ``key`` if present."""
        self._check_access(principal)
        if self._root is None:
            self._memory.pop(key, None)
            return
        path = self._path_for(key)
        if path.exists():
            path.unlink()
