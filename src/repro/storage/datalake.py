"""Partitioned extract store standing in for Azure Data Lake Store.

The load-extraction query writes one extract file per ``(region, week)``;
the AML pipeline later picks up the extract for the region it is scheduled
on (Section 2.2).  :class:`DataLakeStore` reproduces that contract on the
local filesystem (or purely in memory for tests) with listing, existence
checks and simple access control mirroring the "location of input data in
ADLS and access rights to this data" knobs called out in Section 2.4.

Extracts exist in two formats and the store negotiates between them:

* ``csv`` -- the paper's row-oriented text schema (Section 5.3.1);
* ``sgx`` -- the binary columnar format of :mod:`repro.storage.columnar`
  (zero-copy ingestion, zone-map-pruned time-range reads).

Writes go to the store's ``write_format`` (and drop the other format's
now-stale copy); reads prefer ``.sgx`` when both exist and fall back to a
co-located CSV when an ``.sgx`` file is damaged.  Fingerprints, sizes,
listing and deletion cover both formats, and every accessor -- including
the metadata ones -- enforces the principal allow-list.

Reading goes through one declarative surface:
:meth:`DataLakeStore.query` materialises a typed
:class:`~repro.storage.query.ExtractQuery` (server filters and column
projections are pushed down into the ``.sgx`` reader; CSV extracts get
post-parse equivalents, so both formats answer identically) and
:meth:`DataLakeStore.scan` streams the same answer one server at a time.
``read_extract`` remains as a thin back-compat shim that builds a query
internally.  Extracts are read at the sampling interval they record and
bucket-mean resampled onto ``q.interval_minutes`` on the way out, so the
field is an honest contract rather than a relabeling.  Reads also unify
the committed lake with the *live tail* (:mod:`repro.storage.live`):
unsealed ingested rows under ``_manifest/live/`` answer through the same
filters, projections and aggregate accumulators (``stats``
counts them in ``tail_rows_scanned``), except for pinned stores -- a pin
names a committed generation, and the tail is by definition uncommitted.

Durability is the manifest subsystem's job
(:mod:`repro.storage.manifest`): on-disk lakes keep their truth in a
generation-numbered manifest pointing at immutable, content-addressed
segment files, every mutation is an intent-logged transaction published
atomically via ``os.replace``, and every read operation resolves one
committed :class:`~repro.storage.manifest.ManifestSnapshot` up front --
so a query racing a writer answers entirely from the generation it
started on, never a mix.  Deletes retire files logically; physical
reclaim is the explicit ``gc`` pass
(:meth:`~repro.storage.manifest.LakeManifest.collect_garbage`).  Opening
a store with ``pinned_generation=N`` yields a read-only view of exactly
generation ``N`` (what out-of-process fleet workers do).  Pre-manifest
lakes keep working: generation 0 is inferred from the legacy directory
layout and the first mutation adopts it into a real manifest.  In-memory
stores have no crash states and bypass the manifest entirely.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterator
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.storage import columnar, csv_io
from repro.storage.aggregate import AggregateAccumulator
from repro.storage.columnar import ColumnarFormatError, SgxReadStats
from repro.storage.manifest import (
    LakeManifest,
    LakeManifestError,
    ManifestSnapshot,
    SegmentEntry,
)

# Format names and validation live with the query types now; re-exported
# here because this has always been their public import path.
from repro.storage.query import (
    EXTRACT_FORMATS,
    ExtractQuery,
    QueryError,
    QueryResult,
    ScanStats,
    check_format,
    project_series,
    resample_series,
    truncate_series,
)
from repro.timeseries.calendar import DEFAULT_INTERVAL_MINUTES
from repro.timeseries.frame import LoadFrame, ServerMetadata
from repro.timeseries.resample import regularize
from repro.timeseries.series import LoadSeries

if TYPE_CHECKING:
    from repro.storage.live.wal import LiveTailIndex

__all__ = [
    "EXTRACT_FORMATS",
    "AccessDeniedError",
    "DataLakeStore",
    "ExtractKey",
    "ExtractNotFoundError",
    "ExtractQuery",
    "LakeManifestError",
    "QueryError",
    "QueryResult",
    "ScanStats",
    "check_format",
]


class ExtractNotFoundError(KeyError):
    """Raised when an extract for a requested (region, week) does not exist."""


class AccessDeniedError(PermissionError):
    """Raised when the caller's principal is not granted access to the store."""


@dataclass(frozen=True, order=True)
class ExtractKey:
    """Identifies one weekly per-region extract."""

    region: str
    week: int

    def filename(self, fmt: str = "csv") -> str:
        return f"extract_{self.region}_week{self.week:04d}.{fmt}"


class DataLakeStore:
    """Weekly per-region extract store with CSV / ``.sgx`` negotiation.

    Parameters
    ----------
    root:
        Directory to persist extracts under.  When ``None`` the store keeps
        extracts purely in memory, which is what the unit tests and most
        benchmarks use.
    granted_principals:
        Optional allow-list of principal names.  When set, every operation
        (reads, writes and metadata accessors alike) must pass a
        ``principal`` that is in the list.
    write_format:
        Format new extracts are written in (``"csv"`` by default; pass
        ``"sgx"`` for columnar lakes).  Reading negotiates independently
        of this setting.
    chunk_minutes:
        Chunking policy for ``.sgx`` writes: each server's series is
        split at absolute multiples of this many minutes, so zone maps
        can prune time-range reads *within* a server.  ``None`` (the
        default) uses the columnar layer's per-day default; ``0`` writes
        one whole-series chunk per server.
    pinned_generation:
        When given (on-disk stores only), every read answers from exactly
        that committed manifest generation, however far the live lake
        moves on -- the fleet's unit of worker handoff.  A pinned store
        is read-only; mutations raise
        :class:`~repro.storage.manifest.LakeManifestError`.
    """

    def __init__(
        self,
        root: str | Path | None = None,
        granted_principals: set[str] | None = None,
        write_format: str = "csv",
        chunk_minutes: int | None = None,
        pinned_generation: int | None = None,
    ) -> None:
        self._root = Path(root) if root is not None else None
        if self._root is not None:
            self._root.mkdir(parents=True, exist_ok=True)
        self._memory: dict[ExtractKey, dict[str, bytes]] = {}
        self._granted = set(granted_principals) if granted_principals is not None else None
        self._write_format = check_format(write_format)
        if chunk_minutes is not None and chunk_minutes < 0:
            raise ValueError("chunk_minutes must be a non-negative number of minutes")
        self._chunk_minutes = chunk_minutes
        self._manifest = LakeManifest(self._root) if self._root is not None else None
        self._live: LiveTailIndex | None = None
        self._pinned: ManifestSnapshot | None = None
        if pinned_generation is not None:
            if self._manifest is None:
                raise ValueError("pinned_generation requires an on-disk lake root")
            # Loaded eagerly: generation files are immutable, so the pin
            # is one read here and zero manifest I/O per query after.
            self._pinned = self._manifest.snapshot_at(pinned_generation)

    # ------------------------------------------------------------------ #

    @property
    def root(self) -> Path | None:
        """Filesystem root of the store (``None`` for in-memory stores)."""
        return self._root

    @property
    def write_format(self) -> str:
        """Format new extracts are persisted in."""
        return self._write_format

    @property
    def chunk_minutes(self) -> int | None:
        """Configured ``.sgx`` chunking policy (``None``: columnar default)."""
        return self._chunk_minutes

    @property
    def manifest(self) -> LakeManifest | None:
        """The lake's manifest handle (``None`` for in-memory stores)."""
        return self._manifest

    @property
    def pinned_generation(self) -> int | None:
        """Generation this store is pinned to (``None``: follow commits)."""
        return self._pinned.generation if self._pinned is not None else None

    def current_generation(self, principal: str | None = None) -> int:
        """The committed manifest generation reads currently resolve to.

        ``0`` for a legacy lake that has not been adopted yet; for pinned
        stores, the pin.  In-memory stores have no manifest and raise
        :class:`ValueError`.
        """
        self._check_access(principal)
        snap = self._snapshot()
        if snap is None:
            raise ValueError("in-memory stores have no manifest generations")
        return snap.generation

    def extract_path(self, key: ExtractKey, fmt: str | None = None,
                     principal: str | None = None) -> Path:
        """Filesystem path of the stored copy backing ``key`` (the
        preferred format, or ``fmt`` when forced).

        The path is an *immutable segment file* owned by the manifest:
        valid for reading (tests also use it to simulate disk damage),
        never for writing -- mutations go through the write API so they
        are published transactionally.  In-memory stores raise
        :class:`ValueError`.
        """
        self._check_access(principal)
        snap = self._snapshot()
        if snap is None or self._root is None:
            raise ValueError("in-memory extracts have no filesystem path")
        fmt = self._resolve_format(key, fmt, snap)[0]
        return self._root / self._entry(key, fmt, snap).relpath

    def check_access(self, principal: str | None = None) -> None:
        """Raise :class:`AccessDeniedError` unless ``principal`` is granted.

        An explicit probe for coordinators (e.g. the fleet orchestrator)
        that hand work to out-of-process workers which reopen disk lakes
        from the root path without the in-memory allow-list -- the
        coordinator checks once up front, whatever unit list it was given.
        """
        self._check_access(principal)

    def _check_access(self, principal: str | None) -> None:
        if self._granted is None:
            return
        if principal is None or principal not in self._granted:
            raise AccessDeniedError(
                f"principal {principal!r} is not granted access to this data lake"
            )

    def _snapshot(self) -> ManifestSnapshot | None:
        """The committed manifest generation this operation reads from.

        Resolved once per public read operation and threaded through, so
        one ``query()``/``scan()`` never mixes two generations however
        many extracts it touches.  ``None`` for in-memory stores.
        """
        if self._manifest is None:
            return None
        if self._pinned is not None:
            return self._pinned
        return self._manifest.current()

    def _tail_index(self) -> "LiveTailIndex | None":
        """The lake's live-tail view, or ``None`` when reads must not see
        unsealed rows (in-memory stores have no tails; pinned stores name
        a committed generation, which the tail is by definition not part
        of)."""
        if self._root is None or self._pinned is not None:
            return None
        if self._live is None:
            # Imported lazily: repro.storage.live sits one layer above
            # this module (its ingestor writes through the store), so a
            # module-level import would be a cycle.
            from repro.storage.live.wal import LiveTailIndex

            self._live = LiveTailIndex(self._root)
        return self._live

    def _entry(self, key: ExtractKey, fmt: str, snap: ManifestSnapshot) -> SegmentEntry:
        entry = snap.entry(key.region, key.week, fmt)
        if entry is None:
            raise ExtractNotFoundError(f"no {fmt} extract for {key}")
        return entry

    def _stored_formats(
        self, key: ExtractKey, snap: ManifestSnapshot | None
    ) -> tuple[str, ...]:
        """Formats present for ``key``, in read-preference order."""
        if snap is None:
            stored = self._memory.get(key, {})
            return tuple(fmt for fmt in EXTRACT_FORMATS if fmt in stored)
        return snap.formats(key.region, key.week)

    def _stored_bytes(
        self, key: ExtractKey, fmt: str, snap: ManifestSnapshot | None
    ) -> bytes:
        if snap is None:
            return self._memory[key][fmt]
        assert self._root is not None
        return (self._root / self._entry(key, fmt, snap).relpath).read_bytes()

    def _require_formats(
        self, key: ExtractKey, snap: ManifestSnapshot | None
    ) -> tuple[str, ...]:
        formats = self._stored_formats(key, snap)
        if not formats:
            raise ExtractNotFoundError(f"no extract for {key}")
        return formats

    def _resolve_format(
        self, key: ExtractKey, fmt: str | None, snap: ManifestSnapshot | None
    ) -> tuple[str, ...]:
        """Stored formats to read ``key`` from: the preference-ordered list,
        or just ``fmt`` when one is forced (must exist)."""
        formats = self._require_formats(key, snap)
        if fmt is None:
            return formats
        check_format(fmt)
        if fmt not in formats:
            raise ExtractNotFoundError(f"no {fmt} extract for {key}")
        return (fmt,)

    # ------------------------------------------------------------------ #

    def write_extract(
        self,
        key: ExtractKey,
        frame: LoadFrame,
        principal: str | None = None,
        fmt: str | None = None,
        keep_other_formats: bool = False,
        chunk_minutes: int | None = None,
    ) -> int:
        """Persist ``frame`` as the extract for ``key``; returns rows written.

        The extract is written in ``fmt`` (default: the store's
        ``write_format``).  ``chunk_minutes`` overrides the store's
        ``.sgx`` chunking policy for this write (``None``: use the
        store's; the lake converter passes its ``--chunk-minutes`` knob
        through here).  Copies of the same key in *other* formats are
        removed -- they would otherwise serve stale content to readers --
        unless ``keep_other_formats`` is set (the lake converter keeps the
        source copy alive until the new one is verified).
        """
        self._check_access(principal)
        fmt = check_format(fmt if fmt is not None else self._write_format)
        if fmt == "sgx":
            if chunk_minutes is None:
                chunk_minutes = self._chunk_minutes
            if chunk_minutes is None:
                chunk_minutes = columnar.DEFAULT_CHUNK_MINUTES
            payload = columnar.frame_to_sgx_bytes(frame, chunk_minutes=chunk_minutes)
        else:
            payload = csv_io.frame_to_csv_text(frame).encode("utf-8")
        self._store_payload(key, fmt, payload, keep_other_formats)
        return frame.total_points()

    def write_extract_bytes(
        self,
        key: ExtractKey,
        fmt: str,
        payload: bytes,
        principal: str | None = None,
        keep_other_formats: bool = False,
    ) -> None:
        """Persist pre-encoded extract ``payload`` as ``key``'s ``fmt`` copy.

        The byte-level dual of :meth:`read_extract_bytes`: the payload is
        stored exactly as given, trusting the caller's encoding -- the
        lake converter uses this to land precisely the bytes it verified
        in memory, with no re-encode in between.  Stale other-format
        copies follow the same rules as :meth:`write_extract`.
        """
        self._check_access(principal)
        self._store_payload(key, check_format(fmt), bytes(payload), keep_other_formats)

    def _require_writable(self) -> None:
        if self._pinned is not None:
            raise LakeManifestError(
                f"store is pinned to generation {self._pinned.generation} "
                "and therefore read-only"
            )

    def _store_payload(
        self, key: ExtractKey, fmt: str, payload: bytes, keep_other_formats: bool
    ) -> None:
        self._require_writable()
        others = () if keep_other_formats else tuple(o for o in EXTRACT_FORMATS if o != fmt)
        if self._manifest is None:
            slot = self._memory.setdefault(key, {})
            slot[fmt] = payload
            for other in others:
                slot.pop(other, None)
        else:
            # One manifest transaction: the new segment is staged under a
            # content-addressed name, fsync'd, and the write -- including
            # dropping now-stale other-format entries -- becomes visible
            # in one atomic pointer swap.  A crash at any point leaves
            # readers on the previous committed generation.
            with self._manifest.transaction(f"write {key.filename(fmt)}") as txn:
                txn.stage(key.region, key.week, fmt, payload)
                for other in others:
                    txn.drop(key.region, key.week, other)

    # ------------------------------------------------------------------ #
    # The query surface (the one read path)
    # ------------------------------------------------------------------ #

    def _list_keys(
        self, snap: ManifestSnapshot | None, region: str | None
    ) -> list[ExtractKey]:
        """Extract keys of ``snap`` (or the in-memory store), sorted."""
        if snap is None:
            keys = sorted(key for key in self._memory if self._memory[key])
        else:
            keys = [ExtractKey(region=r, week=w) for r, w in snap.keys()]
        if region is not None:
            keys = [key for key in keys if key.region == region]
        return keys

    def _query_keys(
        self,
        q: ExtractQuery,
        snap: ManifestSnapshot | None,
        tails: "LiveTailIndex | None" = None,
    ) -> list[ExtractKey]:
        """Extract keys inside ``q``'s partition scope, sorted.

        With ``tails`` given, partitions that exist *only* as a live tail
        (first batches ingested, nothing sealed yet) are included too.
        """
        region = q.regions[0] if q.regions is not None and len(q.regions) == 1 else None
        keys = {key for key in self._list_keys(snap, region) if q.matches_key(key)}
        if tails is not None:
            for tail_region, week in tails.keys():
                key = ExtractKey(region=tail_region, week=week)
                if q.matches_key(key):
                    keys.add(key)
        return sorted(keys)

    def _read_csv_for_query(
        self,
        key: ExtractKey,
        q: ExtractQuery,
        stats: ScanStats | None,
        snap: ManifestSnapshot | None,
    ) -> LoadFrame:
        """Parse ``key``'s CSV copy and apply ``q`` post-parse.

        The CSV schema has no checksums, zone maps or column buffers, so
        nothing can be skipped at the byte level; the filters run after
        the parse and produce exactly the frame the ``.sgx`` pushdowns
        would.  In particular, a ranged read drops servers whose sliced
        series come up empty -- same as the ``.sgx`` path omitting
        servers with no samples in range.  The parse uses the canonical
        CSV grid (the schema records no interval of its own) and
        ``q.interval_minutes`` is honoured by resampling, exactly like
        the ``.sgx`` path.
        """
        raw = self._stored_bytes(key, "csv", snap)
        frame = csv_io.frame_from_csv_text(raw.decode("utf-8"), DEFAULT_INTERVAL_MINUTES)
        if stats is not None:
            stats.payload_bytes_stored += len(raw)
            stats.payload_bytes_verified += len(raw)
        allow = set(q.servers) if q.servers is not None else None
        predicate = q.metadata_predicate()
        rng = q.time_range() if q.is_ranged else None
        target = (
            q.interval_minutes if q.interval_minutes is not None else frame.interval_minutes
        )
        out = LoadFrame(target)
        for server_id, metadata, series in frame.items():
            if stats is not None:
                stats.servers_seen += 1
            if (allow is not None and server_id not in allow) or (
                predicate is not None and not predicate(metadata)
            ):
                if stats is not None:
                    stats.servers_skipped += 1
                continue
            series = project_series(series, q.wants_values, rng)
            series = resample_series(series, target, rng)
            if q.is_ranged and series.is_empty:
                continue  # parity with .sgx: no samples in range, omitted
            out.add_server(metadata, series)
        return out

    def _read_one_for_query(
        self,
        key: ExtractKey,
        q: ExtractQuery,
        stats: ScanStats | None,
        snap: ManifestSnapshot | None,
    ) -> LoadFrame:
        """Materialise ``q`` against one stored extract, negotiating the
        format (damaged ``.sgx`` degrades to a co-located CSV copy).

        ``.sgx`` extracts are decoded at the interval they record (the
        pushdowns prune on the stored layout) and resampled onto
        ``q.interval_minutes`` afterwards -- the honest half of the
        query's interval contract."""
        formats = self._resolve_format(key, q.fmt, snap)
        if stats is not None:
            stats.extracts_scanned += 1
        if formats[0] == "sgx":
            sgx_stats = SgxReadStats()
            try:
                frame = columnar.frame_from_sgx_bytes(
                    self._stored_bytes(key, "sgx", snap),
                    None,
                    start_minute=q.start_minute,
                    end_minute=q.end_minute,
                    stats=sgx_stats,
                    servers=q.servers,
                    predicate=q.metadata_predicate(),
                    columns=q.columns,
                )
            except ColumnarFormatError:
                if "csv" not in formats:
                    raise
            else:
                if stats is not None:
                    stats.absorb_sgx(sgx_stats)
                return self._resample_frame(frame, q)
        return self._read_csv_for_query(key, q, stats, snap)

    def _resample_frame(self, frame: LoadFrame, q: ExtractQuery) -> LoadFrame:
        """Bucket-mean ``frame`` onto ``q.interval_minutes`` (no-op when
        the intervals agree or the query defers to the stored one)."""
        target = q.interval_minutes
        if target is None or frame.interval_minutes == target:
            return frame
        rng = q.time_range() if q.is_ranged else None
        out = LoadFrame(target)
        for _server_id, metadata, series in frame.items():
            series = resample_series(series, target, rng)
            if q.is_ranged and series.is_empty:
                continue
            out.add_server(metadata, series)
        return out

    def _tail_frame_for_query(
        self,
        key: ExtractKey,
        q: ExtractQuery,
        stats: ScanStats | None,
        tails: "LiveTailIndex",
    ) -> LoadFrame | None:
        """Materialise ``q`` against ``key``'s live tail, if it has one.

        Raw tail rows go through the same filters and projections the
        committed paths apply, bucketed onto ``q.interval_minutes`` (or,
        when the query defers, the grid the ingestor records in the WAL
        header -- the grid a seal would produce).  Rows consulted are
        counted in ``stats.tail_rows_scanned``.
        """
        snapshot = tails.tail(key.region, key.week)
        if snapshot is None:
            return None
        target = (
            q.interval_minutes
            if q.interval_minutes is not None
            else snapshot.interval_minutes
        )
        allow = set(q.servers) if q.servers is not None else None
        predicate = q.metadata_predicate()
        rng = q.time_range() if q.is_ranged else None
        out = LoadFrame(target)
        for server_id, (metadata, ts, vs) in sorted(snapshot.servers.items()):
            if stats is not None:
                stats.servers_seen += 1
            if (allow is not None and server_id not in allow) or (
                predicate is not None and not predicate(metadata)
            ):
                if stats is not None:
                    stats.servers_skipped += 1
                continue
            if stats is not None:
                stats.tail_rows_scanned += int(ts.size)
            series = project_series(regularize(ts, vs, target), q.wants_values, rng)
            if q.is_ranged and series.is_empty:
                continue
            out.add_server(metadata, series)
        return out if len(out) else None

    def _aggregate_tail(
        self,
        key: ExtractKey,
        q: ExtractQuery,
        accumulator: AggregateAccumulator,
        stats: ScanStats | None,
        tails: "LiveTailIndex",
    ) -> None:
        """Fold ``key``'s live tail into ``accumulator``.

        Tail rows are bucketed onto the ingestor's grid first -- the same
        representation a seal would commit -- so an aggregate's answer
        does not change when the window it covers moves from the tail
        into a sealed segment.
        """
        snapshot = tails.tail(key.region, key.week)
        if snapshot is None:
            return
        allow = set(q.servers) if q.servers is not None else None
        predicate = q.metadata_predicate()
        rng = q.time_range() if q.is_ranged else None
        for server_id, (metadata, ts, vs) in sorted(snapshot.servers.items()):
            if stats is not None:
                stats.servers_seen += 1
            if (allow is not None and server_id not in allow) or (
                predicate is not None and not predicate(metadata)
            ):
                if stats is not None:
                    stats.servers_skipped += 1
                continue
            if stats is not None:
                stats.tail_rows_scanned += int(ts.size)
            series = regularize(ts, vs, snapshot.interval_minutes)
            if rng is not None:
                series = series.slice(*rng)
            accumulator.fold_columns(server_id, series.timestamps, series.values)

    def _aggregate_csv(
        self,
        key: ExtractKey,
        q: ExtractQuery,
        accumulator: AggregateAccumulator,
        stats: ScanStats | None,
        snap: ManifestSnapshot | None,
    ) -> None:
        """Fold ``key``'s CSV copy into ``accumulator`` (post-parse path).

        CSV extracts carry no chunk statistics, so everything is parsed
        and folded sample-by-sample -- the answer matches the ``.sgx``
        path exactly because both fold into the same accumulator algebra.
        """
        raw = self._stored_bytes(key, "csv", snap)
        frame = csv_io.frame_from_csv_text(
            raw.decode("utf-8"),
            q.interval_minutes if q.interval_minutes is not None else DEFAULT_INTERVAL_MINUTES,
        )
        if stats is not None:
            stats.payload_bytes_stored += len(raw)
            stats.payload_bytes_verified += len(raw)
        allow = set(q.servers) if q.servers is not None else None
        predicate = q.metadata_predicate()
        rng = q.time_range() if q.is_ranged else None
        for server_id, metadata, series in frame.items():
            if stats is not None:
                stats.servers_seen += 1
            if (allow is not None and server_id not in allow) or (
                predicate is not None and not predicate(metadata)
            ):
                if stats is not None:
                    stats.servers_skipped += 1
                continue
            if rng is not None:
                series = series.slice(*rng)
            accumulator.fold_columns(server_id, series.timestamps, series.values)

    def _aggregate_one(
        self,
        key: ExtractKey,
        q: ExtractQuery,
        accumulator: AggregateAccumulator,
        stats: ScanStats | None,
        snap: ManifestSnapshot | None,
    ) -> None:
        """Fold one stored extract into ``accumulator``, negotiating the
        format.

        The fold goes into a spawned (empty) accumulator first and is
        merged only on success: a damaged ``.sgx`` copy discovered
        mid-walk is discarded wholesale before the CSV fallback re-folds,
        so no chunk is ever double-counted.
        """
        formats = self._resolve_format(key, q.fmt, snap)
        if stats is not None:
            stats.extracts_scanned += 1
        range_lo, range_hi = (q.start_minute, q.end_minute) if q.is_ranged else (None, None)
        if formats[0] == "sgx":
            partial = accumulator.spawn()
            sgx_stats = SgxReadStats()
            try:
                columnar.aggregate_sgx_bytes(
                    self._stored_bytes(key, "sgx", snap),
                    partial,
                    range_lo,
                    range_hi,
                    servers=q.servers,
                    predicate=q.metadata_predicate(),
                    stats=sgx_stats,
                )
            except ColumnarFormatError:
                if "csv" not in formats:
                    raise
            else:
                accumulator.merge(partial)
                if stats is not None:
                    stats.absorb_sgx(sgx_stats)
                return
        self._aggregate_csv(key, q, accumulator, stats, snap)

    def _query_aggregate(
        self,
        q: ExtractQuery,
        stats: ScanStats,
        snap: ManifestSnapshot | None,
        tails: "LiveTailIndex | None",
    ) -> QueryResult:
        """Answer an aggregate query: reductions, no materialised rows.

        Chunks fully inside the time range and server/engine scope are
        answered from ``.sgx`` v4 chunk-table statistics without their
        value buffers ever being decoded (``stats`` counts them in
        ``chunks_answered_from_stats``/``bytes_decoded_avoided``); only
        partial-overlap chunks, stat-less pre-v4 chunks and CSV extracts
        are decoded, and the pairwise merge makes mixing the sources
        exact.  The result's ``aggregates`` maps group-key tuples to the
        requested reductions; its frame is empty.
        """
        assert q.aggregates is not None
        accumulator = AggregateAccumulator(q.aggregates, q.group_by)
        for key in self._query_keys(q, snap, tails):
            if self._stored_formats(key, snap):
                self._aggregate_one(key, q, accumulator, stats, snap)
            if tails is not None:
                self._aggregate_tail(key, q, accumulator, stats, tails)
        empty = LoadFrame(
            q.interval_minutes if q.interval_minutes is not None else DEFAULT_INTERVAL_MINUTES
        )
        return QueryResult(
            query=q, frame=empty, stats=stats, aggregates=accumulator.results()
        )

    def query(
        self,
        q: ExtractQuery,
        principal: str | None = None,
        *,
        include_tail: bool = True,
    ) -> QueryResult:
        """Answer ``q`` with one materialised frame plus scan statistics.

        Every extract in ``q``'s partition scope is read with the
        server-filter and column-projection pushdowns (or their CSV
        post-parse equivalents) applied; a query matching no extract
        returns an empty frame (``stats.extracts_scanned == 0`` tells the
        caller nothing was found).  A server appearing in several matched
        extracts has its series concatenated in key order -- overlapping
        copies raise :class:`~repro.storage.query.QueryError` (narrow the
        query) -- keeping the metadata of the first key that carried it.
        ``q.limit`` caps the total rows materialised; once reached, the
        remaining extracts are not read at all.  Forcing ``q.fmt`` raises
        :class:`ExtractNotFoundError` when a matched key lacks that
        format's copy.

        Unless ``include_tail=False`` (or the store is pinned, or
        ``q.fmt`` forces one stored format), partitions with live-tail
        rows answer from committed segments *plus* the tail: the unsealed
        rows ride after the committed ones through the same filters and
        accumulators, counted in ``stats.tail_rows_scanned``.  The seal
        path reads with ``include_tail=False`` -- merging the tail back
        on top of itself would double-count.

        An aggregate query (``q.aggregates`` set) returns reductions in
        ``result.aggregates`` instead of rows -- see
        :meth:`_query_aggregate` for the decode-avoidance contract.
        """
        self._check_access(principal)
        stats = ScanStats()
        snap = self._snapshot()
        tails = self._tail_index() if include_tail and q.fmt is None else None
        if q.is_aggregate:
            return self._query_aggregate(q, stats, snap, tails)
        out: LoadFrame | None = None
        remaining = q.limit
        for key in self._query_keys(q, snap, tails):
            if remaining is not None and remaining <= 0:
                break
            frames: list[LoadFrame] = []
            if self._stored_formats(key, snap):
                frames.append(self._read_one_for_query(key, q, stats, snap))
            if tails is not None:
                tail_frame = self._tail_frame_for_query(key, q, stats, tails)
                if tail_frame is not None:
                    frames.append(tail_frame)
            for frame in frames:
                if out is None:
                    out = LoadFrame(frame.interval_minutes)
                elif frame.interval_minutes != out.interval_minutes:
                    raise QueryError(
                        f"extracts matched by the query record different sampling "
                        f"intervals ({out.interval_minutes} vs {frame.interval_minutes} "
                        f"minutes for {key})"
                    )
                for server_id, metadata, series in frame.items():
                    if remaining is not None:
                        if remaining <= 0:
                            break
                        series = truncate_series(series, remaining)
                        remaining -= len(series)
                    if server_id in out:
                        try:
                            merged = out.series(server_id).concat(series)
                        except ValueError as exc:
                            raise QueryError(
                                f"server {server_id!r} appears in several matched "
                                f"extracts with overlapping samples; narrow the "
                                f"query's weeks/regions ({exc})"
                            ) from exc
                        out.add_server(out.metadata(server_id), merged, overwrite=True)
                    else:
                        out.add_server(metadata, series)
                    stats.rows += len(series)
        if out is None:
            out = LoadFrame(
                q.interval_minutes if q.interval_minutes is not None else DEFAULT_INTERVAL_MINUTES
            )
        return QueryResult(query=q, frame=out, stats=stats)

    def _scan_one(
        self,
        key: ExtractKey,
        q: ExtractQuery,
        stats: ScanStats | None,
        snap: ManifestSnapshot | None,
    ) -> Iterator[tuple[ServerMetadata, LoadSeries]]:
        """Stream one extract's servers under ``q``.

        ``.sgx`` extracts stream truly lazily (a consumer that stops
        early never touches the remaining servers' payload bytes).  A
        damaged ``.sgx`` copy degrades to the co-located CSV only when
        the damage surfaces before the first server is yielded (structure
        damage always does -- the layout is verified up front); payload
        damage discovered mid-stream propagates, since silently
        re-starting from CSV would duplicate already-yielded servers.
        """
        formats = self._resolve_format(key, q.fmt, snap)
        if stats is not None:
            stats.extracts_scanned += 1
        if formats[0] == "sgx":
            sgx_stats = SgxReadStats()
            generator = columnar.scan_sgx_bytes(
                self._stored_bytes(key, "sgx", snap),
                None,
                q.start_minute,
                q.end_minute,
                servers=q.servers,
                predicate=q.metadata_predicate(),
                columns=q.columns,
                stats=sgx_stats,
            )
            fall_back = False
            try:
                try:
                    first = next(generator)
                except StopIteration:
                    return
                except ColumnarFormatError:
                    if "csv" not in formats:
                        raise
                    fall_back = True
                else:
                    yield first
                    yield from generator
            finally:
                if stats is not None and not fall_back:
                    stats.absorb_sgx(sgx_stats)
            if not fall_back:
                return
            # The damaged read's counters are discarded wholesale; the CSV
            # re-read below accounts for itself.
        for _server_id, metadata, series in self._read_csv_for_query(
            key, q, stats, snap
        ).items():
            yield metadata, series

    def _scan_sources(
        self,
        key: ExtractKey,
        q: ExtractQuery,
        stats: ScanStats | None,
        snap: ManifestSnapshot | None,
        tails: "LiveTailIndex | None",
    ) -> Iterator[tuple[ServerMetadata, LoadSeries]]:
        """One partition's scan stream: committed servers first (resampled
        onto ``q.interval_minutes``), then its live-tail servers."""
        if self._stored_formats(key, snap):
            rng = q.time_range() if q.is_ranged else None
            for metadata, series in self._scan_one(key, q, stats, snap):
                series = resample_series(series, q.interval_minutes, rng)
                if q.is_ranged and series.is_empty:
                    continue
                yield metadata, series
        if tails is not None:
            tail_frame = self._tail_frame_for_query(key, q, stats, tails)
            if tail_frame is not None:
                for _server_id, metadata, series in tail_frame.items():
                    yield metadata, series

    def scan(
        self,
        q: ExtractQuery,
        principal: str | None = None,
        stats: ScanStats | None = None,
        *,
        include_tail: bool = True,
    ) -> Iterator[tuple[ExtractKey, ServerMetadata, LoadSeries]]:
        """Stream ``q``'s answer as ``(key, metadata, series)`` triples.

        The streaming dual of :meth:`query` for consumers that never need
        the whole frame in memory (fleet coordinators, exports, metadata
        walks): servers arrive one at a time, extracts are opened one at
        a time, and abandoning the iterator stops all further reading --
        combined with ``q.limit`` this is the lake's row-bounded cursor
        (the scan returns the moment the limit is exhausted, before the
        next server's payload would be decoded).  Like :meth:`query`, a
        scan refuses to silently mix sampling intervals across matched
        extracts, applies the ``q.interval_minutes`` resample, and (unless
        ``include_tail=False``, a pinned store or a forced ``q.fmt``)
        streams each partition's live-tail servers after its committed
        ones.  ``stats``, when given, fills in as the scan advances.
        Aggregate queries have no row stream -- use :meth:`query`.
        """
        self._check_access(principal)
        if q.is_aggregate:
            raise QueryError(
                "aggregate queries produce reductions, not a row stream; "
                "answer them with query()"
            )
        remaining = q.limit
        if remaining is not None and remaining <= 0:
            return
        # Pin one committed generation for the whole scan (captured lazily
        # at the first element, since this is a generator): concurrent
        # writers publishing new generations never change what an
        # in-flight scan observes.
        snap = self._snapshot()
        tails = self._tail_index() if include_tail and q.fmt is None else None
        expected_interval: int | None = None
        for key in self._query_keys(q, snap, tails):
            for metadata, series in self._scan_sources(key, q, stats, snap, tails):
                if expected_interval is None:
                    expected_interval = series.interval_minutes
                elif series.interval_minutes != expected_interval:
                    raise QueryError(
                        f"extracts matched by the query record different sampling "
                        f"intervals ({expected_interval} vs {series.interval_minutes} "
                        f"minutes for {key})"
                    )
                if remaining is not None:
                    series = truncate_series(series, remaining)
                    remaining -= len(series)
                if stats is not None:
                    stats.rows += len(series)
                yield key, metadata, series
                if remaining is not None and remaining <= 0:
                    # Exhausted exactly here: return *before* the iterator
                    # would decode the next server's payload.
                    return

    def read_extract(
        self,
        key: ExtractKey,
        interval_minutes: int | None = DEFAULT_INTERVAL_MINUTES,
        principal: str | None = None,
        fmt: str | None = None,
        start_minute: int | None = None,
        end_minute: int | None = None,
    ) -> LoadFrame:
        """Load the extract for ``key``; raises :class:`ExtractNotFoundError`.

        Back-compat shim over :meth:`query`: builds the equivalent
        single-key :class:`~repro.storage.query.ExtractQuery` and returns
        its frame.  Reads negotiate the stored format (``.sgx`` preferred,
        damaged ``.sgx`` degrades to a co-located CSV copy);
        ``interval_minutes=None`` means "the interval the extract itself
        records"; ``start_minute``/``end_minute`` cut to a half-open time
        range; ``fmt`` forces one specific stored format.
        """
        self._check_access(principal)
        # Preserve the historical contract: a missing key (or missing
        # forced format) raises instead of answering with an empty frame.
        self._resolve_format(key, fmt, self._snapshot())
        q = ExtractQuery.for_key(
            key,
            interval_minutes=interval_minutes,
            fmt=fmt,
            start_minute=start_minute,
            end_minute=end_minute,
        )
        return self.query(q, principal=principal).frame

    def read_extract_text(self, key: ExtractKey, principal: str | None = None) -> str:
        """Return the extract for ``key`` as CSV text.

        Extracts stored only in columnar form are decoded and re-serialised
        to the canonical CSV schema, so callers that need row-oriented text
        (exports, debugging) work regardless of the stored format.
        """
        self._check_access(principal)
        snap = self._snapshot()
        formats = self._require_formats(key, snap)
        if "csv" in formats:
            return self._stored_bytes(key, "csv", snap).decode("utf-8")
        frame = columnar.frame_from_sgx_bytes(self._stored_bytes(key, "sgx", snap))
        return csv_io.frame_to_csv_text(frame)

    def read_extract_bytes(
        self, key: ExtractKey, principal: str | None = None, fmt: str | None = None
    ) -> tuple[str, bytes]:
        """Return ``(format, raw bytes)`` of the preferred stored copy,
        or of one specific format when ``fmt`` is given.

        This is what ships extracts to out-of-process fleet workers without
        forcing a parse/re-serialise round trip in the coordinator.
        """
        self._check_access(principal)
        snap = self._snapshot()
        fmt = self._resolve_format(key, fmt, snap)[0]
        return fmt, self._stored_bytes(key, fmt, snap)

    def extract_formats(
        self, key: ExtractKey, principal: str | None = None
    ) -> tuple[str, ...]:
        """Formats stored for ``key`` in read-preference order (may be empty)."""
        self._check_access(principal)
        return self._stored_formats(key, self._snapshot())

    def extract_fingerprint(
        self, key: ExtractKey, principal: str | None = None, *, verify: bool = False
    ) -> str:
        """Hex sha256 digest of the preferred stored copy's raw bytes.

        Hashing the stored bytes is much cheaper than parsing the extract,
        which lets the fleet orchestrator decide "unchanged since last
        run?" without paying the ingestion cost.  The digest covers the
        bytes the next read would ingest: converting a lake to ``.sgx``
        changes fingerprints (the stored bytes changed) even though frame
        content -- and therefore every stage-cache key -- is unchanged.

        For manifested segments the default is the digest recorded at
        stage time (no file read at all), which describes the bytes the
        transaction *committed* -- out-of-band damage to the file on disk
        is invisible to it.  Pass ``verify=True`` to hash the stored
        bytes themselves when detecting such damage matters more than
        speed.
        """
        self._check_access(principal)
        snap = self._snapshot()
        fmt = self._require_formats(key, snap)[0]
        digest = hashlib.sha256()
        if self._root is None:
            digest.update(self._memory[key][fmt])
            return digest.hexdigest()
        assert snap is not None
        entry = self._entry(key, fmt, snap)
        if entry.sha256 is not None and not verify:
            # Content-addressed segments record their digest in the
            # manifest at stage time; no re-hash needed.
            return entry.sha256
        with (self._root / entry.relpath).open("rb") as handle:
            for chunk in iter(lambda: handle.read(1 << 20), b""):
                digest.update(chunk)
        return digest.hexdigest()

    def has_extract(self, key: ExtractKey, principal: str | None = None) -> bool:
        """Return whether an extract exists for ``key`` in any format."""
        self._check_access(principal)
        return bool(self._stored_formats(key, self._snapshot()))

    def list_extracts(
        self, region: str | None = None, principal: str | None = None
    ) -> list[ExtractKey]:
        """List available extract keys, optionally restricted to a region.

        A key stored in both formats is listed once.  The listing is the
        committed manifest generation's (pinned stores list their pinned
        generation), so files staged by an in-flight or crashed
        transaction are never visible here.
        """
        self._check_access(principal)
        return self._list_keys(self._snapshot(), region)

    def extract_size_bytes(
        self, key: ExtractKey, principal: str | None = None, fmt: str | None = None
    ) -> int:
        """Size in bytes of the preferred stored copy (what a read ingests),
        or of one specific format when ``fmt`` is given.

        Region extract size is the scalability axis of Figure 12; the
        benchmark harness reports it alongside runtimes.
        """
        self._check_access(principal)
        snap = self._snapshot()
        fmt = self._resolve_format(key, fmt, snap)[0]
        if self._root is None:
            return len(self._memory[key][fmt])
        assert snap is not None
        return self._entry(key, fmt, snap).size

    def delete_extract(
        self, key: ExtractKey, principal: str | None = None, fmt: str | None = None
    ) -> None:
        """Remove the extract for ``key`` if present.

        With ``fmt`` given only that format's copy is removed (the lake
        converter uses this to drop the source format after verification);
        otherwise every stored copy goes.  On disk the delete is one
        manifest transaction publishing a generation without the dropped
        entries: readers either see every copy or none, and a crash
        mid-delete rolls back cleanly on the next open.  Deleting an
        absent extract (or format) drops nothing and publishes no new
        generation.  The payload
        files themselves are retired logically -- still on disk (older
        pinned generations may reference them) until
        :meth:`collect_garbage` reclaims them.
        """
        self._check_access(principal)
        formats = (check_format(fmt),) if fmt is not None else EXTRACT_FORMATS
        if self._root is None:
            slot = self._memory.get(key)
            if slot is None:
                return
            for name in formats:
                slot.pop(name, None)
            if not slot:
                self._memory.pop(key, None)
            return
        self._require_writable()
        assert self._manifest is not None
        # Presence is decided from txn.base *inside* the transaction lock:
        # a pre-lock snapshot could race a concurrent writer committing
        # between the check and the drop.  Dropping an absent format is a
        # no-op, and a transaction that drops nothing commits nothing.
        with self._manifest.transaction(f"delete {key} {' '.join(formats)}") as txn:
            for name in formats:
                txn.drop(key.region, key.week, name)

    def collect_garbage(self, principal: str | None = None):
        """Physically reclaim segment files and generations no longer
        referenced by the current committed generation.

        Delegates to
        :meth:`~repro.storage.manifest.LakeManifest.collect_garbage` and
        returns its :class:`~repro.storage.manifest.GcReport`.  Invalidates
        stores pinned to older generations -- run it only when no pinned
        readers are in flight.  In-memory stores have nothing to reclaim
        and raise :class:`ValueError`.
        """
        self._check_access(principal)
        self._require_writable()
        if self._manifest is None:
            raise ValueError("in-memory stores have no on-disk garbage to collect")
        return self._manifest.collect_garbage()
