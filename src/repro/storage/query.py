"""Typed, declarative extract queries: the lake's one read surface.

Reading telemetry used to be a sprawl of positional/keyword arguments
(``read_extract(key, interval_minutes, principal, fmt, start_minute,
end_minute)``) that every consumer re-invented, and the only pushdown the
``.sgx`` reader knew was time-range chunk pruning.  :class:`ExtractQuery`
replaces that with one frozen, hashable value describing *what* to read:

* **partitions** -- ``regions`` / ``weeks`` select which ``(region,
  week)`` extracts are scanned (extract keys are partition names, not
  data bounds: an extract for week ``w`` may carry a multi-week training
  horizon, so the time range below never prunes *keys*);
* **rows** -- a half-open ``[start_minute, end_minute)`` time range plus
  a total row ``limit``;
* **servers** -- an id allow-list (``servers``) and a metadata predicate
  (``engines``), both pushed down into the ``.sgx`` reader so excluded
  servers' chunks are never decoded or checksummed;
* **columns** -- a projection over :data:`~repro.storage.columnar.COLUMNS`;
  excluding ``values`` skips decoding (and, on format v3, checksumming)
  every values buffer, and the materialised series carry NaN values;
* **execution details** -- ``interval_minutes`` and a stored-format
  preference ``fmt``.  ``fmt`` never changes the answer (both formats
  materialise the same frame), so it is excluded from
  :meth:`ExtractQuery.cache_token`;
* **aggregates** -- ``aggregates=(...)`` turns the query into a
  reduction (``count`` / ``sum`` / ``min`` / ``max`` / ``mean`` /
  ``variance`` / ``std``), optionally grouped via ``group_by`` over
  ``server`` and/or absolute ``day``.  Aggregate queries return no
  frame; on ``.sgx`` v4 extracts they are answered from chunk-table
  statistics without decoding value buffers wherever a chunk lies fully
  inside the time range and scope (see
  :func:`~repro.storage.columnar.aggregate_sgx_bytes`).

Queries are value objects: equivalent constructions (list vs tuple server
ids, unordered inputs) normalise to the same instance, hash equal, and
produce the same :func:`~repro.storage.artifacts.artifact_key` component
via :meth:`ExtractQuery.cache_token`.  They are also the fleet's unit of
worker handoff -- the orchestrator ships ``(lake root, ExtractQuery)`` to
process workers instead of whole extract payloads.

:class:`QueryResult` pairs the materialised
:class:`~repro.timeseries.frame.LoadFrame` with a :class:`ScanStats`
telling exactly how much work the pushdowns avoided (chunks pruned,
servers skipped, column buffers skipped, bytes CRC-verified vs stored).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.storage.aggregate import check_group_by, check_reductions
from repro.storage.columnar import COLUMNS, SgxReadStats, normalize_columns
from repro.timeseries.calendar import (
    DEFAULT_INTERVAL_MINUTES,
    MAX_MINUTE,
    MIN_MINUTE,
)
from repro.timeseries.frame import LoadFrame, ServerMetadata

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (datalake imports us)
    from repro.storage.datalake import ExtractKey

#: Known extract formats, in read-preference order: the columnar format
#: ingests an order of magnitude faster, so it wins when both exist.
#: (Defined here -- the base module of the storage read path -- and
#: re-exported by :mod:`repro.storage.datalake` for compatibility.)
EXTRACT_FORMATS = ("sgx", "csv")


def check_format(fmt: str) -> str:
    """Validate an extract format name; returns it for chaining."""
    if fmt not in EXTRACT_FORMATS:
        raise ValueError(f"unknown extract format {fmt!r}; expected one of {EXTRACT_FORMATS}")
    return fmt


class QueryError(ValueError):
    """Raised for malformed queries and unanswerable query shapes."""


def _name_tuple(value, what: str) -> tuple[str, ...] | None:
    """Normalise an optional name collection to a sorted, deduplicated
    tuple (a lone string counts as a single name, not as characters)."""
    if value is None:
        return None
    names = (value,) if isinstance(value, str) else tuple(value)
    for name in names:
        if not isinstance(name, str):
            raise QueryError(f"{what} must be strings, got {name!r}")
    return tuple(sorted(set(names)))


def _week_tuple(value) -> tuple[int, ...] | None:
    if value is None:
        return None
    weeks = (value,) if isinstance(value, int) else tuple(value)
    normalized = []
    for week in weeks:
        if not isinstance(week, int) or isinstance(week, bool) or week < 0:
            raise QueryError(f"weeks must be non-negative integers, got {week!r}")
        normalized.append(week)
    return tuple(sorted(set(normalized)))


@dataclass(frozen=True)
class ExtractQuery:
    """One declarative read against a :class:`~repro.storage.datalake.
    DataLakeStore` -- frozen, hashable, picklable.

    Every field is normalised on construction (collections become sorted
    tuples, columns take their canonical order), so two equivalent
    queries -- ``servers=["b", "a"]`` vs ``servers=("a", "b")`` -- are
    equal, hash equal and key caches identically.
    """

    #: Region partitions to scan (``None``: every region).
    regions: tuple[str, ...] | None = None
    #: Week partitions to scan (``None``: every week).
    weeks: tuple[int, ...] | None = None
    #: Half-open row time range; ``None`` bounds are open.
    start_minute: int | None = None
    end_minute: int | None = None
    #: Server-id allow-list (``None``: every server).
    servers: tuple[str, ...] | None = None
    #: Metadata predicate: keep only servers with one of these engines.
    engines: tuple[str, ...] | None = None
    #: Column projection; must include ``timestamps`` (the series index).
    columns: tuple[str, ...] = COLUMNS
    #: Cap on total rows materialised (scans stop once it is reached).
    limit: int | None = None
    #: Sampling interval of the result; ``None`` means "whatever the
    #: extract records" (the ``.sgx`` header value / the CSV default).
    interval_minutes: int | None = DEFAULT_INTERVAL_MINUTES
    #: Stored-format preference; ``None`` negotiates (prefer ``.sgx``,
    #: degrade to a co-located CSV when the ``.sgx`` copy is damaged).
    #: Never part of :meth:`cache_token` -- it cannot change the answer.
    fmt: str | None = None
    #: Reductions to compute instead of materialising rows (``None``:
    #: a row query).  Canonicalised subset of
    #: :data:`~repro.storage.aggregate.AGGREGATE_REDUCTIONS`.
    aggregates: tuple[str, ...] | None = None
    #: Group keys for an aggregate query, over ``server`` and/or absolute
    #: ``day`` (``minute // 1440``).  Only valid with ``aggregates``.
    group_by: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "regions", _name_tuple(self.regions, "regions"))
        object.__setattr__(self, "weeks", _week_tuple(self.weeks))
        object.__setattr__(self, "servers", _name_tuple(self.servers, "servers"))
        object.__setattr__(self, "engines", _name_tuple(self.engines, "engines"))
        columns = (
            (self.columns,) if isinstance(self.columns, str) else tuple(self.columns)
        )
        try:
            normalize_columns(columns)
        except ValueError as exc:
            raise QueryError(str(exc)) from None
        object.__setattr__(
            self, "columns", tuple(column for column in COLUMNS if column in columns)
        )
        if (
            self.start_minute is not None
            and self.end_minute is not None
            and self.end_minute < self.start_minute
        ):
            raise QueryError(
                f"end_minute ({self.end_minute}) must not be before "
                f"start_minute ({self.start_minute})"
            )
        if self.limit is not None and (not isinstance(self.limit, int) or self.limit < 0):
            raise QueryError(f"limit must be a non-negative integer, got {self.limit!r}")
        if self.interval_minutes is not None and self.interval_minutes <= 0:
            raise QueryError("interval_minutes must be positive (or None)")
        if self.fmt is not None:
            check_format(self.fmt)
        if self.aggregates is not None:
            try:
                object.__setattr__(self, "aggregates", check_reductions(self.aggregates))
                if self.group_by is not None:
                    object.__setattr__(self, "group_by", check_group_by(self.group_by))
            except ValueError as exc:
                raise QueryError(str(exc)) from None
            if self.limit is not None:
                raise QueryError(
                    "limit cannot be combined with aggregates -- a row cap over "
                    "an unordered multi-extract scan would make the reductions "
                    "depend on scan order"
                )
            if self.columns != COLUMNS:
                raise QueryError(
                    "column projections cannot be combined with aggregates -- "
                    "the aggregate mode decides per chunk which buffers to read"
                )
        elif self.group_by is not None:
            raise QueryError("group_by requires aggregates")

    # ------------------------------------------------------------------ #

    @classmethod
    def for_key(cls, key: "ExtractKey", **overrides: Any) -> "ExtractQuery":
        """A query pinned to one ``(region, week)`` extract."""
        return cls(regions=(key.region,), weeks=(key.week,), **overrides)

    def matches_key(self, key: "ExtractKey") -> bool:
        """Whether partition ``key`` falls inside this query's scope."""
        if self.regions is not None and key.region not in self.regions:
            return False
        return self.weeks is None or key.week in self.weeks

    @property
    def is_ranged(self) -> bool:
        """Whether a row time range is set (ranged reads drop servers
        whose series end up empty; full reads keep them)."""
        return self.start_minute is not None or self.end_minute is not None

    @property
    def wants_values(self) -> bool:
        return "values" in self.columns

    @property
    def is_aggregate(self) -> bool:
        """Whether this query computes reductions instead of rows."""
        return self.aggregates is not None

    def time_range(self) -> tuple[int, int]:
        """The half-open row range with open bounds made explicit."""
        return (
            self.start_minute if self.start_minute is not None else MIN_MINUTE,
            self.end_minute if self.end_minute is not None else MAX_MINUTE,
        )

    def metadata_predicate(self) -> Callable[[ServerMetadata], bool] | None:
        """The pushdown form of the metadata filters (``None``: keep all)."""
        if self.engines is None:
            return None
        engines = frozenset(self.engines)
        return lambda metadata: metadata.engine in engines

    def cache_token(self) -> dict[str, Any]:
        """This query as an :func:`~repro.storage.artifacts.artifact_key`
        params component.

        Covers exactly the fields that determine the materialised frame.
        ``fmt`` is excluded on purpose: both stored formats answer the
        same query identically, so a cached stage output keyed under the
        default negotiation stays valid when the read is later forced to
        one format (and vice versa).
        """
        return {
            "regions": self.regions,
            "weeks": self.weeks,
            "start_minute": self.start_minute,
            "end_minute": self.end_minute,
            "servers": self.servers,
            "engines": self.engines,
            "columns": self.columns,
            "limit": self.limit,
            "interval_minutes": self.interval_minutes,
            "aggregates": self.aggregates,
            "group_by": self.group_by,
        }


@dataclass
class ScanStats:
    """What one query/scan did -- and, more importantly, did not -- do.

    ``payload_bytes_stored`` counts the payload bytes of every chunk the
    scan walked; ``payload_bytes_verified`` counts the bytes actually
    CRC-checked and ingested.  The gap between the two is what zone-map
    pruning, server filtering and column projection saved.  For CSV
    extracts (no checksums, no sub-file structure) the whole file is
    parsed, so both counters advance by the file size and the skip
    counters stay untouched -- the pushdowns are post-parse there.

    Aggregate queries additionally count ``chunks_answered_from_stats``
    (chunks whose reductions came from stored chunk-table pre-aggregates)
    and ``bytes_decoded_avoided`` (those chunks' payload bytes, never
    read or checksummed).
    """

    extracts_scanned: int = 0
    chunks_seen: int = 0
    chunks_pruned: int = 0
    servers_seen: int = 0
    servers_skipped: int = 0
    columns_skipped: int = 0
    chunks_answered_from_stats: int = 0
    bytes_decoded_avoided: int = 0
    payload_bytes_stored: int = 0
    payload_bytes_verified: int = 0
    rows: int = 0
    #: Raw (pre-bucketing) samples read from live tail WALs -- rows not
    #: yet sealed into any committed segment.  Zero for committed-only
    #: answers; the live/committed split of a unified read.
    tail_rows_scanned: int = 0

    def absorb_sgx(self, read: SgxReadStats) -> None:
        """Fold one ``.sgx`` read's counters into this rollup."""
        self.chunks_seen += read.chunks_seen
        self.chunks_pruned += read.chunks_pruned
        self.servers_seen += read.servers_seen
        self.servers_skipped += read.servers_skipped
        self.columns_skipped += read.columns_skipped
        self.chunks_answered_from_stats += read.chunks_answered_from_stats
        self.bytes_decoded_avoided += read.bytes_decoded_avoided
        self.payload_bytes_stored += read.payload_bytes_total
        self.payload_bytes_verified += read.payload_bytes_verified

    @property
    def verified_fraction(self) -> float:
        """Verified payload bytes over stored payload bytes (1.0 when
        nothing was stored -- an empty scan avoided nothing)."""
        if not self.payload_bytes_stored:
            return 1.0
        return self.payload_bytes_verified / self.payload_bytes_stored

    def as_dict(self) -> dict[str, int | float]:
        return {
            "extracts_scanned": self.extracts_scanned,
            "chunks_seen": self.chunks_seen,
            "chunks_pruned": self.chunks_pruned,
            "servers_seen": self.servers_seen,
            "servers_skipped": self.servers_skipped,
            "columns_skipped": self.columns_skipped,
            "chunks_answered_from_stats": self.chunks_answered_from_stats,
            "bytes_decoded_avoided": self.bytes_decoded_avoided,
            "payload_bytes_stored": self.payload_bytes_stored,
            "payload_bytes_verified": self.payload_bytes_verified,
            "rows": self.rows,
            "tail_rows_scanned": self.tail_rows_scanned,
        }


@dataclass
class QueryResult:
    """The materialised answer to one :class:`ExtractQuery`.

    A row query fills ``frame``; an aggregate query leaves the frame
    empty and fills ``aggregates`` -- a mapping from group-key tuple (in
    ``group_by`` order; the empty tuple for the global aggregate) to the
    requested reductions.  Groups only exist once at least one sample
    folded into them, so the mapping is NaN-free and an empty scope is
    an empty mapping.
    """

    query: ExtractQuery
    frame: LoadFrame
    stats: ScanStats = field(default_factory=ScanStats)
    aggregates: dict[tuple, dict[str, float | int]] | None = None

    @property
    def rows(self) -> int:
        return self.frame.total_points()

    @property
    def n_servers(self) -> int:
        return len(self.frame)


def truncate_series(series, keep: int):
    """The first ``keep`` samples of ``series`` (positional, for limits)."""
    from repro.timeseries.series import LoadSeries

    if keep >= len(series):
        return series
    return LoadSeries(
        series.timestamps[:keep].copy(),
        series.values[:keep].copy(),
        series.interval_minutes,
        validate=False,
    )


def resample_series(series, interval_minutes: int | None, rng: tuple[int, int] | None = None):
    """Bucket-mean ``series`` onto the ``interval_minutes`` grid.

    The honest half of ``ExtractQuery.interval_minutes``: extracts are
    read at the interval they record and this puts them on the interval
    the query *asked for* (epoch-aligned bucket means via
    :func:`repro.timeseries.resample.regularize`).  A no-op when the
    intervals already agree.  ``rng`` re-applies the query's half-open
    time range afterwards, because a bucket start can land just below
    the range's first in-range sample.
    """
    if interval_minutes is None or series.interval_minutes == interval_minutes:
        return series
    from repro.timeseries.resample import regularize

    series = regularize(series.timestamps, series.values, interval_minutes)
    if rng is not None:
        series = series.slice(*rng)
    return series


def project_series(series, wants_values: bool, rng: tuple[int, int] | None):
    """Post-parse equivalents of the ``.sgx`` pushdowns for CSV frames:
    slice ``series`` to ``rng`` and blank unprojected values to NaN."""
    import numpy as np

    if rng is not None:
        series = series.slice(*rng)
    if not wants_values:
        series = series.with_values(np.full(len(series), np.nan))
    return series


__all__ = [
    "EXTRACT_FORMATS",
    "ExtractQuery",
    "QueryError",
    "QueryResult",
    "ScanStats",
    "check_format",
    "project_series",
    "resample_series",
    "truncate_series",
]
