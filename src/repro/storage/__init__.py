"""Storage substrates standing in for the Azure services the paper uses.

* :mod:`~repro.storage.csv_io` -- reading and writing the weekly extract
  CSV files (the schema from Section 5.3.1).
* :class:`~repro.storage.datalake.DataLakeStore` -- a local, partitioned
  file store playing the role of Azure Data Lake Store (ADLS): extracts are
  keyed by ``(region, week)``.
* :class:`~repro.storage.documentdb.DocumentStore` -- a lightweight JSON
  document store playing the role of Cosmos DB: pipeline results, model
  records and scheduling decisions are persisted as keyed documents in
  named containers.
* :mod:`~repro.storage.columnar` -- the binary columnar ``.sgx`` extract
  format: dictionary-encoded metadata, per-server column chunks with
  zone maps and checksums, zero-copy ``numpy.frombuffer`` ingestion.
* :mod:`~repro.storage.query` -- the typed extract-query surface:
  :class:`~repro.storage.query.ExtractQuery` (frozen, hashable,
  cache-keyable), :class:`~repro.storage.query.QueryResult` and
  :class:`~repro.storage.query.ScanStats`.  ``DataLakeStore.query`` /
  ``.scan`` are the one read path; server filters and column projections
  are pushed down into the ``.sgx`` reader.
* :mod:`~repro.storage.aggregate` -- the aggregate-query merge core:
  :class:`~repro.storage.aggregate.AggregateAccumulator` folds ``.sgx``
  v4 chunk-table statistics, decoded slices and CSV rows into one exact
  answer (pairwise Welford merge for mean/variance), which is what lets
  ``aggregates=(...)`` queries skip decoding value buffers entirely for
  fully covered chunks.
* :mod:`~repro.storage.migrate` -- in-place lake conversion between the
  CSV and ``.sgx`` extract formats (the ``convert`` CLI's engine).
* :mod:`~repro.storage.manifest` -- the transactional lake manifest:
  generation-numbered, atomically published snapshots over immutable
  content-addressed segment files, an append-only intent/commit log, and
  crash recovery -- the durability layer every on-disk
  :class:`~repro.storage.datalake.DataLakeStore` mutation goes through.
* :class:`~repro.storage.artifacts.ArtifactStore` -- a content-addressed
  cache of pipeline stage outputs keyed by extract content hash, which is
  what lets fleet re-runs skip recomputation on unchanged extracts.
"""

from repro.storage.aggregate import (
    AGGREGATE_GROUP_KEYS,
    AGGREGATE_REDUCTIONS,
    AggregateAccumulator,
)
from repro.storage.artifacts import ArtifactCacheStats, ArtifactStore, artifact_key
from repro.storage.columnar import (
    COLUMNS,
    DEFAULT_CHUNK_MINUTES,
    ColumnarFormatError,
    SgxReadStats,
    aggregate_sgx_bytes,
    frame_from_sgx_bytes,
    frame_to_sgx_bytes,
    read_frame_sgx,
    scan_sgx_bytes,
    sgx_version,
    upgrade_sgx_bytes,
    write_frame_sgx,
)
from repro.storage.csv_io import read_frame_csv, write_frame_csv
from repro.storage.datalake import EXTRACT_FORMATS, DataLakeStore, ExtractKey
from repro.storage.documentdb import Document, DocumentStore
from repro.storage.manifest import (
    GcReport,
    LakeManifest,
    LakeManifestError,
    ManifestSnapshot,
    SegmentEntry,
)
from repro.storage.migrate import LakeConversionReport, convert_lake
from repro.storage.query import ExtractQuery, QueryError, QueryResult, ScanStats
from repro.timeseries.calendar import MAX_MINUTE, MIN_MINUTE

__all__ = [
    "read_frame_csv",
    "write_frame_csv",
    "read_frame_sgx",
    "write_frame_sgx",
    "frame_from_sgx_bytes",
    "frame_to_sgx_bytes",
    "aggregate_sgx_bytes",
    "scan_sgx_bytes",
    "sgx_version",
    "upgrade_sgx_bytes",
    "AGGREGATE_GROUP_KEYS",
    "AGGREGATE_REDUCTIONS",
    "AggregateAccumulator",
    "ColumnarFormatError",
    "SgxReadStats",
    "COLUMNS",
    "DEFAULT_CHUNK_MINUTES",
    "EXTRACT_FORMATS",
    "MIN_MINUTE",
    "MAX_MINUTE",
    "DataLakeStore",
    "ExtractKey",
    "ExtractQuery",
    "QueryError",
    "QueryResult",
    "ScanStats",
    "DocumentStore",
    "Document",
    "ArtifactStore",
    "ArtifactCacheStats",
    "artifact_key",
    "convert_lake",
    "LakeConversionReport",
    "GcReport",
    "LakeManifest",
    "LakeManifestError",
    "ManifestSnapshot",
    "SegmentEntry",
]
