"""CSV serialisation of load frames.

The input files to the AML pipeline are CSV extracts containing
``server identifier, timestamp in minutes, average user CPU load percentage
per five minutes, default backup start and end timestamps`` (Section 5.3.1).
This module reads and writes that schema, with a few extra metadata columns
used by the synthetic substrate (region, engine, true class).
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

from repro.timeseries.calendar import DEFAULT_INTERVAL_MINUTES
from repro.timeseries.frame import LoadFrame


class CsvSchemaError(ValueError):
    """Raised when a CSV extract does not carry the expected columns."""


REQUIRED_COLUMNS = ("server_id", "timestamp_minutes", "avg_cpu_percent")


def write_frame_csv(frame: LoadFrame, path: str | Path) -> int:
    """Write ``frame`` to ``path`` in the extract schema.

    Returns the number of data rows written.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(LoadFrame.CSV_HEADER)
        for row in frame.to_rows():
            writer.writerow(row)
            count += 1
    return count


def frame_to_csv_text(frame: LoadFrame) -> str:
    """Serialise ``frame`` to a CSV string (used by in-memory stores)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(LoadFrame.CSV_HEADER)
    for row in frame.to_rows():
        writer.writerow(row)
    return buffer.getvalue()


def read_frame_csv(
    path: str | Path,
    interval_minutes: int = DEFAULT_INTERVAL_MINUTES,
) -> LoadFrame:
    """Read a CSV extract from ``path`` into a :class:`LoadFrame`."""
    path = Path(path)
    with path.open("r", newline="") as handle:
        return _read_frame(handle, interval_minutes)


def frame_from_csv_text(
    text: str,
    interval_minutes: int = DEFAULT_INTERVAL_MINUTES,
) -> LoadFrame:
    """Parse a CSV string into a :class:`LoadFrame`."""
    return _read_frame(io.StringIO(text), interval_minutes)


def _read_frame(handle, interval_minutes: int) -> LoadFrame:
    reader = csv.DictReader(handle)
    if reader.fieldnames is None:
        raise CsvSchemaError("CSV extract is empty (no header row)")
    missing = [column for column in REQUIRED_COLUMNS if column not in reader.fieldnames]
    if missing:
        raise CsvSchemaError(f"CSV extract is missing required columns: {missing}")
    return LoadFrame.from_rows(reader, interval_minutes)
