"""Append-only, CRC-framed write-ahead log for the lake's live tail.

One ``tail.wal`` file per active ``(region, week)`` partition, living under
``_manifest/live/<region>/week<NNNN>.tail.wal`` -- *inside* the manifest
directory on purpose: the manifest's orphan sweep and ``collect_garbage``
never descend into ``_manifest``'s subdirectories, so an active tail can
never be reclaimed as garbage.  The hot append path stays out of the
strict per-mutation manifest protocol (the partially-constrained-log idea:
constrain only what recovery needs); durability is fsync-*batched*, so a
crashed collector loses at most the batches appended since the last fsync.

On-disk layout::

    header   MAGIC "SGWL" | u16 version | u32 interval_minutes |
             u32 week | i64 sealed_through | u16 len | region utf-8 |
             u32 crc32(everything before)
    frame*   u32 payload_len | u32 crc32(payload) | payload
    payload  u32 meta_len | meta json (one server's metadata + row count) |
             i64 timestamps ... | f64 values ...

Each frame is one ingested batch for one server: raw (possibly irregular)
``(timestamp, value)`` samples.  Readers bucket them onto the extract grid
with :func:`repro.timeseries.resample.regularize`.

``sealed_through`` is the tail's low-water mark: rows strictly below it
have been sealed into an immutable ``.sgx`` segment by a committed
manifest transaction and must be ignored on replay.  Because a crash can
land *between* the manifest commit and the WAL rewrite that trims the
sealed rows, the committed transaction log is the second half of the
truth: the seal transaction's ``op`` string encodes the watermark, and
:func:`committed_seal_watermark` recovers it, so replay dedupes exactly
like PR 9's recovery replays the txlog.

A torn tail (crash mid-append) is detected by the length/CRC framing:
the partial last frame is dropped *loudly* (a :class:`LiveWalWarning` plus
counters in :class:`TailReplay`) and every complete frame before it
survives -- mirroring the manifest txlog's torn-tail semantics.
"""

from __future__ import annotations

import json
import os
import re
import struct
import warnings
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.storage.manifest.manifest import (
    LIVE_DIR_NAME,
    MANIFEST_DIR_NAME,
    TXLOG_NAME,
)
from repro.storage.manifest.txlog import TransactionLog
from repro.timeseries.frame import ServerMetadata

__all__ = [
    "LIVE_DIR_NAME",
    "NO_WATERMARK",
    "LiveTailIndex",
    "LiveWalError",
    "LiveWalWarning",
    "TailFrame",
    "TailReplay",
    "TailSnapshot",
    "TailWal",
    "committed_seal_watermark",
    "live_dir",
    "seal_op",
    "wal_path",
]

_WAL_MAGIC = b"SGWL"
_WAL_VERSION = 1
#: ``magic | version | interval | week | sealed_through | region_len``
_HEADER_FIXED = struct.Struct("<4sHIIqH")
_FRAME_HEADER = struct.Struct("<II")
_U32 = struct.Struct("<I")

#: ``sealed_through`` sentinel for "nothing sealed yet": below every valid
#: epoch minute (:data:`repro.timeseries.calendar.MIN_MINUTE`).
NO_WATERMARK = -(1 << 62)

_WAL_NAME_RE = re.compile(r"^week(?P<week>\d{4,})\.tail\.wal$")
_SEAL_OP_RE = re.compile(
    r"^live-seal (?P<region>.+) week(?P<week>\d+) through (?P<through>-?\d+)$"
)


class LiveWalError(RuntimeError):
    """A live-tail WAL could not be read or written coherently."""


class LiveWalWarning(UserWarning):
    """Emitted when replay drops torn/corrupt WAL bytes (loud, not silent)."""


def live_dir(root: Path) -> Path:
    """The lake's live-tail directory (``<root>/_manifest/live``)."""
    return root / MANIFEST_DIR_NAME / LIVE_DIR_NAME


def wal_path(root: Path, region: str, week: int) -> Path:
    """Path of the tail WAL for one ``(region, week)`` partition."""
    return live_dir(root) / region / f"week{week:04d}.tail.wal"


def seal_op(region: str, week: int, through: int) -> str:
    """The manifest-transaction ``op`` string for a seal through ``through``.

    The watermark rides in the txlog on purpose: a committed seal whose
    WAL rewrite was lost to a crash is recovered by parsing committed
    ``live-seal`` ops back out of the log (see
    :func:`committed_seal_watermark`).
    """
    return f"live-seal {region} week{week:04d} through {through}"


def committed_seal_watermark(root: Path, region: str, week: int) -> int:
    """Highest watermark of any *committed* seal of ``(region, week)``.

    Walks the manifest transaction log exactly like crash recovery does:
    an ``intent`` whose op parses as a seal of this partition contributes
    its watermark once a ``commit`` (or a ``recovered`` resolution with
    ``action="commit"``) for the same txid follows.  Returns
    :data:`NO_WATERMARK` when no seal ever committed.
    """
    log = TransactionLog(root / MANIFEST_DIR_NAME / TXLOG_NAME)
    watermark = NO_WATERMARK
    intents: dict[str, int] = {}
    for record in log.records():
        kind = record.get("type")
        if kind == "intent":
            match = _SEAL_OP_RE.match(str(record.get("op", "")))
            if (
                match is not None
                and match.group("region") == region
                and int(match.group("week")) == week
            ):
                intents[str(record.get("txid", ""))] = int(match.group("through"))
        elif kind == "commit" or (
            kind == "recovered" and record.get("action") == "commit"
        ):
            through = intents.get(str(record.get("txid", "")))
            if through is not None:
                watermark = max(watermark, through)
    return watermark


@dataclass(frozen=True)
class TailFrame:
    """One replayed WAL frame: a raw ingested batch for one server."""

    metadata: ServerMetadata
    timestamps: np.ndarray  # int64 epoch minutes, batch order (may be irregular)
    values: np.ndarray  # float64

    def __len__(self) -> int:
        return int(self.timestamps.size)


@dataclass
class TailReplay:
    """What :func:`read_tail` recovered from one WAL file."""

    region: str
    week: int
    interval_minutes: int
    sealed_through: int
    frames: list[TailFrame] = field(default_factory=list)
    #: Complete frames whose rows all predate the effective watermark
    #: (sealed by a committed transaction; dropped as duplicates).
    frames_deduped: int = 0
    #: Torn/corrupt frames dropped from the tail of the file.
    frames_dropped: int = 0
    bytes_dropped: int = 0

    @property
    def torn(self) -> bool:
        return self.frames_dropped > 0 or self.bytes_dropped > 0

    @property
    def rows(self) -> int:
        return sum(len(frame) for frame in self.frames)


def _encode_header(
    region: str, week: int, interval_minutes: int, sealed_through: int
) -> bytes:
    name = region.encode("utf-8")
    body = _HEADER_FIXED.pack(
        _WAL_MAGIC, _WAL_VERSION, interval_minutes, week, sealed_through, len(name)
    ) + name
    return body + _U32.pack(zlib.crc32(body))


def encode_frame(metadata: ServerMetadata, timestamps: np.ndarray, values: np.ndarray) -> bytes:
    """Encode one batch as a self-checking WAL frame."""
    ts = np.ascontiguousarray(timestamps, dtype=np.int64)
    vs = np.ascontiguousarray(values, dtype=np.float64)
    if ts.shape != vs.shape or ts.ndim != 1:
        raise LiveWalError("batch timestamps/values must be equal-length 1-d arrays")
    meta = json.dumps(
        {
            "server": metadata.server_id,
            "region": metadata.region,
            "engine": metadata.engine,
            "backup_start": metadata.default_backup_start,
            "backup_end": metadata.default_backup_end,
            "backup_duration": metadata.backup_duration_minutes,
            "true_class": metadata.true_class,
            "rows": int(ts.size),
        },
        sort_keys=True,
    ).encode("utf-8")
    payload = _U32.pack(len(meta)) + meta + ts.tobytes() + vs.tobytes()
    return _FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def _decode_payload(payload: bytes) -> TailFrame:
    if len(payload) < _U32.size:
        raise LiveWalError("frame payload shorter than its metadata length field")
    (meta_len,) = _U32.unpack_from(payload)
    meta_end = _U32.size + meta_len
    column_bytes = len(payload) - meta_end
    if meta_len < 0 or column_bytes < 0 or column_bytes % 16 != 0:
        raise LiveWalError("frame payload does not frame two equal column buffers")
    meta = json.loads(payload[_U32.size:meta_end].decode("utf-8"))
    rows = column_bytes // 16
    if int(meta.get("rows", rows)) != rows:
        raise LiveWalError("frame metadata row count disagrees with payload size")
    ts = np.frombuffer(payload, dtype=np.int64, count=rows, offset=meta_end)
    vs = np.frombuffer(payload, dtype=np.float64, count=rows, offset=meta_end + rows * 8)
    metadata = ServerMetadata(
        server_id=str(meta["server"]),
        region=str(meta.get("region", "")),
        engine=str(meta.get("engine", "postgresql")),
        default_backup_start=int(meta.get("backup_start", 0)),
        default_backup_end=int(meta.get("backup_end", 0)),
        backup_duration_minutes=int(meta.get("backup_duration", 60)),
        true_class=str(meta.get("true_class", "")),
    )
    return TailFrame(metadata, ts.copy(), vs.copy())


def read_tail(path: Path, *, watermark: int | None = None) -> TailReplay | None:
    """Replay one WAL file; ``None`` when it does not exist.

    ``watermark``, when given, is the effective seal watermark (already
    max'd with the txlog -- see :func:`committed_seal_watermark`); frames
    are filtered to rows at or above it so sealed rows never surface
    twice.  A torn or corrupt tail is dropped loudly: every complete,
    checksummed frame before the damage survives, the rest is counted in
    the replay report and warned about.  A file torn inside its *header*
    (creation crashed before the first fsync) replays as an empty,
    headerless tail -- the caller recreates it.
    """
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        return None
    header_probe = _try_decode_header(data)
    if header_probe is None:
        warnings.warn(
            f"live tail {path.name}: header torn or corrupt; "
            f"treating the whole file ({len(data)} bytes) as an unacknowledged tail",
            LiveWalWarning,
            stacklevel=2,
        )
        replay = TailReplay("", -1, 0, NO_WATERMARK)
        replay.bytes_dropped = len(data)
        replay.frames_dropped = 0
        return replay
    region, week, interval, sealed_through, offset = header_probe
    effective = sealed_through if watermark is None else max(sealed_through, watermark)
    replay = TailReplay(region, week, interval, effective)
    while offset < len(data):
        remaining = len(data) - offset
        if remaining < _FRAME_HEADER.size:
            replay.frames_dropped += 1
            replay.bytes_dropped += remaining
            break
        length, crc = _FRAME_HEADER.unpack_from(data, offset)
        start = offset + _FRAME_HEADER.size
        end = start + length
        if end > len(data) or zlib.crc32(data[start:end]) != crc:
            replay.frames_dropped += 1
            replay.bytes_dropped += len(data) - offset
            break
        try:
            frame = _decode_payload(data[start:end])
        except (LiveWalError, ValueError, KeyError):
            # The CRC passed but the payload does not parse: treat the
            # frame -- and everything after it, since framing trust is
            # gone -- as torn.
            replay.frames_dropped += 1
            replay.bytes_dropped += len(data) - offset
            break
        offset = end
        keep = frame.timestamps >= effective
        if not keep.all():
            if not keep.any():
                replay.frames_deduped += 1
                continue
            frame = TailFrame(
                frame.metadata, frame.timestamps[keep], frame.values[keep]
            )
        replay.frames.append(frame)
    if replay.torn:
        warnings.warn(
            f"live tail {path.name}: dropped {replay.bytes_dropped} torn trailing "
            f"byte(s) ({replay.frames_dropped} partial frame(s)); "
            f"{len(replay.frames)} complete frame(s) survive",
            LiveWalWarning,
            stacklevel=2,
        )
    return replay


def _try_decode_header(
    data: bytes,
) -> tuple[str, int, int, int, int] | None:
    """Decode the WAL header; ``None`` when torn/corrupt.

    Returns ``(region, week, interval_minutes, sealed_through,
    first_frame_offset)``.
    """
    if len(data) < _HEADER_FIXED.size:
        return None
    magic, version, interval, week, sealed_through, name_len = _HEADER_FIXED.unpack_from(
        data
    )
    if magic != _WAL_MAGIC or version != _WAL_VERSION:
        return None
    end = _HEADER_FIXED.size + name_len
    if len(data) < end + _U32.size:
        return None
    (crc,) = _U32.unpack_from(data, end)
    if zlib.crc32(data[:end]) != crc:
        return None
    region = data[_HEADER_FIXED.size:end].decode("utf-8")
    return region, week, interval, sealed_through, end + _U32.size


def _fsync_dir(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class TailWal:
    """Writer handle for one partition's tail WAL.

    ``open()`` replays the existing file (if any), self-heals a torn tail
    by atomically rewriting the surviving frames, and leaves the handle
    positioned for appends.  Appends are fsync-batched: every
    ``fsync_every``-th frame (and every explicit :meth:`flush`) makes the
    log durable; a crash loses at most the batches since then.
    """

    def __init__(
        self,
        path: Path,
        region: str,
        week: int,
        interval_minutes: int,
        *,
        fsync_every: int = 16,
    ) -> None:
        if fsync_every < 1:
            raise ValueError("fsync_every must be at least 1")
        self._path = path
        self._region = region
        self._week = week
        self._interval = interval_minutes
        self._fsync_every = fsync_every
        self._handle = None  # type: ignore[assignment]
        self._unsynced = 0
        self._sealed_through = NO_WATERMARK

    # ------------------------------------------------------------------ #

    @classmethod
    def open(
        cls,
        path: Path,
        region: str,
        week: int,
        interval_minutes: int,
        *,
        fsync_every: int = 16,
        watermark: int | None = None,
    ) -> tuple["TailWal", TailReplay]:
        """Open (creating or replaying) the WAL; returns ``(wal, replay)``.

        Leftover ``*.tmp-*`` siblings from a crashed rewrite are removed
        first -- they were never acknowledged.  A replayed file whose tail
        was torn, whose header was unreadable, or whose frames were partly
        deduped against ``watermark`` is rewritten in place (atomically)
        so the on-disk bytes are coherent before the first new append.
        """
        path.parent.mkdir(parents=True, exist_ok=True)
        for stray in path.parent.glob(path.name + ".tmp-*"):
            stray.unlink(missing_ok=True)
        wal = cls(path, region, week, interval_minutes, fsync_every=fsync_every)
        replay = read_tail(path, watermark=watermark)
        if replay is None:
            replay = TailReplay(region, week, interval_minutes, NO_WATERMARK)
            if watermark is not None:
                replay.sealed_through = max(replay.sealed_through, watermark)
            wal._create(replay.sealed_through)
        else:
            stale_header = (
                replay.region != region
                or replay.week != week
                or replay.interval_minutes != interval_minutes
            )
            if stale_header and replay.frames:
                raise LiveWalError(
                    f"live tail {path} belongs to "
                    f"({replay.region!r}, week {replay.week}, "
                    f"{replay.interval_minutes}m), not "
                    f"({region!r}, week {week}, {interval_minutes}m)"
                )
            replay.region, replay.week = region, week
            replay.interval_minutes = interval_minutes
            needs_rewrite = (
                replay.torn or replay.frames_deduped > 0 or stale_header
                or (watermark is not None and watermark > replay.sealed_through)
            )
            if watermark is not None:
                replay.sealed_through = max(replay.sealed_through, watermark)
            if needs_rewrite:
                wal._rewrite(replay.frames, replay.sealed_through)
            else:
                wal._sealed_through = replay.sealed_through
                wal._handle = path.open("ab")
        return wal, replay

    @property
    def path(self) -> Path:
        return self._path

    @property
    def sealed_through(self) -> int:
        """Rows strictly below this epoch minute are sealed (durable in
        a committed ``.sgx`` segment) and no longer live in this WAL."""
        return self._sealed_through

    def _create(self, sealed_through: int) -> None:
        self._sealed_through = sealed_through
        self._handle = self._path.open("wb")
        self._handle.write(
            _encode_header(self._region, self._week, self._interval, sealed_through)
        )
        self._handle.flush()
        os.fsync(self._handle.fileno())
        _fsync_dir(self._path.parent)

    def append(
        self, metadata: ServerMetadata, timestamps: np.ndarray, values: np.ndarray
    ) -> None:
        """Append one batch frame (durable at the next fsync boundary)."""
        if self._handle is None:
            raise LiveWalError("tail WAL is closed")
        self._handle.write(encode_frame(metadata, timestamps, values))
        self._unsynced += 1
        if self._unsynced >= self._fsync_every:
            self.flush()

    def flush(self) -> None:
        """Make every appended frame durable now."""
        if self._handle is None:
            raise LiveWalError("tail WAL is closed")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._unsynced = 0

    def rewrite(self, frames: list[TailFrame], sealed_through: int) -> None:
        """Atomically replace the WAL with ``frames`` at a new watermark.

        The seal path's trim step: tmp file, fsync, ``os.replace``,
        directory fsync -- a crash anywhere leaves either the old complete
        WAL (replay dedupes against the committed txlog watermark) or the
        new complete one, never a mix.
        """
        self._rewrite(frames, sealed_through)

    def _rewrite(self, frames: list[TailFrame], sealed_through: int) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        tmp = self._path.with_name(f"{self._path.name}.tmp-{os.getpid()}")
        with tmp.open("wb") as handle:
            handle.write(
                _encode_header(self._region, self._week, self._interval, sealed_through)
            )
            for frame in frames:
                handle.write(encode_frame(frame.metadata, frame.timestamps, frame.values))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self._path)
        _fsync_dir(self._path.parent)
        self._sealed_through = sealed_through
        self._unsynced = 0
        self._handle = self._path.open("ab")

    def delete(self) -> None:
        """Close and remove the WAL file (partition fully sealed and idle)."""
        self.close()
        self._path.unlink(missing_ok=True)
        _fsync_dir(self._path.parent)

    def close(self) -> None:
        if self._handle is not None:
            self.flush()
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "TailWal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# ---------------------------------------------------------------------- #
# Read-side view (what DataLakeStore queries consult)
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class TailSnapshot:
    """An immutable point-in-time view of one partition's live tail.

    ``servers`` maps server id to ``(metadata, timestamps, values)`` with
    the raw rows of every surviving frame concatenated in append order and
    already filtered to the effective seal watermark.  ``raw_rows`` counts
    them (that is what ``ScanStats.tail_rows_scanned`` reports).
    """

    region: str
    week: int
    interval_minutes: int
    sealed_through: int
    servers: dict[str, tuple[ServerMetadata, np.ndarray, np.ndarray]]

    @property
    def raw_rows(self) -> int:
        return sum(int(ts.size) for _, ts, _ in self.servers.values())


def _snapshot_from_replay(replay: TailReplay) -> TailSnapshot:
    order: dict[str, list[TailFrame]] = {}
    for frame in replay.frames:
        order.setdefault(frame.metadata.server_id, []).append(frame)
    servers: dict[str, tuple[ServerMetadata, np.ndarray, np.ndarray]] = {}
    for server_id, frames in order.items():
        ts = np.concatenate([f.timestamps for f in frames])
        vs = np.concatenate([f.values for f in frames])
        servers[server_id] = (frames[0].metadata, ts, vs)
    return TailSnapshot(
        region=replay.region,
        week=replay.week,
        interval_minutes=replay.interval_minutes,
        sealed_through=replay.sealed_through,
        servers=servers,
    )


class LiveTailIndex:
    """Read-only, cross-process view of every live tail under one lake.

    Queries consult this instead of talking to a :class:`TailWal` writer:
    the WAL is append-only between seals and atomically replaced by them,
    so a stat signature of ``(size, mtime_ns)`` over the WAL file *and*
    the transaction log (whose committed seal ops shift the effective
    watermark without touching the WAL) is a sound cache key.  A reader in
    a different process than the ingestor sees exactly the fsync'd state.
    """

    def __init__(self, root: Path) -> None:
        self._root = root
        self._cache: dict[
            tuple[str, int],
            tuple[tuple[int, int, int, int], TailSnapshot],
        ] = {}

    def keys(self) -> list[tuple[str, int]]:
        """Partitions with an on-disk tail WAL, sorted."""
        base = live_dir(self._root)
        if not base.is_dir():
            return []
        found: list[tuple[str, int]] = []
        for region_dir in base.iterdir():
            if not region_dir.is_dir():
                continue
            for path in region_dir.iterdir():
                match = _WAL_NAME_RE.match(path.name)
                if match is not None:
                    found.append((region_dir.name, int(match.group("week"))))
        return sorted(found)

    def _signature(self, region: str, week: int) -> tuple[int, int, int, int] | None:
        try:
            wal_stat = wal_path(self._root, region, week).stat()
        except FileNotFoundError:
            return None
        try:
            log_stat = (self._root / MANIFEST_DIR_NAME / TXLOG_NAME).stat()
            log_sig = (log_stat.st_size, log_stat.st_mtime_ns)
        except FileNotFoundError:
            log_sig = (0, 0)
        return (wal_stat.st_size, wal_stat.st_mtime_ns, *log_sig)

    def tail(self, region: str, week: int) -> TailSnapshot | None:
        """The partition's current tail snapshot (``None``: no tail/empty)."""
        signature = self._signature(region, week)
        if signature is None:
            self._cache.pop((region, week), None)
            return None
        cached = self._cache.get((region, week))
        if cached is not None and cached[0] == signature:
            snapshot = cached[1]
            return snapshot if snapshot.servers else None
        watermark = committed_seal_watermark(self._root, region, week)
        with warnings.catch_warnings():
            # Query-side replay of a torn tail must not spam every read;
            # the owning ingestor warns (and heals) on its next open.
            warnings.simplefilter("ignore", LiveWalWarning)
            replay = read_tail(wal_path(self._root, region, week), watermark=watermark)
        if replay is None:
            self._cache.pop((region, week), None)
            return None
        snapshot = _snapshot_from_replay(replay)
        self._cache[(region, week)] = (signature, snapshot)
        return snapshot if snapshot.servers else None
